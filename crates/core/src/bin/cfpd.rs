//! `cfpd` — command-line front end of the reproduction.
//!
//! ```text
//! cfpd mesh    [--generations N] [--vtk FILE]      mesh stats / export
//! cfpd run     [--ranks N] [--threads N] [--dlb] [--coupled F P]
//!              [--particles N] [--steps N] [--strategy S]
//! cfpd profile [--ranks N] [--particles N]         Table-1-style profile
//! cfpd golden  [--ranks N]                         deterministic trace
//! ```
//!
//! Argument parsing is deliberately dependency-free (tiny flag set).

use cfpd_core::{
    golden_config, golden_trace, measure_workload, run_simulation, ExecutionMode, PhaseCostModel,
    SimulationConfig,
};
use cfpd_mesh::{generate_airway, AirwaySpec};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::render_timeline;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = Flags::parse(&args[1.min(args.len())..]);
    match cmd {
        "mesh" => cmd_mesh(&flags),
        "run" => cmd_run(&flags),
        "profile" => cmd_profile(&flags),
        "golden" => cmd_golden(&flags),
        _ => {
            eprintln!(
                "usage: cfpd <mesh|run|profile|golden> [flags]\n\
                 \n\
                 mesh    --generations N  --vtk FILE\n\
                 run     --ranks N  --threads N  --dlb  --coupled F P\n\
                 \x20       --particles N  --steps N  --strategy atomics|coloring|multidep|serial\n\
                 profile --ranks N  --particles N\n\
                 golden  --ranks N"
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

/// Minimal flag parser: `--name value` and boolean `--name`.
struct Flags(Vec<String>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        Flags(args.to_vec())
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get2(&self, name: &str) -> Option<(&str, &str)> {
        self.0.iter().position(|a| a == name).and_then(|i| {
            match (self.0.get(i + 1), self.0.get(i + 2)) {
                (Some(a), Some(b)) => Some((a.as_str(), b.as_str())),
                _ => None,
            }
        })
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name).map(|v| v.parse().expect(name)).unwrap_or(default)
    }
}

fn strategy_of(flags: &Flags) -> AssemblyStrategy {
    match flags.get("--strategy").unwrap_or("multidep") {
        "atomics" => AssemblyStrategy::Atomics,
        "coloring" => AssemblyStrategy::Coloring,
        "multidep" => AssemblyStrategy::Multidep,
        "serial" => AssemblyStrategy::Serial,
        other => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    }
}

fn cmd_mesh(flags: &Flags) {
    let spec = AirwaySpec {
        generations: flags.usize_or("--generations", 3),
        ..AirwaySpec::default()
    };
    let t0 = std::time::Instant::now();
    let airway = generate_airway(&spec).expect("valid spec");
    let s = airway.mesh.stats();
    println!(
        "generated in {:.2}s: {} branches, {} junctions",
        t0.elapsed().as_secs_f64(),
        airway.num_tubes,
        airway.num_junctions
    );
    println!(
        "elements: {} total = {} tets + {} pyramids + {} prisms",
        s.num_elements, s.num_tets, s.num_pyramids, s.num_prisms
    );
    println!("nodes: {}, volume: {:.3e} m^3", s.num_nodes, s.total_volume);
    println!(
        "inlet: center {:?}, radius {:.4} m",
        airway.inlet_center, airway.inlet_radius
    );
    if let Some(path) = flags.get("--vtk") {
        cfpd_mesh::write_vtk(&airway.mesh, std::path::Path::new(path), &[], &[])
            .expect("write VTK");
        println!("wrote {path}");
    }
}

fn cmd_run(flags: &Flags) {
    let mode = match flags.get2("--coupled") {
        Some((f, p)) => ExecutionMode::Coupled {
            fluid: f.parse().expect("--coupled F"),
            particles: p.parse().expect("--coupled P"),
        },
        None => ExecutionMode::Synchronous,
    };
    let config = SimulationConfig {
        airway: AirwaySpec { generations: flags.usize_or("--generations", 1), ..AirwaySpec::small() },
        num_particles: flags.usize_or("--particles", 500),
        steps: flags.usize_or("--steps", 5),
        strategy: strategy_of(flags),
        mode,
        ..Default::default()
    };
    let ranks = flags.usize_or("--ranks", 2);
    let threads = flags.usize_or("--threads", 1);
    let dlb = flags.has("--dlb");
    println!(
        "running {:?} on {} ranks x {} threads, strategy {:?}, DLB {}",
        config.mode,
        config.total_ranks(ranks),
        threads,
        config.strategy,
        if dlb { "on" } else { "off" }
    );
    let r = run_simulation(&config, ranks, threads, dlb);
    println!("{}", render_timeline(&r.trace, 120, 16));
    println!("phase breakdown:");
    for row in &r.breakdown {
        println!(
            "  {:<16} L = {:.2}  {:>5.1}%",
            row.phase.name(),
            row.load_balance,
            row.pct_time
        );
    }
    println!("particles: {:?}", r.census);
    if let Some(stats) = r.dlb {
        println!(
            "dlb: {} lends / {} grants / {} reclaims",
            stats.lends, stats.grants, stats.reclaims
        );
    }
    println!("total: {:.3}s", r.total_time);
}

/// Print the deterministic golden trace of the canonical small run:
/// byte-identical output on every invocation with the same flags.
fn cmd_golden(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 2);
    print!("{}", golden_trace(&golden_config(), ranks));
}

fn cmd_profile(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 16);
    let particles = flags.usize_or("--particles", 4000);
    let spec = AirwaySpec { generations: flags.usize_or("--generations", 3), ..AirwaySpec::default() };
    let airway = generate_airway(&spec).expect("valid spec");
    let w = measure_workload(&airway, ranks, particles, 10, PhaseCostModel::default(), 42);
    println!(
        "workload profile over {} ranks ({} elements, {} particles):",
        ranks,
        airway.mesh.num_elements(),
        particles
    );
    println!("  assembly  L{} = {:.3}", ranks, w.assembly_balance());
    println!("  solvers   L{} = {:.3}", ranks, cfpd_trace::load_balance(&w.solver1));
    println!("  sgs       L{} = {:.3}", ranks, cfpd_trace::load_balance(&w.sgs));
    for (s, _) in w.particles_per_step.iter().enumerate().take(3) {
        println!("  particles L{} = {:.4} (step {s})", ranks, w.particle_balance(s));
    }
}
