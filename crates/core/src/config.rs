//! Simulation configuration: everything a run of the reproduction
//! needs, mirroring the knobs the paper varies in its evaluation.

use cfpd_mesh::AirwaySpec;
use cfpd_particles::ParticleProps;
use cfpd_solver::{AssemblyStrategy, FluidProps, LayoutPlan};

/// Execution mode (Fig. 3): synchronous (every rank solves fluid then
/// particles) or coupled (two rank groups running concurrently with a
/// velocity exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    Synchronous,
    /// `fluid` + `particle` rank split (the paper's `f + p`).
    Coupled { fluid: usize, particles: usize },
}

/// Full configuration of a CFPD run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Mesh geometry/resolution.
    pub airway: AirwaySpec,
    /// Fluid properties (air).
    pub fluid: FluidProps,
    /// Aerosol properties.
    pub particle: ParticleProps,
    /// Number of particles injected at the first step (paper: 4·10⁵ or
    /// 7·10⁶; scaled down per DESIGN.md).
    pub num_particles: usize,
    /// Inhalation speed at the inlet [m/s].
    pub inflow_speed: f64,
    /// Time-step size [s] (paper: 1e-4).
    pub dt: f64,
    /// Number of time steps (paper evaluation: 10).
    pub steps: usize,
    /// Assembly parallelization strategy.
    pub strategy: AssemblyStrategy,
    /// Subdomain tasks per rank for the Multidep strategy.
    pub subdomains_per_rank: usize,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Krylov tolerances.
    pub solver_tol: f64,
    pub solver_max_iters: usize,
    /// RNG seed for the particle injection.
    pub seed: u64,
    /// Opt-in locality optimizations (RCM renumbering, kind-batched
    /// assembly, fused solver kernels). Default: all off — the golden
    /// bit-identity path.
    pub layout: LayoutPlan,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            airway: AirwaySpec::small(),
            fluid: FluidProps::default(),
            particle: ParticleProps::default(),
            num_particles: 1000,
            inflow_speed: 1.5,
            dt: 1e-4,
            steps: 10,
            strategy: AssemblyStrategy::Multidep,
            subdomains_per_rank: 16,
            mode: ExecutionMode::Synchronous,
            solver_tol: 1e-6,
            solver_max_iters: 500,
            seed: 1234,
            layout: LayoutPlan::default(),
        }
    }
}

impl SimulationConfig {
    /// Total ranks the mode needs given a base count (sync: `n`;
    /// coupled: `fluid + particles`).
    pub fn total_ranks(&self, sync_ranks: usize) -> usize {
        match self.mode {
            ExecutionMode::Synchronous => sync_ranks,
            ExecutionMode::Coupled { fluid, particles } => fluid + particles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimulationConfig::default();
        assert!(c.dt > 0.0 && c.steps > 0);
        assert_eq!(c.total_ranks(4), 4);
        let coupled = SimulationConfig {
            mode: ExecutionMode::Coupled { fluid: 3, particles: 2 },
            ..c
        };
        assert_eq!(coupled.total_ranks(4), 5);
    }
}
