//! The distributed CFPD simulation on the virtual cluster: ranks as
//! threads (`cfpd-simmpi`), partitioned assembly with replicated
//! solves, distributed particle tracking with migration, per-phase
//! tracing, both execution modes of Fig. 3, and optional DLB.

use crate::checkpoint::{Checkpoint, RankCheckpoint};
use crate::config::{ExecutionMode, SimulationConfig};
use crate::fluid::FluidSolver;
use cfpd_dlb::{DlbCluster, DlbPolicy, DlbStats, GrantPolicy, LendPolicy};
use cfpd_hetero::{ImbalancePredictor, PredictorConfig};
use cfpd_mesh::{generate_airway, Vec3};
use cfpd_particles::{
    inject_at_inlet, step_particles, Locator, ParticleCensus, ParticleProps, ParticleSet,
    ParticleState,
};
use cfpd_partition::{partition_kway, Graph};
use cfpd_runtime::ThreadPool;
use cfpd_simmpi::{
    ChaosHooks, Comm, FaultConfig, FaultEvent, FaultEventKind, FaultPlan, MpiHooks, ProfileHooks,
    RankProfile, ReduceOp, TraceHooks, Universe,
};
use cfpd_testkit::digest::{digest_f64s, Digest};
use cfpd_trace::{
    carve_states, phase_breakdown, ChaosKind, DlbMarkKind, Phase, PhaseRow, Trace, WorkerState,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything beyond the basic `(ranks, threads, dlb)` knobs of a run:
/// chaos injection, checkpoint capture and restart. The plain
/// [`run_simulation`] entry point is `RunOptions::default()` plus `dlb`.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Enable the LeWI arbiter.
    pub dlb: bool,
    /// Lending lease for DLB graceful degradation: a rank blocked longer
    /// than this donates its kept core to the pool (see
    /// `DlbNode::sweep_leases`). Only meaningful with `dlb`.
    pub lease: Option<Duration>,
    /// Seeded fault plan injected into the MPI fabric ([`ChaosHooks`]
    /// wraps the DLB hooks, so chaos and load balancing compose).
    pub fault: Option<FaultConfig>,
    /// Capture a [`Checkpoint`] immediately before this step executes
    /// (`Some(k)` with `k == steps` captures the final state).
    /// Synchronous mode only.
    pub checkpoint_at: Option<usize>,
    /// Resume from a previously captured checkpoint instead of injecting
    /// particles at step 0. Synchronous mode only.
    pub restore: Option<Arc<Checkpoint>>,
    /// Stop the run at this step boundary: execute steps
    /// `[start, stop_after)` and capture a [`Checkpoint`] with
    /// `next_step == stop_after` instead of running to `config.steps`.
    /// Composable with `restore`, so a run can be executed as a chain of
    /// segments whose concatenated logical event logs are byte-identical
    /// to the uninterrupted run (the substrate of `cfpd serve`'s
    /// checkpoint-backed preemption). Mutually exclusive with
    /// `checkpoint_at`; values `>= config.steps` are equivalent to
    /// `None`. Synchronous mode only.
    pub stop_after: Option<usize>,
    /// Record the full structured trace: per-(rank, worker) state
    /// events, MPI wait intervals, point-to-point message records and
    /// DLB transitions, all on one shared run clock. Off by default —
    /// untraced runs take exactly the pre-existing code paths, so both
    /// golden documents stay byte-identical.
    pub trace: bool,
    /// How DLB moves cores: reactive LeWI (the default, lend at the
    /// blocking call) or model-driven predictive pre-lending (an
    /// [`ImbalancePredictor`] forecasts the next step's imbalance and
    /// sheds surplus cores *before* the barrier, falling back to
    /// reactive when its forecasts miss). Only meaningful with `dlb`.
    pub policy: DlbPolicy,
    /// Deterministic per-rank speed/skew profile emulating a
    /// heterogeneous cluster (e.g. MareNostrum4-class next to
    /// ThunderX-class nodes). Injected into the PMPI hook chain exactly
    /// like chaos: blocking calls on slow ranks stall by a seeded,
    /// replayable amount, and the logical event log stays byte-identical
    /// to an unprofiled run.
    pub hetero: Option<RankProfile>,
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct SimulationResult {
    /// Wall-clock per-rank phase trace (gathered at rank 0).
    pub trace: Trace,
    /// Table 1 style per-phase load balance / time share.
    pub breakdown: Vec<PhaseRow>,
    /// Final particle census (summed over ranks).
    pub census: ParticleCensus,
    /// Total wall time of the timed region.
    pub total_time: f64,
    /// DLB statistics when DLB was enabled.
    pub dlb: Option<DlbStats>,
    /// Wall-clock-free per-rank event log (gathered at rank 0, sorted by
    /// `(step, rank)`). Unlike `trace`, this is bit-reproducible across
    /// runs for a fixed config with `threads_per_rank == 1` and DLB off —
    /// the substrate of the golden-trace regression suite.
    pub logical: Vec<LogicalEvent>,
    /// Checkpoint captured at `RunOptions::checkpoint_at`, if requested.
    pub checkpoint: Option<Checkpoint>,
    /// Every fault the chaos layer injected (empty without a fault plan).
    pub faults: Vec<FaultEvent>,
}

/// One deterministic milestone of the simulation: what was computed,
/// never how long it took. Floating-point payloads are carried as raw
/// bit patterns (`f64::to_bits`) so equality means bit-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalEvent {
    /// Matrix assembly on one rank (momentum + Poisson share elements).
    Assembly { step: usize, rank: usize, elements: usize },
    /// One linear solve: `system` 0..=2 are the momentum components,
    /// 3 is the pressure Poisson system.
    Solve {
        step: usize,
        rank: usize,
        system: u8,
        iterations: usize,
        residual_bits: u64,
        converged: bool,
    },
    /// FNV-1a digests of the full velocity / pressure fields after the
    /// fluid step (replicated solves: identical on every rank).
    FieldDigest { step: usize, rank: usize, velocity: u64, pressure: u64 },
    /// Particle migration: `(dest, count)` per non-empty send plus the
    /// total received, in rank order.
    Exchange { step: usize, rank: usize, sent: Vec<(usize, usize)>, received: usize },
    /// Post-step particle census of this rank's subdomain.
    Particles {
        step: usize,
        rank: usize,
        active: usize,
        deposited: usize,
        escaped: usize,
        lost: usize,
    },
}

impl LogicalEvent {
    pub fn step(&self) -> usize {
        match self {
            LogicalEvent::Assembly { step, .. }
            | LogicalEvent::Solve { step, .. }
            | LogicalEvent::FieldDigest { step, .. }
            | LogicalEvent::Exchange { step, .. }
            | LogicalEvent::Particles { step, .. } => *step,
        }
    }

    pub fn rank(&self) -> usize {
        match self {
            LogicalEvent::Assembly { rank, .. }
            | LogicalEvent::Solve { rank, .. }
            | LogicalEvent::FieldDigest { rank, .. }
            | LogicalEvent::Exchange { rank, .. }
            | LogicalEvent::Particles { rank, .. } => *rank,
        }
    }
}

/// Digest the velocity (component-wise) and pressure fields.
fn field_digests(velocity: &[Vec3], pressure: &[f64]) -> (u64, u64) {
    let mut dv = Digest::new();
    for v in velocity {
        dv.update_f64(v.x).update_f64(v.y).update_f64(v.z);
    }
    (dv.finish(), digest_f64s(pressure))
}

/// Append the fluid-step events (assembly, 4 solves, field digests) for
/// one rank-step to `log`.
fn log_fluid_step(
    log: &mut Vec<LogicalEvent>,
    step: usize,
    rank: usize,
    report: &crate::fluid::FluidStepReport,
    velocity: &[Vec3],
    pressure: &[f64],
) {
    if let Some(a) = &report.assembly {
        log.push(LogicalEvent::Assembly { step, rank, elements: a.momentum.elements });
    }
    let mut solves: Vec<(u8, cfpd_solver::SolveStats)> = Vec::new();
    if let Some(s1) = &report.solver1 {
        solves.extend(s1.iter().enumerate().map(|(i, s)| (i as u8, *s)));
    }
    if let Some(s2) = &report.solver2 {
        solves.push((3, *s2));
    }
    for (system, s) in solves {
        log.push(LogicalEvent::Solve {
            step,
            rank,
            system,
            iterations: s.iterations,
            residual_bits: s.residual.to_bits(),
            converged: s.converged,
        });
    }
    let (dv, dp) = field_digests(velocity, pressure);
    log.push(LogicalEvent::FieldDigest { step, rank, velocity: dv, pressure: dp });
}

/// Particle payload migrated between ranks when a particle crosses into
/// another rank's subdomain.
#[derive(Debug, Clone)]
struct Migrant {
    pos: Vec3,
    vel: Vec3,
    acc: Vec3,
    elem: u32,
    props: ParticleProps,
}

const TAG_MIGRATE: u64 = 10;
const TAG_VELOCITY: u64 = 11;

/// Run the configured simulation on `n_ranks` virtual MPI ranks with
/// `threads_per_rank` OpenMP-style workers each. With `dlb`, a LeWI
/// arbiter moves workers between co-resident ranks at blocking calls.
///
/// For `ExecutionMode::Coupled`, `n_ranks` is ignored in favor of
/// `fluid + particles`.
pub fn run_simulation(
    config: &SimulationConfig,
    n_ranks: usize,
    threads_per_rank: usize,
    dlb: bool,
) -> SimulationResult {
    run_simulation_opts(config, n_ranks, threads_per_rank, &RunOptions { dlb, ..Default::default() })
}

/// [`run_simulation`] with the full option set. Panics (with every
/// failed rank's message) if any rank crashes or deadlocks — use
/// [`run_simulation_fallible`] when failure is the expected outcome.
pub fn run_simulation_opts(
    config: &SimulationConfig,
    n_ranks: usize,
    threads_per_rank: usize,
    opts: &RunOptions,
) -> SimulationResult {
    match run_simulation_fallible(config, n_ranks, threads_per_rank, opts) {
        Ok(r) => r,
        Err(fails) => {
            let msgs: Vec<String> =
                fails.iter().map(|(r, m)| format!("rank {r}: {m}")).collect();
            panic!("simulation failed on {} rank(s):\n{}", msgs.len(), msgs.join("\n"))
        }
    }
}

/// Run the simulation, surviving rank failures: returns `Err` with one
/// `(rank, message)` entry per failed rank (crash unwinds, deadlock
/// reports, panics) instead of propagating the panic. The chaos
/// subcommand's storm mode relies on this to print a structured
/// deadlock report and exit instead of hanging or aborting.
pub fn run_simulation_fallible(
    config: &SimulationConfig,
    n_ranks: usize,
    threads_per_rank: usize,
    opts: &RunOptions,
) -> Result<SimulationResult, Vec<(usize, String)>> {
    let n_ranks = config.total_ranks(n_ranks);
    assert!(n_ranks >= 1);
    if opts.checkpoint_at.is_some() || opts.restore.is_some() || opts.stop_after.is_some() {
        assert_eq!(
            config.mode,
            ExecutionMode::Synchronous,
            "checkpoint/restart is only supported in synchronous mode"
        );
    }
    assert!(
        opts.checkpoint_at.is_none() || opts.stop_after.is_none(),
        "checkpoint_at and stop_after are mutually exclusive"
    );
    // A stop boundary at or past the end is just an ordinary full run.
    let stop_after = opts.stop_after.filter(|&s| s < config.steps);
    if let Some(cp) = &opts.restore {
        if let Err(e) = cp.validate_for(config, n_ranks) {
            panic!("refusing to restore checkpoint: {e}");
        }
    }

    // Shared immutable setup (every rank would compute the identical
    // mesh; do it once).
    let mut airway = generate_airway(&config.airway).expect("valid airway spec");
    if config.layout.rcm {
        // Locality layout: renumber nodes with reverse Cuthill–McKee
        // before anything derives data from node ids (CSR patterns,
        // partitions, boundary sets), so every downstream structure
        // sees the bandwidth-reduced ordering.
        let adj = airway.mesh.node_adjacency();
        let perm = cfpd_partition::rcm_perm(&adj);
        airway.mesh.renumber_nodes(&perm);
    }
    let airway = Arc::new(airway);
    let config = Arc::new(config.clone());

    // The shared run clock: every trace record — phase intervals, wait
    // intervals, message timestamps, DLB events, worker regions — is
    // measured against this one epoch when tracing, so happens-before
    // edges are monotone across ranks. Untraced runs keep their
    // per-rank epochs (the pre-existing behavior).
    let run_epoch = Instant::now();

    // One virtual node: this container is one shared-memory machine, so
    // DLB may lend between any pair of ranks (the cfpd-perfmodel DES
    // models the paper's 2-node topology; here we exercise the real
    // lending machinery).
    let cluster = Arc::new(if opts.dlb {
        if opts.trace {
            DlbCluster::new_block_with_epoch(
                n_ranks,
                1,
                LendPolicy::default(),
                GrantPolicy::default(),
                opts.lease,
                run_epoch,
            )
        } else {
            DlbCluster::new_block_with(
                n_ranks,
                1,
                LendPolicy::default(),
                GrantPolicy::default(),
                opts.lease,
            )
        }
    } else {
        DlbCluster::disabled(n_ranks, 1)
    });
    let pools: Vec<Arc<ThreadPool>> = (0..n_ranks)
        .map(|_| Arc::new(ThreadPool::new(threads_per_rank.max(1) * 2)))
        .collect();
    for (r, pool) in pools.iter().enumerate() {
        cluster.register(r, Arc::clone(pool), threads_per_rank.max(1));
        if opts.trace {
            pool.worker_trace_start(run_epoch);
        }
    }

    // The hook chain: tracer (outermost, when tracing) wraps the
    // heterogeneity profile (when one is given) wraps chaos (when a
    // fault plan is given) wraps DLB. Physics code sees none of them.
    let base: Arc<dyn MpiHooks> = Arc::clone(&cluster) as _;
    let chaos: Option<Arc<ChaosHooks>> = opts
        .fault
        .map(|fc| ChaosHooks::new(n_ranks, FaultPlan::new(fc), Arc::clone(&base)));
    let mid: Arc<dyn MpiHooks> = match &chaos {
        Some(c) => Arc::clone(c) as _,
        None => base,
    };
    let profiled: Option<Arc<ProfileHooks>> = match &opts.hetero {
        Some(p) if !p.is_uniform() => {
            Some(ProfileHooks::new(n_ranks, p.clone(), Arc::clone(&mid)))
        }
        _ => None,
    };
    let mid: Arc<dyn MpiHooks> = match &profiled {
        Some(p) => Arc::clone(p) as _,
        None => mid,
    };
    let tracer: Option<Arc<TraceHooks>> = if opts.trace {
        Some(Arc::new(TraceHooks::new(n_ranks, run_epoch, Arc::clone(&mid))))
    } else {
        None
    };
    let hooks: Arc<dyn MpiHooks> = match &tracer {
        Some(t) => Arc::clone(t) as _,
        None => mid,
    };

    // The predictive policy closes observe → model → act: calibrate the
    // demand model from the speed profile (uniform when none), then let
    // each rank pre-lend its forecast surplus before blocking.
    let predictor: Option<Arc<ImbalancePredictor>> =
        if opts.dlb && opts.policy == DlbPolicy::Predictive {
            let speeds = match &opts.hetero {
                Some(p) => cfpd_hetero::speeds(p, n_ranks),
                None => vec![1.0],
            };
            Some(Arc::new(ImbalancePredictor::calibrated(
                n_ranks,
                threads_per_rank.max(1),
                &speeds,
                PredictorConfig::default(),
            )))
        } else {
            None
        };

    let am = Arc::clone(&airway);
    let cfg = Arc::clone(&config);
    let pools2 = pools.clone();
    let window = StepWindow {
        checkpoint_at: opts.checkpoint_at,
        stop_after,
        restore: opts.restore.clone(),
        epoch: if opts.trace { Some(run_epoch) } else { None },
        predictor,
        cluster: Arc::clone(&cluster),
        profiled: profiled.clone(),
    };

    let results = Universe::run_fallible(n_ranks, hooks, move |comm| {
        rank_main(&cfg, &am, &pools2[comm.rank()], comm, &window)
    });

    let mut oks = Vec::new();
    let mut fails = Vec::new();
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => oks.push(v),
            Err(m) => fails.push((rank, m)),
        }
    }
    if !fails.is_empty() {
        return Err(fails);
    }

    let out = oks.remove(0);
    let RankOut { mut trace, census, total, logical, checkpoint: cp_ranks } = out;
    let checkpoint = cp_ranks.map(|ranks| Checkpoint {
        next_step: opts
            .checkpoint_at
            .or(stop_after)
            .expect("capture implies checkpoint_at or stop_after"),
        n_ranks,
        seed: config.seed,
        config_digest: crate::checkpoint::config_digest(&config),
        ranks,
    });

    // Overlay the injected-fault log on the wall-clock trace.
    let faults = chaos.as_ref().map(|c| c.events()).unwrap_or_default();
    for f in &faults {
        let kind = match f.kind {
            FaultEventKind::Timeout => ChaosKind::TimeoutFired,
            _ => ChaosKind::FaultInjected,
        };
        if f.rank < trace.num_ranks {
            trace.record_chaos(f.rank, f.t, kind);
        }
    }

    // DLB transitions become first-class trace events (the lend/borrow
    // arrows of the paper's Fig. 8), so `render_timeline` shows cores
    // migrating between co-resident ranks.
    if opts.dlb {
        use cfpd_dlb::DlbEventKind;
        for (_, e) in cluster.all_events() {
            let (kind, cores) = match e.kind {
                DlbEventKind::Lend { cores } => (DlbMarkKind::Lend, cores),
                DlbEventKind::Borrow { cores, .. } => (DlbMarkKind::Borrow, cores),
                DlbEventKind::Reclaim { cores } => (DlbMarkKind::Reclaim, cores),
                DlbEventKind::Revoke { cores, .. } => (DlbMarkKind::Revoke, cores),
                DlbEventKind::LeaseExpired { cores } => (DlbMarkKind::LeaseExpired, cores),
                DlbEventKind::Crashed { cores } => (DlbMarkKind::Crashed, cores),
                DlbEventKind::PreLend { cores } => (DlbMarkKind::PreLend, cores),
            };
            if e.rank < trace.num_ranks {
                trace.record_dlb(e.rank, e.t, kind, cores);
            }
        }
    }

    // Assemble the worker-level trace: wait and message records from
    // the tracer hooks, worker-0 state intervals carved from the phase
    // timeline around the waits, and worker ≥ 1 Useful intervals from
    // the pools' region logs. All share `run_epoch`.
    if let Some(tr) = &tracer {
        let waits = tr.drain_waits();
        let carved = carve_states(trace.num_ranks, &trace.events, &waits);
        trace.workers.extend(carved);
        for (rank, pool) in pools.iter().enumerate() {
            for (worker, t0, t1) in pool.worker_trace_drain() {
                trace.record_worker(rank, worker, WorkerState::Useful, t0, t1);
            }
        }
        for (src, dst, tag, bytes, t_send, t_recv) in tr.drain_msgs() {
            if src < trace.num_ranks && dst < trace.num_ranks {
                trace.record_msg(src, dst, tag, bytes, t_send, t_recv);
            }
        }
    }

    let breakdown = phase_breakdown(&trace);
    Ok(SimulationResult {
        trace,
        breakdown,
        census,
        total_time: total,
        dlb: if opts.dlb { Some(cluster.total_stats()) } else { None },
        logical,
        checkpoint,
        faults,
    })
}

/// Checkpoint/restart window threaded into each rank's main loop.
#[derive(Clone)]
struct StepWindow {
    checkpoint_at: Option<usize>,
    stop_after: Option<usize>,
    restore: Option<Arc<Checkpoint>>,
    /// Shared run clock for traced runs; `None` keeps the pre-existing
    /// per-rank epoch (and byte-identical untraced output).
    epoch: Option<Instant>,
    /// Imbalance model driving `DlbPolicy::Predictive`; `None` keeps
    /// the step loop on the untouched reactive path.
    predictor: Option<Arc<ImbalancePredictor>>,
    /// The arbiter, reachable from inside the step loop for pre-lends.
    cluster: Arc<DlbCluster>,
    /// Heterogeneity hooks, consulted for per-rank injected-stall time
    /// so the predictor's demand model sees the emulated slowness as
    /// compute (the stalls *stand in* for slower compute).
    profiled: Option<Arc<ProfileHooks>>,
}

/// Per-rank result; only rank 0's value is meaningful (others return
/// empty).
struct RankOut {
    trace: Trace,
    census: ParticleCensus,
    total: f64,
    logical: Vec<LogicalEvent>,
    /// Gathered per-rank checkpoints (rank 0, when capture was asked).
    checkpoint: Option<Vec<RankCheckpoint>>,
}

/// Per-rank entry point.
fn rank_main(
    config: &SimulationConfig,
    airway: &cfpd_mesh::AirwayMesh,
    pool: &ThreadPool,
    comm: Comm,
    window: &StepWindow,
) -> RankOut {
    match config.mode {
        ExecutionMode::Synchronous => sync_rank(config, airway, pool, comm, window),
        ExecutionMode::Coupled { fluid, particles } => {
            coupled_rank(config, airway, pool, comm, fluid, particles, window.epoch)
        }
    }
}

/// Telemetry mirror of a wall-clock phase attribution: feed the *same*
/// `(rank, phase, t_start, t_end)` f64 values to the online POP table
/// that `Trace::record` logs, so the rollup and the post-hoc
/// `cfpd_trace` analysis agree to floating-point reassociation error
/// (well under the 1e-9 the regression test pins).
#[inline]
fn pop_record(rank: usize, phase: Phase, t_start: f64, t_end: f64) {
    use cfpd_telemetry::pop::{self, PopPhase};
    let p = match phase {
        Phase::MpiComm => PopPhase::Mpi,
        Phase::Assembly => PopPhase::Assembly,
        Phase::Solver1 => PopPhase::Solver1,
        Phase::Solver2 => PopPhase::Solver2,
        Phase::Sgs => PopPhase::Sgs,
        Phase::Particles => PopPhase::Particles,
    };
    pop::phase(rank, p, t_start, t_end);
    // Flight-recorder mirror of the same attribution (timing-only: the
    // recorder never feeds back into simulation state).
    cfpd_flight::record(
        cfpd_flight::EventKind::Phase,
        rank as u32,
        p.index() as u32,
        t_start.to_bits(),
        t_end.to_bits(),
    );
}

/// Partition all mesh elements into `n` cost-weighted parts; returns
/// (my part's elements, element→owner map).
fn partition_elements(
    mesh: &cfpd_mesh::Mesh,
    n: usize,
    my_part: usize,
) -> (Vec<u32>, Vec<u32>) {
    let n2e = mesh.node_to_elements();
    let adj = mesh.element_adjacency(&n2e);
    let g = Graph::from_csr(&adj, mesh.cost_weights());
    let part = partition_kway(&g, n, 4);
    let members = part.part_members();
    (members[my_part].clone(), part.parts)
}

fn sync_rank(
    config: &SimulationConfig,
    airway: &cfpd_mesh::AirwayMesh,
    pool: &ThreadPool,
    comm: Comm,
    window: &StepWindow,
) -> RankOut {
    let mesh = &airway.mesh;
    let rank = comm.rank();
    let n = comm.size();
    let (my_elems, owner) = partition_elements(mesh, n, rank);

    let mut fs = FluidSolver::new_with_layout(
        mesh,
        my_elems,
        config.strategy,
        config.subdomains_per_rank,
        config.fluid,
        config.dt,
        airway.inlet_direction * config.inflow_speed,
        config.solver_tol,
        config.solver_max_iters,
        config.layout,
    );
    let locator = Locator::new(mesh);

    let mut mine = ParticleSet::default();
    let start_step = match &window.restore {
        Some(cp) => {
            cfpd_telemetry::count!("core.checkpoint_restores");
            // Resume: overwrite the persistent cross-step state (fields,
            // SGS vectors, particle SoA) with the snapshot; the RNG only
            // runs at step-0 injection, so nothing else needs replaying.
            let rc = &cp.ranks[rank];
            fs.velocity = rc.velocity.clone();
            fs.pressure = rc.pressure.clone();
            fs.sgs.values = rc.sgs.clone();
            mine = rc.particles.clone();
            cp.next_step
        }
        None => {
            // Deterministic identical injection everywhere; keep only
            // mine.
            let mut all = ParticleSet::default();
            inject_at_inlet(
                &mut all,
                &locator,
                airway.inlet_center,
                airway.inlet_direction,
                airway.inlet_radius,
                config.inflow_speed,
                config.particle,
                config.num_particles,
                config.seed,
            );
            for i in 0..all.len() {
                if owner[all.elem[i] as usize] as usize == rank {
                    push_particle(
                        &mut mine,
                        Migrant {
                            pos: all.pos[i],
                            vel: all.vel[i],
                            acc: all.acc[i],
                            elem: all.elem[i],
                            props: all.props[i],
                        },
                    );
                }
            }
            0
        }
    };

    let mut trace = Trace::new(n);
    let mut logical = Vec::new();
    let mut captured: Option<RankCheckpoint> = None;
    let epoch = window.epoch.unwrap_or_else(std::time::Instant::now);
    let t = |epoch: std::time::Instant| epoch.elapsed().as_secs_f64();
    let capture = |fs: &FluidSolver, mine: &ParticleSet, trace: &mut Trace, now: f64| {
        trace.record_chaos(rank, now, ChaosKind::CheckpointWritten);
        cfpd_telemetry::count!("core.checkpoints_written");
        cfpd_flight::record(cfpd_flight::EventKind::Ckpt, rank as u32, 0, now.to_bits(), 0);
        RankCheckpoint {
            rank,
            velocity: fs.velocity.clone(),
            pressure: fs.pressure.clone(),
            sgs: fs.sgs.values.clone(),
            particles: mine.clone(),
        }
    };

    // Injected hetero stall micros already folded into the predictor's
    // demand observations (cumulative counter, differenced per step).
    let mut injected_seen = 0u64;
    for step in start_step..config.steps {
        // Segment stop: capture the pre-step state (exactly like a
        // checkpoint at this boundary) and end the run without
        // executing the step. Every rank reaches this identically — the
        // previous iteration's barrier synchronized the boundary.
        if window.stop_after == Some(step) {
            captured = Some(capture(&fs, &mine, &mut trace, t(epoch)));
            break;
        }
        // A checkpoint captures the state *before* this step runs (i.e.
        // at the step boundary the previous barrier just synchronized).
        if window.checkpoint_at == Some(step) {
            captured = Some(capture(&fs, &mine, &mut trace, t(epoch)));
        }
        // ---- fluid phases (assembly, solver1, solver2, sgs) ----------
        let t0 = t(epoch);
        let report = fs.step_reduced(pool, &mut |buf: &mut [f64]| {
            comm.allreduce_slice_f64(buf, ReduceOp::Sum);
        });
        // Attribute the sub-phase times measured inside the step.
        let mut cursor = t0;
        for (phase, dur) in [
            (Phase::Assembly, report.t_assembly),
            (Phase::Solver1, report.t_solver1),
            (Phase::Solver2, report.t_solver2),
            (Phase::Sgs, report.t_sgs),
        ] {
            trace.record(rank, phase, cursor, cursor + dur);
            pop_record(rank, phase, cursor, cursor + dur);
            cursor += dur;
        }
        cfpd_telemetry::count!("core.rank_steps");
        cfpd_flight::record(cfpd_flight::EventKind::Step, rank as u32, 0, step as u64, 0);
        log_fluid_step(&mut logical, step, rank, &report, &fs.velocity, &fs.pressure);

        // ---- particle phase -------------------------------------------
        let tp = t(epoch);
        step_particles(
            &mut mine,
            &locator,
            &fs.velocity,
            config.fluid.density,
            config.fluid.viscosity,
            Vec3::new(0.0, 0.0, -9.81),
            config.dt,
        );
        // Migration: ship particles that crossed into foreign subdomains.
        let outgoing = collect_migrants(&mut mine, &owner, rank);
        let (sent, received) = exchange_migrants(&comm, outgoing, &mut mine, None);
        let tp_end = t(epoch);
        trace.record(rank, Phase::Particles, tp, tp_end);
        pop_record(rank, Phase::Particles, tp, tp_end);
        logical.push(LogicalEvent::Exchange { step, rank, sent, received });
        let c = mine.census();
        logical.push(LogicalEvent::Particles {
            step,
            rank,
            active: c.active,
            deposited: c.deposited,
            escaped: c.escaped,
            lost: c.lost,
        });

        match &window.predictor {
            None => comm.barrier(),
            Some(p) => {
                // Act *before* blocking: shed the cores the model says
                // this rank won't need next step. A partially granted
                // pre-lend re-scores the forecast against the cores
                // actually kept, so feedback judges the model fairly.
                let owned = p.owned();
                let want = p.plan(rank);
                if want > 0 {
                    let got = window.cluster.pre_lend(rank, want);
                    if got != want {
                        p.note_allocation(rank, (owned - got) as f64);
                    }
                }
                let tb = t(epoch);
                comm.barrier();
                let waited = t(epoch) - tb;
                // Observe: this step's useful seconds. Injected hetero
                // stalls stand in for slower compute, so they count.
                let mut useful = (cursor - t0) + (tp_end - tp);
                if let Some(ph) = &window.profiled {
                    let inj = ph.injected_micros(rank);
                    useful += (inj - injected_seen) as f64 * 1e-6;
                    injected_seen = inj;
                }
                p.observe(rank, useful, owned as f64);
                p.feedback(rank, waited);
            }
        }
    }
    // `checkpoint_at == steps` means "capture the final state".
    if window.checkpoint_at == Some(config.steps) {
        captured = Some(capture(&fs, &mine, &mut trace, t(epoch)));
    }
    let total = t(epoch);

    finalize(comm, trace, mine.census(), total, logical, captured)
}

#[allow(clippy::too_many_arguments)]
fn coupled_rank(
    config: &SimulationConfig,
    airway: &cfpd_mesh::AirwayMesh,
    pool: &ThreadPool,
    comm: Comm,
    f: usize,
    p: usize,
    shared_epoch: Option<Instant>,
) -> RankOut {
    assert_eq!(comm.size(), f + p, "coupled mode rank count");
    let mesh = &airway.mesh;
    let world_rank = comm.rank();
    let is_fluid = world_rank < f;
    let group = comm.split(usize::from(!is_fluid), world_rank);
    let mut trace = Trace::new(comm.size());
    let mut logical = Vec::new();
    let epoch = shared_epoch.unwrap_or_else(std::time::Instant::now);
    let t = |epoch: std::time::Instant| epoch.elapsed().as_secs_f64();
    let census;

    if is_fluid {
        let (my_elems, _) = partition_elements(mesh, f, group.rank());
        let mut fs = FluidSolver::new_with_layout(
            mesh,
            my_elems,
            config.strategy,
            config.subdomains_per_rank,
            config.fluid,
            config.dt,
            airway.inlet_direction * config.inflow_speed,
            config.solver_tol,
            config.solver_max_iters,
            config.layout,
        );
        for step in 0..config.steps {
            let t0 = t(epoch);
            let report = fs.step_reduced(pool, &mut |buf: &mut [f64]| {
                group.allreduce_slice_f64(buf, ReduceOp::Sum);
            });
            let mut cursor = t0;
            for (phase, dur) in [
                (Phase::Assembly, report.t_assembly),
                (Phase::Solver1, report.t_solver1),
                (Phase::Solver2, report.t_solver2),
                (Phase::Sgs, report.t_sgs),
            ] {
                trace.record(world_rank, phase, cursor, cursor + dur);
                pop_record(world_rank, phase, cursor, cursor + dur);
                cursor += dur;
            }
            cfpd_telemetry::count!("core.rank_steps");
            cfpd_flight::record(cfpd_flight::EventKind::Step, world_rank as u32, 0, step as u64, 0);
            log_fluid_step(&mut logical, step, world_rank, &report, &fs.velocity, &fs.pressure);
            // Fluid group root ships the velocity field to every particle
            // rank (Fig. 3's "send velocity"), then continues.
            let tc = t(epoch);
            if group.rank() == 0 {
                for dest in f..f + p {
                    comm.send(dest, TAG_VELOCITY, fs.velocity.clone());
                }
            }
            let tc_end = t(epoch);
            trace.record(world_rank, Phase::MpiComm, tc, tc_end);
            pop_record(world_rank, Phase::MpiComm, tc, tc_end);
        }
        census = ParticleCensus::default();
    } else {
        // Particle code: owns all particles, partitioned among p ranks.
        let (_, owner) = partition_elements(mesh, p, group.rank());
        let locator = Locator::new(mesh);
        let mut all = ParticleSet::default();
        inject_at_inlet(
            &mut all,
            &locator,
            airway.inlet_center,
            airway.inlet_direction,
            airway.inlet_radius,
            config.inflow_speed,
            config.particle,
            config.num_particles,
            config.seed,
        );
        let mut mine = ParticleSet::default();
        for i in 0..all.len() {
            if owner[all.elem[i] as usize] as usize == group.rank() {
                push_particle(
                    &mut mine,
                    Migrant {
                        pos: all.pos[i],
                        vel: all.vel[i],
                        acc: all.acc[i],
                        elem: all.elem[i],
                        props: all.props[i],
                    },
                );
            }
        }
        for step in 0..config.steps {
            // Blocking receive of this step's velocity — the DLB lending
            // point for idle particle ranks.
            let tw = t(epoch);
            let velocity: Vec<Vec3> = comm.recv(0, TAG_VELOCITY);
            let tw_end = t(epoch);
            trace.record(world_rank, Phase::MpiComm, tw, tw_end);
            pop_record(world_rank, Phase::MpiComm, tw, tw_end);
            let tp = t(epoch);
            step_particles(
                &mut mine,
                &locator,
                &velocity,
                config.fluid.density,
                config.fluid.viscosity,
                Vec3::new(0.0, 0.0, -9.81),
                config.dt,
            );
            let outgoing = collect_migrants(&mut mine, &owner, group.rank());
            let (sent, received) = exchange_migrants(&group, outgoing, &mut mine, Some(f));
            let tp_end = t(epoch);
            trace.record(world_rank, Phase::Particles, tp, tp_end);
            pop_record(world_rank, Phase::Particles, tp, tp_end);
            cfpd_telemetry::count!("core.rank_steps");
            cfpd_flight::record(cfpd_flight::EventKind::Step, world_rank as u32, 0, step as u64, 0);
            logical.push(LogicalEvent::Exchange { step, rank: world_rank, sent, received });
            let c = mine.census();
            logical.push(LogicalEvent::Particles {
                step,
                rank: world_rank,
                active: c.active,
                deposited: c.deposited,
                escaped: c.escaped,
                lost: c.lost,
            });
        }
        census = mine.census();
    }
    let total = t(epoch);
    finalize(comm, trace, census, total, logical, None)
}

fn push_particle(set: &mut ParticleSet, m: Migrant) {
    set.pos.push(m.pos);
    set.vel.push(m.vel);
    set.acc.push(m.acc);
    set.elem.push(m.elem);
    set.state.push(ParticleState::Active);
    set.props.push(m.props);
}

/// Remove active particles that now sit in foreign subdomains; returns
/// them bucketed by destination part.
fn collect_migrants(
    set: &mut ParticleSet,
    owner: &[u32],
    my_part: usize,
) -> std::collections::HashMap<usize, Vec<Migrant>> {
    let mut out: std::collections::HashMap<usize, Vec<Migrant>> = Default::default();
    let mut i = 0;
    while i < set.len() {
        if set.state[i] == ParticleState::Active && owner[set.elem[i] as usize] as usize != my_part
        {
            let dest = owner[set.elem[i] as usize] as usize;
            out.entry(dest).or_default().push(Migrant {
                pos: set.pos[i],
                vel: set.vel[i],
                acc: set.acc[i],
                elem: set.elem[i],
                props: set.props[i],
            });
            // swap_remove on every SoA column.
            set.pos.swap_remove(i);
            set.vel.swap_remove(i);
            set.acc.swap_remove(i);
            set.elem.swap_remove(i);
            set.state.swap_remove(i);
            set.props.swap_remove(i);
        } else {
            i += 1;
        }
    }
    out
}

/// All-to-all exchange of migrants within `comm` (part index == rank in
/// `comm`; `_group_offset` documents the world offset in coupled mode).
/// Returns the non-empty `(dest, count)` sends in rank order and the
/// total particle count received.
fn exchange_migrants(
    comm: &Comm,
    mut outgoing: std::collections::HashMap<usize, Vec<Migrant>>,
    set: &mut ParticleSet,
    _group_offset: Option<usize>,
) -> (Vec<(usize, usize)>, usize) {
    let n = comm.size();
    let me = comm.rank();
    let mut sent = Vec::new();
    for dest in 0..n {
        if dest == me {
            continue;
        }
        let batch = outgoing.remove(&dest).unwrap_or_default();
        if !batch.is_empty() {
            sent.push((dest, batch.len()));
        }
        comm.send(dest, TAG_MIGRATE, batch);
    }
    let mut received = 0;
    for src in 0..n {
        if src == me {
            continue;
        }
        let batch: Vec<Migrant> = comm.recv(src, TAG_MIGRATE);
        received += batch.len();
        for m in batch {
            push_particle(set, m);
        }
    }
    (sent, received)
}

/// Gather traces, censuses, logical event logs and (when capture was
/// requested) per-rank checkpoints at world rank 0.
fn finalize(
    comm: Comm,
    trace: Trace,
    census: ParticleCensus,
    total: f64,
    logical: Vec<LogicalEvent>,
    captured: Option<RankCheckpoint>,
) -> RankOut {
    let events: Vec<(usize, u8, f64, f64)> = trace
        .events
        .iter()
        .map(|e| {
            let pid = Phase::ALL.iter().position(|&p| p == e.phase).unwrap() as u8;
            (e.rank, pid, e.t_start, e.t_end)
        })
        .collect();
    let chaos_events: Vec<(usize, f64)> =
        trace.chaos.iter().map(|c| (c.rank, c.t)).collect();
    let gathered = comm.gather(0, events);
    let chaos_gathered = comm.gather(0, chaos_events);
    let censuses = comm.gather(0, (census.active, census.deposited, census.escaped, census.lost));
    let totals = comm.gather(0, total);
    let logs = comm.gather(0, logical);
    let cps = comm.gather(0, captured);
    if comm.rank() == 0 {
        let mut merged = Trace::new(comm.size());
        for ev in gathered.unwrap().into_iter().flatten() {
            merged.record(ev.0, Phase::ALL[ev.1 as usize], ev.2, ev.3);
        }
        // The only rank-local chaos markers are checkpoint captures;
        // fault/timeout markers come from the ChaosHooks log upstream.
        for (r, t) in chaos_gathered.unwrap().into_iter().flatten() {
            merged.record_chaos(r, t, cfpd_trace::ChaosKind::CheckpointWritten);
        }
        let mut c = ParticleCensus::default();
        for (a, d, e, l) in censuses.unwrap() {
            c.active += a;
            c.deposited += d;
            c.escaped += e;
            c.lost += l;
        }
        let t = totals.unwrap().into_iter().fold(0.0f64, f64::max);
        let mut log: Vec<LogicalEvent> = logs.unwrap().into_iter().flatten().collect();
        // Stable sort: per-rank recording order is preserved within a
        // (step, rank) group.
        log.sort_by_key(|e| (e.step(), e.rank()));
        let mut ranks: Vec<RankCheckpoint> =
            cps.unwrap().into_iter().flatten().collect();
        ranks.sort_by_key(|rc| rc.rank);
        let checkpoint = if ranks.len() == comm.size() { Some(ranks) } else { None };
        RankOut { trace: merged, census: c, total: t, logical: log, checkpoint }
    } else {
        RankOut {
            trace: Trace::new(0),
            census: ParticleCensus::default(),
            total: 0.0,
            logical: Vec::new(),
            checkpoint: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::AirwaySpec;

    fn tiny_config() -> SimulationConfig {
        SimulationConfig {
            airway: AirwaySpec {
                generations: 1,
                ..AirwaySpec::small()
            },
            num_particles: 60,
            steps: 2,
            solver_tol: 1e-5,
            solver_max_iters: 300,
            ..Default::default()
        }
    }

    #[test]
    fn sync_simulation_runs_on_two_ranks() {
        let cfg = tiny_config();
        let r = run_simulation(&cfg, 2, 1, false);
        assert!(r.total_time > 0.0);
        // All phases traced on both ranks.
        for phase in [Phase::Assembly, Phase::Solver1, Phase::Solver2, Phase::Sgs] {
            let t = r.trace.per_rank_time(phase);
            assert_eq!(t.len(), 2);
            assert!(t.iter().all(|&x| x > 0.0), "{phase:?}: {t:?}");
        }
        // Particles conserved.
        let c = r.census;
        assert!(c.active + c.deposited + c.escaped + c.lost > 0);
        assert_eq!(c.lost, 0);
        assert!(!r.breakdown.is_empty());
    }

    #[test]
    fn particle_count_conserved_across_migration() {
        let cfg = tiny_config();
        let serial = run_simulation(&cfg, 1, 1, false);
        let multi = run_simulation(&cfg, 3, 1, false);
        let total = |c: &ParticleCensus| c.active + c.deposited + c.escaped + c.lost;
        assert_eq!(total(&serial.census), total(&multi.census));
    }

    #[test]
    fn coupled_mode_runs() {
        let mut cfg = tiny_config();
        cfg.mode = ExecutionMode::Coupled { fluid: 2, particles: 1 };
        let r = run_simulation(&cfg, 0, 1, false);
        // Fluid phases on fluid ranks, particle phase on particle rank.
        let asm = r.trace.per_rank_time(Phase::Assembly);
        assert!(asm[0] > 0.0 && asm[1] > 0.0 && asm[2] == 0.0);
        let par = r.trace.per_rank_time(Phase::Particles);
        assert!(par[2] > 0.0 && par[0] == 0.0);
        let c = r.census;
        assert!(c.active + c.deposited + c.escaped > 0);
    }

    #[test]
    fn checkpoint_restart_resumes_bit_identically() {
        let cfg = tiny_config();
        let full = run_simulation(&cfg, 2, 1, false);
        let part1 = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { checkpoint_at: Some(1), ..Default::default() },
        );
        let cp = part1.checkpoint.expect("checkpoint captured");
        assert_eq!(cp.next_step, 1);
        let cp = Checkpoint::from_text(&cp.to_text()).expect("round-trip");
        let part2 = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { restore: Some(Arc::new(cp)), ..Default::default() },
        );
        // Stitched event log == uninterrupted run's log, bit for bit.
        let mut stitched: Vec<LogicalEvent> =
            part1.logical.iter().filter(|e| e.step() < 1).cloned().collect();
        stitched.extend(part2.logical.iter().cloned());
        assert_eq!(stitched, full.logical);
        assert_eq!(part2.census, full.census);
    }

    #[test]
    fn stop_after_segments_stitch_bit_identically() {
        let cfg = SimulationConfig { steps: 3, ..tiny_config() };
        let full = run_simulation(&cfg, 2, 1, false);

        // Run the same simulation as a chain of single-step segments,
        // each stopping at the next boundary and handing its checkpoint
        // (through the text codec) to the next segment.
        let mut stitched: Vec<LogicalEvent> = Vec::new();
        let mut restore: Option<Arc<Checkpoint>> = None;
        let mut last = None;
        for stop in [Some(1), Some(2), None] {
            let seg = run_simulation_opts(
                &cfg,
                2,
                1,
                &RunOptions { restore: restore.take(), stop_after: stop, ..Default::default() },
            );
            stitched.extend(seg.logical.iter().cloned());
            if let Some(cp) = &seg.checkpoint {
                assert_eq!(cp.next_step, stop.unwrap());
                let cp = Checkpoint::from_text(&cp.to_text()).expect("round-trip");
                restore = Some(Arc::new(cp));
            } else {
                assert_eq!(stop, None, "every stopped segment must capture");
            }
            last = Some(seg);
        }
        // Segments are contiguous step ranges, each internally sorted by
        // (step, rank), so plain concatenation is the full sorted log.
        assert_eq!(stitched, full.logical);
        assert_eq!(last.unwrap().census, full.census);
    }

    #[test]
    fn stop_at_or_past_the_end_is_a_plain_full_run() {
        let cfg = tiny_config();
        let full = run_simulation(&cfg, 2, 1, false);
        let r = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { stop_after: Some(cfg.steps), ..Default::default() },
        );
        assert!(r.checkpoint.is_none());
        assert_eq!(r.logical, full.logical);
        assert_eq!(r.census, full.census);
    }

    #[test]
    fn benign_chaos_leaves_the_logical_trace_bit_identical() {
        let cfg = tiny_config();
        let clean = run_simulation(&cfg, 2, 1, false);
        let chaotic = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { fault: Some(FaultConfig::benign(7)), ..Default::default() },
        );
        assert!(!chaotic.faults.is_empty(), "benign plan injected nothing");
        assert_eq!(clean.logical, chaotic.logical);
        assert_eq!(clean.census, chaotic.census);
        // The wall-clock trace carries the fault markers.
        assert!(!chaotic.trace.chaos.is_empty());
    }

    #[test]
    fn storm_chaos_yields_a_deadlock_report_not_a_hang() {
        let cfg = tiny_config();
        let r = run_simulation_fallible(
            &cfg,
            2,
            1,
            &RunOptions { fault: Some(cfpd_simmpi::FaultConfig::storm(3)), ..Default::default() },
        );
        let fails = r.err().expect("storm run must fail");
        assert!(
            fails.iter().any(|(_, m)| m.contains("DEADLOCK") || m.contains("deadlock")),
            "no deadlock diagnostics in {fails:?}"
        );
    }

    #[test]
    fn dlb_enabled_run_produces_stats() {
        let cfg = tiny_config();
        let r = run_simulation(&cfg, 2, 2, true);
        let stats = r.dlb.expect("dlb stats");
        // With blocking allreduces every step, lends must have happened.
        assert!(stats.lends > 0, "{stats:?}");
        assert_eq!(stats.lends, stats.reclaims);
    }

    #[test]
    fn traced_run_captures_workers_and_messages() {
        let cfg = tiny_config();
        let r = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { trace: true, ..Default::default() },
        );
        let tr = &r.trace;
        assert!(!tr.workers.is_empty(), "traced run must record worker events");
        assert!(!tr.messages.is_empty(), "collectives ride on p2p sends");
        // Worker-0 timelines exist on every rank and carry MPI waits
        // (every step ends in a blocking allreduce).
        for rank in 0..2 {
            assert!(tr.workers.iter().any(|w| w.rank == rank && w.worker == 0));
        }
        assert!(tr.workers.iter().any(|w| w.state == WorkerState::MpiWait));
        // All records land inside [0, total_time] and never overlap
        // within one (rank, worker) lane.
        let wall = tr.total_time();
        let mut lanes = tr.workers.clone();
        lanes.sort_by(|a, b| {
            (a.rank, a.worker)
                .cmp(&(b.rank, b.worker))
                .then(a.t_start.total_cmp(&b.t_start))
        });
        for pair in lanes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(a.t_start >= 0.0 && a.t_end <= wall + 1e-9, "{a:?}");
            if (a.rank, a.worker) == (b.rank, b.worker) {
                assert!(a.t_end <= b.t_start + 1e-9, "overlap: {a:?} vs {b:?}");
            }
        }
        // Message records are causally sane and in-range.
        for m in &tr.messages {
            assert!(m.src < 2 && m.dst < 2);
            assert!(m.t_send <= m.t_recv + 1e-9, "{m:?}");
        }
    }

    #[test]
    fn traced_dlb_run_records_dlb_marks() {
        let cfg = tiny_config();
        let r = run_simulation_opts(
            &cfg,
            2,
            2,
            &RunOptions { trace: true, dlb: true, ..Default::default() },
        );
        assert!(!r.trace.dlb.is_empty(), "DLB run must surface lend/reclaim marks");
        use cfpd_trace::DlbMarkKind;
        assert!(r.trace.dlb.iter().any(|m| m.kind == DlbMarkKind::Lend));
        assert!(r.trace.dlb.iter().any(|m| m.kind == DlbMarkKind::Reclaim));
    }

    #[test]
    fn hetero_profile_leaves_the_logical_trace_bit_identical() {
        let cfg = tiny_config();
        let clean = run_simulation(&cfg, 2, 1, false);
        let profile = cfpd_hetero::profile_by_name("mn4_thunder", 11).unwrap();
        let skewed = run_simulation_opts(
            &cfg,
            2,
            1,
            &RunOptions { hetero: Some(profile), ..Default::default() },
        );
        // The profile only stretches time: what was computed is
        // untouched, so both golden documents stay byte-identical.
        assert_eq!(clean.logical, skewed.logical);
        assert_eq!(clean.census, skewed.census);
    }

    #[test]
    fn predictive_policy_pre_lends_before_blocking() {
        let cfg = tiny_config();
        let profile = cfpd_hetero::profile_by_name("mn4_thunder", 11).unwrap();
        let r = run_simulation_opts(
            &cfg,
            2,
            2,
            &RunOptions {
                dlb: true,
                trace: true,
                policy: DlbPolicy::Predictive,
                hetero: Some(profile),
                ..Default::default()
            },
        );
        let stats = r.dlb.expect("dlb stats");
        assert!(stats.pre_lends > 0, "calibrated fast rank must pre-lend: {stats:?}");
        let marks: Vec<_> =
            r.trace.dlb.iter().filter(|m| m.kind == DlbMarkKind::PreLend).collect();
        assert!(!marks.is_empty(), "pre-lends must surface as trace marks");
        // Acting before blocking: each rank's first pre-lend mark must
        // be followed by MPI-wait activity (the barrier it fronts).
        // Compare against wait *ends*: carve_states coalesces adjacent
        // waits and drops zero-width ones, so a wait's recorded start
        // may legitimately precede the mark.
        for rank in 0..2 {
            let Some(first) = marks.iter().filter(|m| m.rank == rank).map(|m| m.t).next()
            else {
                continue;
            };
            assert!(
                r.trace
                    .workers
                    .iter()
                    .any(|w| w.rank == rank
                        && w.state == WorkerState::MpiWait
                        && w.t_end >= first),
                "no blocking call after first pre-lend at t={first} on rank {rank}"
            );
        }
        // The run still completes with conservation intact: every lend
        // and pre-lend was reclaimed or returned.
        assert_eq!(stats.lends, stats.reclaims);
    }

    #[test]
    fn untraced_run_stays_clean() {
        let cfg = tiny_config();
        let r = run_simulation(&cfg, 2, 1, false);
        assert!(r.trace.workers.is_empty());
        assert!(r.trace.messages.is_empty());
        assert!(r.trace.dlb.is_empty());
    }
}
