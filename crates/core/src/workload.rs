//! Workload measurement for the virtual-platform model: run the *real*
//! partitioner, mesh and particle tracking, and extract per-rank work
//! profiles (in Tet4-assembly-equivalent work units) for each phase of
//! the simulation. The DES in `cfpd-perfmodel` turns these into cluster
//! time.
//!
//! Calibration split (DESIGN.md §2): the *relative phase costs* (the
//! "% Time" column of Table 1) are calibrated against the paper's
//! measured profile — standard practice for performance models — while
//! the *load-balance values* (the Lₙ column) and all the figure shapes
//! are emergent from the real partitions and the real particle
//! distribution dynamics.

use cfpd_mesh::{AirwayMesh, Vec3};
use cfpd_particles::{inject_at_inlet, particles_per_owner, step_particles, Locator, ParticleSet};
use cfpd_partition::{partition_kway, Graph, Partition};
use cfpd_solver::FluidProps;

/// Relative phase cost constants, expressed as total-work shares
/// relative to the assembly phase, taken from Table 1 of the paper
/// (40.84 / 16.13 / 4.20 / 21.43 / 3.37 % for assembly / solver1 /
/// solver2 / SGS / particles at the 4·10⁵-particle injection).
#[derive(Debug, Clone, Copy)]
pub struct PhaseCostModel {
    pub solver1_over_assembly: f64,
    pub solver2_over_assembly: f64,
    pub sgs_over_assembly: f64,
    /// Max-rank particle-phase time over max-rank assembly time in the
    /// reference configuration (Table 1: 3.37 % / 40.84 %). Because the
    /// injection concentrates virtually all particles on one rank, the
    /// max-rank particle time ≈ the total particle work — so this
    /// ratio, the reference rank count and the reference injection
    /// count together pin down the per-particle cost.
    pub particles_over_assembly_at_ref: f64,
    /// Reference injection count the ratio above corresponds to
    /// (the paper's 4·10⁵, scaled per DESIGN.md).
    pub reference_particles: usize,
    /// Rank count of the reference profile (the paper's Table 1 uses 96).
    pub reference_ranks: usize,
    /// Strength κ of the indirect-access cost heterogeneity: the
    /// evaluated per-element cost is
    /// `type_weight × max(0.1, 1 + κ(degree/mean_degree − 1))`,
    /// where degree is the element's shared-node adjacency degree.
    /// Gather/scatter cost in a real FEM code grows with connectivity
    /// irregularity (junction and boundary-layer elements are far more
    /// expensive per element than interior tets). κ = 1.5 reproduces
    /// the paper's measured assembly L₉₆ = 0.66 (ours: 0.67); the
    /// *scale-dependence* of the imbalance — better balance with fewer,
    /// larger domains, which is what makes the hybrid runs win in
    /// Fig. 6 — is then a prediction, not an input.
    pub irregularity_kappa: f64,
}

impl Default for PhaseCostModel {
    fn default() -> Self {
        PhaseCostModel {
            solver1_over_assembly: 16.13 / 40.84,
            solver2_over_assembly: 4.20 / 40.84,
            sgs_over_assembly: 21.43 / 40.84,
            particles_over_assembly_at_ref: 3.37 / 40.84,
            reference_particles: 4000,
            reference_ranks: 96,
            irregularity_kappa: 1.5,
        }
    }
}

/// Per-rank, per-phase work profile of one simulation configuration.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    pub num_ranks: usize,
    /// Assembly work per rank [tet-equivalents].
    pub assembly: Vec<f64>,
    pub solver1: Vec<f64>,
    pub solver2: Vec<f64>,
    pub sgs: Vec<f64>,
    /// Particle work per rank, per recorded step (the distribution
    /// drifts deeper into the airway as the simulation advances).
    pub particles_per_step: Vec<Vec<f64>>,
}

impl WorkloadProfile {
    /// Paper's Lₙ of the assembly profile.
    pub fn assembly_balance(&self) -> f64 {
        cfpd_trace::load_balance(&self.assembly)
    }

    /// Lₙ of the particle profile at step `s`.
    pub fn particle_balance(&self, s: usize) -> f64 {
        cfpd_trace::load_balance(&self.particles_per_step[s])
    }
}

/// Partition the mesh of `airway` into `num_ranks` cost-weighted parts
/// and derive all per-rank phase work vectors. `num_particles` particles
/// are injected and advected through a developed flow proxy for
/// `steps` recorded steps.
pub fn measure_workload(
    airway: &AirwayMesh,
    num_ranks: usize,
    num_particles: usize,
    steps: usize,
    cost: PhaseCostModel,
    seed: u64,
) -> WorkloadProfile {
    let mesh = &airway.mesh;
    let n2e = mesh.node_to_elements();
    let adj = mesh.element_adjacency(&n2e);
    let weights = mesh.cost_weights();
    // Partition on element *counts* (unit weights) — what the paper's
    // Metis decomposition balances — while the actual assembly cost per
    // element varies with its type (prism ≫ tet). The mismatch is the
    // organic source of the assembly/SGS imbalance of Table 1 (L ≈ 0.6):
    // boundary-layer-rich subdomains cost ~3× more per element.
    let g = Graph::from_csr_unit(&adj);
    let part: Partition = partition_kway(&g, num_ranks, 4);

    // Evaluated cost per element: quadrature weight × indirect-access
    // irregularity (see PhaseCostModel::irregularity_kappa).
    let mean_deg = adj.targets.len() as f64 / mesh.num_elements().max(1) as f64;
    let eval_weights: Vec<f64> = (0..mesh.num_elements())
        .map(|e| {
            let deg = adj.row(e).len() as f64;
            weights[e] * (1.0 + cost.irregularity_kappa * (deg / mean_deg - 1.0)).max(0.1)
        })
        .collect();

    // ---- assembly & SGS: element-weight sums per rank ----------------
    let mut assembly = vec![0.0f64; num_ranks];
    for (e, &p) in part.parts.iter().enumerate() {
        assembly[p as usize] += eval_weights[e];
    }
    let assembly_total: f64 = assembly.iter().sum();
    let sgs: Vec<f64> = assembly.iter().map(|w| w * cost.sgs_over_assembly).collect();

    // ---- solvers: per-rank row counts. Each node is owned by exactly
    // one rank (lowest part touching it); interface (halo) nodes add
    // half their cost again on the non-owning side — giving the mild
    // solver imbalance of Table 1 (L ≈ 0.9, better balanced than the
    // element-cost-driven assembly).
    let mut touched = vec![std::collections::HashSet::new(); num_ranks];
    let mut node_owner = vec![u32::MAX; mesh.num_nodes()];
    for (e, &p) in part.parts.iter().enumerate() {
        for &v in mesh.elem_nodes(e) {
            touched[p as usize].insert(v);
            node_owner[v as usize] = node_owner[v as usize].min(p);
        }
    }
    let solver_counts: Vec<f64> = touched
        .iter()
        .enumerate()
        .map(|(r, s)| {
            let owned = s.iter().filter(|&&v| node_owner[v as usize] as usize == r).count();
            let halo = s.len() - owned;
            owned as f64 + 0.5 * halo as f64
        })
        .collect();
    let solver_total: f64 = solver_counts.iter().sum();
    let solver1: Vec<f64> = solver_counts
        .iter()
        .map(|&c| cost.solver1_over_assembly * assembly_total * c / solver_total)
        .collect();
    let solver2: Vec<f64> = solver_counts
        .iter()
        .map(|&c| cost.solver2_over_assembly * assembly_total * c / solver_total)
        .collect();

    // ---- particles: real injection + advection through a developed
    // flow proxy (axial plug flow toward the distal outlets; the
    // geometry's branching does the spreading) -------------------------
    // Per-particle cost pinned against the *per-rank* assembly work of
    // the reference configuration (see PhaseCostModel docs): with all
    // particles on one rank, max-rank particle time / max-rank assembly
    // time comes out at the calibrated Table 1 ratio.
    let per_particle_work = cost.particles_over_assembly_at_ref
        * (assembly_total / cost.reference_ranks as f64)
        / cost.reference_particles as f64;
    let locator = Locator::new(mesh);
    let mut set = ParticleSet::default();
    inject_at_inlet(
        &mut set,
        &locator,
        airway.inlet_center,
        airway.inlet_direction,
        airway.inlet_radius,
        1.5,
        cfpd_particles::ParticleProps::default(),
        num_particles.min(20_000), // cap the tracked sample; scale after
        seed,
    );
    let sample = set.len().max(1);
    let scale = num_particles as f64 / sample as f64;

    // Flow proxy: strong downward plug flow plus a mild funnel toward
    // the centerline, advected with a coarse dt so the sample traverses
    // generations within the recorded steps.
    let flow: Vec<Vec3> = mesh
        .coords
        .iter()
        .map(|p| Vec3::new(-p.x * 4.0, -p.y * 4.0, 0.0) + Vec3::new(0.0, 0.0, -3.0))
        .collect();
    let props = FluidProps::default();
    let mut particles_per_step = Vec::with_capacity(steps);
    for _s in 0..steps {
        let counts = particles_per_owner(&set, &part.parts, num_ranks);
        particles_per_step.push(
            counts
                .iter()
                .map(|&c| c as f64 * scale * per_particle_work)
                .collect(),
        );
        step_particles(
            &mut set,
            &locator,
            &flow,
            props.density,
            props.viscosity,
            Vec3::new(0.0, 0.0, -9.81),
            2e-3, // coarse advection step (see doc comment)
        );
    }

    WorkloadProfile { num_ranks, assembly, solver1, solver2, sgs, particles_per_step }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn demo_profile(ranks: usize) -> WorkloadProfile {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        measure_workload(&am, ranks, 2000, 4, PhaseCostModel::default(), 7)
    }

    #[test]
    fn all_phases_have_positive_totals() {
        let w = demo_profile(8);
        assert!(w.assembly.iter().sum::<f64>() > 0.0);
        assert!(w.solver1.iter().sum::<f64>() > 0.0);
        assert!(w.solver2.iter().sum::<f64>() > 0.0);
        assert!(w.sgs.iter().sum::<f64>() > 0.0);
        assert!(w.particles_per_step[0].iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn phase_ratios_match_calibration() {
        let w = demo_profile(8);
        let a: f64 = w.assembly.iter().sum();
        let s1: f64 = w.solver1.iter().sum();
        let s2: f64 = w.solver2.iter().sum();
        let sg: f64 = w.sgs.iter().sum();
        assert!((s1 / a - 16.13 / 40.84).abs() < 1e-9);
        assert!((s2 / a - 4.20 / 40.84).abs() < 1e-9);
        assert!((sg / a - 21.43 / 40.84).abs() < 1e-9);
    }

    #[test]
    fn particle_profile_extremely_imbalanced_at_injection() {
        // The paper's Table 1 particle row: L ~ 0.02 at injection.
        let w = demo_profile(16);
        let lb = w.particle_balance(0);
        assert!(lb < 0.3, "injection particle balance should be terrible: {lb}");
        // Assembly is far better balanced.
        assert!(w.assembly_balance() > 0.7, "{}", w.assembly_balance());
    }

    #[test]
    fn particles_spread_over_time() {
        let w = demo_profile(16);
        let first = w.particle_balance(0);
        let last = w.particle_balance(w.particles_per_step.len() - 1);
        assert!(
            last >= first,
            "advection should not concentrate particles further: {first} -> {last}"
        );
    }

    #[test]
    fn particle_work_scales_with_count() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let small = measure_workload(&am, 4, 1000, 2, PhaseCostModel::default(), 7);
        let large = measure_workload(&am, 4, 17_500, 2, PhaseCostModel::default(), 7);
        let ts: f64 = small.particles_per_step[0].iter().sum();
        let tl: f64 = large.particles_per_step[0].iter().sum();
        let ratio = tl / ts;
        assert!(
            (ratio - 17.5).abs() < 2.0,
            "particle work should scale ~17.5x (paper's 4e5 -> 7e6): {ratio}"
        );
    }
}
