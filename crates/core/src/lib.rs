//! # cfpd-core — the CFPD simulation orchestrator (Alya substitute)
//!
//! Drives the full respiratory-system simulation of the paper: the
//! fractional-step incompressible flow solve ([`fluid`], phases
//! assembly / Solver1 / Solver2 / SGS) and the Lagrangian particle
//! transport, across a virtual MPI cluster ([`simulation`]) in both
//! execution modes of Fig. 3 (synchronous and coupled), with any of the
//! three assembly strategies and with or without DLB.
//!
//! [`workload`] extracts per-rank work profiles from real executions
//! for the virtual-platform model (`cfpd-perfmodel`) that regenerates
//! the paper's figures at 96/192-rank scale.

pub mod checkpoint;
pub mod config;
pub mod deposition;
pub mod flowfield;
pub mod fluid;
pub mod golden;
pub mod halo;
pub mod scenario;
pub mod simulation;
pub mod workload;

pub use checkpoint::{config_digest, Checkpoint, RankCheckpoint};
pub use cfpd_solver::LayoutPlan;
pub use config::{ExecutionMode, SimulationConfig};
pub use flowfield::potential_flow;
pub use fluid::{BoundaryConditions, FluidSolver, FluidStepReport};
pub use golden::{
    golden_config, golden_trace, golden_trace_split, golden_trace_traced, render_golden_doc,
    render_golden_events, render_golden_header, render_golden_summary,
};
pub use scenario::{resolve_layout, run_scenario, Scenario, ScenarioOutcome};
pub use simulation::{
    run_simulation, run_simulation_fallible, run_simulation_opts, LogicalEvent, RunOptions,
    SimulationResult,
};
pub use deposition::{deposition_map, DepositionMap, GenerationRow};
pub use halo::{assemble_and_solve_poisson, dist_cg, DistMatrix, HaloMap};
pub use workload::{measure_workload, PhaseCostModel, WorkloadProfile};

/// Convergence report of a distributed solve (mirrors
/// [`cfpd_solver::SolveStats`], kept separate to avoid exposing the
/// solver crate's struct in this crate's public API surface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSolveStats {
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}
