//! Potential-flow field through the airway tree: the inviscid
//! core-flow approximation classically used for fast aerosol-deposition
//! estimates. Solves `∇²φ = 0` with φ fixed at inlet and outlets
//! (natural zero-flux walls), then projects `u = −∇φ` to the nodes and
//! scales to the requested inlet speed.
//!
//! Compared to the time-stepped Navier-Stokes field of
//! [`crate::fluid::FluidSolver`], this field is weakly divergence-free
//! and exactly non-penetrating at walls — the properties that matter
//! for Lagrangian transport — at the cost of ignoring viscosity
//! (no boundary layers, no recirculation). The deposition example uses
//! it for exactly that reason (DESIGN.md §7).

use cfpd_mesh::{AirwayMesh, Vec3};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{cg, AssemblyPlan, AssemblyStrategy, CsrMatrix, FluidProps, RefElement};

/// Solve the potential flow and return the nodal velocity field with
/// mean inlet speed `inlet_speed` [m/s] (flow directed from inlet to
/// outlets).
pub fn potential_flow(airway: &AirwayMesh, inlet_speed: f64) -> Vec<Vec3> {
    let mesh = &airway.mesh;
    let n = mesh.num_nodes();
    let n2e = mesh.node_to_elements();
    let mut lap = CsrMatrix::from_mesh(mesh, &n2e);
    let mut rhs = vec![vec![0.0; n]];
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let plan = AssemblyPlan::new(mesh, elems, AssemblyStrategy::Serial, 1);
    let pool = ThreadPool::new(1);
    let refs = RefElement::all();
    // Assemble the Laplacian (the Poisson kernel with zero velocity).
    let zero_vel = vec![Vec3::ZERO; n];
    cfpd_solver::assemble_poisson(
        &pool,
        &refs,
        mesh,
        &plan,
        &zero_vel,
        FluidProps::default(),
        1.0,
        &mut lap,
        &mut rhs,
    );
    // Dirichlet: φ = 1 at the inlet, φ = 0 at outlets; walls natural.
    let bc = crate::fluid::BoundaryConditions::from_mesh(mesh);
    for &v in &bc.inlet_nodes {
        lap.set_dirichlet_row(v as usize);
        rhs[0][v as usize] = 1.0;
    }
    for &v in &bc.outlet_nodes {
        lap.set_dirichlet_row(v as usize);
        rhs[0][v as usize] = 0.0;
    }
    let mut phi = vec![0.0; n];
    let stats = cg(&lap, &rhs[0], &mut phi, 1e-10, 10 * n);
    assert!(stats.converged, "potential solve failed: {stats:?}");

    // Nodal velocity u = −∇φ via lumped L2 projection.
    let mut grad = vec![Vec3::ZERO; n];
    let mut lumped = vec![0.0f64; n];
    let mut scratch = cfpd_solver::ElementScratch::default();
    for e in 0..mesh.num_elements() {
        let (kind, nn) = scratch.load(mesh, &zero_vel, e);
        let re = &refs[RefElement::index_of(kind)];
        let nodes = mesh.elem_nodes(e);
        for qp in &re.qps {
            if let Some(m) = cfpd_solver::map_qp(qp, &scratch.coords, nn) {
                let mut gp = Vec3::ZERO;
                for k in 0..nn {
                    gp += Vec3::new(m.grad[k][0], m.grad[k][1], m.grad[k][2])
                        * phi[nodes[k] as usize];
                }
                for k in 0..nn {
                    grad[nodes[k] as usize] += gp * (m.n[k] * m.dvol);
                    lumped[nodes[k] as usize] += m.n[k] * m.dvol;
                }
            }
        }
    }
    let mut u: Vec<Vec3> = grad
        .iter()
        .zip(&lumped)
        .map(|(g, &ml)| if ml > 0.0 { -*g / ml } else { Vec3::ZERO })
        .collect();

    // Scale so the mean inlet-node speed equals `inlet_speed`.
    let mean_inlet: f64 = bc
        .inlet_nodes
        .iter()
        .map(|&v| u[v as usize].norm())
        .sum::<f64>()
        / bc.inlet_nodes.len().max(1) as f64;
    if mean_inlet > 1e-30 {
        let s = inlet_speed / mean_inlet;
        for v in &mut u {
            *v = *v * s;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    #[test]
    fn potential_flow_fills_the_whole_tree() {
        let airway = generate_airway(&AirwaySpec::small()).unwrap();
        let u = potential_flow(&airway, 2.0);
        let bc = crate::fluid::BoundaryConditions::from_mesh(&airway.mesh);
        // Inlet speed scaled as requested.
        let mean_inlet: f64 = bc.inlet_nodes.iter().map(|&v| u[v as usize].norm()).sum::<f64>()
            / bc.inlet_nodes.len() as f64;
        assert!((mean_inlet - 2.0).abs() < 1e-9);
        // Outlets carry comparable flux (inviscid tree: outlet speeds are
        // the same order as the inlet, not 10x smaller).
        let mean_outlet: f64 = bc.outlet_nodes.iter().map(|&v| u[v as usize].norm()).sum::<f64>()
            / bc.outlet_nodes.len() as f64;
        assert!(
            mean_outlet > 0.3 * mean_inlet,
            "outlet speed {mean_outlet} vs inlet {mean_inlet}"
        );
        // Flow points inward at the inlet (same direction as inhalation).
        let dir = airway.inlet_direction;
        let aligned = bc
            .inlet_nodes
            .iter()
            .filter(|&&v| u[v as usize].dot(dir) > 0.0)
            .count();
        assert!(aligned * 10 > bc.inlet_nodes.len() * 9, "inlet flow misdirected");
    }

    #[test]
    fn interior_speed_is_order_of_inlet_speed() {
        let airway = generate_airway(&AirwaySpec::small()).unwrap();
        let u = potential_flow(&airway, 1.0);
        let mean: f64 = u.iter().map(|v| v.norm()).sum::<f64>() / u.len() as f64;
        assert!(
            mean > 0.2,
            "bulk flow should be O(inlet speed), got mean {mean}"
        );
    }
}
