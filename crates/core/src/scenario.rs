//! The library-level scenario entry point shared by the `cfpd` CLI and
//! the campaign engine (`cfpd-campaign`).
//!
//! Historically `bin/cfpd.rs` was the only place that knew how to turn
//! "a configuration plus run shape" into "a golden document": the
//! campaign engine needs exactly that path, so it lives here now and
//! the binary calls it. One code path means a campaign cell and a
//! hand-rolled `cfpd golden` invocation of the same configuration are
//! *the same run* — the foundation of the differential golden matrix.

use crate::config::SimulationConfig;
use crate::golden::render_golden_doc;
use crate::simulation::{run_simulation_opts, RunOptions, SimulationResult};
use cfpd_solver::LayoutPlan;
use cfpd_testkit::digest::digest_bytes;

/// A fully-resolved run request: configuration plus run shape. This is
/// the unit the campaign expander materializes per matrix cell and the
/// unit `cfpd golden` builds from its flags.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Physics + numerics configuration (mode, layout, seed, ...).
    pub config: SimulationConfig,
    /// Base rank count (synchronous mode; coupled mode derives
    /// `fluid + particles` from the config instead).
    pub ranks: usize,
    /// OpenMP-style workers per rank.
    pub threads: usize,
    /// Everything else: DLB, chaos, tracing, checkpointing.
    pub opts: RunOptions,
}

impl Scenario {
    /// The deterministic default shape: `ranks` ranks, one thread each,
    /// no DLB/chaos/trace — the golden bit-identity contract.
    pub fn deterministic(config: SimulationConfig, ranks: usize) -> Scenario {
        Scenario { config, ranks, threads: 1, opts: RunOptions::default() }
    }
}

/// What a scenario run produced: the canonical golden document, its
/// FNV-1a digest (the "physics digest" campaign reports pin), and the
/// full simulation result for anyone who needs traces or DLB stats.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Canonical golden document (see [`crate::golden`]).
    pub doc: String,
    /// `digest_bytes` of `doc` — byte-equality of documents collapses
    /// to equality of this one `u64`.
    pub digest: u64,
    /// The underlying run.
    pub result: SimulationResult,
}

/// Run a scenario and render its golden document. This is the single
/// shared code path behind `cfpd golden`, `cfpd campaign run` and the
/// differential matrix tests.
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    let result = run_simulation_opts(&s.config, s.ranks, s.threads, &s.opts);
    let doc = render_golden_doc(&s.config, s.ranks, &result.logical, &result.census);
    let digest = digest_bytes(doc.as_bytes());
    ScenarioOutcome { doc, digest, result }
}

/// Resolve the effective [`LayoutPlan`] from an explicit flag value and
/// the `CFPD_LAYOUT` environment variable, **flag beats env**. This is
/// the one place the precedence is decided; `cfpd golden --layout` and
/// the campaign DSL's `layout =` key both go through it.
///
/// `flag` is the raw `--layout` value: `"opt"`, `"opt-matfree"`,
/// `"default"`, or absent.
pub fn resolve_layout(flag: Option<&str>) -> Result<LayoutPlan, String> {
    match flag {
        Some("opt") => Ok(LayoutPlan::optimized()),
        Some("opt-matfree") => Ok(LayoutPlan { matrix_free: true, ..LayoutPlan::optimized() }),
        Some("default") => Ok(LayoutPlan::disabled()),
        Some(other) => {
            Err(format!("unknown layout {other:?} (expected: default, opt, opt-matfree)"))
        }
        None => Ok(LayoutPlan::from_env()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{golden_config, golden_trace};

    #[test]
    fn run_scenario_matches_golden_trace() {
        let mut cfg = golden_config();
        cfg.airway.generations = 1;
        cfg.num_particles = 40;
        cfg.steps = 1;
        let out = run_scenario(&Scenario::deterministic(cfg.clone(), 2));
        assert_eq!(out.doc, golden_trace(&cfg, 2));
        assert_eq!(out.digest, digest_bytes(out.doc.as_bytes()));
    }

    #[test]
    fn explicit_layout_flag_is_authoritative() {
        assert_eq!(resolve_layout(Some("opt")).unwrap(), LayoutPlan::optimized());
        assert_eq!(resolve_layout(Some("default")).unwrap(), LayoutPlan::disabled());
        assert!(resolve_layout(Some("fast")).is_err());
    }
}
