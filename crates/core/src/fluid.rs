//! The incompressible-flow stepper: a fractional-step (pressure
//! projection) scheme whose phases map one-to-one onto the paper's
//! profile (Table 1): matrix assembly → momentum solve (Solver1) →
//! pressure solve (Solver2) → velocity correction → subgrid scale (SGS).

use cfpd_mesh::{BoundaryKind, Mesh, Vec3};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, assemble_momentum_batched, assemble_poisson, assemble_poisson_batched,
    bicgstab, cg, cg_fused, cg_fused_sell, compute_sgs, AssemblyPlan, AssemblyStats,
    AssemblyStrategy, CsrMatrix, FluidProps, LayoutPlan, MatFreeMomentum, RefElement, SellMatrix,
    SgsField, SgsStats, SolveStats,
};

/// Boundary conditions extracted from the mesh's tagged exterior faces.
#[derive(Debug, Clone, Default)]
pub struct BoundaryConditions {
    /// Nodes with prescribed velocity (inlet): value = inflow vector.
    pub inlet_nodes: Vec<u32>,
    /// No-slip wall nodes.
    pub wall_nodes: Vec<u32>,
    /// Outlet nodes (pressure pinned to zero).
    pub outlet_nodes: Vec<u32>,
}

impl BoundaryConditions {
    /// Collect the boundary node sets from the mesh tags. Inlet wins
    /// over wall on shared rim nodes (so the inflow profile is applied
    /// on the whole inlet disc).
    pub fn from_mesh(mesh: &Mesh) -> BoundaryConditions {
        use std::collections::BTreeSet;
        let mut inlet = BTreeSet::new();
        let mut wall = BTreeSet::new();
        let mut outlet = BTreeSet::new();
        for &(e, f, kind) in &mesh.boundary {
            let nodes = mesh.elem_nodes(e as usize);
            let face = mesh.kinds[e as usize].faces()[f as usize];
            for &li in face.iter() {
                let v = nodes[li];
                match kind {
                    BoundaryKind::Inlet => {
                        inlet.insert(v);
                    }
                    BoundaryKind::Wall => {
                        wall.insert(v);
                    }
                    BoundaryKind::Outlet => {
                        outlet.insert(v);
                    }
                }
            }
        }
        // Rim nodes belong to both; give the inlet precedence.
        for v in &inlet {
            wall.remove(v);
        }
        BoundaryConditions {
            inlet_nodes: inlet.into_iter().collect(),
            wall_nodes: wall.into_iter().collect(),
            outlet_nodes: outlet.into_iter().collect(),
        }
    }
}

/// Timings (in seconds of real execution) and solver statistics of one
/// fluid step.
#[derive(Debug, Clone, Default)]
pub struct FluidStepReport {
    pub t_assembly: f64,
    pub t_solver1: f64,
    pub t_solver2: f64,
    pub t_sgs: f64,
    pub assembly: Option<AssemblyStatsPair>,
    pub solver1: Option<[SolveStats; 3]>,
    pub solver2: Option<SolveStats>,
    pub sgs: Option<SgsStats>,
}

/// Assembly statistics of the momentum + Poisson assemblies.
#[derive(Debug, Clone)]
pub struct AssemblyStatsPair {
    pub momentum: AssemblyStats,
    pub poisson: AssemblyStats,
}

/// Single-address-space fluid solver over (a subset of) the mesh.
pub struct FluidSolver<'m> {
    pub mesh: &'m Mesh,
    refs: [RefElement; 3],
    plan: AssemblyPlan,
    props: FluidProps,
    dt: f64,
    tol: f64,
    max_iters: usize,
    matrix_u: CsrMatrix,
    matrix_p: CsrMatrix,
    rhs_u: Vec<Vec<f64>>,
    rhs_p: Vec<Vec<f64>>,
    lumped_mass: Vec<f64>,
    pub bc: BoundaryConditions,
    pub inflow: Vec3,
    /// Nodal velocity (the field particles are advected by).
    pub velocity: Vec<Vec3>,
    /// Nodal pressure.
    pub pressure: Vec<f64>,
    /// Subgrid-scale storage.
    pub sgs: SgsField,
    gravity: Vec3,
    layout: LayoutPlan,
    /// SELL-shaped mirror of the pressure matrix (`layout.sell_spmv`);
    /// structure built once, values regathered every step.
    sell: Option<SellMatrix>,
    /// Matrix-free momentum operator (`layout.matrix_free`). Covers
    /// only this solver's element list, so it is a single-address-space
    /// optimization: distributed (replicated-solve) runs must keep the
    /// assembled matrix for the cross-rank value reduction.
    matfree: Option<MatFreeMomentum>,
}

impl<'m> FluidSolver<'m> {
    /// Create a solver assembling `elems` (usually the rank's partition;
    /// pass all elements for a serial run) with the given strategy.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mesh: &'m Mesh,
        elems: Vec<u32>,
        strategy: AssemblyStrategy,
        n_subdomains: usize,
        props: FluidProps,
        dt: f64,
        inflow: Vec3,
        tol: f64,
        max_iters: usize,
    ) -> FluidSolver<'m> {
        FluidSolver::new_with_layout(
            mesh,
            elems,
            strategy,
            n_subdomains,
            props,
            dt,
            inflow,
            tol,
            max_iters,
            LayoutPlan::default(),
        )
    }

    /// [`FluidSolver::new`] with an explicit [`LayoutPlan`]: when
    /// `layout.batched_assembly` is set the plan carries a kind-batched
    /// SoA schedule, and `layout.fused_solver` switches the pressure
    /// solve to the fused deterministic parallel CG.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_layout(
        mesh: &'m Mesh,
        elems: Vec<u32>,
        strategy: AssemblyStrategy,
        n_subdomains: usize,
        props: FluidProps,
        dt: f64,
        inflow: Vec3,
        tol: f64,
        max_iters: usize,
        layout: LayoutPlan,
    ) -> FluidSolver<'m> {
        let n2e = mesh.node_to_elements();
        let matrix_u = CsrMatrix::from_mesh(mesh, &n2e);
        let matrix_p = matrix_u.clone();
        let n = mesh.num_nodes();
        // The momentum and Poisson matrices share one sparsity pattern,
        // so one batched schedule (built against matrix_u) serves both.
        let mut plan = if layout.batched_assembly {
            AssemblyPlan::with_batches(mesh, elems, strategy, n_subdomains, &matrix_u)
        } else {
            AssemblyPlan::new(mesh, elems, strategy, n_subdomains)
        };
        plan.lane_kernels = layout.lane_kernels;
        plan.batched_sgs = layout.batched_sgs;
        let sell = layout.sell_spmv.then(|| SellMatrix::from_csr(&matrix_p));
        let matfree =
            layout.matrix_free.then(|| MatFreeMomentum::new(mesh, &matrix_u, &plan.elems));
        let bc = BoundaryConditions::from_mesh(mesh);
        let refs = RefElement::all();

        // Lumped mass over the full mesh (serial, once).
        let mut lumped = vec![0.0; n];
        let mut scratch = cfpd_solver::ElementScratch::default();
        let zero_vel = vec![Vec3::ZERO; n];
        for e in 0..mesh.num_elements() {
            let (kind, nn) = scratch.load(mesh, &zero_vel, e);
            if let Some(lm) = cfpd_solver::kernels::lumped_mass_kernel(&refs, &scratch, kind, nn) {
                for (k, &v) in mesh.elem_nodes(e).iter().enumerate() {
                    lumped[v as usize] += lm[k];
                }
            }
        }

        let sgs = SgsField::new(mesh);
        FluidSolver {
            mesh,
            refs,
            plan,
            props,
            dt,
            tol,
            max_iters,
            matrix_u,
            matrix_p,
            rhs_u: vec![vec![0.0; n]; 3],
            rhs_p: vec![vec![0.0; n]],
            lumped_mass: lumped,
            bc,
            inflow,
            velocity: vec![Vec3::ZERO; n],
            pressure: vec![0.0; n],
            sgs,
            gravity: Vec3::new(0.0, 0.0, -9.81),
            layout,
            sell,
            matfree,
        }
    }

    /// The assembly plan (for inspection: colors, subdomains, ...).
    pub fn plan(&self) -> &AssemblyPlan {
        &self.plan
    }

    fn apply_velocity_bcs(&mut self) {
        for &v in &self.bc.wall_nodes {
            self.velocity[v as usize] = Vec3::ZERO;
        }
        for &v in &self.bc.inlet_nodes {
            self.velocity[v as usize] = self.inflow;
        }
    }

    /// Advance the flow by one time step, reporting per-phase timings.
    pub fn step(&mut self, pool: &ThreadPool) -> FluidStepReport {
        self.step_reduced(pool, &mut |_| {})
    }

    /// Like [`FluidSolver::step`], but `reduce` is applied to every
    /// element-partial buffer (matrix values, RHS vectors, correction
    /// gradient) right after its local assembly. A distributed run
    /// passes an MPI allreduce(sum) here, so each rank assembles only
    /// its own elements yet solves the identical global system — the
    /// standard replicated-solve miniaturization (DESIGN.md §7).
    pub fn step_reduced(
        &mut self,
        pool: &ThreadPool,
        reduce: &mut dyn FnMut(&mut [f64]),
    ) -> FluidStepReport {
        let mut report = FluidStepReport::default();
        let n = self.mesh.num_nodes();
        self.apply_velocity_bcs();

        // ---- Phase: matrix assembly (momentum + Poisson patterns) ----
        let t0 = std::time::Instant::now();
        if self.matfree.is_none() {
            self.matrix_u.clear();
        }
        for r in &mut self.rhs_u {
            r.iter_mut().for_each(|x| *x = 0.0);
        }
        // Non-incremental (Chorin) splitting: the momentum step sees no
        // pressure and the Poisson step recovers the full field. On this
        // equal-order discretization the incremental variant amplifies
        // junction overshoots (no PSPG damping), so the classical
        // splitting is the robust choice; the kernel-level pressure-
        // gradient hook remains available for stabilized discretizations.
        let zero_pressure = vec![0.0; n];
        let stats_m = if let Some(mf) = self.matfree.as_mut() {
            // Assembly-lite: element integrals go to the flat per-element
            // store (no CSR scatter); only the RHS is scattered.
            mf.assemble(
                &self.refs,
                self.mesh,
                &self.velocity,
                &zero_pressure,
                self.props,
                self.dt,
                self.gravity,
                &mut self.rhs_u,
            );
            AssemblyStats { elements: self.plan.elems.len(), ..AssemblyStats::default() }
        } else {
            let assemble_m = if self.layout.batched_assembly {
                assemble_momentum_batched
            } else {
                assemble_momentum
            };
            assemble_m(
                pool,
                &self.refs,
                self.mesh,
                &self.plan,
                &self.velocity,
                &zero_pressure,
                self.props,
                self.dt,
                self.gravity,
                &mut self.matrix_u,
                &mut self.rhs_u,
            )
        };
        self.matrix_p.clear();
        self.rhs_p[0].iter_mut().for_each(|x| *x = 0.0);
        let assemble_p = if self.layout.batched_assembly {
            assemble_poisson_batched
        } else {
            assemble_poisson
        };
        let stats_p = assemble_p(
            pool,
            &self.refs,
            self.mesh,
            &self.plan,
            &self.velocity,
            self.props,
            self.dt,
            &mut self.matrix_p,
            &mut self.rhs_p,
        );
        // Combine element-partial sums across ranks before applying
        // boundary conditions. The matrix-free operator keeps local
        // matrices unassembled, so its momentum values take no part in
        // the reduction (single-address-space path — see field docs).
        if self.matfree.is_none() {
            reduce(&mut self.matrix_u.values);
        }
        for r in &mut self.rhs_u {
            reduce(r);
        }
        reduce(&mut self.matrix_p.values);
        reduce(&mut self.rhs_p[0]);
        // Momentum Dirichlet rows: walls (0) and inlet (inflow).
        for &v in self.bc.wall_nodes.iter().chain(&self.bc.inlet_nodes) {
            if let Some(mf) = self.matfree.as_mut() {
                mf.set_dirichlet_row(v as usize);
            } else {
                self.matrix_u.set_dirichlet_row(v as usize);
            }
        }
        for (c, comp) in [self.inflow.x, self.inflow.y, self.inflow.z].iter().enumerate() {
            for &v in &self.bc.wall_nodes {
                self.rhs_u[c][v as usize] = 0.0;
            }
            for &v in &self.bc.inlet_nodes {
                self.rhs_u[c][v as usize] = *comp;
            }
        }
        // Pressure Dirichlet at outlets.
        for &v in &self.bc.outlet_nodes {
            self.matrix_p.set_dirichlet_row(v as usize);
            self.rhs_p[0][v as usize] = 0.0;
        }
        report.t_assembly = t0.elapsed().as_secs_f64();
        report.assembly = Some(AssemblyStatsPair { momentum: stats_m, poisson: stats_p });

        // ---- Phase: Solver1 (momentum, BiCGSTAB per component) -------
        let t0 = std::time::Instant::now();
        let mut ustar = vec![Vec3::ZERO; n];
        let mut s1 = [SolveStats { iterations: 0, residual: 0.0, converged: true }; 3];
        for c in 0..3 {
            let mut x: Vec<f64> = self
                .velocity
                .iter()
                .map(|v| [v.x, v.y, v.z][c])
                .collect();
            s1[c] = if let Some(mf) = self.matfree.as_ref() {
                bicgstab(mf, &self.rhs_u[c], &mut x, self.tol, self.max_iters)
            } else {
                bicgstab(&self.matrix_u, &self.rhs_u[c], &mut x, self.tol, self.max_iters)
            };
            for (i, xi) in x.iter().enumerate() {
                match c {
                    0 => ustar[i].x = *xi,
                    1 => ustar[i].y = *xi,
                    _ => ustar[i].z = *xi,
                }
            }
        }
        report.t_solver1 = t0.elapsed().as_secs_f64();
        report.solver1 = Some(s1);

        // Poisson RHS uses u*, not u_n: recompute the divergence part.
        // (The assembled rhs_p used u_n as an operator-splitting
        // predictor; correct it with the actual intermediate velocity.)
        let t0 = std::time::Instant::now();
        self.rhs_p[0].iter_mut().for_each(|x| *x = 0.0);
        {
            let mut scratch = cfpd_solver::ElementScratch::default();
            for &e in &self.plan.elems {
                let e = e as usize;
                let (kind, nn) = scratch.load(self.mesh, &ustar, e);
                if let Some(lp) = cfpd_solver::kernels::poisson_kernel(
                    &self.refs, &scratch, kind, nn, self.props, self.dt,
                ) {
                    for (k, &v) in self.mesh.elem_nodes(e).iter().enumerate() {
                        self.rhs_p[0][v as usize] += lp.b[k];
                    }
                }
            }
            reduce(&mut self.rhs_p[0]);
            for &v in &self.bc.outlet_nodes {
                self.rhs_p[0][v as usize] = 0.0;
            }
        }
        // ---- Phase: Solver2 (pressure, CG) ----------------------------
        let mut phi = std::mem::take(&mut self.pressure);
        let s2 = if let Some(sell) = self.sell.as_mut() {
            // Regather the post-Dirichlet values into the SELL mirror;
            // the SELL-fed fused CG is bit-identical to `cg_fused`.
            sell.update_values(&self.matrix_p.values);
            cg_fused_sell(
                &self.matrix_p,
                sell,
                &self.rhs_p[0],
                &mut phi,
                self.tol,
                self.max_iters,
                pool,
            )
        } else if self.layout.fused_solver {
            cg_fused(&self.matrix_p, &self.rhs_p[0], &mut phi, self.tol, self.max_iters, pool)
        } else {
            cg(&self.matrix_p, &self.rhs_p[0], &mut phi, self.tol, self.max_iters)
        };
        self.pressure = phi.clone();
        report.t_solver2 = t0.elapsed().as_secs_f64();
        report.solver2 = Some(s2);

        // ---- Velocity correction: u = u* − (dt/ρ) ∇p ------------------
        {
            let mut grad = vec![Vec3::ZERO; n];
            let mut scratch = cfpd_solver::ElementScratch::default();
            for &e in &self.plan.elems {
                let e = e as usize;
                let (kind, nn) = scratch.load(self.mesh, &ustar, e);
                let re = &self.refs[RefElement::index_of(kind)];
                let nodes = self.mesh.elem_nodes(e);
                for qp in &re.qps {
                    if let Some(m) = cfpd_solver::map_qp(qp, &scratch.coords, nn) {
                        let mut gp = Vec3::ZERO;
                        for k in 0..nn {
                            let pv = phi[nodes[k] as usize];
                            gp += Vec3::new(m.grad[k][0], m.grad[k][1], m.grad[k][2]) * pv;
                        }
                        for k in 0..nn {
                            grad[nodes[k] as usize] += gp * (m.n[k] * m.dvol);
                        }
                    }
                }
            }
            // Sum gradient partials across ranks (flatten Vec3 -> f64).
            let mut flat = vec![0.0f64; 3 * n];
            for (i, g) in grad.iter().enumerate() {
                flat[3 * i] = g.x;
                flat[3 * i + 1] = g.y;
                flat[3 * i + 2] = g.z;
            }
            reduce(&mut flat);
            for (i, g) in grad.iter_mut().enumerate() {
                *g = Vec3::new(flat[3 * i], flat[3 * i + 1], flat[3 * i + 2]);
            }
            let coef = self.dt / self.props.density;
            for i in 0..n {
                let ml = self.lumped_mass[i];
                if ml > 0.0 {
                    self.velocity[i] = ustar[i] - grad[i] * (coef / ml);
                } else {
                    self.velocity[i] = ustar[i];
                }
            }
            self.apply_velocity_bcs();
        }

        // ---- Phase: SGS ------------------------------------------------
        let t0 = std::time::Instant::now();
        let stats_sgs = compute_sgs(
            pool,
            &self.refs,
            self.mesh,
            &self.plan,
            &self.velocity,
            self.props,
            &mut self.sgs,
            5,
            1e-6,
        );
        report.t_sgs = t0.elapsed().as_secs_f64();
        report.sgs = Some(stats_sgs);

        report
    }

    /// Mean velocity magnitude over all nodes (diagnostic).
    pub fn mean_speed(&self) -> f64 {
        self.velocity.iter().map(|v| v.norm()).sum::<f64>() / self.velocity.len() as f64
    }

    /// Maximum velocity magnitude (stability diagnostic).
    pub fn max_speed(&self) -> f64 {
        self.velocity.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn solver_on<'m>(mesh: &'m Mesh, strategy: AssemblyStrategy) -> FluidSolver<'m> {
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        FluidSolver::new(
            mesh,
            elems,
            strategy,
            8,
            FluidProps::default(),
            1e-3,
            Vec3::new(0.0, 0.0, -1.0),
            1e-8,
            2000,
        )
    }

    #[test]
    fn boundary_conditions_cover_all_kinds() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let bc = BoundaryConditions::from_mesh(&am.mesh);
        assert!(!bc.inlet_nodes.is_empty());
        assert!(!bc.wall_nodes.is_empty());
        assert!(!bc.outlet_nodes.is_empty());
        // Inlet and wall sets are disjoint (rim given to the inlet).
        let walls: std::collections::HashSet<_> = bc.wall_nodes.iter().collect();
        assert!(bc.inlet_nodes.iter().all(|v| !walls.contains(v)));
    }

    #[test]
    fn flow_develops_from_inlet() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mut fs = solver_on(&am.mesh, AssemblyStrategy::Multidep);
        let pool = ThreadPool::new(2);
        let mut last = FluidStepReport::default();
        for _ in 0..3 {
            last = fs.step(&pool);
        }
        // Momentum and pressure solves converged.
        assert!(last.solver1.unwrap().iter().all(|s| s.converged));
        assert!(last.solver2.unwrap().converged);
        // The flow moves (driven by the inlet) and stays bounded.
        assert!(fs.mean_speed() > 1e-4, "mean speed {}", fs.mean_speed());
        assert!(fs.max_speed() < 50.0, "max speed {} (instability?)", fs.max_speed());
        // Walls are no-slip.
        for &v in fs.bc.wall_nodes.iter().take(50) {
            assert_eq!(fs.velocity[v as usize], Vec3::ZERO);
        }
        // Phase timings were measured.
        assert!(last.t_assembly > 0.0 && last.t_solver1 > 0.0);
    }

    #[test]
    fn strategies_give_same_flow() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let pool = ThreadPool::new(4);
        let mut a = solver_on(&am.mesh, AssemblyStrategy::Serial);
        let mut b = solver_on(&am.mesh, AssemblyStrategy::Multidep);
        for _ in 0..2 {
            a.step(&pool);
            b.step(&pool);
        }
        let mut max_diff = 0.0f64;
        for (va, vb) in a.velocity.iter().zip(&b.velocity) {
            max_diff = max_diff.max((*va - *vb).norm());
        }
        assert!(
            max_diff < 1e-5 * a.max_speed().max(1.0),
            "strategy changed the physics: diff {max_diff}"
        );
    }

    fn solver_with_layout<'m>(
        mesh: &'m Mesh,
        strategy: AssemblyStrategy,
        layout: LayoutPlan,
    ) -> FluidSolver<'m> {
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        FluidSolver::new_with_layout(
            mesh,
            elems,
            strategy,
            8,
            FluidProps::default(),
            1e-3,
            Vec3::new(0.0, 0.0, -1.0),
            1e-8,
            2000,
            layout,
        )
    }

    fn step_twice(fs: &mut FluidSolver, pool: &ThreadPool) -> (Vec<Vec3>, Vec<f64>) {
        fs.step(pool);
        fs.step(pool);
        (fs.velocity.clone(), fs.pressure.clone())
    }

    fn assert_state_bits_equal(a: &(Vec<Vec3>, Vec<f64>), b: &(Vec<Vec3>, Vec<f64>), what: &str) {
        for (i, (va, vb)) in a.0.iter().zip(&b.0).enumerate() {
            assert_eq!(va.x.to_bits(), vb.x.to_bits(), "{what}: velocity[{i}].x");
            assert_eq!(va.y.to_bits(), vb.y.to_bits(), "{what}: velocity[{i}].y");
            assert_eq!(va.z.to_bits(), vb.z.to_bits(), "{what}: velocity[{i}].z");
        }
        for (i, (pa, pb)) in a.1.iter().zip(&b.1).enumerate() {
            assert_eq!(pa.to_bits(), pb.to_bits(), "{what}: pressure[{i}]");
        }
    }

    // The raw-speed switches (SELL SpMV, lane kernels, batched SGS)
    // must not move a single bit of the flow state relative to the
    // committed opt pipeline — this is what keeps the opt golden valid
    // without a rebless.
    #[test]
    fn raw_speed_switches_are_bit_identical() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let pool = ThreadPool::new(2);
        let base = LayoutPlan {
            batched_assembly: true,
            fused_solver: true,
            ..LayoutPlan::default()
        };
        let fast = LayoutPlan {
            sell_spmv: true,
            lane_kernels: true,
            batched_sgs: true,
            ..base
        };
        let sa = step_twice(&mut solver_with_layout(&am.mesh, AssemblyStrategy::Serial, base), &pool);
        let sb = step_twice(&mut solver_with_layout(&am.mesh, AssemblyStrategy::Serial, fast), &pool);
        assert_state_bits_equal(&sa, &sb, "sell+lanes+batched-sgs");
    }

    // The matrix-free momentum path accumulates per row in serial
    // assembly order, so against a serially-assembled reference the
    // whole step is bit-identical.
    #[test]
    fn matfree_step_bit_identical_to_assembled_serial() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let pool = ThreadPool::new(2);
        let assembled = LayoutPlan::default();
        let matfree = LayoutPlan { matrix_free: true, ..LayoutPlan::default() };
        let sa =
            step_twice(&mut solver_with_layout(&am.mesh, AssemblyStrategy::Serial, assembled), &pool);
        let sb =
            step_twice(&mut solver_with_layout(&am.mesh, AssemblyStrategy::Serial, matfree), &pool);
        assert_state_bits_equal(&sa, &sb, "matrix-free momentum");
    }

    #[test]
    fn sgs_computed_each_step() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mut fs = solver_on(&am.mesh, AssemblyStrategy::Atomics);
        let pool = ThreadPool::new(2);
        let r = fs.step(&pool);
        let sgs = r.sgs.unwrap();
        assert_eq!(sgs.elements, am.mesh.num_elements());
    }
}
