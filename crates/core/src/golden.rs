//! Golden-trace serialization: render a simulation run's logical event
//! log as a canonical text document that can be diffed byte-for-byte
//! against a checked-in golden file.
//!
//! Determinism contract: with `threads_per_rank == 1` and DLB off, every
//! rank's computation is sequential and all collectives reduce in fixed
//! rank order, so the trace is bit-reproducible across runs and
//! machines. All floating-point payloads are rendered as `f64::to_bits`
//! hex — a byte-equal trace means bit-identical physics.
//!
//! Regenerate goldens after an *intended* physics change with
//! `CFPD_BLESS=1 cargo test -p cfpd-serve --test golden_trace`.

use crate::checkpoint::Checkpoint;
use crate::config::SimulationConfig;
use crate::simulation::{
    run_simulation, run_simulation_opts, LogicalEvent, RunOptions, SimulationResult,
};
use cfpd_mesh::{generate_airway, AirwaySpec};
use cfpd_particles::ParticleCensus;
use std::fmt::Write;
use std::sync::Arc;

/// The canonical small airway run the golden regression suite pins:
/// a 2-generation mesh, 200 particles, 3 steps, fixed seed.
pub fn golden_config() -> SimulationConfig {
    SimulationConfig {
        airway: AirwaySpec {
            generations: 2,
            ..AirwaySpec::small()
        },
        num_particles: 200,
        steps: 3,
        solver_tol: 1e-6,
        solver_max_iters: 500,
        seed: 20260807,
        ..Default::default()
    }
}

fn hex(bits: u64) -> String {
    format!("{bits:016x}")
}

/// Run the simulation deterministically (1 thread per rank, DLB off) and
/// serialize its logical trace.
pub fn golden_trace(config: &SimulationConfig, n_ranks: usize) -> String {
    let result = run_simulation(config, n_ranks, 1, false);
    render_golden_doc(config, n_ranks, &result.logical, &result.census)
}

/// [`golden_trace`] but with the structured wall-clock trace switched
/// on: returns the golden document (identical to [`golden_trace`] —
/// tracing never touches the logical event log) plus the full
/// [`SimulationResult`], whose `trace` carries worker, message and DLB
/// records ready for export.
pub fn golden_trace_traced(
    config: &SimulationConfig,
    n_ranks: usize,
) -> (String, SimulationResult) {
    let result = run_simulation_opts(
        config,
        n_ranks,
        1,
        &RunOptions { trace: true, ..Default::default() },
    );
    let doc = render_golden_doc(config, n_ranks, &result.logical, &result.census);
    (doc, result)
}

/// [`golden_trace`] but with the run *split in two*: execute up to step
/// `split_after`, capture a checkpoint, round-trip it through the text
/// codec, restore into a fresh universe, finish the run, and render the
/// stitched logical log. Byte-equality with [`golden_trace`] is the
/// checkpoint/restart acceptance gate: a restart is only correct if it
/// is invisible in the golden file.
pub fn golden_trace_split(config: &SimulationConfig, n_ranks: usize, split_after: usize) -> String {
    assert!(
        split_after > 0 && split_after < config.steps,
        "split must fall strictly inside the run"
    );
    let part1 = run_simulation_opts(
        config,
        n_ranks,
        1,
        &RunOptions { checkpoint_at: Some(split_after), ..Default::default() },
    );
    let cp = part1.checkpoint.expect("checkpoint captured at the split step");
    // Round-trip through the text codec so the gate also covers the
    // serialization path, not just the in-memory snapshot.
    let cp = Checkpoint::from_text(&cp.to_text()).expect("checkpoint text round-trip");
    let part2 = run_simulation_opts(
        config,
        n_ranks,
        1,
        &RunOptions { restore: Some(Arc::new(cp)), ..Default::default() },
    );
    let mut logical: Vec<LogicalEvent> = part1
        .logical
        .iter()
        .filter(|e| e.step() < split_after)
        .cloned()
        .collect();
    logical.extend(part2.logical.iter().cloned());
    render_golden_doc(config, n_ranks, &logical, &part2.census)
}

/// Serialize a logical event log + final census as the canonical golden
/// document. Public so the scenario entry point ([`crate::scenario`])
/// can render a document from an already-executed run without running
/// it twice.
///
/// The document is `header ++ event lines ++ summary`, and the three
/// parts are exposed individually ([`render_golden_header`],
/// [`render_golden_events`], [`render_golden_summary`]) because the
/// header depends only on the configuration, each event line depends
/// only on events already executed, and the summary depends only on the
/// final census — so a run executed as checkpointed *segments* can
/// persist its partial event text per segment and stitch a document
/// byte-identical to the uninterrupted run (`cfpd serve` relies on
/// this).
pub fn render_golden_doc(
    config: &SimulationConfig,
    n_ranks: usize,
    logical: &[LogicalEvent],
    census: &ParticleCensus,
) -> String {
    let mut out = render_golden_header(config, n_ranks);
    out.push_str(&render_golden_events(logical));
    out.push_str(&render_golden_summary(census));
    out
}

/// The configuration-only header of the golden document (mesh + run
/// lines). Independent of anything the run computes.
pub fn render_golden_header(config: &SimulationConfig, n_ranks: usize) -> String {
    let airway = generate_airway(&config.airway).expect("valid airway spec");

    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "cfpd golden trace v1").unwrap();
    writeln!(
        w,
        "mesh generations={} elements={} nodes={}",
        config.airway.generations,
        airway.mesh.num_elements(),
        airway.mesh.num_nodes(),
    )
    .unwrap();
    // The layout marker is appended only when an optimization is on, so
    // the default document stays byte-identical to pre-layout goldens.
    let layout_marker = if config.layout.is_default() {
        String::new()
    } else {
        format!(" layout={}", config.layout.label())
    };
    writeln!(
        w,
        "run ranks={} steps={} particles={} seed={} strategy={:?} subdomains={}{}",
        config.total_ranks(n_ranks),
        config.steps,
        config.num_particles,
        config.seed,
        config.strategy,
        config.subdomains_per_rank,
        layout_marker,
    )
    .unwrap();
    out
}

/// The per-event body lines of the golden document. Events from a
/// contiguous step range render independently of any later step, so
/// concatenating the rendered text of consecutive segments equals
/// rendering the full log at once.
pub fn render_golden_events(logical: &[LogicalEvent]) -> String {
    let mut out = String::new();
    let w = &mut out;
    for e in logical {
        match e {
            LogicalEvent::Assembly { step, rank, elements } => {
                writeln!(w, "step {step} rank {rank} assembly elements={elements}").unwrap();
            }
            LogicalEvent::Solve { step, rank, system, iterations, residual_bits, converged } => {
                writeln!(
                    w,
                    "step {step} rank {rank} solve system={system} iters={iterations} \
                     residual={} converged={converged}",
                    hex(*residual_bits),
                )
                .unwrap();
            }
            LogicalEvent::FieldDigest { step, rank, velocity, pressure } => {
                writeln!(
                    w,
                    "step {step} rank {rank} fields velocity={} pressure={}",
                    hex(*velocity),
                    hex(*pressure),
                )
                .unwrap();
            }
            LogicalEvent::Exchange { step, rank, sent, received } => {
                let sends: Vec<String> =
                    sent.iter().map(|(d, c)| format!("{d}:{c}")).collect();
                writeln!(
                    w,
                    "step {step} rank {rank} exchange sent=[{}] received={received}",
                    sends.join(" "),
                )
                .unwrap();
            }
            LogicalEvent::Particles { step, rank, active, deposited, escaped, lost } => {
                writeln!(
                    w,
                    "step {step} rank {rank} particles active={active} deposited={deposited} \
                     escaped={escaped} lost={lost}",
                )
                .unwrap();
            }
        }
    }
    out
}

/// The trailing summary lines, a pure function of the final census.
pub fn render_golden_summary(census: &ParticleCensus) -> String {
    let mut out = String::new();
    let w = &mut out;
    let c = census;
    let total = c.active + c.deposited + c.escaped + c.lost;
    writeln!(
        w,
        "summary census active={} deposited={} escaped={} lost={}",
        c.active, c.deposited, c.escaped, c.lost,
    )
    .unwrap();
    let frac = |n: usize| {
        if total == 0 { 0.0 } else { n as f64 / total as f64 }
    };
    writeln!(
        w,
        "summary deposition total={} deposited_frac={} escaped_frac={}",
        total,
        hex(frac(c.deposited).to_bits()),
        hex(frac(c.escaped).to_bits()),
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_header_events_and_summary() {
        let mut cfg = golden_config();
        cfg.airway.generations = 1;
        cfg.num_particles = 40;
        cfg.steps = 1;
        let trace = golden_trace(&cfg, 2);
        assert!(trace.starts_with("cfpd golden trace v1\n"));
        assert!(trace.contains("assembly elements="));
        assert!(trace.contains("solve system=3"));
        assert!(trace.contains("fields velocity="));
        assert!(trace.contains("summary census"));
        // Every rank-step contributes exchange + particles lines.
        assert_eq!(trace.matches(" exchange sent=").count(), 2);
        assert_eq!(trace.matches(" particles active=").count(), 2);
    }

    #[test]
    fn split_run_is_invisible_in_the_golden_document() {
        let mut cfg = golden_config();
        cfg.airway.generations = 1;
        cfg.num_particles = 40;
        cfg.steps = 2;
        assert_eq!(golden_trace_split(&cfg, 2, 1), golden_trace(&cfg, 2));
    }
}
