//! Step-granular checkpoint/restart for the synchronous simulation.
//!
//! A [`Checkpoint`] captures, at a step boundary, *exactly* the state
//! that persists across steps: the velocity and pressure fields, the
//! SGS quadrature-point vectors, and the per-rank particle populations
//! (full SoA, including deposited/escaped particles so the final census
//! survives the restart). The injection RNG only runs at step 0, so the
//! seed in the header is documentation, not replayed state.
//!
//! The text codec renders every `f64` as its `to_bits` hex pattern and
//! carries an FNV-1a digest of the structural content in the header; a
//! checkpoint that round-trips through text restores *bit-identical*
//! state, and a corrupted file is rejected on load instead of silently
//! resuming from garbage.

use crate::config::SimulationConfig;
use cfpd_mesh::Vec3;
use cfpd_particles::{ParticleProps, ParticleSet, ParticleState};
use cfpd_testkit::digest::{digest_bytes, Digest};

/// Per-rank persistent state at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCheckpoint {
    pub rank: usize,
    /// Nodal velocity field of this rank's replicated solve.
    pub velocity: Vec<Vec3>,
    /// Nodal pressure field.
    pub pressure: Vec<f64>,
    /// SGS quadrature-point vectors (`SgsField::values`).
    pub sgs: Vec<Vec3>,
    /// This rank's particle population (full SoA snapshot).
    pub particles: ParticleSet,
}

/// A whole-universe checkpoint taken before step `next_step`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// First step the restored run executes.
    pub next_step: usize,
    pub n_ranks: usize,
    /// Injection seed of the original run (informational; injection
    /// happens only at step 0).
    pub seed: u64,
    /// Digest of the originating [`SimulationConfig`]; a restore under a
    /// different configuration is rejected.
    pub config_digest: u64,
    /// One entry per rank, in rank order.
    pub ranks: Vec<RankCheckpoint>,
}

/// Digest the configuration a checkpoint belongs to. Hashing the full
/// `Debug` rendering covers every knob (mesh spec, solver tolerances,
/// strategy, mode) without enumerating fields here.
pub fn config_digest(config: &SimulationConfig) -> u64 {
    digest_bytes(format!("{config:?}").as_bytes())
}

fn state_code(s: ParticleState) -> u8 {
    match s {
        ParticleState::Active => 0,
        ParticleState::Deposited => 1,
        ParticleState::Escaped => 2,
        ParticleState::Lost => 3,
    }
}

fn state_from_code(c: u8) -> Result<ParticleState, String> {
    Ok(match c {
        0 => ParticleState::Active,
        1 => ParticleState::Deposited,
        2 => ParticleState::Escaped,
        3 => ParticleState::Lost,
        _ => return Err(format!("invalid particle state code {c}")),
    })
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bit pattern {tok:?}: {e}"))
}

fn parse_int<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    tok.parse().map_err(|e| format!("bad {what} {tok:?}: {e}"))
}

/// Pull `key=value` off a header token.
fn field<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let tok = tok.ok_or_else(|| format!("missing field {key}"))?;
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))
}

impl Checkpoint {
    /// Structural FNV-1a digest over every value the checkpoint carries.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.update_u64(self.next_step as u64)
            .update_u64(self.n_ranks as u64)
            .update_u64(self.seed)
            .update_u64(self.config_digest);
        for r in &self.ranks {
            d.update_u64(r.rank as u64);
            for v in &r.velocity {
                d.update_f64(v.x).update_f64(v.y).update_f64(v.z);
            }
            d.update_f64s(&r.pressure);
            for v in &r.sgs {
                d.update_f64(v.x).update_f64(v.y).update_f64(v.z);
            }
            let p = &r.particles;
            for i in 0..p.len() {
                d.update_u64(p.elem[i] as u64)
                    .update_u64(state_code(p.state[i]) as u64)
                    .update_f64(p.pos[i].x)
                    .update_f64(p.pos[i].y)
                    .update_f64(p.pos[i].z)
                    .update_f64(p.vel[i].x)
                    .update_f64(p.vel[i].y)
                    .update_f64(p.vel[i].z)
                    .update_f64(p.acc[i].x)
                    .update_f64(p.acc[i].y)
                    .update_f64(p.acc[i].z)
                    .update_f64(p.props[i].diameter)
                    .update_f64(p.props[i].density);
            }
        }
        d.finish()
    }

    /// Serialize to the canonical text form (hex `f64` bit patterns; see
    /// module docs). Line-oriented and diffable.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "cfpd checkpoint v1").unwrap();
        writeln!(w, "digest {:016x}", self.digest()).unwrap();
        writeln!(
            w,
            "meta next_step={} ranks={} seed={} config={:016x}",
            self.next_step, self.n_ranks, self.seed, self.config_digest,
        )
        .unwrap();
        for r in &self.ranks {
            writeln!(
                w,
                "rank {} velocity={} pressure={} sgs={} particles={}",
                r.rank,
                r.velocity.len(),
                r.pressure.len(),
                r.sgs.len(),
                r.particles.len(),
            )
            .unwrap();
            for v in &r.velocity {
                writeln!(w, "V {} {} {}", hex(v.x), hex(v.y), hex(v.z)).unwrap();
            }
            for &p in &r.pressure {
                writeln!(w, "P {}", hex(p)).unwrap();
            }
            for v in &r.sgs {
                writeln!(w, "S {} {} {}", hex(v.x), hex(v.y), hex(v.z)).unwrap();
            }
            let p = &r.particles;
            for i in 0..p.len() {
                writeln!(
                    w,
                    "Q {} {} {} {} {} {} {} {} {} {} {} {} {}",
                    p.elem[i],
                    state_code(p.state[i]),
                    hex(p.pos[i].x),
                    hex(p.pos[i].y),
                    hex(p.pos[i].z),
                    hex(p.vel[i].x),
                    hex(p.vel[i].y),
                    hex(p.vel[i].z),
                    hex(p.acc[i].x),
                    hex(p.acc[i].y),
                    hex(p.acc[i].z),
                    hex(p.props[i].diameter),
                    hex(p.props[i].density),
                )
                .unwrap();
            }
        }
        out
    }

    /// Parse the text form, verifying the embedded digest.
    ///
    /// Hostile-input hardening: every declared count (`ranks=`, the
    /// per-rank `velocity=`/`pressure=`/`sgs=`/`particles=` lengths) is
    /// validated against the number of lines actually present *before*
    /// any allocation sized by it. Each entry occupies at least one
    /// line, so a count larger than the remaining input is corrupt by
    /// construction — it returns `Err` instead of attempting a huge
    /// `Vec` reservation. This matters once checkpoints arrive over
    /// the network (`cfpd serve`), where the length prefix is
    /// attacker-controlled.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        // Upper bound on every declared count: one entry needs one line.
        let total_lines = text.lines().count();
        let bounded = |n: usize, what: &str| -> Result<usize, String> {
            if n > total_lines {
                Err(format!(
                    "declared {what} count {n} exceeds the {total_lines} lines of input \
                     (corrupt or hostile length prefix)"
                ))
            } else {
                Ok(n)
            }
        };
        let mut lines = text.lines();
        match lines.next() {
            Some("cfpd checkpoint v1") => {}
            other => return Err(format!("bad checkpoint magic: {other:?}")),
        }
        let digest_line = lines.next().ok_or("missing digest line")?;
        let stated: u64 = {
            let tok = digest_line
                .strip_prefix("digest ")
                .ok_or_else(|| format!("expected digest line, got {digest_line:?}"))?;
            u64::from_str_radix(tok, 16).map_err(|e| format!("bad digest {tok:?}: {e}"))?
        };
        let meta = lines.next().ok_or("missing meta line")?;
        let mut toks = meta
            .strip_prefix("meta ")
            .ok_or_else(|| format!("expected meta line, got {meta:?}"))?
            .split_whitespace();
        let next_step = parse_int(field(toks.next(), "next_step")?, "next_step")?;
        let n_ranks: usize =
            bounded(parse_int(field(toks.next(), "ranks")?, "ranks")?, "rank")?;
        let seed = parse_int(field(toks.next(), "seed")?, "seed")?;
        let config_tok = field(toks.next(), "config")?;
        let config_digest = u64::from_str_radix(config_tok, 16)
            .map_err(|e| format!("bad config digest {config_tok:?}: {e}"))?;

        let mut ranks = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let header = lines.next().ok_or("truncated: missing rank header")?;
            let mut toks = header
                .strip_prefix("rank ")
                .ok_or_else(|| format!("expected rank header, got {header:?}"))?
                .split_whitespace();
            let rank: usize =
                parse_int(toks.next().ok_or("missing rank id")?, "rank id")?;
            let nv: usize =
                bounded(parse_int(field(toks.next(), "velocity")?, "velocity count")?, "velocity")?;
            let np: usize =
                bounded(parse_int(field(toks.next(), "pressure")?, "pressure count")?, "pressure")?;
            let ns: usize = bounded(parse_int(field(toks.next(), "sgs")?, "sgs count")?, "sgs")?;
            let nq: usize =
                bounded(parse_int(field(toks.next(), "particles")?, "particle count")?, "particle")?;

            let mut vec3_line = |prefix: &str| -> Result<Vec3, String> {
                let line = lines
                    .next()
                    .ok_or_else(|| format!("truncated: missing {prefix} line"))?;
                let mut t = line
                    .strip_prefix(prefix)
                    .ok_or_else(|| format!("expected {prefix} line, got {line:?}"))?
                    .split_whitespace();
                let mut next = || parse_f64(t.next().ok_or("short vector line")?);
                Ok(Vec3::new(next()?, next()?, next()?))
            };
            let velocity: Vec<Vec3> =
                (0..nv).map(|_| vec3_line("V ")).collect::<Result<_, _>>()?;
            let pressure: Vec<f64> = (0..np)
                .map(|_| {
                    let line = lines.next().ok_or("truncated: missing P line")?;
                    parse_f64(
                        line.strip_prefix("P ")
                            .ok_or_else(|| format!("expected P line, got {line:?}"))?,
                    )
                })
                .collect::<Result<_, _>>()?;
            let mut vec3_line = |prefix: &str| -> Result<Vec3, String> {
                let line = lines
                    .next()
                    .ok_or_else(|| format!("truncated: missing {prefix} line"))?;
                let mut t = line
                    .strip_prefix(prefix)
                    .ok_or_else(|| format!("expected {prefix} line, got {line:?}"))?
                    .split_whitespace();
                let mut next = || parse_f64(t.next().ok_or("short vector line")?);
                Ok(Vec3::new(next()?, next()?, next()?))
            };
            let sgs: Vec<Vec3> = (0..ns).map(|_| vec3_line("S ")).collect::<Result<_, _>>()?;

            let mut particles = ParticleSet::default();
            for _ in 0..nq {
                let line = lines.next().ok_or("truncated: missing Q line")?;
                let mut t = line
                    .strip_prefix("Q ")
                    .ok_or_else(|| format!("expected Q line, got {line:?}"))?
                    .split_whitespace();
                let elem: u32 = parse_int(t.next().ok_or("short Q line")?, "elem")?;
                let code: u8 = parse_int(t.next().ok_or("short Q line")?, "state")?;
                let mut next = || parse_f64(t.next().ok_or("short Q line")?);
                let pos = Vec3::new(next()?, next()?, next()?);
                let vel = Vec3::new(next()?, next()?, next()?);
                let acc = Vec3::new(next()?, next()?, next()?);
                let diameter = next()?;
                let density = next()?;
                particles.pos.push(pos);
                particles.vel.push(vel);
                particles.acc.push(acc);
                particles.elem.push(elem);
                particles.state.push(state_from_code(code)?);
                particles.props.push(ParticleProps { diameter, density });
            }
            ranks.push(RankCheckpoint { rank, velocity, pressure, sgs, particles });
        }

        let cp = Checkpoint { next_step, n_ranks, seed, config_digest, ranks };
        let actual = cp.digest();
        if actual != stated {
            return Err(format!(
                "checkpoint digest mismatch: header says {stated:016x}, content is {actual:016x}",
            ));
        }
        Ok(cp)
    }

    /// Reject restoring under a configuration or universe shape other
    /// than the one the checkpoint was taken with.
    pub fn validate_for(&self, config: &SimulationConfig, n_ranks: usize) -> Result<(), String> {
        if self.n_ranks != n_ranks {
            return Err(format!(
                "checkpoint has {} ranks, run has {n_ranks}",
                self.n_ranks
            ));
        }
        let want = config_digest(config);
        if self.config_digest != want {
            return Err(format!(
                "checkpoint config digest {:016x} does not match run config {want:016x}",
                self.config_digest
            ));
        }
        if self.next_step > config.steps {
            return Err(format!(
                "checkpoint next_step {} beyond run's {} steps",
                self.next_step, config.steps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut particles = ParticleSet::default();
        particles.pos.push(Vec3::new(0.001, -0.002, 0.5));
        particles.vel.push(Vec3::new(1.5, 0.0, -0.25));
        particles.acc.push(Vec3::new(0.0, -9.81, f64::EPSILON));
        particles.elem.push(42);
        particles.state.push(ParticleState::Active);
        particles.props.push(ParticleProps { diameter: 5e-6, density: 1000.0 });
        particles.pos.push(Vec3::new(-0.0, 0.125, 3.0));
        particles.vel.push(Vec3::new(0.0, 0.0, 0.0));
        particles.acc.push(Vec3::new(0.0, 0.0, 0.0));
        particles.elem.push(7);
        particles.state.push(ParticleState::Deposited);
        particles.props.push(ParticleProps { diameter: 2e-6, density: 998.2 });
        Checkpoint {
            next_step: 2,
            n_ranks: 2,
            seed: 20260807,
            config_digest: 0xDEAD_BEEF_1234_5678,
            ranks: vec![
                RankCheckpoint {
                    rank: 0,
                    velocity: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.0, 1e-300)],
                    pressure: vec![101325.0, -0.0],
                    sgs: vec![Vec3::new(1e-9, -1e-9, 0.0)],
                    particles,
                },
                RankCheckpoint {
                    rank: 1,
                    velocity: vec![],
                    pressure: vec![],
                    sgs: vec![],
                    particles: ParticleSet::default(),
                },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_bit_identical() {
        let cp = sample();
        let text = cp.to_text();
        let back = Checkpoint::from_text(&text).expect("parse");
        assert_eq!(back, cp);
        // Re-serializing the parsed checkpoint is byte-identical.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn corruption_is_detected_by_the_digest() {
        let cp = sample();
        let text = cp.to_text();
        // Flip one hex digit of a velocity payload.
        let line = text.lines().position(|l| l.starts_with("V ")).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let corrupted = lines[line].replace('3', "4");
        assert_ne!(corrupted, lines[line], "test must actually corrupt");
        lines[line] = corrupted;
        let err = Checkpoint::from_text(&(lines.join("\n") + "\n")).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation() {
        let text = sample().to_text();

        // A rank count far beyond the input must fail fast with a
        // bounded-count error, not a multi-gigabyte Vec reservation.
        let huge_ranks = text.replace("ranks=2", "ranks=99999999999");
        let err = Checkpoint::from_text(&huge_ranks).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // Same for each per-rank payload length prefix.
        for (field, hostile) in [
            ("velocity=2", "velocity=18446744073709551615"),
            ("pressure=2", "pressure=4000000000"),
            ("sgs=1", "sgs=123456789012"),
            ("particles=2", "particles=987654321098"),
        ] {
            let corrupt = text.replace(field, hostile);
            assert_ne!(corrupt, text, "replacement for {field} must apply");
            let err = Checkpoint::from_text(&corrupt).unwrap_err();
            assert!(err.contains("exceeds"), "{field}: {err}");
        }

        // Counts merely larger than the remaining (but within the line
        // budget) still fail through the ordinary truncation path.
        let off_by_some = text.replace("particles=2", "particles=5");
        assert!(Checkpoint::from_text(&off_by_some).is_err());
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let cp = sample();
        let text = cp.to_text();
        let cut: String = text.lines().take(6).map(|l| format!("{l}\n")).collect();
        assert!(Checkpoint::from_text(&cut).is_err());
        assert!(Checkpoint::from_text("not a checkpoint\n").is_err());
    }

    #[test]
    fn validate_checks_shape_and_config() {
        let config = SimulationConfig::default();
        let mut cp = sample();
        cp.config_digest = config_digest(&config);
        cp.next_step = 2;
        assert!(cp.validate_for(&config, 2).is_ok());
        assert!(cp.validate_for(&config, 3).unwrap_err().contains("ranks"));
        let other = SimulationConfig { seed: 999, ..config.clone() };
        assert!(cp.validate_for(&other, 2).unwrap_err().contains("config digest"));
        cp.next_step = config.steps + 1;
        assert!(cp.validate_for(&config, 2).unwrap_err().contains("beyond"));
    }
}
