//! True distributed-memory linear algebra: node ownership, halo
//! exchange and a distributed CG — the production-style alternative to
//! the replicated solve used by [`crate::fluid`] (DESIGN.md §7 lists
//! the replicated solve as a miniaturization; this module removes it
//! for the solver phase and is validated against the serial solution).
//!
//! Decomposition follows standard FEM practice:
//! * each element belongs to one rank (the mesh partition);
//! * each *node* is owned by the lowest rank whose elements touch it;
//! * a rank's matrix rows are its owned nodes; assembling its elements
//!   also produces contributions to rows owned by neighbors, which are
//!   shipped to the owners once per assembly (the "assembly exchange");
//! * SpMV needs the x-values of *ghost* nodes (referenced, not owned),
//!   refreshed by a neighbor halo exchange each iteration;
//! * dot products reduce owned entries with an allreduce.

use cfpd_mesh::Mesh;
use cfpd_simmpi::{Comm, ReduceOp};
use std::collections::HashMap;

/// Distributed decomposition of the node space for one rank.
#[derive(Debug)]
pub struct HaloMap {
    /// My rank in the solver communicator.
    pub rank: usize,
    /// Global ids of the nodes I own (sorted).
    pub owned: Vec<u32>,
    /// Global ids of ghost nodes (referenced by my elements, owned
    /// elsewhere; sorted).
    pub ghosts: Vec<u32>,
    /// global node id -> local index (owned first, then ghosts).
    local_of: HashMap<u32, u32>,
    /// Owner rank of each of my ghosts (aligned with `ghosts`).
    ghost_owner: Vec<u32>,
    /// For each neighbor rank: the list of *my owned* nodes (local
    /// indices) whose values I must send them each halo exchange.
    send_lists: Vec<(usize, Vec<u32>)>,
    /// For each neighbor rank: how many ghost values I receive and the
    /// local ghost indices they land in (in their sorted order).
    recv_lists: Vec<(usize, Vec<u32>)>,
}

const TAG_HALO: u64 = 40;
const TAG_ROWS: u64 = 41;

impl HaloMap {
    /// Number of local nodes (owned + ghosts).
    pub fn num_local(&self) -> usize {
        self.owned.len() + self.ghosts.len()
    }

    /// Local index of a global node id (panics if not local).
    pub fn local(&self, global: u32) -> usize {
        self.local_of[&global] as usize
    }

    /// Global id of a local index (owned first, then ghosts).
    pub fn global(&self, local: usize) -> u32 {
        if local < self.owned.len() {
            self.owned[local]
        } else {
            self.ghosts[local - self.owned.len()]
        }
    }

    /// Per-neighbor send lists as *global* node ids, in send order:
    /// the owned nodes whose values this rank ships to each neighbor on
    /// every halo exchange.
    pub fn send_globals(&self) -> Vec<(usize, Vec<u32>)> {
        self.send_lists
            .iter()
            .map(|(r, locals)| (*r, locals.iter().map(|&l| self.global(l as usize)).collect()))
            .collect()
    }

    /// Per-neighbor receive lists as *global* node ids, in receive
    /// order: the ghost nodes this rank refreshes from each neighbor.
    pub fn recv_globals(&self) -> Vec<(usize, Vec<u32>)> {
        self.recv_lists
            .iter()
            .map(|(r, locals)| (*r, locals.iter().map(|&l| self.global(l as usize)).collect()))
            .collect()
    }

    /// Build the halo map. `elem_owner[e]` assigns each element to a
    /// rank; every rank calls this collectively with the same input
    /// (the mesh is globally replicated in this virtual cluster, but
    /// only *ownership metadata* is derived globally — values flow
    /// strictly through the exchanges).
    pub fn build(mesh: &Mesh, elem_owner: &[u32], comm: &Comm) -> HaloMap {
        let me = comm.rank() as u32;
        // Node owner = min rank of touching elements (locally computable
        // and globally consistent).
        let mut node_owner = vec![u32::MAX; mesh.num_nodes()];
        for e in 0..mesh.num_elements() {
            let o = elem_owner[e];
            for &v in mesh.elem_nodes(e) {
                node_owner[v as usize] = node_owner[v as usize].min(o);
            }
        }
        // My local node space must cover (a) every node of my own
        // elements (I assemble contributions into those rows/columns)
        // and (b) every node of any element touching one of my owned
        // nodes — neighbors assembling such elements ship me row
        // contributions whose *columns* are those second-ring nodes.
        let n2e = mesh.node_to_elements();
        let mut referenced: Vec<u32> = (0..mesh.num_elements())
            .filter(|&e| elem_owner[e] == me)
            .flat_map(|e| mesh.elem_nodes(e).iter().copied())
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        let mut local_set: std::collections::BTreeSet<u32> = referenced.iter().copied().collect();
        for &v in &referenced {
            if node_owner[v as usize] == me {
                for &e in n2e.row(v as usize) {
                    local_set.extend(mesh.elem_nodes(e as usize).iter().copied());
                }
            }
        }
        let mut owned = Vec::new();
        let mut ghosts = Vec::new();
        for v in local_set {
            if node_owner[v as usize] == me {
                owned.push(v);
            } else {
                ghosts.push(v);
            }
        }
        let mut local_of = HashMap::with_capacity(owned.len() + ghosts.len());
        for (i, &v) in owned.iter().chain(ghosts.iter()).enumerate() {
            local_of.insert(v, i as u32);
        }
        let ghost_owner: Vec<u32> = ghosts.iter().map(|&v| node_owner[v as usize]).collect();

        // Tell each owner which of their nodes I need (alltoall).
        let n = comm.size();
        let mut needs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (g, &o) in ghosts.iter().zip(&ghost_owner) {
            needs[o as usize].push(*g);
        }
        let requested = comm.alltoall(needs.clone());
        // Build send lists (owned local indices, in the requester's
        // sorted global order) and recv lists (ghost local indices).
        let mut send_lists = Vec::new();
        for (rank, req) in requested.into_iter().enumerate() {
            if rank != me as usize && !req.is_empty() {
                let locals = req.iter().map(|&g| local_of[&g]).collect();
                send_lists.push((rank, locals));
            }
        }
        let mut recv_lists = Vec::new();
        for (rank, need) in needs.into_iter().enumerate() {
            if rank != me as usize && !need.is_empty() {
                let locals = need.iter().map(|&g| local_of[&g]).collect();
                recv_lists.push((rank, locals));
            }
        }

        HaloMap { rank: me as usize, owned, ghosts, local_of, ghost_owner, send_lists, recv_lists }
    }

    /// Refresh the ghost entries of a local vector from their owners.
    pub fn exchange(&self, comm: &Comm, x: &mut [f64]) {
        assert_eq!(x.len(), self.num_local());
        for (rank, locals) in &self.send_lists {
            let payload: Vec<f64> = locals.iter().map(|&l| x[l as usize]).collect();
            comm.send(*rank, TAG_HALO, payload);
        }
        for (rank, locals) in &self.recv_lists {
            let payload: Vec<f64> = comm.recv(*rank, TAG_HALO);
            assert_eq!(payload.len(), locals.len());
            for (&l, v) in locals.iter().zip(payload) {
                x[l as usize] = v;
            }
        }
    }

    /// Sum contributions assembled into *ghost rows* back onto their
    /// owners, then zero the ghost rows locally (assembly exchange).
    /// `rows[l]` holds (global_col, value) pairs for local row `l`;
    /// `rhs` is the matching local right-hand side.
    pub fn accumulate_rows(
        &self,
        comm: &Comm,
        rows: &mut [Vec<(u32, f64)>],
        rhs: &mut [f64],
    ) {
        let n_owned = self.owned.len();
        // Bucket ghost-row contributions by owner.
        let mut outgoing: HashMap<usize, Vec<(u32, Vec<(u32, f64)>, f64)>> = HashMap::new();
        for (gi, (&gnode, &gowner)) in self.ghosts.iter().zip(&self.ghost_owner).enumerate() {
            let l = n_owned + gi;
            if rows[l].is_empty() && rhs[l] == 0.0 {
                continue;
            }
            outgoing
                .entry(gowner as usize)
                .or_default()
                .push((gnode, std::mem::take(&mut rows[l]), rhs[l]));
            rhs[l] = 0.0;
        }
        // Every neighbor pair exchanges (possibly empty) batches; the
        // neighbor sets of the halo are symmetric by construction.
        let mut neighbors: Vec<usize> = self
            .send_lists
            .iter()
            .map(|(r, _)| *r)
            .chain(self.recv_lists.iter().map(|(r, _)| *r))
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        for &r in &neighbors {
            let batch = outgoing.remove(&r).unwrap_or_default();
            comm.send(r, TAG_ROWS, batch);
        }
        for &r in &neighbors {
            let batch: Vec<(u32, Vec<(u32, f64)>, f64)> = comm.recv(r, TAG_ROWS);
            for (gnode, cols, b) in batch {
                let l = self.local(gnode);
                debug_assert!(l < n_owned, "received row for a node we don't own");
                rows[l].extend(cols);
                rhs[l] += b;
            }
        }
    }
}

/// A distributed CSR matrix: rows = owned nodes (local order), columns
/// indexed by *local* ids (owned + ghosts).
#[derive(Debug)]
pub struct DistMatrix {
    pub row_ptr: Vec<u32>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
    pub n_owned: usize,
    pub n_local: usize,
}

impl DistMatrix {
    /// Build from per-row (global_col, value) contribution lists
    /// (post-assembly-exchange), sorting and merging duplicate columns.
    pub fn from_rows(halo: &HaloMap, rows: &[Vec<(u32, f64)>]) -> DistMatrix {
        let n_owned = halo.owned.len();
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in rows.iter().take(n_owned) {
            let mut entries: Vec<(u32, f64)> = row
                .iter()
                .map(|&(gc, v)| (halo.local(gc) as u32, v))
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
            for (c, v) in entries {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        DistMatrix { row_ptr, col_idx, values, n_owned, n_local: halo.num_local() }
    }

    /// y(owned) = A x(local); ghosts of `x` must be current.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_local);
        for row in 0..self.n_owned {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[row] = acc;
        }
    }

    /// Replace an owned row with identity (Dirichlet).
    pub fn set_dirichlet_row(&mut self, row: usize) {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        for k in lo..hi {
            self.values[k] = if self.col_idx[k] as usize == row { 1.0 } else { 0.0 };
        }
    }

    /// Diagonal of the owned block.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n_owned)
            .map(|row| {
                let lo = self.row_ptr[row] as usize;
                let hi = self.row_ptr[row + 1] as usize;
                (lo..hi)
                    .find(|&k| self.col_idx[k] as usize == row)
                    .map_or(0.0, |k| self.values[k])
            })
            .collect()
    }
}

/// Distributed Jacobi-preconditioned CG. `x` is a local vector (owned +
/// ghosts) holding the initial guess; on return its owned part is the
/// solution (ghosts refreshed). `b` covers owned rows.
pub fn dist_cg(
    comm: &Comm,
    halo: &HaloMap,
    a: &DistMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
) -> crate::DistSolveStats {
    let n_owned = a.n_owned;
    let diag = a.diagonal();
    let dot = |u: &[f64], v: &[f64]| -> f64 {
        let local: f64 = u[..n_owned].iter().zip(&v[..n_owned]).map(|(a, b)| a * b).sum();
        comm.allreduce_f64(local, ReduceOp::Sum)
    };
    halo.exchange(comm, x);
    let mut r = vec![0.0; n_owned];
    a.spmv(x, &mut r);
    for i in 0..n_owned {
        r[i] = b[i] - r[i];
    }
    let b_norm = {
        let local: f64 = b.iter().map(|v| v * v).sum();
        comm.allreduce_f64(local, ReduceOp::Sum).sqrt().max(1e-300)
    };
    let jacobi = |r: &[f64], z: &mut [f64]| {
        for i in 0..n_owned {
            let d = diag[i];
            z[i] = if d.abs() > 1e-300 { r[i] / d } else { r[i] };
        }
    };
    let mut z = vec![0.0; n_owned];
    jacobi(&r, &mut z);
    // p is a *local* vector (needs ghosts for SpMV).
    let mut p = vec![0.0; halo.num_local()];
    p[..n_owned].copy_from_slice(&z);
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n_owned];
    for it in 0..max_iters {
        let res = {
            let local: f64 = r.iter().map(|v| v * v).sum();
            comm.allreduce_f64(local, ReduceOp::Sum).sqrt() / b_norm
        };
        if res < tol {
            halo.exchange(comm, x);
            return crate::DistSolveStats { iterations: it, residual: res, converged: true };
        }
        halo.exchange(comm, &mut p);
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap.abs() < 1e-300 {
            return crate::DistSolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        for i in 0..n_owned {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        jacobi(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n_owned {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = {
        let local: f64 = r.iter().map(|v| v * v).sum();
        comm.allreduce_f64(local, ReduceOp::Sum).sqrt() / b_norm
    };
    halo.exchange(comm, x);
    crate::DistSolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

/// Assemble the pressure-Poisson system distributedly over `my` elements
/// and solve it with [`dist_cg`]; returns (owned globals, owned values).
/// Used by tests and by the distributed-solver demonstration path.
#[allow(clippy::too_many_arguments)]
pub fn assemble_and_solve_poisson(
    mesh: &Mesh,
    elem_owner: &[u32],
    comm: &Comm,
    velocity: &[cfpd_mesh::Vec3],
    props: cfpd_solver::FluidProps,
    dt: f64,
    dirichlet: &[u32],
    tol: f64,
    max_iters: usize,
) -> (Vec<u32>, Vec<f64>, crate::DistSolveStats) {
    use cfpd_solver::kernels::poisson_kernel;
    use cfpd_solver::{ElementScratch, RefElement};

    let halo = HaloMap::build(mesh, elem_owner, comm);
    let me = comm.rank() as u32;
    let refs = RefElement::all();
    let mut scratch = ElementScratch::default();
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); halo.num_local()];
    let mut rhs = vec![0.0; halo.num_local()];
    for e in 0..mesh.num_elements() {
        if elem_owner[e] != me {
            continue;
        }
        let (kind, nn) = scratch.load(mesh, velocity, e);
        if let Some(lp) = poisson_kernel(&refs, &scratch, kind, nn, props, dt) {
            let nodes = mesh.elem_nodes(e);
            for i in 0..nn {
                let li = halo.local(nodes[i]);
                for j in 0..nn {
                    rows[li].push((nodes[j], lp.l[i][j]));
                }
                rhs[li] += lp.b[i];
            }
        }
    }
    halo.accumulate_rows(comm, &mut rows, &mut rhs);
    let mut a = DistMatrix::from_rows(&halo, &rows);
    // Dirichlet rows on owned boundary nodes.
    let dirichlet_set: std::collections::HashSet<u32> = dirichlet.iter().copied().collect();
    for (l, &g) in halo.owned.iter().enumerate() {
        if dirichlet_set.contains(&g) {
            a.set_dirichlet_row(l);
            rhs[l] = 0.0;
        }
    }
    let mut x = vec![0.0; halo.num_local()];
    let stats = dist_cg(comm, &halo, &a, &rhs[..halo.owned.len()], &mut x, tol, max_iters);
    (halo.owned.clone(), x[..halo.owned.len()].to_vec(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec, BoundaryKind};
    use cfpd_partition::{partition_kway, Graph};
    use cfpd_simmpi::Universe;
    use std::sync::Arc;

    fn setup() -> (Arc<cfpd_mesh::AirwayMesh>, Arc<Vec<u32>>) {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let n2e = am.mesh.node_to_elements();
        let adj = am.mesh.element_adjacency(&n2e);
        let g = Graph::from_csr_unit(&adj);
        let part = partition_kway(&g, 3, 3);
        (Arc::new(am), Arc::new(part.parts))
    }

    #[test]
    fn ownership_partitions_the_node_space() {
        let (am, owner) = setup();
        let am2 = Arc::clone(&am);
        let ow2 = Arc::clone(&owner);
        let results = Universe::run(3, move |comm| {
            let halo = HaloMap::build(&am2.mesh, &ow2, &comm);
            (halo.owned.clone(), halo.ghosts.clone())
        });
        // Owned sets are disjoint and cover all nodes.
        let mut seen = vec![false; am.mesh.num_nodes()];
        for (owned, _) in &results {
            for &v in owned {
                assert!(!seen[v as usize], "node {v} owned twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node must be owned");
        // Ghosts are never owned by the same rank.
        for (owned, ghosts) in &results {
            let set: std::collections::HashSet<_> = owned.iter().collect();
            assert!(ghosts.iter().all(|g| !set.contains(g)));
        }
    }

    #[test]
    fn halo_exchange_delivers_owner_values() {
        let (am, owner) = setup();
        let am2 = Arc::clone(&am);
        let ow2 = Arc::clone(&owner);
        Universe::run(3, move |comm| {
            let halo = HaloMap::build(&am2.mesh, &ow2, &comm);
            // Every owner writes f(global id); ghosts start poisoned.
            let mut x = vec![f64::NAN; halo.num_local()];
            for (l, &g) in halo.owned.iter().enumerate() {
                x[l] = g as f64 * 0.5;
            }
            halo.exchange(&comm, &mut x);
            for (gi, &g) in halo.ghosts.iter().enumerate() {
                let v = x[halo.owned.len() + gi];
                assert_eq!(v, g as f64 * 0.5, "ghost {g} wrong");
            }
        });
    }

    /// The headline validation: the distributed Poisson solve equals the
    /// serial one on every owned node.
    #[test]
    fn distributed_poisson_matches_serial() {
        let (am, owner) = setup();
        // Serial reference.
        let mesh = &am.mesh;
        let n2e = mesh.node_to_elements();
        let mut a_ser = cfpd_solver::CsrMatrix::from_mesh(mesh, &n2e);
        let n = mesh.num_nodes();
        let mut rhs_ser = vec![vec![0.0; n]];
        let velocity: Vec<cfpd_mesh::Vec3> = mesh
            .coords
            .iter()
            .map(|p| cfpd_mesh::Vec3::new(p.z, -p.x, p.y))
            .collect();
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let plan = cfpd_solver::AssemblyPlan::new(
            mesh,
            elems,
            cfpd_solver::AssemblyStrategy::Serial,
            1,
        );
        let pool = cfpd_runtime::ThreadPool::new(1);
        cfpd_solver::assemble_poisson(
            &pool,
            &cfpd_solver::RefElement::all(),
            mesh,
            &plan,
            &velocity,
            cfpd_solver::FluidProps::default(),
            1e-3,
            &mut a_ser,
            &mut rhs_ser,
        );
        // Dirichlet on outlet nodes.
        let outlet: Vec<u32> = {
            use std::collections::BTreeSet;
            let mut s = BTreeSet::new();
            for &(e, f, kind) in &mesh.boundary {
                if kind == BoundaryKind::Outlet {
                    let nodes = mesh.elem_nodes(e as usize);
                    for &li in mesh.kinds[e as usize].faces()[f as usize] {
                        s.insert(nodes[li]);
                    }
                }
            }
            s.into_iter().collect()
        };
        for &v in &outlet {
            a_ser.set_dirichlet_row(v as usize);
            rhs_ser[0][v as usize] = 0.0;
        }
        let mut x_ser = vec![0.0; n];
        let s = cfpd_solver::cg(&a_ser, &rhs_ser[0], &mut x_ser, 1e-10, 4000);
        assert!(s.converged, "serial reference did not converge: {s:?}");

        // Distributed solve on 3 ranks.
        let am2 = Arc::clone(&am);
        let ow2 = Arc::clone(&owner);
        let vel2 = Arc::new(velocity);
        let out2 = Arc::new(outlet);
        let results = Universe::run(3, move |comm| {
            assemble_and_solve_poisson(
                &am2.mesh,
                &ow2,
                &comm,
                &vel2,
                cfpd_solver::FluidProps::default(),
                1e-3,
                &out2,
                1e-10,
                4000,
            )
        });
        let scale = x_ser.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
        for (owned, values, stats) in results {
            assert!(stats.converged, "{stats:?}");
            for (&g, &v) in owned.iter().zip(&values) {
                let diff = (v - x_ser[g as usize]).abs();
                assert!(
                    diff < 1e-6 * scale,
                    "node {g}: dist {v} vs serial {}",
                    x_ser[g as usize]
                );
            }
        }
    }
}
