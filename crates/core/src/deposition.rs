//! Deposition maps — the scientific deliverable of a CFPD respiratory
//! simulation (§1: "deposition maps generated via CFPD simulations and
//! their integration into clinical practice"). Aggregates particle
//! outcomes by airway branch generation.

use cfpd_mesh::AirwayMesh;
use cfpd_particles::{ParticleSet, ParticleState};

/// Outcome counts for one branch generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationRow {
    pub generation: u16,
    /// Particles stuck to walls of this generation's branches.
    pub deposited: usize,
    /// Particles still in flight within this generation.
    pub active: usize,
}

/// Whole-tree deposition summary.
#[derive(Debug, Clone, Default)]
pub struct DepositionMap {
    pub per_generation: Vec<GenerationRow>,
    pub total_particles: usize,
    pub escaped: usize,
    pub lost: usize,
}

impl DepositionMap {
    /// Fraction of all particles deposited in `generation`.
    pub fn deposited_fraction(&self, generation: u16) -> f64 {
        if self.total_particles == 0 {
            return 0.0;
        }
        self.per_generation
            .iter()
            .find(|r| r.generation == generation)
            .map_or(0.0, |r| r.deposited as f64 / self.total_particles as f64)
    }

    /// Fraction that escaped to the deeper lung (beyond the meshed tree).
    pub fn escaped_fraction(&self) -> f64 {
        if self.total_particles == 0 {
            return 0.0;
        }
        self.escaped as f64 / self.total_particles as f64
    }

    /// Fraction deposited anywhere in the meshed tree ("lost dose" in
    /// extrathoracic terms when the target is the deep lung).
    pub fn deposited_fraction_total(&self) -> f64 {
        let dep: usize = self.per_generation.iter().map(|r| r.deposited).sum();
        if self.total_particles == 0 {
            0.0
        } else {
            dep as f64 / self.total_particles as f64
        }
    }

    /// Render as an ASCII bar table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let dep_total: usize = self.per_generation.iter().map(|r| r.deposited).sum();
        for r in &self.per_generation {
            let pct = 100.0 * r.deposited as f64 / self.total_particles.max(1) as f64;
            let bar = "#".repeat(r.deposited * 40 / dep_total.max(1));
            out.push_str(&format!("gen {:>2}: {:>5.1}% deposited  {bar}\n", r.generation, pct));
        }
        out.push_str(&format!(
            "escaped to deeper lung: {:.1}%, still airborne: {:.1}%\n",
            100.0 * self.escaped_fraction(),
            100.0
                * self.per_generation.iter().map(|r| r.active).sum::<usize>() as f64
                / self.total_particles.max(1) as f64
        ));
        out
    }
}

/// Build the deposition map of `set` over the airway tree.
pub fn deposition_map(airway: &AirwayMesh, set: &ParticleSet) -> DepositionMap {
    let max_gen = airway.elem_generation.iter().copied().max().unwrap_or(0);
    let mut rows: Vec<GenerationRow> = (0..=max_gen)
        .map(|g| GenerationRow { generation: g, ..Default::default() })
        .collect();
    let mut escaped = 0;
    let mut lost = 0;
    for i in 0..set.len() {
        let gen = airway.elem_generation[set.elem[i] as usize] as usize;
        match set.state[i] {
            ParticleState::Deposited => rows[gen].deposited += 1,
            ParticleState::Active => rows[gen].active += 1,
            ParticleState::Escaped => escaped += 1,
            ParticleState::Lost => lost += 1,
        }
    }
    DepositionMap { per_generation: rows, total_particles: set.len(), escaped, lost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec, Vec3};
    use cfpd_particles::{inject_at_inlet, step_particles, Locator, ParticleProps, ParticleSet};

    #[test]
    fn map_accounts_for_every_particle() {
        let airway = generate_airway(&AirwaySpec::small()).unwrap();
        let locator = Locator::new(&airway.mesh);
        let mut set = ParticleSet::default();
        inject_at_inlet(
            &mut set,
            &locator,
            airway.inlet_center,
            airway.inlet_direction,
            airway.inlet_radius,
            1.0,
            ParticleProps { diameter: 30e-6, density: 1500.0 },
            300,
            3,
        );
        let flow = vec![Vec3::new(0.5, 0.0, -2.0); airway.mesh.num_nodes()];
        for _ in 0..300 {
            step_particles(&mut set, &locator, &flow, 1.14, 1.9e-5, Vec3::new(0.0, 0.0, -9.81), 1e-3);
        }
        let map = deposition_map(&airway, &set);
        let counted: usize = map
            .per_generation
            .iter()
            .map(|r| r.deposited + r.active)
            .sum::<usize>()
            + map.escaped
            + map.lost;
        assert_eq!(counted, set.len());
        assert_eq!(map.total_particles, set.len());
        // Fractions are consistent.
        let f_total: f64 = (0..=map.per_generation.len() as u16 - 1)
            .map(|g| map.deposited_fraction(g))
            .sum();
        assert!((f_total - map.deposited_fraction_total()).abs() < 1e-12);
        // Render never panics and mentions every generation.
        let render = map.render();
        assert!(render.contains("gen  0"));
    }

    #[test]
    fn empty_set() {
        let airway = generate_airway(&AirwaySpec::small()).unwrap();
        let map = deposition_map(&airway, &ParticleSet::default());
        assert_eq!(map.total_particles, 0);
        assert_eq!(map.deposited_fraction_total(), 0.0);
        assert_eq!(map.escaped_fraction(), 0.0);
    }
}
