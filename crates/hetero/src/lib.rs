//! cfpd-hetero: heterogeneous-cluster emulation and predictive DLB.
//!
//! The paper runs the same CFPD workload on two very different
//! machines — out-of-order Xeon (MareNostrum4) and in-order ThunderX
//! (Thunder) — and balances load reactively with DLB/LeWI. This crate
//! asks the follow-on question: what happens on a *mixed* cluster, and
//! how much of the reactive scheme's cost can a model-driven predictor
//! win back by moving cores *before* ranks block?
//!
//! Three layers:
//!
//! - [`profiles`] — named per-rank speed/skew profiles calibrated from
//!   the [`cfpd_perfmodel::Platform`] models; live runs inject the skew
//!   deterministically via [`cfpd_simmpi::ProfileHooks`].
//! - [`predictor`] — the online [`ImbalancePredictor`]: per-rank demand
//!   EWMA fed by POP useful/wait telemetry, pre-lend planning, and a
//!   per-rank reactive fallback when predictions miss.
//! - [`emulator`] — a deterministic virtual-time step-loop emulator that
//!   prices the two real LeWI costs (lend latency, keep-one busy-wait)
//!   and scores reactive vs predictive with POP metrics (PE = LB × CommE).

pub mod emulator;
pub mod predictor;
pub mod profiles;

pub use emulator::{emulate, EmulatorConfig, PolicyMetrics};
pub use predictor::{ImbalancePredictor, PredictorConfig, PredictorStats};
pub use profiles::{profile_by_name, speeds, thunder_vs_mn4_speed, PROFILE_NAMES};
