//! The online imbalance predictor: observe → model → act.
//!
//! Reactive LeWI only moves cores *after* a rank has already blocked —
//! the fast rank's surplus arrives at the straggler late, plus a
//! detection/growth latency. The [`ImbalancePredictor`] closes the loop
//! one step earlier: it maintains an EWMA of each rank's *work demand*
//! (useful seconds × cores held ≈ core-seconds per step), seeded from
//! the platform-calibrated speed profile, and before the next blocking
//! call computes each rank's fair core share under that demand. Ranks
//! holding more than their share pre-lend the surplus
//! ([`cfpd_dlb::DlbNode::pre_lend`]) while still computing.
//!
//! Safety valve: after every step each rank compares the predicted wait
//! against the wait actually measured at the barrier. A relative error
//! beyond `error_bound` flips that rank back to purely reactive lending
//! for the next step (its pre-lend plan is zero), so a mispredicting
//! model degrades to LeWI instead of starving ranks — and core
//! conservation holds throughout because pre-lent cores ride the same
//! `lent_out` accounting reactive lends use.
//!
//! Everything here is pure arithmetic over the observations it is fed:
//! fed virtual-time observations (the [`crate::emulator`]), the
//! predictor is bit-deterministic.

use cfpd_testkit::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs of the predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// EWMA gain for demand updates (1.0 = trust only the last step).
    pub alpha: f64,
    /// Relative wait-prediction error beyond which a rank falls back to
    /// reactive lending for the next step.
    pub error_bound: f64,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig { alpha: 0.5, error_bound: 0.75 }
    }
}

/// Cumulative predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Plans issued that pre-lent at least one core.
    pub plans: u64,
    /// Total cores pre-lent across all plans.
    pub pre_lent_cores: u64,
    /// Steps a rank spent in reactive fallback after a misprediction.
    pub fallbacks: u64,
}

struct PredState {
    /// EWMA of per-rank work demand [core-seconds per step].
    demand: Vec<f64>,
    /// Wait predicted for the next barrier, per rank [s].
    predicted_wait: Vec<f64>,
    /// Forecast step makespan backing each wait prediction [s] — the
    /// scale prediction errors are judged against.
    predicted_step: Vec<f64>,
    /// Ranks currently in reactive fallback.
    fallback: Vec<bool>,
}

/// Online per-rank imbalance model (see module docs).
pub struct ImbalancePredictor {
    cfg: PredictorConfig,
    /// Cores each rank owns (uniform, as in the paper's runs).
    owned: usize,
    state: Mutex<PredState>,
    plans: AtomicU64,
    pre_lent_cores: AtomicU64,
    fallbacks: AtomicU64,
}

impl ImbalancePredictor {
    /// Build a predictor for `ranks` ranks of `owned` cores each,
    /// seeding the demand model from per-rank relative `speeds` (the
    /// platform calibration): a rank at speed `s` is expected to need
    /// `owned / s` core-seconds for the same work a full-speed rank
    /// finishes in `owned`.
    pub fn calibrated(
        ranks: usize,
        owned: usize,
        speeds: &[f64],
        cfg: PredictorConfig,
    ) -> ImbalancePredictor {
        assert!(ranks > 0 && owned > 0);
        let demand = (0..ranks)
            .map(|r| {
                let s = if speeds.is_empty() { 1.0 } else { speeds[r % speeds.len()] };
                owned as f64 / s.max(1e-9)
            })
            .collect();
        ImbalancePredictor {
            cfg,
            owned,
            state: Mutex::new(PredState {
                demand,
                predicted_wait: vec![0.0; ranks],
                predicted_step: vec![0.0; ranks],
                fallback: vec![false; ranks],
            }),
            plans: AtomicU64::new(0),
            pre_lent_cores: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    pub fn ranks(&self) -> usize {
        self.state.lock().demand.len()
    }

    pub fn owned(&self) -> usize {
        self.owned
    }

    /// Feed one step's observation for `rank`: it spent `useful_secs`
    /// computing while holding `cores` cores.
    pub fn observe(&self, rank: usize, useful_secs: f64, cores: f64) {
        let mut st = self.state.lock();
        if rank >= st.demand.len() || !useful_secs.is_finite() || useful_secs < 0.0 {
            return;
        }
        let obs = useful_secs * cores.max(1.0);
        let a = self.cfg.alpha.clamp(0.0, 1.0);
        st.demand[rank] = a * obs + (1.0 - a) * st.demand[rank];
    }

    /// Plan `rank`'s pre-lend for the coming step: how many of its
    /// owned cores to hand over *before* blocking. Zero while the rank
    /// is in reactive fallback. Also records the wait this plan implies,
    /// which [`ImbalancePredictor::feedback`] later scores.
    pub fn plan(&self, rank: usize) -> usize {
        let mut st = self.state.lock();
        let n = st.demand.len();
        if rank >= n {
            return 0;
        }
        if st.fallback[rank] {
            // Reactive step: predict the wait the raw imbalance implies
            // so feedback can decide whether the model is trusted again.
            let (step, own_time) = self.forecast(&st.demand, rank, self.owned as f64);
            st.predicted_wait[rank] = (step - own_time).max(0.0);
            st.predicted_step[rank] = step;
            return 0;
        }
        let total = (n * self.owned) as f64;
        let sum: f64 = st.demand.iter().sum();
        let share = if sum > 0.0 { total * st.demand[rank] / sum } else { self.owned as f64 };
        // Keep at least one core (the rank keeps computing, and later
        // busy-waits on it); lend whole surplus cores only.
        let keep = share.ceil().max(1.0).min(self.owned as f64);
        let lend = self.owned - keep as usize;
        let (step, own_time) = self.forecast(&st.demand, rank, keep);
        st.predicted_wait[rank] = (step - own_time).max(0.0);
        st.predicted_step[rank] = step;
        drop(st);
        if lend > 0 {
            self.plans.fetch_add(1, Ordering::Relaxed);
            self.pre_lent_cores.fetch_add(lend as u64, Ordering::Relaxed);
            cfpd_telemetry::count!("hetero.pre_lend_plans");
            cfpd_telemetry::count!("hetero.pre_lent_cores", lend as u64);
        }
        lend
    }

    /// Re-score the wait prediction for the cores `rank` actually ended
    /// up with (a pre-lend may be partially granted, and the emulator
    /// hands out fractional cores) — keeps feedback judging the model,
    /// not the granting machinery.
    pub fn note_allocation(&self, rank: usize, cores: f64) {
        let mut st = self.state.lock();
        if rank >= st.demand.len() {
            return;
        }
        let (step, own_time) = self.forecast(&st.demand, rank, cores.max(1e-9));
        st.predicted_wait[rank] = (step - own_time).max(0.0);
        st.predicted_step[rank] = step;
    }

    /// Forecast `(step_makespan, rank's own compute time)` if `rank`
    /// runs on `cores` and the cluster balances to the demand model.
    fn forecast(&self, demand: &[f64], rank: usize, cores: f64) -> (f64, f64) {
        let n = demand.len();
        let total = (n * self.owned) as f64;
        let step = demand.iter().sum::<f64>() / total.max(1e-9);
        let own = demand[rank] / cores.max(1e-9);
        (step.max(own), own)
    }

    /// Score the prediction with the wait actually measured at the
    /// barrier. The error is normalized by the forecast step makespan —
    /// a mis-sized wait only matters in proportion to the step it
    /// disturbs. Beyond the bound the rank flips into reactive fallback
    /// for the next step; an accurate step flips it back. Returns
    /// `true` if the rank is now in fallback.
    pub fn feedback(&self, rank: usize, actual_wait_secs: f64) -> bool {
        let mut st = self.state.lock();
        if rank >= st.predicted_wait.len() {
            return false;
        }
        let predicted = st.predicted_wait[rank];
        let err = (predicted - actual_wait_secs).abs() / st.predicted_step[rank].max(1e-9);
        let fell = err > self.cfg.error_bound;
        st.fallback[rank] = fell;
        drop(st);
        if fell {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            cfpd_telemetry::count!("hetero.fallbacks");
        }
        fell
    }

    /// Continuous core allocation over all ranks summing to `total`
    /// (the emulator's water-fill): fallback ranks are pinned at their
    /// owned allotment, the rest share the remainder in proportion to
    /// demand, everyone floored at `min_cores`.
    pub fn allocations(&self, total: f64, min_cores: f64) -> Vec<f64> {
        let st = self.state.lock();
        let n = st.demand.len();
        let mut alloc = vec![0.0f64; n];
        let mut fixed = vec![false; n];
        let mut pool = total;
        for r in 0..n {
            if st.fallback[r] {
                alloc[r] = self.owned as f64;
                fixed[r] = true;
                pool -= alloc[r];
            }
        }
        // Proportional share for the free ranks; ranks driven under the
        // floor are pinned there and the rest re-shared (≤ n rounds).
        loop {
            let free: Vec<usize> = (0..n).filter(|&r| !fixed[r]).collect();
            if free.is_empty() {
                break;
            }
            let sum: f64 = free.iter().map(|&r| st.demand[r]).sum();
            let mut pinned_any = false;
            for &r in &free {
                let share = if sum > 0.0 {
                    pool * st.demand[r] / sum
                } else {
                    pool / free.len() as f64
                };
                if share < min_cores {
                    alloc[r] = min_cores;
                    fixed[r] = true;
                    pool -= min_cores;
                    pinned_any = true;
                }
            }
            if !pinned_any {
                for &r in &free {
                    alloc[r] = if sum > 0.0 {
                        pool * st.demand[r] / sum
                    } else {
                        pool / free.len() as f64
                    };
                }
                break;
            }
        }
        alloc
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PredictorStats {
        let fallbacks = self.fallbacks.load(Ordering::Relaxed);
        PredictorStats {
            plans: self.plans.load(Ordering::Relaxed),
            pre_lent_cores: self.pre_lent_cores.load(Ordering::Relaxed),
            fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_seeds_demand_from_speeds() {
        let p = ImbalancePredictor::calibrated(4, 2, &[1.0, 0.25], PredictorConfig::default());
        // Fast ranks hold surplus vs their fair share: 2-core rank with
        // demand 2 in a cluster whose mean demand is 5 → share < 1 →
        // keep 1, lend 1.
        assert_eq!(p.plan(0), 1);
        assert_eq!(p.plan(2), 1);
        // Slow ranks keep everything.
        assert_eq!(p.plan(1), 0);
        assert_eq!(p.plan(3), 0);
        let s = p.stats();
        assert_eq!(s.plans, 2);
        assert_eq!(s.pre_lent_cores, 2);
    }

    #[test]
    fn uniform_speeds_plan_nothing() {
        let p = ImbalancePredictor::calibrated(4, 4, &[1.0], PredictorConfig::default());
        for r in 0..4 {
            assert_eq!(p.plan(r), 0, "balanced cluster must not pre-lend");
        }
        assert_eq!(p.stats().plans, 0);
    }

    #[test]
    fn observations_move_the_model() {
        let p = ImbalancePredictor::calibrated(2, 4, &[1.0], PredictorConfig { alpha: 1.0, error_bound: 0.75 });
        // Rank 1 repeatedly observed 3× busier than rank 0.
        p.observe(0, 1.0, 4.0);
        p.observe(1, 3.0, 4.0);
        // Rank 0's fair share of 8 cores under demand 4:12 is 2 → lend 2.
        assert_eq!(p.plan(0), 2);
        assert_eq!(p.plan(1), 0);
    }

    #[test]
    fn misprediction_falls_back_then_recovers() {
        let p = ImbalancePredictor::calibrated(2, 2, &[1.0, 0.2], PredictorConfig::default());
        // Demand 2 vs 10 over 4 cores → rank 0's share is 0.67 → keep 1,
        // lend 1, forecast step 3 with own time 2 → predicted wait 1.
        assert_eq!(p.plan(0), 1);
        // The barrier wait came out wildly different from the forecast:
        // reactive fallback engages and the next plan is zero.
        assert!(p.feedback(0, 1e6));
        assert_eq!(p.plan(0), 0);
        assert_eq!(p.stats().fallbacks, 1);
        // An accurate follow-up step re-arms prediction. The reactive
        // step's forecast (own 2/2=1 vs step 3 → wait 2) was recorded by
        // plan(); echo it back as the measured wait.
        assert!(!p.feedback(0, 2.0));
        assert_eq!(p.plan(0), 1, "recovered after an accurate step");
    }

    #[test]
    fn allocations_conserve_and_respect_fallback() {
        let p = ImbalancePredictor::calibrated(4, 2, &[1.0, 0.25], PredictorConfig::default());
        let a = p.allocations(8.0, 1.0);
        assert!((a.iter().sum::<f64>() - 8.0).abs() < 1e-9, "{a:?}");
        assert!(a[1] > a[0], "slow rank gets more cores: {a:?}");
        assert!(a.iter().all(|&c| c >= 1.0), "floor respected: {a:?}");
        // Push rank 0 into fallback: it is pinned at owned cores.
        p.plan(0);
        p.feedback(0, 1e6);
        let b = p.allocations(8.0, 1.0);
        assert_eq!(b[0], 2.0, "fallback rank pinned at owned: {b:?}");
        assert!((b.iter().sum::<f64>() - 8.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let p = ImbalancePredictor::calibrated(4, 2, &[1.0, 0.2], PredictorConfig::default());
            let mut out = Vec::new();
            for step in 0..10 {
                for r in 0..4 {
                    p.observe(r, 0.1 * (r as f64 + 1.0) + 0.01 * step as f64, 2.0);
                    out.push(p.plan(r));
                    p.feedback(r, 0.05 * r as f64);
                }
            }
            (out, p.allocations(8.0, 1.0), p.stats())
        };
        assert_eq!(run(), run());
    }
}
