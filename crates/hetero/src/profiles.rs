//! Named heterogeneity profiles, calibrated against the platform models.
//!
//! The headline profile, `mn4_thunder`, alternates MareNostrum4-class
//! and Thunder-class ranks: the per-class relative speed is derived
//! from [`Platform::core_speed`] (frequency × IPC), not hand-tuned, so
//! the emulated skew tracks the paper's published calibration — a
//! ThunderX rank retires work at ≈ 19 % of a Xeon rank's rate.

use cfpd_perfmodel::Platform;
use cfpd_simmpi::RankProfile;

/// Names accepted by [`profile_by_name`] (campaign key `hetero = ...`).
pub const PROFILE_NAMES: &[&str] = &["uniform", "mn4_thunder", "thunder_tail"];

/// Delay scale for live runs [ms per unit slowness per blocking call]:
/// large enough that a mixed profile visibly skews wall-clock phase
/// times, small enough that tier-1 tests stay fast.
const LIVE_STALL_MS: f64 = 2.0;

/// Relative speed of a Thunder-class rank vs a MareNostrum4-class rank,
/// from the calibrated platform models.
pub fn thunder_vs_mn4_speed() -> f64 {
    Platform::thunder().core_speed() / Platform::mare_nostrum4().core_speed()
}

/// Resolve a profile by name. `Err` carries the unknown name and the
/// accepted set, for campaign/CLI diagnostics.
pub fn profile_by_name(name: &str, seed: u64) -> Result<RankProfile, String> {
    match name {
        "uniform" => Ok(RankProfile::uniform(seed)),
        // Alternating fast/slow: with the block rank→node mapping every
        // node holds both classes, so DLB has something to move.
        "mn4_thunder" => Ok(RankProfile::new(
            "mn4_thunder",
            seed,
            vec![1.0, thunder_vs_mn4_speed()],
            LIVE_STALL_MS,
        )),
        // One slow rank in four — the single-straggler regime.
        "thunder_tail" => Ok(RankProfile::new(
            "thunder_tail",
            seed,
            vec![1.0, 1.0, 1.0, thunder_vs_mn4_speed()],
            LIVE_STALL_MS,
        )),
        other => Err(format!(
            "unknown hetero profile {other:?} (known: {})",
            PROFILE_NAMES.join(", ")
        )),
    }
}

/// Per-rank relative speeds of `profile` expanded over `ranks` ranks.
pub fn speeds(profile: &RankProfile, ranks: usize) -> Vec<f64> {
    (0..ranks).map(|r| profile.speed_of(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thunder_ratio_tracks_the_platform_calibration() {
        // (1.8 GHz × 0.49 IPC) / (2.1 GHz × 2.25 IPC) ≈ 0.1867.
        let r = thunder_vs_mn4_speed();
        assert!((0.15..0.25).contains(&r), "{r}");
    }

    #[test]
    fn every_listed_profile_resolves() {
        for name in PROFILE_NAMES {
            let p = profile_by_name(name, 42).expect(name);
            assert_eq!(p.name, *name);
        }
        let err = profile_by_name("warp9", 0).unwrap_err();
        assert!(err.contains("warp9") && err.contains("mn4_thunder"), "{err}");
    }

    #[test]
    fn mixed_profile_alternates_classes() {
        let p = profile_by_name("mn4_thunder", 1).unwrap();
        let s = speeds(&p, 4);
        assert_eq!(s[0], 1.0);
        assert!(s[1] < 1.0);
        assert_eq!(s[0], s[2]);
        assert_eq!(s[1], s[3]);
    }
}
