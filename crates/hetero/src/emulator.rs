//! Deterministic virtual-time emulator of a heterogeneous cluster step
//! loop under reactive-LeWI vs predictive DLB.
//!
//! Why not reuse the perfmodel DES directly? With fully-malleable work
//! and *instant* lending, reactive LeWI already reaches the
//! `Σwork / Σcores` makespan lower bound — prediction cannot beat it.
//! The costs that make pre-lending pay are the ones real LeWI carries:
//!
//! - **lend latency**: a reactive lend only lands a detection delay
//!   *after* the fast rank blocks, so the straggler runs under-provisioned
//!   in the meantime;
//! - **keep-one busy-wait**: a blocked rank spins on one core, which is
//!   therefore never lent.
//!
//! This emulator models both, in virtual time, with no randomness and no
//! wall-clock reads — every run is bit-identical. Per step each rank
//! owes `work_per_step / speed(rank)` core-seconds; rates follow the
//! shared [`efficiency_curve`]. Under [`DlbPolicy::Reactive`] every rank
//! starts on its owned cores and sheds `cores − 1` to same-node workers
//! `lend_latency` after finishing. Under [`DlbPolicy::Predictive`] the
//! [`ImbalancePredictor`] sets the step's starting allocation (its
//! water-fill, renormalized per node), then the same reactive machinery
//! mops up whatever imbalance the model missed — and per-rank feedback
//! drops a mispredicting rank back to the reactive start for a step.

use crate::predictor::{ImbalancePredictor, PredictorConfig};
use crate::profiles;
use cfpd_dlb::DlbPolicy;
use cfpd_perfmodel::{efficiency_curve, Platform};
use cfpd_simmpi::RankProfile;

/// One emulated cluster + workload.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    pub ranks: usize,
    pub nodes: usize,
    pub steps: usize,
    /// Cores each rank owns at step start.
    pub cores_per_rank: usize,
    /// Core-seconds a unit-speed rank owes per step.
    pub work_per_step: f64,
    /// Per-rank relative speeds (cycled if shorter than `ranks`).
    pub speeds: Vec<f64>,
    /// Speeds the predictor is calibrated with — `None` means the true
    /// `speeds` (a mismatch exercises the fallback path).
    pub calibration_speeds: Option<Vec<f64>>,
    /// Per-extra-core efficiency loss (shared curve).
    pub efficiency_loss: f64,
    /// Barrier/allreduce latency closing each step [s].
    pub comm_latency: f64,
    /// Delay between a rank blocking and its reactive lend landing [s].
    pub lend_latency: f64,
    pub predictor: PredictorConfig,
}

impl EmulatorConfig {
    /// A cluster of `ranks` ranks over `nodes` nodes running `profile`,
    /// with the non-speed constants taken from the MareNostrum4
    /// platform model (host cluster of the paper's DLB experiments).
    pub fn calibrated(
        profile: &RankProfile,
        ranks: usize,
        nodes: usize,
        steps: usize,
    ) -> EmulatorConfig {
        let mn4 = Platform::mare_nostrum4();
        EmulatorConfig {
            ranks,
            nodes,
            steps,
            cores_per_rank: 4,
            // Unit-speed ranks take ~1 s/step on their own cores.
            work_per_step: 4.0,
            speeds: profiles::speeds(profile, ranks),
            calibration_speeds: None,
            efficiency_loss: mn4.thread_efficiency_loss,
            comm_latency: mn4.comm_latency,
            // DLB detection + OpenMP region growth before lent cores do
            // useful work — the cost pre-lending sidesteps.
            lend_latency: 0.05,
            predictor: PredictorConfig::default(),
        }
    }

    fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks.div_ceil(self.nodes)
    }

    fn speed(&self, rank: usize) -> f64 {
        self.speeds[rank % self.speeds.len()]
    }
}

/// POP-style efficiency metrics of one emulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyMetrics {
    pub policy: DlbPolicy,
    /// Virtual wall-clock of the whole run [s].
    pub wall_secs: f64,
    /// Per-rank useful (computing) seconds.
    pub useful_secs: Vec<f64>,
    /// Load balance: avg(useful) / max(useful).
    pub lb: f64,
    /// Communication efficiency: max(useful) / wall.
    pub comm_e: f64,
    /// Parallel efficiency: LB × CommE = avg(useful) / wall.
    pub pe: f64,
    /// Pre-lend plans that shed at least one core (predictive only).
    pub pre_lends: u64,
    /// Steps a rank spent in reactive fallback (predictive only).
    pub fallbacks: u64,
}

/// Emulate `cfg` under `policy`.
pub fn emulate(cfg: &EmulatorConfig, policy: DlbPolicy) -> PolicyMetrics {
    assert!(cfg.ranks > 0 && cfg.nodes > 0 && cfg.cores_per_rank > 0);
    assert!(!cfg.speeds.is_empty());
    let n = cfg.ranks;
    let predictor = match policy {
        DlbPolicy::Reactive => None,
        DlbPolicy::Predictive => {
            let cal = cfg.calibration_speeds.as_deref().unwrap_or(&cfg.speeds);
            Some(ImbalancePredictor::calibrated(
                n,
                cfg.cores_per_rank,
                cal,
                cfg.predictor,
            ))
        }
    };

    let mut useful = vec![0.0f64; n];
    let mut wall = 0.0f64;
    for _step in 0..cfg.steps {
        // Step-start allocation.
        let alloc = match &predictor {
            None => vec![cfg.cores_per_rank as f64; n],
            Some(p) => {
                // plan() records each rank's predicted wait (and the
                // pre-lend counters) before the blocking call …
                for r in 0..n {
                    p.plan(r);
                }
                // … and the water-fill gives the continuous allocation,
                // renormalized so each node conserves its own cores.
                let global = p.allocations((n * cfg.cores_per_rank) as f64, 1.0);
                let alloc = renormalize_per_node(cfg, &global);
                // Score predictions against the cores actually granted.
                for r in 0..n {
                    p.note_allocation(r, alloc[r]);
                }
                alloc
            }
        };

        let finish = run_step(cfg, &alloc);
        let max_finish = finish.iter().fold(0.0f64, |a, &b| a.max(b));
        let t_end = max_finish + cfg.comm_latency;
        wall += t_end;
        for r in 0..n {
            useful[r] += finish[r];
            if let Some(p) = &predictor {
                p.observe(r, finish[r], alloc[r]);
                p.feedback(r, max_finish - finish[r]);
            }
        }
    }

    let avg = useful.iter().sum::<f64>() / n as f64;
    let max = useful.iter().fold(0.0f64, |a, &b| a.max(b));
    let lb = if max > 0.0 { avg / max } else { 1.0 };
    let comm_e = if wall > 0.0 { max / wall } else { 1.0 };
    let stats = predictor.map(|p| p.stats()).unwrap_or_default();
    PolicyMetrics {
        policy,
        wall_secs: wall,
        useful_secs: useful,
        lb,
        comm_e,
        pe: lb * comm_e,
        pre_lends: stats.plans,
        fallbacks: stats.fallbacks,
    }
}

/// Scale each node's slice of `global` so it sums to the node's cores
/// (the predictor's water-fill is cluster-wide; lending is intra-node).
fn renormalize_per_node(cfg: &EmulatorConfig, global: &[f64]) -> Vec<f64> {
    let mut alloc = global.to_vec();
    for node in 0..cfg.nodes {
        let members: Vec<usize> =
            (0..cfg.ranks).filter(|&r| cfg.node_of(r) == node).collect();
        if members.is_empty() {
            continue;
        }
        let have: f64 = members.iter().map(|&r| global[r]).sum();
        let want = (members.len() * cfg.cores_per_rank) as f64;
        if have > 0.0 {
            for &r in &members {
                alloc[r] = global[r] * want / have;
            }
        }
    }
    alloc
}

const EPS: f64 = 1e-9;

/// Run one step from allocation `alloc`; returns per-rank finish times.
///
/// Event loop in virtual time: the next event is either a rank
/// finishing (it then keeps one busy-wait core and schedules a lend of
/// the rest at `t + lend_latency`) or a scheduled lend landing (its
/// cores are split equally among the node's still-working ranks; cores
/// with no worker left to take them idle out).
fn run_step(cfg: &EmulatorConfig, alloc: &[f64]) -> Vec<f64> {
    let n = cfg.ranks;
    let mut finish = vec![0.0f64; n];
    for node in 0..cfg.nodes {
        let members: Vec<usize> =
            (0..n).filter(|&r| cfg.node_of(r) == node).collect();
        if members.is_empty() {
            continue;
        }
        let mut work: Vec<f64> =
            members.iter().map(|&r| cfg.work_per_step / cfg.speed(r)).collect();
        let mut cores: Vec<f64> = members.iter().map(|&r| alloc[r]).collect();
        let mut done = vec![false; members.len()];
        // Pending lends: (arrival time, cores).
        let mut lends: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0f64;
        loop {
            let working: Vec<usize> =
                (0..members.len()).filter(|&i| !done[i]).collect();
            if working.is_empty() {
                break;
            }
            let rate =
                |c: f64| c * efficiency_curve(cfg.efficiency_loss, c);
            let t_fin = working
                .iter()
                .map(|&i| t + work[i] / rate(cores[i]))
                .fold(f64::INFINITY, f64::min);
            let t_lend =
                lends.iter().map(|&(at, _)| at).fold(f64::INFINITY, f64::min);
            let t_next = t_fin.min(t_lend);
            let dt = t_next - t;
            for &i in &working {
                work[i] = (work[i] - dt * rate(cores[i])).max(0.0);
            }
            t = t_next;
            // Finishes first: a lend landing at the same instant goes to
            // the ranks still working after them.
            for &i in &working {
                if work[i] <= EPS {
                    done[i] = true;
                    finish[members[i]] = t;
                    let spare = (cores[i] - 1.0).max(0.0);
                    if spare > 0.0 {
                        lends.push((t + cfg.lend_latency, spare));
                    }
                    cores[i] = 1.0; // keep-one busy-wait
                }
            }
            let mut arrived = 0.0f64;
            lends.retain(|&(at, c)| {
                if at <= t + EPS {
                    arrived += c;
                    false
                } else {
                    true
                }
            });
            if arrived > 0.0 {
                let still: Vec<usize> =
                    (0..members.len()).filter(|&i| !done[i]).collect();
                if !still.is_empty() {
                    let each = arrived / still.len() as f64;
                    for &i in &still {
                        cores[i] += each;
                    }
                }
                // else: the lend landed after everyone blocked — idle.
            }
        }
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_cfg() -> EmulatorConfig {
        let profile = profiles::profile_by_name("mn4_thunder", 7).unwrap();
        EmulatorConfig::calibrated(&profile, 4, 2, 6)
    }

    #[test]
    fn uniform_cluster_needs_no_dlb() {
        let profile = profiles::profile_by_name("uniform", 1).unwrap();
        let cfg = EmulatorConfig::calibrated(&profile, 4, 1, 3);
        let m = emulate(&cfg, DlbPolicy::Reactive);
        assert!(m.lb > 0.999, "{m:?}");
        assert!(m.pe > 0.99, "{m:?}");
        let p = emulate(&cfg, DlbPolicy::Predictive);
        assert_eq!(p.pre_lends, 0, "nothing to pre-lend when balanced");
    }

    #[test]
    fn predictive_beats_reactive_on_mixed_nodes() {
        let cfg = mixed_cfg();
        let re = emulate(&cfg, DlbPolicy::Reactive);
        let pr = emulate(&cfg, DlbPolicy::Predictive);
        assert!(re.pe < 0.9, "reactive leaves imbalance on the table: {re:?}");
        assert!(
            pr.pe > re.pe + 0.05,
            "predictive must improve PE: {} vs {}",
            pr.pe,
            re.pe
        );
        assert!(pr.wall_secs < re.wall_secs, "{} vs {}", pr.wall_secs, re.wall_secs);
        assert!(pr.pre_lends > 0);
        assert_eq!(pr.fallbacks, 0, "a calibrated model should hold: {pr:?}");
    }

    #[test]
    fn miscalibrated_model_falls_back_then_recovers() {
        let mut cfg = mixed_cfg();
        // Lie to the predictor: swap which class is slow.
        let mut lie = cfg.speeds.clone();
        lie.reverse();
        cfg.calibration_speeds = Some(lie);
        let pr = emulate(&cfg, DlbPolicy::Predictive);
        let re = emulate(&cfg, DlbPolicy::Reactive);
        assert!(pr.fallbacks > 0, "the lie must be caught: {pr:?}");
        // Observations overwrite the bad prior within a few steps, so
        // the run still ends ahead of pure reactive.
        assert!(pr.pe > re.pe, "{} vs {}", pr.pe, re.pe);
    }

    #[test]
    fn pop_identity_holds() {
        for policy in [DlbPolicy::Reactive, DlbPolicy::Predictive] {
            let m = emulate(&mixed_cfg(), policy);
            assert!((m.pe - m.lb * m.comm_e).abs() < 1e-12, "{m:?}");
            assert!(m.lb > 0.0 && m.lb <= 1.0);
            assert!(m.comm_e > 0.0 && m.comm_e <= 1.0);
        }
    }

    #[test]
    fn emulation_is_bit_deterministic() {
        let cfg = mixed_cfg();
        for policy in [DlbPolicy::Reactive, DlbPolicy::Predictive] {
            let a = emulate(&cfg, policy);
            let b = emulate(&cfg, policy);
            assert_eq!(a, b, "virtual time must not wobble");
        }
    }

    #[test]
    fn lend_latency_is_what_prediction_buys_back() {
        let mut cfg = mixed_cfg();
        cfg.lend_latency = 0.0;
        let re0 = emulate(&cfg, DlbPolicy::Reactive);
        cfg.lend_latency = 0.2;
        let re2 = emulate(&cfg, DlbPolicy::Reactive);
        let pr2 = emulate(&cfg, DlbPolicy::Predictive);
        // Reactive pays for every unit of latency; predictive shrugs it
        // off because its cores moved before the block.
        assert!(re2.wall_secs > re0.wall_secs);
        assert!(pr2.wall_secs < re2.wall_secs);
    }
}
