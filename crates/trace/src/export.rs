//! Trace exporters: Paraver (`.prv` / `.pcf` / `.row`) and Chrome
//! `trace_event` JSON.
//!
//! Both exporters are deterministic: records are sorted internally, the
//! `.prv` header carries a fixed date, and timestamps are derived from
//! the trace's `f64` seconds by explicit rounding (nanoseconds for
//! Paraver, microseconds for Chrome). This is what lets the golden
//! snapshot tests byte-compare exporter output for a synthetic trace.
//!
//! Format references: the Paraver trace body uses the three classic
//! record kinds — `1:` state, `2:` punctual event, `3:` communication —
//! with the object hierarchy `cpu:appl:task:thread`; Chrome JSON uses
//! complete (`"X"`), flow (`"s"`/`"f"`), instant (`"i"`) and metadata
//! (`"M"`) events, loadable in `chrome://tracing` and Perfetto.

use crate::event::{worker_view, DlbMarkKind, Phase, Trace, WorkerEvent, WorkerState};
use cfpd_telemetry::JsonWriter;

/// Paraver state value per worker state (matching the stock
/// `STATES` palette: 1 Running, 3 Waiting a message, 7 Schedule and
/// Fork/Join).
fn prv_state(state: WorkerState) -> u64 {
    match state {
        WorkerState::MpiWait => 3,
        WorkerState::RuntimeOverhead => 7,
        _ => 1,
    }
}

/// Event-type ids in our `.pcf` (picked in the Extrae user-event range).
const EV_STATE: u64 = 90000001;
const EV_DLB: u64 = 90000002;
const EV_DLB_CORES: u64 = 90000003;
const EV_CHAOS: u64 = 90000004;

fn ns(t: f64) -> u64 {
    (t * 1e9).round().max(0.0) as u64
}

fn us(t: f64) -> f64 {
    (t * 1e9).round() / 1e3
}

/// `1 + index` value for a worker state in the `.pcf` VALUES table.
fn state_value(state: WorkerState) -> u64 {
    WorkerState::ALL.iter().position(|s| *s == state).unwrap() as u64 + 1
}

fn dlb_value(kind: DlbMarkKind) -> u64 {
    // PreLend is appended last so the numeric values of the original
    // six kinds (and every blessed .prv golden) stay stable.
    const ALL: [DlbMarkKind; 7] = [
        DlbMarkKind::Lend,
        DlbMarkKind::Borrow,
        DlbMarkKind::Reclaim,
        DlbMarkKind::Revoke,
        DlbMarkKind::LeaseExpired,
        DlbMarkKind::Crashed,
        DlbMarkKind::PreLend,
    ];
    ALL.iter().position(|k| *k == kind).unwrap() as u64 + 1
}

/// Threads per rank implied by the trace (at least 1).
fn threads_per_rank(trace: &Trace, workers: &[WorkerEvent]) -> Vec<usize> {
    let mut threads = vec![1usize; trace.num_ranks];
    for w in workers {
        threads[w.rank] = threads[w.rank].max(w.worker + 1);
    }
    threads
}

/// First CPU id (1-based) of each rank, given threads-per-rank.
fn cpu_base(threads: &[usize]) -> Vec<u64> {
    let mut base = Vec::with_capacity(threads.len());
    let mut next = 1u64;
    for &t in threads {
        base.push(next);
        next += t as u64;
    }
    base
}

/// Render the `.prv` trace body (header + state/event/comm records).
pub fn export_prv(trace: &Trace) -> String {
    let workers = worker_view(trace);
    let threads = threads_per_rank(trace, &workers);
    let bases = cpu_base(&threads);
    let total_cpus: usize = threads.iter().sum();
    let ftime = ns(trace.total_time());

    // Header: fixed date so output is reproducible; one node holding
    // all cpus; one application whose task list is `threads:node`.
    let task_list: Vec<String> = threads.iter().map(|t| format!("{t}:1")).collect();
    let mut out = format!(
        "#Paraver (01/01/2026 at 00:00):{}_ns:1({}):1:{}({})\n",
        ftime,
        total_cpus,
        trace.num_ranks,
        task_list.join(",")
    );

    // All records carry a primary sort timestamp so the body is
    // time-ordered like an Extrae merge.
    let mut records: Vec<(u64, u8, String)> = Vec::new();

    for w in &workers {
        let (t0, t1) = (ns(w.t_start), ns(w.t_end));
        let cpu = bases[w.rank] + w.worker as u64;
        let (task, thread) = (w.rank as u64 + 1, w.worker as u64 + 1);
        records.push((
            t0,
            1,
            format!("1:{cpu}:1:{task}:{thread}:{t0}:{t1}:{}", prv_state(w.state)),
        ));
        // Punctual event pair carrying the detailed state: value at
        // entry, 0 at exit (the standard Extrae begin/end encoding).
        records.push((
            t0,
            2,
            format!("2:{cpu}:1:{task}:{thread}:{t0}:{EV_STATE}:{}", state_value(w.state)),
        ));
        records.push((t1, 2, format!("2:{cpu}:1:{task}:{thread}:{t1}:{EV_STATE}:0")));
    }

    for m in &trace.dlb {
        let t = ns(m.t);
        let cpu = bases[m.rank];
        let task = m.rank as u64 + 1;
        records.push((
            t,
            2,
            format!(
                "2:{cpu}:1:{task}:1:{t}:{EV_DLB}:{}:{EV_DLB_CORES}:{}",
                dlb_value(m.kind),
                m.cores
            ),
        ));
    }

    for c in &trace.chaos {
        let t = ns(c.t);
        let cpu = bases[c.rank];
        let task = c.rank as u64 + 1;
        let value = match c.kind {
            crate::event::ChaosKind::FaultInjected => 1,
            crate::event::ChaosKind::TimeoutFired => 2,
            crate::event::ChaosKind::CheckpointWritten => 3,
        };
        records.push((t, 2, format!("2:{cpu}:1:{task}:1:{t}:{EV_CHAOS}:{value}")));
    }

    for msg in &trace.messages {
        let (ts, tr) = (ns(msg.t_send), ns(msg.t_recv));
        let (cs, cr) = (bases[msg.src], bases[msg.dst]);
        let (tks, tkr) = (msg.src as u64 + 1, msg.dst as u64 + 1);
        // Logical and physical send/recv coincide in our simulator.
        records.push((
            ts,
            3,
            format!(
                "3:{cs}:1:{tks}:1:{ts}:{ts}:{cr}:1:{tkr}:1:{tr}:{tr}:{}:{}",
                msg.bytes, msg.tag
            ),
        ));
    }

    records.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    for (_, _, line) in records {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Render the `.pcf` configuration (state palette + event-type tables).
pub fn export_pcf() -> String {
    let mut out = String::from(
        "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               NANOSEC\n\n\
         STATES\n0    Idle\n1    Running\n2    Not created\n3    Waiting a message\n\
         4    Blocking Send\n5    Synchronization\n6    Test/Probe\n\
         7    Schedule and Fork/Join\n8    Wait/WaitAll\n9    Blocked\n\n\
         STATES_COLOR\n0    {117,195,255}\n1    {0,0,255}\n3    {255,0,0}\n\
         7    {255,255,0}\n\n",
    );

    out.push_str(&format!("EVENT_TYPE\n0    {EV_STATE}    CFPD worker state\nVALUES\n"));
    out.push_str("0      End\n");
    for s in WorkerState::ALL {
        out.push_str(&format!("{}      {}\n", state_value(s), s.name()));
    }
    out.push('\n');

    out.push_str(&format!("EVENT_TYPE\n0    {EV_DLB}    DLB transition\nVALUES\n"));
    out.push_str("0      End\n");
    for k in [
        DlbMarkKind::Lend,
        DlbMarkKind::Borrow,
        DlbMarkKind::Reclaim,
        DlbMarkKind::Revoke,
        DlbMarkKind::LeaseExpired,
        DlbMarkKind::Crashed,
        DlbMarkKind::PreLend,
    ] {
        out.push_str(&format!("{}      {}\n", dlb_value(k), k.name()));
    }
    out.push('\n');

    out.push_str(&format!("EVENT_TYPE\n0    {EV_DLB_CORES}    DLB cores moved\n\n"));

    out.push_str(&format!("EVENT_TYPE\n0    {EV_CHAOS}    Chaos incident\nVALUES\n"));
    out.push_str("0      End\n1      fault\n2      timeout\n3      checkpoint\n");
    out
}

/// Render the `.row` object-name listing.
pub fn export_row(trace: &Trace) -> String {
    let workers = worker_view(trace);
    let threads = threads_per_rank(trace, &workers);
    let total: usize = threads.iter().sum();

    let mut out = format!("LEVEL CPU SIZE {total}\n");
    for (rank, &t) in threads.iter().enumerate() {
        for w in 0..t {
            out.push_str(&format!("CPU {rank}.{w}\n"));
        }
    }
    out.push_str(&format!("\nLEVEL TASK SIZE {}\n", trace.num_ranks));
    for rank in 0..trace.num_ranks {
        out.push_str(&format!("RANK {rank}\n"));
    }
    out.push_str(&format!("\nLEVEL THREAD SIZE {total}\n"));
    for (rank, &t) in threads.iter().enumerate() {
        for w in 0..t {
            out.push_str(&format!("RANK {rank} WORKER {w}\n"));
        }
    }
    out
}

/// Render Chrome `trace_event` JSON (one object with a `traceEvents`
/// array; `pid` = rank, `tid` = worker, timestamps in microseconds).
pub fn export_chrome(trace: &Trace) -> String {
    let workers = worker_view(trace);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();

    for rank in 0..trace.num_ranks {
        w.begin_object();
        w.key("ph").string("M");
        w.key("name").string("process_name");
        w.key("pid").u64(rank as u64);
        w.key("args").begin_object();
        w.key("name").string(&format!("rank {rank}"));
        w.end_object();
        w.end_object();
    }

    for e in &workers {
        w.begin_object();
        w.key("ph").string("X");
        w.key("name").string(e.state.name());
        w.key("cat").string("state");
        w.key("pid").u64(e.rank as u64);
        w.key("tid").u64(e.worker as u64);
        w.key("ts").f64(us(e.t_start));
        w.key("dur").f64(us(e.t_end) - us(e.t_start));
        w.end_object();
    }

    let mut messages = trace.messages.clone();
    messages.sort_by(|a, b| {
        (a.src, a.dst, a.tag)
            .cmp(&(b.src, b.dst, b.tag))
            .then(a.t_send.total_cmp(&b.t_send))
    });
    for (id, m) in messages.iter().enumerate() {
        for (ph, pid, ts) in [("s", m.src, m.t_send), ("f", m.dst, m.t_recv)] {
            w.begin_object();
            w.key("ph").string(ph);
            if ph == "f" {
                w.key("bp").string("e");
            }
            w.key("name").string("msg");
            w.key("cat").string("msg");
            w.key("id").u64(id as u64);
            w.key("pid").u64(pid as u64);
            w.key("tid").u64(0);
            w.key("ts").f64(us(ts));
            w.key("args").begin_object();
            w.key("bytes").u64(m.bytes as u64);
            w.key("tag").string(&m.tag.to_string());
            w.end_object();
            w.end_object();
        }
    }

    for m in &trace.dlb {
        w.begin_object();
        w.key("ph").string("i");
        w.key("s").string("t");
        w.key("name").string(m.kind.name());
        w.key("cat").string("dlb");
        w.key("pid").u64(m.rank as u64);
        w.key("tid").u64(0);
        w.key("ts").f64(us(m.t));
        w.key("args").begin_object();
        w.key("cores").u64(m.cores as u64);
        w.end_object();
        w.end_object();
    }

    for c in &trace.chaos {
        w.begin_object();
        w.key("ph").string("i");
        w.key("s").string("t");
        w.key("name").string(c.kind.name());
        w.key("cat").string("chaos");
        w.key("pid").u64(c.rank as u64);
        w.key("tid").u64(0);
        w.key("ts").f64(us(c.t));
        w.end_object();
    }

    w.end_array();
    w.end_object();
    w.finish()
}

/// Render the deterministic run summary consumed by `cfpd trace diff`.
///
/// The `phases` and `messages` aggregates are protocol-deterministic
/// for a fixed seed (interval counts, message counts and byte totals);
/// the `*_time` fields are wall-clock measurements and therefore only
/// informational — [`crate::diff`] excludes them from the zero-delta
/// verdict. Message tags are serialized as strings because collective
/// tags sit near `u64::MAX`, beyond `f64`'s exact-integer range.
pub fn export_summary(trace: &Trace) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ranks").u64(trace.num_ranks as u64);
    w.key("wall_time").f64(trace.events.iter().map(|e| e.t_end).fold(0.0, f64::max));

    w.key("phases").begin_array();
    for rank in 0..trace.num_ranks {
        for phase in Phase::ALL {
            let (mut count, mut time) = (0u64, 0.0f64);
            for e in &trace.events {
                if e.rank == rank && e.phase == phase {
                    count += 1;
                    time += e.duration();
                }
            }
            if count > 0 {
                w.begin_object();
                w.key("rank").u64(rank as u64);
                w.key("phase").string(phase.name());
                w.key("count").u64(count);
                w.key("time").f64(time);
                w.end_object();
            }
        }
    }
    w.end_array();

    // Aggregate messages per (src, dst, tag).
    let mut keys: Vec<(usize, usize, u64)> =
        trace.messages.iter().map(|m| (m.src, m.dst, m.tag)).collect();
    keys.sort_unstable();
    keys.dedup();
    w.key("messages").begin_array();
    for (src, dst, tag) in keys {
        let (mut count, mut bytes) = (0u64, 0u64);
        for m in &trace.messages {
            if (m.src, m.dst, m.tag) == (src, dst, tag) {
                count += 1;
                bytes += m.bytes as u64;
            }
        }
        w.begin_object();
        w.key("src").u64(src as u64);
        w.key("dst").u64(dst as u64);
        w.key("tag").string(&tag.to_string());
        w.key("count").u64(count);
        w.key("bytes").u64(bytes);
        w.end_object();
    }
    w.end_array();

    w.key("dlb_marks").u64(trace.dlb.len() as u64);
    w.key("chaos_marks").u64(trace.chaos.len() as u64);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChaosKind, DlbMarkKind};

    fn sample() -> Trace {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 1.0);
        t.record(1, Phase::Assembly, 0.0, 0.5);
        t.record_worker(0, 0, WorkerState::Assembly, 0.0, 1.0);
        t.record_worker(1, 0, WorkerState::Assembly, 0.0, 0.5);
        t.record_worker(1, 0, WorkerState::MpiWait, 0.5, 1.0);
        t.record_worker(0, 1, WorkerState::Useful, 0.25, 0.75);
        t.record_msg(0, 1, 42, 8, 0.9, 0.95);
        t.record_dlb(1, 0.6, DlbMarkKind::Lend, 2);
        t.record_chaos(0, 0.3, ChaosKind::FaultInjected);
        t
    }

    #[test]
    fn prv_header_and_record_kinds() {
        let prv = export_prv(&sample());
        let mut lines = prv.lines();
        let header = lines.next().unwrap();
        // ftime = 1s = 1e9 ns; 3 cpus (2 on rank 0, 1 on rank 1);
        // 2 tasks with 2 and 1 threads.
        assert_eq!(header, "#Paraver (01/01/2026 at 00:00):1000000000_ns:1(3):1:2(2:1,1:1)");
        let body: Vec<&str> = lines.collect();
        assert!(body.iter().any(|l| l.starts_with("1:") && l.ends_with(":3")),
            "missing MpiWait state record");
        assert!(body.iter().any(|l| l.starts_with("3:")), "missing comm record");
        assert!(body.iter().any(|l| l.contains(&format!(":{EV_DLB}:"))));
        assert!(body.iter().any(|l| l.contains(&format!(":{EV_CHAOS}:"))));
        // Time-sorted.
        let times: Vec<u64> = body
            .iter()
            .map(|l| l.split(':').nth(5).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "records not time-sorted");
    }

    #[test]
    fn pcf_declares_all_state_values() {
        let pcf = export_pcf();
        for s in WorkerState::ALL {
            assert!(pcf.contains(s.name()), "missing state {:?}", s);
        }
        assert!(pcf.contains("Waiting a message"));
        assert!(pcf.contains(&EV_DLB.to_string()));
    }

    #[test]
    fn row_lists_every_thread() {
        let row = export_row(&sample());
        assert!(row.contains("LEVEL THREAD SIZE 3"));
        assert!(row.contains("RANK 0 WORKER 1"));
        assert!(row.contains("RANK 1 WORKER 0"));
    }

    #[test]
    fn chrome_json_parses_and_has_all_event_kinds() {
        let doc = export_chrome(&sample());
        let v = cfpd_testkit::parse_json(&doc).expect("chrome JSON must parse");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |p: &str| {
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some(p)).count()
        };
        assert_eq!(ph("M"), 2);
        assert_eq!(ph("X"), 4);
        assert_eq!(ph("s"), 1);
        assert_eq!(ph("f"), 1);
        assert_eq!(ph("i"), 2);
    }

    #[test]
    fn summary_aggregates_are_deterministic() {
        let doc = export_summary(&sample());
        let v = cfpd_testkit::parse_json(&doc).expect("summary must parse");
        assert_eq!(v.get("ranks").unwrap().as_u64(), Some(2));
        let msgs = v.get("messages").unwrap().as_array().unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].get("tag").unwrap().as_str(), Some("42"));
        assert_eq!(msgs[0].get("bytes").unwrap().as_u64(), Some(8));
        assert_eq!(export_summary(&sample()), doc, "summary not deterministic");
    }
}
