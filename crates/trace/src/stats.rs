//! Aggregate efficiency metrics derived from a trace — the quantities a
//! performance analyst reads off a Paraver view: parallel efficiency,
//! communication fraction, per-rank useful duty cycle.

use crate::event::{Phase, Trace};

/// Efficiency summary of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total wall time (end of last event).
    pub wall_time: f64,
    /// Σ useful (non-MPI) busy time over ranks.
    pub useful_time: f64,
    /// Σ time inside MPI.
    pub mpi_time: f64,
    /// Useful time / (ranks × wall): the classic parallel efficiency.
    pub parallel_efficiency: f64,
    /// MPI time / Σ busy time.
    pub comm_fraction: f64,
    /// Per-rank useful duty cycle (useful_r / wall).
    pub duty_cycle: Vec<f64>,
}

/// Compute the efficiency summary.
///
/// The wall clock is the end of the last *phase* interval — worker-level
/// events (which include the trailing barrier wait when tracing is on)
/// are deliberately excluded so these numbers match the online POP
/// rollup, which is fed the same phase intervals.
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let wall = trace.events.iter().map(|e| e.t_end).fold(0.0, f64::max);
    let n = trace.num_ranks.max(1);
    let mut useful = vec![0.0f64; n];
    let mut mpi = 0.0;
    for e in &trace.events {
        if e.phase == Phase::MpiComm {
            mpi += e.duration();
        } else {
            useful[e.rank] += e.duration();
        }
    }
    let useful_total: f64 = useful.iter().sum();
    let busy = useful_total + mpi;
    TraceStats {
        wall_time: wall,
        useful_time: useful_total,
        mpi_time: mpi,
        parallel_efficiency: if wall > 0.0 { useful_total / (n as f64 * wall) } else { 1.0 },
        comm_fraction: if busy > 0.0 { mpi / busy } else { 0.0 },
        duty_cycle: useful
            .iter()
            .map(|&u| if wall > 0.0 { u / wall } else { 0.0 })
            .collect(),
    }
}

impl TraceStats {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "wall {:.4}s, parallel efficiency {:.1}%, comm fraction {:.1}%",
            self.wall_time,
            100.0 * self.parallel_efficiency,
            100.0 * self.comm_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_busy_trace_is_fully_efficient() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 1.0);
        t.record(1, Phase::Assembly, 0.0, 1.0);
        let s = trace_stats(&t);
        assert!((s.parallel_efficiency - 1.0).abs() < 1e-12);
        assert_eq!(s.comm_fraction, 0.0);
        assert_eq!(s.duty_cycle, vec![1.0, 1.0]);
    }

    #[test]
    fn idle_rank_halves_efficiency() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Particles, 0.0, 2.0);
        // Rank 1 never works.
        let s = trace_stats(&t);
        assert!((s.parallel_efficiency - 0.5).abs() < 1e-12);
        assert_eq!(s.duty_cycle[1], 0.0);
    }

    #[test]
    fn mpi_time_counts_as_overhead() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Solver1, 0.0, 3.0);
        t.record(0, Phase::MpiComm, 3.0, 4.0);
        let s = trace_stats(&t);
        assert!((s.comm_fraction - 0.25).abs() < 1e-12);
        assert!((s.parallel_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let s = trace_stats(&Trace::new(4));
        assert_eq!(s.wall_time, 0.0);
        assert_eq!(s.parallel_efficiency, 1.0);
        assert!(s.summary().contains("efficiency"));
    }
}
