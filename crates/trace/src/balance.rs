//! Load-balance analytics: the Lₙ metric of eq. 9 and the per-phase
//! breakdown of Table 1.

use crate::event::{Phase, Trace};

/// Load balance of a per-rank time vector (eq. 9):
/// `Lₙ = Σᵢ tᵢ / (n · maxᵢ tᵢ)`. 1.0 = perfect, 0.5 = half the
/// resources wasted. Returns 1.0 for an all-zero vector (an idle phase
/// is not imbalanced).
pub fn load_balance(times: &[f64]) -> f64 {
    let n = times.len();
    if n == 0 {
        return 1.0;
    }
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return 1.0;
    }
    times.iter().sum::<f64>() / (n as f64 * max)
}

/// One row of the Table 1 style report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    pub phase: Phase,
    /// Lₙ over the ranks.
    pub load_balance: f64,
    /// Share of the summed per-phase *max-rank* times (the paper's
    /// "% of execution time within a time step").
    pub pct_time: f64,
    /// Max-rank elapsed time of the phase.
    pub max_time: f64,
}

/// Compute the Table 1 rows for the given trace: per phase the Lₙ load
/// balance and the percentage of step time it accounts for. Phases with
/// zero recorded time are omitted.
pub fn phase_breakdown(trace: &Trace) -> Vec<PhaseRow> {
    let mut rows = Vec::new();
    let mut total = 0.0;
    let mut raw = Vec::new();
    for &phase in &Phase::ALL {
        let per_rank = trace.per_rank_time(phase);
        let max = per_rank.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            continue;
        }
        let lb = load_balance(&per_rank);
        total += max;
        raw.push((phase, lb, max));
    }
    for (phase, lb, max) in raw {
        rows.push(PhaseRow {
            phase,
            load_balance: lb,
            pct_time: if total > 0.0 { 100.0 * max / total } else { 0.0 },
            max_time: max,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance_is_one() {
        assert_eq!(load_balance(&[2.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn half_idle_is_half() {
        // One rank does all the work of 2: L2 = (2+0)/(2*2) = 0.5.
        assert_eq!(load_balance(&[2.0, 0.0]), 0.5);
    }

    #[test]
    fn paper_particle_scenario() {
        // 96 ranks, one does everything: Ln = 1/96 ≈ 0.0104 — the order
        // of the paper's L96 = 0.02 for the particle phase.
        let mut times = vec![0.0; 96];
        times[0] = 1.0;
        let lb = load_balance(&times);
        assert!((lb - 1.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_vectors() {
        assert_eq!(load_balance(&[]), 1.0);
        assert_eq!(load_balance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 4.0);
        t.record(1, Phase::Assembly, 0.0, 2.0);
        t.record(0, Phase::Particles, 4.0, 5.0);
        t.record(1, Phase::Particles, 4.0, 4.1);
        let rows = phase_breakdown(&t);
        assert_eq!(rows.len(), 2);
        let pct: f64 = rows.iter().map(|r| r.pct_time).sum();
        assert!((pct - 100.0).abs() < 1e-9);
        let asm = rows.iter().find(|r| r.phase == Phase::Assembly).unwrap();
        assert!((asm.load_balance - 0.75).abs() < 1e-12);
        assert!((asm.pct_time - 80.0).abs() < 1e-9);
    }

    #[test]
    fn idle_phases_omitted() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Sgs, 0.0, 1.0);
        let rows = phase_breakdown(&t);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, Phase::Sgs);
    }
}
