//! Trace event records.

/// Execution phases of one CFPD time step (the colored regions of the
/// paper's Fig. 2 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// MPI communication / waiting (white in the paper's trace).
    MpiComm,
    /// Navier-Stokes matrix assembly (brown).
    Assembly,
    /// Momentum solver (pink).
    Solver1,
    /// Continuity solver (blue).
    Solver2,
    /// Subgrid-scale vector computation (purple).
    Sgs,
    /// Lagrangian particle transport (black).
    Particles,
}

impl Phase {
    /// All phases, in their within-step order.
    pub const ALL: [Phase; 6] = [
        Phase::MpiComm,
        Phase::Assembly,
        Phase::Solver1,
        Phase::Solver2,
        Phase::Sgs,
        Phase::Particles,
    ];

    /// Human-readable name (matching Table 1's rows).
    pub fn name(self) -> &'static str {
        match self {
            Phase::MpiComm => "MPI",
            Phase::Assembly => "Matrix assembly",
            Phase::Solver1 => "Solver1",
            Phase::Solver2 => "Solver2",
            Phase::Sgs => "SGS",
            Phase::Particles => "Particles",
        }
    }

    /// One-character tag for the ASCII timeline.
    pub fn tag(self) -> char {
        match self {
            Phase::MpiComm => '.',
            Phase::Assembly => 'A',
            Phase::Solver1 => '1',
            Phase::Solver2 => '2',
            Phase::Sgs => 'S',
            Phase::Particles => 'P',
        }
    }
}

/// Chaos-layer incidents overlaid on the phase timeline: where the
/// fault plan struck, where a timeout fired, where a checkpoint was
/// written. Point events (no duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosKind {
    /// The fault plan injected a delay / reorder / drop / stall / crash.
    FaultInjected,
    /// A timeout-carrying communication call expired.
    TimeoutFired,
    /// A step-granular checkpoint was written.
    CheckpointWritten,
}

impl ChaosKind {
    /// Human-readable name for legends and reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::FaultInjected => "fault",
            ChaosKind::TimeoutFired => "timeout",
            ChaosKind::CheckpointWritten => "checkpoint",
        }
    }

    /// One-character overlay tag for the ASCII timeline.
    pub fn tag(self) -> char {
        match self {
            ChaosKind::FaultInjected => '!',
            ChaosKind::TimeoutFired => 'T',
            ChaosKind::CheckpointWritten => 'C',
        }
    }
}

/// One chaos incident on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    pub rank: usize,
    pub t: f64,
    pub kind: ChaosKind,
}

/// Per-(rank, worker) execution state — the thread-level refinement of
/// [`Phase`] that a Paraver timeline distinguishes (Fig. 2/4/5/8 of the
/// paper color threads by what they are *doing*, not just which phase
/// the rank is in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkerState {
    /// Generic useful computation (pool workers inside a parallel
    /// region; they do not know the enclosing phase).
    Useful,
    /// Matrix assembly.
    Assembly,
    /// Momentum solver.
    Solver1,
    /// Continuity solver.
    Solver2,
    /// Subgrid-scale vectors.
    Sgs,
    /// Lagrangian particle transport + migration.
    Particles,
    /// Blocked inside an MPI call (recv / barrier / collective wait).
    MpiWait,
    /// Runtime overhead: setup, scheduling, fork/join outside any
    /// phase interval.
    RuntimeOverhead,
}

impl WorkerState {
    /// All states, in display order.
    pub const ALL: [WorkerState; 8] = [
        WorkerState::Useful,
        WorkerState::Assembly,
        WorkerState::Solver1,
        WorkerState::Solver2,
        WorkerState::Sgs,
        WorkerState::Particles,
        WorkerState::MpiWait,
        WorkerState::RuntimeOverhead,
    ];

    /// Human-readable name (used by `.pcf` and Chrome slice names).
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Useful => "Useful",
            WorkerState::Assembly => "Matrix assembly",
            WorkerState::Solver1 => "Solver1",
            WorkerState::Solver2 => "Solver2",
            WorkerState::Sgs => "SGS",
            WorkerState::Particles => "Particles",
            WorkerState::MpiWait => "MPI wait",
            WorkerState::RuntimeOverhead => "Runtime overhead",
        }
    }

    /// The worker state carved out of a rank-level phase interval.
    pub fn from_phase(phase: Phase) -> WorkerState {
        match phase {
            Phase::MpiComm => WorkerState::MpiWait,
            Phase::Assembly => WorkerState::Assembly,
            Phase::Solver1 => WorkerState::Solver1,
            Phase::Solver2 => WorkerState::Solver2,
            Phase::Sgs => WorkerState::Sgs,
            Phase::Particles => WorkerState::Particles,
        }
    }

    /// Whether time in this state counts as useful computation in the
    /// POP sense (neither communication nor runtime overhead).
    pub fn is_useful(self) -> bool {
        !matches!(self, WorkerState::MpiWait | WorkerState::RuntimeOverhead)
    }
}

/// One state interval of one worker thread on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerEvent {
    pub rank: usize,
    /// Worker index within the rank; worker 0 is the rank's main
    /// thread (the one that issues MPI calls).
    pub worker: usize,
    pub state: WorkerState,
    pub t_start: f64,
    pub t_end: f64,
}

impl WorkerEvent {
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// One point-to-point message: the happens-before edge `t_send@src →
/// t_recv@dst`. Collectives in `cfpd-simmpi` are built from tagged
/// point-to-point sends, so barrier / allreduce dependency edges appear
/// here for free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgRecord {
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
    pub bytes: usize,
    pub t_send: f64,
    pub t_recv: f64,
}

/// DLB core-migration transitions (the lend/borrow arrows of Fig. 8).
/// Point events stamped on the owning rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlbMarkKind {
    /// Rank lent `cores` cores on entering a blocking call.
    Lend,
    /// Rank pre-lent `cores` cores *ahead* of a predicted blocking call
    /// (the predictive DLB policy); it kept computing on the rest.
    PreLend,
    /// Rank borrowed `cores` lent cores.
    Borrow,
    /// Rank reclaimed its lent cores on resuming.
    Reclaim,
    /// Borrowed cores were revoked by the owner's reclaim.
    Revoke,
    /// A lease on borrowed cores expired.
    LeaseExpired,
    /// The rank was declared dead and its cores were seized.
    Crashed,
}

impl DlbMarkKind {
    pub fn name(self) -> &'static str {
        match self {
            DlbMarkKind::Lend => "lend",
            DlbMarkKind::PreLend => "pre-lend",
            DlbMarkKind::Borrow => "borrow",
            DlbMarkKind::Reclaim => "reclaim",
            DlbMarkKind::Revoke => "revoke",
            DlbMarkKind::LeaseExpired => "lease-expired",
            DlbMarkKind::Crashed => "crashed",
        }
    }

    /// One-character overlay tag for the ASCII timeline.
    pub fn tag(self) -> char {
        match self {
            DlbMarkKind::Lend => 'L',
            DlbMarkKind::PreLend => 'P',
            DlbMarkKind::Borrow => 'G',
            DlbMarkKind::Reclaim => 'R',
            DlbMarkKind::Revoke => 'V',
            DlbMarkKind::LeaseExpired => 'E',
            DlbMarkKind::Crashed => 'X',
        }
    }
}

/// One DLB transition on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DlbMark {
    pub rank: usize,
    pub t: f64,
    pub kind: DlbMarkKind,
    /// Number of cores involved in the transition.
    pub cores: usize,
}

/// One phase interval on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub rank: usize,
    pub phase: Phase,
    pub t_start: f64,
    pub t_end: f64,
}

impl TraceEvent {
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// A whole trace: events from all ranks.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub num_ranks: usize,
    pub events: Vec<TraceEvent>,
    /// Chaos incidents overlaid on the timeline (empty when the fault
    /// layer is disabled).
    pub chaos: Vec<ChaosEvent>,
    /// Per-(rank, worker) state intervals (empty unless the run was
    /// traced with `RunOptions::trace`).
    pub workers: Vec<WorkerEvent>,
    /// Point-to-point message records (empty unless traced).
    pub messages: Vec<MsgRecord>,
    /// DLB lend/reclaim transitions (empty unless DLB is enabled).
    pub dlb: Vec<DlbMark>,
}

impl Trace {
    pub fn new(num_ranks: usize) -> Trace {
        Trace {
            num_ranks,
            events: Vec::new(),
            chaos: Vec::new(),
            workers: Vec::new(),
            messages: Vec::new(),
            dlb: Vec::new(),
        }
    }

    /// Record an interval.
    pub fn record(&mut self, rank: usize, phase: Phase, t_start: f64, t_end: f64) {
        debug_assert!(t_end >= t_start, "negative interval");
        debug_assert!(rank < self.num_ranks);
        self.events.push(TraceEvent { rank, phase, t_start, t_end });
    }

    /// Record a chaos incident (fault injection, timeout, checkpoint).
    pub fn record_chaos(&mut self, rank: usize, t: f64, kind: ChaosKind) {
        debug_assert!(rank < self.num_ranks);
        self.chaos.push(ChaosEvent { rank, t, kind });
    }

    /// Record a worker-thread state interval.
    pub fn record_worker(
        &mut self,
        rank: usize,
        worker: usize,
        state: WorkerState,
        t_start: f64,
        t_end: f64,
    ) {
        debug_assert!(t_end >= t_start, "negative interval");
        debug_assert!(rank < self.num_ranks);
        self.workers.push(WorkerEvent { rank, worker, state, t_start, t_end });
    }

    /// Record a point-to-point message edge.
    pub fn record_msg(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: usize,
        t_send: f64,
        t_recv: f64,
    ) {
        debug_assert!(src < self.num_ranks && dst < self.num_ranks);
        self.messages.push(MsgRecord { src, dst, tag, bytes, t_send, t_recv });
    }

    /// Record a DLB core-migration transition.
    pub fn record_dlb(&mut self, rank: usize, t: f64, kind: DlbMarkKind, cores: usize) {
        debug_assert!(rank < self.num_ranks);
        self.dlb.push(DlbMark { rank, t, kind, cores });
    }

    /// Merge another trace's events (e.g. per-rank traces gathered at
    /// rank 0).
    pub fn merge(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
        self.chaos.extend_from_slice(&other.chaos);
        self.workers.extend_from_slice(&other.workers);
        self.messages.extend_from_slice(&other.messages);
        self.dlb.extend_from_slice(&other.dlb);
    }

    /// End time of the last event (phase or worker interval).
    pub fn total_time(&self) -> f64 {
        let phase_end = self.events.iter().map(|e| e.t_end).fold(0.0, f64::max);
        self.workers.iter().map(|e| e.t_end).fold(phase_end, f64::max)
    }

    /// Time each rank spends in `phase`.
    pub fn per_rank_time(&self, phase: Phase) -> Vec<f64> {
        let mut t = vec![0.0; self.num_ranks];
        for e in &self.events {
            if e.phase == phase {
                t[e.rank] += e.duration();
            }
        }
        t
    }

    /// CSV export: `rank,phase,t_start,t_end`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,phase,t_start,t_end\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{:.9},{:.9}\n",
                e.rank,
                e.phase.name(),
                e.t_start,
                e.t_end
            ));
        }
        out
    }
}

/// The per-(rank, worker) view of a trace: the recorded worker events
/// when the run was traced, else a worker-0 fallback derived from the
/// rank-level phase intervals (so exporters and analyses work on
/// untraced / legacy traces too). Sorted by (rank, worker, t_start).
pub fn worker_view(trace: &Trace) -> Vec<WorkerEvent> {
    let mut view: Vec<WorkerEvent> = if trace.workers.is_empty() {
        trace
            .events
            .iter()
            .map(|e| WorkerEvent {
                rank: e.rank,
                worker: 0,
                state: WorkerState::from_phase(e.phase),
                t_start: e.t_start,
                t_end: e.t_end,
            })
            .collect()
    } else {
        trace.workers.clone()
    };
    view.sort_by(|a, b| {
        (a.rank, a.worker)
            .cmp(&(b.rank, b.worker))
            .then(a.t_start.total_cmp(&b.t_start))
    });
    view
}

/// Carve per-rank worker-0 state intervals out of rank-level phase
/// intervals and MPI wait intervals.
///
/// The main thread's timeline is the phase sequence with the blocked
/// stretches cut out: a wait nested inside a phase (allreduce inside a
/// solver, migration recv inside Particles) splits that phase interval
/// and becomes `MpiWait`; a standalone wait between phases (barrier)
/// becomes `MpiWait` on its own. The leading gap `[0, first activity)`
/// — setup before the first recorded phase — is labeled
/// `RuntimeOverhead`. By construction the result is non-overlapping per
/// rank.
///
/// `waits` are `(rank, t_start, t_end)` tuples; both inputs may be
/// unsorted.
pub fn carve_states(
    num_ranks: usize,
    phases: &[TraceEvent],
    waits: &[(usize, f64, f64)],
) -> Vec<WorkerEvent> {
    let mut out = Vec::new();
    for rank in 0..num_ranks {
        let mut ph: Vec<&TraceEvent> = phases.iter().filter(|e| e.rank == rank).collect();
        ph.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        let mut wt: Vec<(f64, f64)> = waits
            .iter()
            .filter(|(r, _, _)| *r == rank)
            .map(|&(_, a, b)| (a, b))
            .collect();
        wt.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Coalesce overlapping waits defensively (the recorder's depth
        // counter already prevents nesting).
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(wt.len());
        for (a, b) in wt {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }

        let first_activity = ph
            .first()
            .map(|e| e.t_start)
            .into_iter()
            .chain(merged.first().map(|w| w.0))
            .fold(f64::INFINITY, f64::min);
        if first_activity.is_finite() && first_activity > 0.0 {
            out.push(WorkerEvent {
                rank,
                worker: 0,
                state: WorkerState::RuntimeOverhead,
                t_start: 0.0,
                t_end: first_activity,
            });
        }

        for e in &ph {
            // Phase interval minus the waits that intersect it.
            let mut cursor = e.t_start;
            for &(wa, wb) in &merged {
                if wb <= e.t_start || wa >= e.t_end {
                    continue;
                }
                let (ca, cb) = (wa.max(e.t_start), wb.min(e.t_end));
                if ca > cursor {
                    out.push(WorkerEvent {
                        rank,
                        worker: 0,
                        state: WorkerState::from_phase(e.phase),
                        t_start: cursor,
                        t_end: ca,
                    });
                }
                cursor = cursor.max(cb);
            }
            if e.t_end > cursor {
                out.push(WorkerEvent {
                    rank,
                    worker: 0,
                    state: WorkerState::from_phase(e.phase),
                    t_start: cursor,
                    t_end: e.t_end,
                });
            }
        }

        for &(wa, wb) in &merged {
            if wb > wa {
                out.push(WorkerEvent {
                    rank,
                    worker: 0,
                    state: WorkerState::MpiWait,
                    t_start: wa,
                    t_end: wb,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.rank, a.worker)
            .cmp(&(b.rank, b.worker))
            .then(a.t_start.total_cmp(&b.t_start))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 2.0);
        t.record(1, Phase::Assembly, 0.0, 1.0);
        t.record(1, Phase::Particles, 1.0, 3.0);
        assert_eq!(t.total_time(), 3.0);
        assert_eq!(t.per_rank_time(Phase::Assembly), vec![2.0, 1.0]);
        assert_eq!(t.per_rank_time(Phase::Particles), vec![0.0, 2.0]);
    }

    #[test]
    fn csv_contains_all_events() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Sgs, 0.5, 0.75);
        let csv = t.to_csv();
        assert!(csv.starts_with("rank,phase"));
        assert!(csv.contains("0,SGS,0.5"));
    }

    #[test]
    fn merge_combines_events() {
        let mut a = Trace::new(2);
        a.record(0, Phase::Solver1, 0.0, 1.0);
        let mut b = Trace::new(2);
        b.record(1, Phase::Solver2, 0.0, 2.0);
        b.record_worker(1, 1, WorkerState::Useful, 0.5, 1.5);
        b.record_msg(1, 0, 7, 8, 0.1, 0.2);
        b.record_dlb(1, 0.3, DlbMarkKind::Lend, 2);
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.workers.len(), 1);
        assert_eq!(a.messages.len(), 1);
        assert_eq!(a.dlb.len(), 1);
    }

    #[test]
    fn total_time_covers_worker_events() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Assembly, 0.0, 1.0);
        t.record_worker(0, 1, WorkerState::Useful, 0.0, 2.5);
        assert_eq!(t.total_time(), 2.5);
    }

    #[test]
    fn carve_splits_phase_around_nested_wait() {
        // Phase [0,10] with a wait [4,6] inside it → three intervals.
        let phases = vec![TraceEvent {
            rank: 0,
            phase: Phase::Solver1,
            t_start: 0.0,
            t_end: 10.0,
        }];
        let waits = vec![(0usize, 4.0, 6.0)];
        let carved = carve_states(1, &phases, &waits);
        assert_eq!(carved.len(), 3);
        assert_eq!(
            (carved[0].state, carved[0].t_start, carved[0].t_end),
            (WorkerState::Solver1, 0.0, 4.0)
        );
        assert_eq!(
            (carved[1].state, carved[1].t_start, carved[1].t_end),
            (WorkerState::MpiWait, 4.0, 6.0)
        );
        assert_eq!(
            (carved[2].state, carved[2].t_start, carved[2].t_end),
            (WorkerState::Solver1, 6.0, 10.0)
        );
    }

    #[test]
    fn carve_emits_leading_overhead_and_standalone_wait() {
        let phases = vec![TraceEvent {
            rank: 0,
            phase: Phase::Assembly,
            t_start: 1.0,
            t_end: 2.0,
        }];
        // Standalone barrier wait after the phase.
        let waits = vec![(0usize, 2.0, 3.0)];
        let carved = carve_states(1, &phases, &waits);
        assert_eq!(carved[0].state, WorkerState::RuntimeOverhead);
        assert_eq!((carved[0].t_start, carved[0].t_end), (0.0, 1.0));
        assert!(carved
            .iter()
            .any(|e| e.state == WorkerState::MpiWait && e.t_start == 2.0 && e.t_end == 3.0));
        // Non-overlap invariant.
        for w in carved.windows(2) {
            assert!(w[1].t_start >= w[0].t_end - 1e-12);
        }
    }

    #[test]
    fn carve_preserves_total_busy_time() {
        // Sum of carved durations == phase time + wait time outside
        // phases (waits inside phases replace phase time 1:1).
        let phases = vec![
            TraceEvent { rank: 0, phase: Phase::Assembly, t_start: 0.0, t_end: 4.0 },
            TraceEvent { rank: 0, phase: Phase::Particles, t_start: 5.0, t_end: 9.0 },
        ];
        let waits = vec![(0usize, 1.0, 2.0), (0usize, 4.0, 5.0), (0usize, 6.0, 7.0)];
        let carved = carve_states(1, &phases, &waits);
        let total: f64 = carved.iter().map(|e| e.duration()).sum();
        // [0,9] fully covered: phases span [0,4]+[5,9]=8, standalone
        // wait [4,5]=1, no leading gap.
        assert!((total - 9.0).abs() < 1e-12, "total = {total}");
        for w in carved.windows(2) {
            assert!(w[1].t_start >= w[0].t_end - 1e-12, "overlap: {w:?}");
        }
    }
}
