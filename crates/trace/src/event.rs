//! Trace event records.

/// Execution phases of one CFPD time step (the colored regions of the
/// paper's Fig. 2 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// MPI communication / waiting (white in the paper's trace).
    MpiComm,
    /// Navier-Stokes matrix assembly (brown).
    Assembly,
    /// Momentum solver (pink).
    Solver1,
    /// Continuity solver (blue).
    Solver2,
    /// Subgrid-scale vector computation (purple).
    Sgs,
    /// Lagrangian particle transport (black).
    Particles,
}

impl Phase {
    /// All phases, in their within-step order.
    pub const ALL: [Phase; 6] = [
        Phase::MpiComm,
        Phase::Assembly,
        Phase::Solver1,
        Phase::Solver2,
        Phase::Sgs,
        Phase::Particles,
    ];

    /// Human-readable name (matching Table 1's rows).
    pub fn name(self) -> &'static str {
        match self {
            Phase::MpiComm => "MPI",
            Phase::Assembly => "Matrix assembly",
            Phase::Solver1 => "Solver1",
            Phase::Solver2 => "Solver2",
            Phase::Sgs => "SGS",
            Phase::Particles => "Particles",
        }
    }

    /// One-character tag for the ASCII timeline.
    pub fn tag(self) -> char {
        match self {
            Phase::MpiComm => '.',
            Phase::Assembly => 'A',
            Phase::Solver1 => '1',
            Phase::Solver2 => '2',
            Phase::Sgs => 'S',
            Phase::Particles => 'P',
        }
    }
}

/// Chaos-layer incidents overlaid on the phase timeline: where the
/// fault plan struck, where a timeout fired, where a checkpoint was
/// written. Point events (no duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosKind {
    /// The fault plan injected a delay / reorder / drop / stall / crash.
    FaultInjected,
    /// A timeout-carrying communication call expired.
    TimeoutFired,
    /// A step-granular checkpoint was written.
    CheckpointWritten,
}

impl ChaosKind {
    /// Human-readable name for legends and reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::FaultInjected => "fault",
            ChaosKind::TimeoutFired => "timeout",
            ChaosKind::CheckpointWritten => "checkpoint",
        }
    }

    /// One-character overlay tag for the ASCII timeline.
    pub fn tag(self) -> char {
        match self {
            ChaosKind::FaultInjected => '!',
            ChaosKind::TimeoutFired => 'T',
            ChaosKind::CheckpointWritten => 'C',
        }
    }
}

/// One chaos incident on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    pub rank: usize,
    pub t: f64,
    pub kind: ChaosKind,
}

/// One phase interval on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub rank: usize,
    pub phase: Phase,
    pub t_start: f64,
    pub t_end: f64,
}

impl TraceEvent {
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// A whole trace: events from all ranks.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub num_ranks: usize,
    pub events: Vec<TraceEvent>,
    /// Chaos incidents overlaid on the timeline (empty when the fault
    /// layer is disabled).
    pub chaos: Vec<ChaosEvent>,
}

impl Trace {
    pub fn new(num_ranks: usize) -> Trace {
        Trace { num_ranks, events: Vec::new(), chaos: Vec::new() }
    }

    /// Record an interval.
    pub fn record(&mut self, rank: usize, phase: Phase, t_start: f64, t_end: f64) {
        debug_assert!(t_end >= t_start, "negative interval");
        debug_assert!(rank < self.num_ranks);
        self.events.push(TraceEvent { rank, phase, t_start, t_end });
    }

    /// Record a chaos incident (fault injection, timeout, checkpoint).
    pub fn record_chaos(&mut self, rank: usize, t: f64, kind: ChaosKind) {
        debug_assert!(rank < self.num_ranks);
        self.chaos.push(ChaosEvent { rank, t, kind });
    }

    /// Merge another trace's events (e.g. per-rank traces gathered at
    /// rank 0).
    pub fn merge(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
        self.chaos.extend_from_slice(&other.chaos);
    }

    /// End time of the last event.
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(|e| e.t_end).fold(0.0, f64::max)
    }

    /// Time each rank spends in `phase`.
    pub fn per_rank_time(&self, phase: Phase) -> Vec<f64> {
        let mut t = vec![0.0; self.num_ranks];
        for e in &self.events {
            if e.phase == phase {
                t[e.rank] += e.duration();
            }
        }
        t
    }

    /// CSV export: `rank,phase,t_start,t_end`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,phase,t_start,t_end\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{:.9},{:.9}\n",
                e.rank,
                e.phase.name(),
                e.t_start,
                e.t_end
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 2.0);
        t.record(1, Phase::Assembly, 0.0, 1.0);
        t.record(1, Phase::Particles, 1.0, 3.0);
        assert_eq!(t.total_time(), 3.0);
        assert_eq!(t.per_rank_time(Phase::Assembly), vec![2.0, 1.0]);
        assert_eq!(t.per_rank_time(Phase::Particles), vec![0.0, 2.0]);
    }

    #[test]
    fn csv_contains_all_events() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Sgs, 0.5, 0.75);
        let csv = t.to_csv();
        assert!(csv.starts_with("rank,phase"));
        assert!(csv.contains("0,SGS,0.5"));
    }

    #[test]
    fn merge_combines_events() {
        let mut a = Trace::new(2);
        a.record(0, Phase::Solver1, 0.0, 1.0);
        let mut b = Trace::new(2);
        b.record(1, Phase::Solver2, 0.0, 2.0);
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
    }
}
