//! Deterministic trace diff: compare two run summaries phase-by-phase.
//!
//! The inputs are `summary.json` documents produced by
//! [`crate::export::export_summary`], parsed with `cfpd-testkit`'s
//! RFC 8259 parser. The zero-delta verdict compares only the
//! *protocol-deterministic* aggregates — rank count, per-(rank, phase)
//! interval counts, and the per-(src, dst, tag) message multiset
//! (count + bytes). Wall-clock time aggregates differ between any two
//! real runs and are reported as informational deltas only; two runs of
//! the same seed must therefore diff to zero, which `scripts/verify.sh`
//! enforces in CI.

use cfpd_testkit::{parse_json, JsonValue};

/// One structural mismatch between the two summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffMismatch {
    /// What differs (e.g. `rank 0 phase Solver1 count`).
    pub what: String,
    pub a: String,
    pub b: String,
}

/// One informational per-phase time delta.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    pub rank: u64,
    pub phase: String,
    pub time_a: f64,
    pub time_b: f64,
}

/// Result of diffing two summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Structural mismatches; empty ⇔ zero delta.
    pub mismatches: Vec<DiffMismatch>,
    /// Per-(rank, phase) time deltas (informational, timing-dependent).
    pub phase_times: Vec<PhaseDelta>,
    pub wall_a: f64,
    pub wall_b: f64,
}

impl DiffReport {
    /// True when the runs are structurally identical (same ranks, same
    /// per-phase interval counts, same message multiset).
    pub fn is_zero(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Human-readable rendering for `cfpd trace diff`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_zero() {
            out.push_str("structural delta: ZERO (ranks, phase counts, messages identical)\n");
        } else {
            out.push_str(&format!("structural delta: {} mismatch(es)\n", self.mismatches.len()));
            for m in &self.mismatches {
                out.push_str(&format!("  {}: {} vs {}\n", m.what, m.a, m.b));
            }
        }
        out.push_str(&format!(
            "wall time: {:.6}s vs {:.6}s (informational)\n",
            self.wall_a, self.wall_b
        ));
        if !self.phase_times.is_empty() {
            out.push_str("per-phase time deltas (informational):\n");
            out.push_str("rank  phase             A           B           delta\n");
            for d in &self.phase_times {
                out.push_str(&format!(
                    "{:>4}  {:<16}  {:<10.6}  {:<10.6}  {:+.6}\n",
                    d.rank,
                    d.phase,
                    d.time_a,
                    d.time_b,
                    d.time_b - d.time_a
                ));
            }
        }
        out
    }
}

fn f64_field(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

/// Diff two `summary.json` documents. Errors on unparseable input.
pub fn diff_summaries(a: &str, b: &str) -> Result<DiffReport, String> {
    let va = parse_json(a).map_err(|e| format!("first summary: {e}"))?;
    let vb = parse_json(b).map_err(|e| format!("second summary: {e}"))?;
    for v in [&va, &vb] {
        if !v.is_object() || v.get("phases").is_none() || v.get("messages").is_none() {
            return Err("not a cfpd trace summary (missing phases/messages)".into());
        }
    }

    let mut mismatches = Vec::new();
    let (ra, rb) = (u64_field(&va, "ranks"), u64_field(&vb, "ranks"));
    if ra != rb {
        mismatches.push(DiffMismatch {
            what: "ranks".into(),
            a: ra.to_string(),
            b: rb.to_string(),
        });
    }

    // Per-(rank, phase): counts are structural, times informational.
    type PhaseRow = (u64, String, u64, f64);
    let rows = |v: &JsonValue| -> Vec<PhaseRow> {
        v.get("phases")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|p| {
                (
                    u64_field(p, "rank"),
                    str_field(p, "phase").to_string(),
                    u64_field(p, "count"),
                    f64_field(p, "time"),
                )
            })
            .collect()
    };
    let (pa, pb) = (rows(&va), rows(&vb));
    let mut phase_times = Vec::new();
    let mut keys: Vec<(u64, String)> = pa
        .iter()
        .chain(pb.iter())
        .map(|(r, p, _, _)| (*r, p.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    for (rank, phase) in keys {
        let find = |rows: &[PhaseRow]| -> Option<(u64, f64)> {
            rows.iter()
                .find(|(r, p, _, _)| *r == rank && *p == phase)
                .map(|(_, _, c, t)| (*c, *t))
        };
        let (ca, ta) = find(&pa).unwrap_or((0, 0.0));
        let (cb, tb) = find(&pb).unwrap_or((0, 0.0));
        if ca != cb {
            mismatches.push(DiffMismatch {
                what: format!("rank {rank} phase {phase} count"),
                a: ca.to_string(),
                b: cb.to_string(),
            });
        }
        phase_times.push(PhaseDelta { rank, phase, time_a: ta, time_b: tb });
    }

    // Message multiset per (src, dst, tag): count and bytes are both
    // structural.
    type MsgRow = (u64, u64, String, u64, u64);
    let msgs = |v: &JsonValue| -> Vec<MsgRow> {
        v.get("messages")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|m| {
                (
                    u64_field(m, "src"),
                    u64_field(m, "dst"),
                    str_field(m, "tag").to_string(),
                    u64_field(m, "count"),
                    u64_field(m, "bytes"),
                )
            })
            .collect()
    };
    let (ma, mb) = (msgs(&va), msgs(&vb));
    let mut mkeys: Vec<(u64, u64, String)> = ma
        .iter()
        .chain(mb.iter())
        .map(|(s, d, t, _, _)| (*s, *d, t.clone()))
        .collect();
    mkeys.sort();
    mkeys.dedup();
    for (src, dst, tag) in mkeys {
        let find = |rows: &[MsgRow]| -> (u64, u64) {
            rows.iter()
                .find(|(s, d, t, _, _)| *s == src && *d == dst && *t == tag)
                .map(|(_, _, _, c, b)| (*c, *b))
                .unwrap_or((0, 0))
        };
        let (ca, ba) = find(&ma);
        let (cb, bb) = find(&mb);
        if (ca, ba) != (cb, bb) {
            mismatches.push(DiffMismatch {
                what: format!("message {src}->{dst} tag {tag} (count,bytes)"),
                a: format!("({ca},{ba})"),
                b: format!("({cb},{bb})"),
            });
        }
    }

    Ok(DiffReport {
        mismatches,
        phase_times,
        wall_a: f64_field(&va, "wall_time"),
        wall_b: f64_field(&vb, "wall_time"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Trace};
    use crate::export::export_summary;

    fn summary(scale: f64, extra_msg: bool) -> String {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 1.0 * scale);
        t.record(1, Phase::Assembly, 0.0, 0.5 * scale);
        t.record_msg(0, 1, 9, 16, 0.1, 0.2);
        if extra_msg {
            t.record_msg(1, 0, 9, 16, 0.1, 0.2);
        }
        export_summary(&t)
    }

    #[test]
    fn identical_structure_diffs_to_zero_despite_time_skew() {
        // Same counts/messages, different wall-clock times → zero.
        let d = diff_summaries(&summary(1.0, false), &summary(1.7, false)).unwrap();
        assert!(d.is_zero(), "mismatches: {:?}", d.mismatches);
        assert!(d.render().contains("ZERO"));
        assert!((d.wall_b - 1.7).abs() < 1e-12);
    }

    #[test]
    fn structural_changes_are_detected() {
        let d = diff_summaries(&summary(1.0, false), &summary(1.0, true)).unwrap();
        assert!(!d.is_zero());
        assert!(d.mismatches.iter().any(|m| m.what.contains("message 1->0")));
    }

    #[test]
    fn rank_count_mismatch_is_structural() {
        let mut t = Trace::new(3);
        t.record(0, Phase::Assembly, 0.0, 1.0);
        let d = diff_summaries(&summary(1.0, false), &export_summary(&t)).unwrap();
        assert!(d.mismatches.iter().any(|m| m.what == "ranks"));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(diff_summaries("{", "{}").is_err());
        assert!(diff_summaries("{}", "{}").is_err());
        assert!(diff_summaries("[1,2]", "[1,2]").is_err());
    }
}
