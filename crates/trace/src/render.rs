//! ASCII timeline rendering — the Paraver substitute used to regenerate
//! the paper's Fig. 2 (one row per rank, time flowing right, one
//! character per phase).

use crate::event::Trace;

/// Render the trace as an ASCII timeline of `width` columns. Each rank
/// is one row; each column shows the phase tag active at that time (the
/// *last* phase covering the column start wins, matching how short MPI
/// gaps appear in Paraver at coarse zoom). Ranks are downsampled to at
/// most `max_rows` rows for large traces.
pub fn render_timeline(trace: &Trace, width: usize, max_rows: usize) -> String {
    let stride = trace.num_ranks.div_ceil(max_rows.max(1)).max(1);
    let ranks: Vec<usize> = (0..trace.num_ranks).step_by(stride).collect();
    render_timeline_ranks(trace, width, &ranks)
}

/// Like [`render_timeline`] but showing exactly the given ranks — used
/// when specific ranks must not be downsampled away (e.g. the single
/// rank carrying the particle phase).
pub fn render_timeline_ranks(trace: &Trace, width: usize, ranks: &[usize]) -> String {
    let total = trace.total_time();
    if total <= 0.0 || trace.num_ranks == 0 || ranks.is_empty() {
        return String::from("(empty trace)\n");
    }
    let width = width.max(10);
    let mut out = String::new();
    let chaos_legend = if trace.chaos.is_empty() {
        ""
    } else {
        " !=fault T=timeout C=checkpoint"
    };
    let dlb_legend = if trace.dlb.is_empty() {
        ""
    } else {
        " L=lend G=borrow R=reclaim V=revoke E=lease-exp X=crash"
    };
    out.push_str(&format!(
        "time -> total {:.4}s, {} ranks ({} shown), legend: A=assembly 1=solver1 2=solver2 S=sgs P=particles .=mpi{chaos_legend}{dlb_legend}\n",
        total,
        trace.num_ranks,
        ranks.len()
    ));
    for &rank in ranks {
        let mut row = vec![' '; width];
        for e in &trace.events {
            if e.rank != rank {
                continue;
            }
            let c0 = ((e.t_start / total) * width as f64) as usize;
            let c1 = (((e.t_end / total) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                *cell = e.phase.tag();
            }
        }
        // DLB transitions overwrite the phase tag at their instant so
        // the timeline shows cores migrating between co-resident ranks
        // (the lend/borrow arrows of the paper's Fig. 8).
        for m in &trace.dlb {
            if m.rank != rank {
                continue;
            }
            let col = (((m.t / total) * width as f64) as usize).min(width - 1);
            row[col] = m.kind.tag();
        }
        // Chaos markers overwrite the phase tag at their instant so the
        // timeline shows *where* the fault plan struck.
        for c in &trace.chaos {
            if c.rank != rank {
                continue;
            }
            let col = (((c.t / total) * width as f64) as usize).min(width - 1);
            row[col] = c.kind.tag();
        }
        out.push_str(&format!("r{rank:>4} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Trace};

    #[test]
    fn renders_rows_per_rank() {
        let mut t = Trace::new(3);
        for r in 0..3 {
            t.record(r, Phase::Assembly, 0.0, 1.0);
            t.record(r, Phase::Particles, 1.0, 1.0 + r as f64);
        }
        let s = render_timeline(&t, 40, 10);
        assert_eq!(s.lines().count(), 4); // header + 3 ranks
        assert!(s.contains('A'));
        assert!(s.contains('P'));
    }

    #[test]
    fn imbalance_visible_as_shorter_rows() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Particles, 0.0, 10.0);
        t.record(1, Phase::Particles, 0.0, 1.0);
        let s = render_timeline(&t, 50, 10);
        let lines: Vec<&str> = s.lines().collect();
        let p0 = lines[1].matches('P').count();
        let p1 = lines[2].matches('P').count();
        assert!(p0 > 5 * p1, "rank 0 row should be ~10x longer: {p0} vs {p1}");
    }

    #[test]
    fn downsamples_ranks() {
        let mut t = Trace::new(100);
        for r in 0..100 {
            t.record(r, Phase::Sgs, 0.0, 1.0);
        }
        let s = render_timeline(&t, 30, 10);
        assert!(s.lines().count() <= 11);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(4);
        assert!(render_timeline(&t, 40, 10).contains("empty"));
    }

    #[test]
    fn chaos_markers_overlay_the_timeline() {
        use crate::event::ChaosKind;
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 10.0);
        t.record(1, Phase::Assembly, 0.0, 10.0);
        t.record_chaos(0, 5.0, ChaosKind::FaultInjected);
        t.record_chaos(1, 2.0, ChaosKind::TimeoutFired);
        t.record_chaos(1, 9.0, ChaosKind::CheckpointWritten);
        let s = render_timeline(&t, 40, 10);
        assert!(s.contains("!=fault"), "legend extended: {s}");
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains('!'), "rank 0 fault marker: {}", lines[1]);
        assert!(lines[2].contains('T') && lines[2].contains('C'), "{}", lines[2]);
    }

    #[test]
    fn legend_is_unchanged_without_chaos() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Sgs, 0.0, 1.0);
        let s = render_timeline(&t, 40, 10);
        assert!(!s.contains("=fault"), "no chaos legend when quiet: {s}");
        assert!(!s.contains("=lend"), "no dlb legend when quiet: {s}");
    }

    #[test]
    fn dlb_marks_overlay_the_timeline() {
        use crate::event::DlbMarkKind;
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 10.0);
        t.record(1, Phase::Assembly, 0.0, 10.0);
        t.record_dlb(0, 2.0, DlbMarkKind::Lend, 2);
        t.record_dlb(1, 5.0, DlbMarkKind::Borrow, 2);
        t.record_dlb(0, 8.0, DlbMarkKind::Reclaim, 2);
        let s = render_timeline(&t, 40, 10);
        assert!(s.contains("L=lend"), "legend extended: {s}");
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains('L') && lines[1].contains('R'), "{}", lines[1]);
        assert!(lines[2].contains('G'), "{}", lines[2]);
    }
}
