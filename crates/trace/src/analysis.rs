//! Trace analysis: critical path through the happens-before graph and
//! the POP-style lost-cycles decomposition.
//!
//! The happens-before graph has two edge kinds:
//!
//! * **program order** — consecutive worker-0 intervals on one rank
//!   (they are non-overlapping by construction, so `prev.t_end ≤
//!   next.t_start`);
//! * **message edges** — each [`MsgRecord`] orders `t_send` on the
//!   sender before `t_recv` on the receiver. Barriers, allreduces,
//!   bcasts and gathers in `cfpd-simmpi` are built from tagged
//!   point-to-point sends, so collective dependency edges are message
//!   records too — no special cases.
//!
//! The critical path is computed by a forward dynamic program over
//! events in global `t_end` order, maximizing accumulated *useful*
//! (non-wait, non-overhead) time. Credits along a chain occupy disjoint
//! wall-clock intervals, which yields the two bounds the test suite
//! pins: path length ≥ max per-rank useful time (the program-order
//! chain is always available) and ≤ wall time.

use crate::event::{worker_view, Phase, Trace, WorkerEvent, WorkerState};

/// One hop of the critical path (a maximal run of same-rank credit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpSegment {
    pub rank: usize,
    pub t_start: f64,
    pub t_end: f64,
    /// Useful time credited inside this segment.
    pub useful: f64,
}

/// Critical-path result.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Accumulated useful time along the best chain.
    pub length: f64,
    /// Wall-clock span of the trace's worker events.
    pub wall: f64,
    /// Max per-rank useful time (lower bound on `length`).
    pub max_rank_useful: f64,
    /// Rank where the path ends.
    pub end_rank: usize,
    /// Per-rank segments of the path, in time order.
    pub segments: Vec<CpSegment>,
}

/// Compute the critical path. Works on the worker-0 timeline (the
/// thread that issues MPI calls); falls back to phase intervals for
/// untraced runs, where the path degenerates to the busiest rank's
/// program-order chain (no message records → no cross-rank edges).
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let events: Vec<WorkerEvent> =
        worker_view(trace).into_iter().filter(|e| e.worker == 0).collect();
    let n = trace.num_ranks.max(1);
    let wall = events.iter().map(|e| e.t_end).fold(0.0, f64::max);

    // Process in global t_end order so every predecessor — same-rank or
    // message-edge — is finalized before it is queried.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by(|&a, &b| {
        events[a]
            .t_end
            .total_cmp(&events[b].t_end)
            .then(events[a].rank.cmp(&events[b].rank))
            .then(events[a].t_start.total_cmp(&events[b].t_start))
    });

    // Messages grouped by destination rank, sorted by t_recv, with a
    // per-rank cursor: each wait event consumes the receives that
    // completed during it.
    let mut msgs_in: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); n]; // (t_recv, t_send, src)
    for m in &trace.messages {
        if m.src < n && m.dst < n {
            msgs_in[m.dst].push((m.t_recv, m.t_send, m.src));
        }
    }
    for v in &mut msgs_in {
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    let mut msg_cursor = vec![0usize; n];

    // `frontier[r]` = (t_end, cp, last useful path node) of the newest
    // finalized event on rank r — the chain value available to any
    // successor at t ≥ t_end. Message-edge credits are only taken when
    // the frontier has not advanced past t_send, so a chain's credited
    // intervals stay disjoint in wall time (⇒ length ≤ wall).
    let mut frontier: Vec<(f64, f64, Option<usize>)> = vec![(0.0, 0.0, None); n];
    let mut cp = vec![0.0f64; events.len()];
    // `node[i]` = last useful event on the best chain ending at i
    // (i itself when i is useful); `chain[i]` = the useful node before
    // event i on that chain.
    let mut node: Vec<Option<usize>> = vec![None; events.len()];
    let mut chain: Vec<Option<usize>> = vec![None; events.len()];

    const EPS: f64 = 1e-12;
    for &i in &order {
        let e = &events[i];
        let (_, mut best, mut best_node) = frontier[e.rank];
        if e.state == WorkerState::MpiWait {
            // Message edges: receives completing within this wait bring
            // the sender's accumulated credit at t_send.
            let inbox = &msgs_in[e.rank];
            let cur = &mut msg_cursor[e.rank];
            while *cur < inbox.len() && inbox[*cur].0 <= e.t_end + EPS {
                let (_t_recv, t_send, src) = inbox[*cur];
                *cur += 1;
                let (src_end, src_cp, src_node) = frontier[src];
                if src_end <= t_send + EPS && src_cp > best {
                    best = src_cp;
                    best_node = src_node;
                }
            }
        }
        let credit = if e.state.is_useful() { e.duration() } else { 0.0 };
        cp[i] = best + credit;
        if credit > 0.0 {
            node[i] = Some(i);
            chain[i] = best_node;
        } else {
            node[i] = best_node;
        }
        // Per-rank events are sequential and processed in t_end order,
        // so cp is monotone along a rank: the frontier just advances.
        if e.t_end >= frontier[e.rank].0 {
            frontier[e.rank] = (e.t_end, cp[i], node[i]);
        }
    }

    // Per-rank useful totals (lower bound on the path length via each
    // rank's program-order chain).
    let mut useful = vec![0.0f64; n];
    for e in &events {
        if e.state.is_useful() {
            useful[e.rank] += e.duration();
        }
    }
    let max_rank_useful = useful.iter().fold(0.0f64, |a, &b| a.max(b));

    let end = order
        .iter()
        .copied()
        .max_by(|&a, &b| cp[a].total_cmp(&cp[b]).then(a.cmp(&b)));
    let (length, end_rank) = match end {
        Some(i) => (cp[i], events[i].rank),
        None => (0.0, 0),
    };

    // Walk the chain backwards; coalesce consecutive same-rank nodes
    // into segments. Chain pointers always reference earlier-processed
    // nodes, so the walk terminates.
    let mut segments: Vec<CpSegment> = Vec::new();
    let mut cursor = end.and_then(|i| node[i]);
    while let Some(i) = cursor {
        let e = &events[i];
        match segments.last_mut() {
            Some(s) if s.rank == e.rank => {
                s.t_start = s.t_start.min(e.t_start);
                s.useful += e.duration();
            }
            _ => segments.push(CpSegment {
                rank: e.rank,
                t_start: e.t_start,
                t_end: e.t_end,
                useful: e.duration(),
            }),
        }
        cursor = chain[i];
    }
    segments.reverse();

    CriticalPath { length, wall, max_rank_useful, end_rank, segments }
}

/// One row of the lost-cycles table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LostCyclesRow {
    pub rank: usize,
    pub phase: Phase,
    /// Time this rank spent in the phase.
    pub time: f64,
    /// max over ranks of `time` minus this rank's `time`: cycles lost
    /// to load imbalance in this phase.
    pub imbalance: f64,
}

/// POP-style lost-cycles decomposition of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LostCycles {
    /// Wall time (end of last phase interval — the same clock the
    /// online POP rollup uses).
    pub wall: f64,
    /// Per-(rank, phase) rows, rank-major, only phases that occur.
    pub rows: Vec<LostCyclesRow>,
    /// Per-rank useful time (non-MpiComm phase intervals).
    pub useful: Vec<f64>,
    /// Per-rank time blocked inside MPI (from worker MpiWait intervals;
    /// zero for untraced runs).
    pub mpi_wait: Vec<f64>,
    /// Per-rank remainder `wall − useful − mpi_wait`: runtime overhead
    /// plus untraced idle time.
    pub overhead: Vec<f64>,
    /// Parallel efficiency `Σuseful / (n·wall)`.
    pub parallel_efficiency: f64,
    /// Load balance `Σuseful / (n·max useful)`.
    pub load_balance: f64,
    /// Communication efficiency `max useful / wall`.
    pub comm_efficiency: f64,
}

/// Compute the lost-cycles decomposition. The headline efficiencies are
/// derived from the phase intervals alone — the same `f64`s the online
/// POP rollup was fed — so they agree with `cfpd_telemetry::pop` to
/// floating-point reassociation error (pinned ≤ 1e-9 by the tests).
pub fn lost_cycles(trace: &Trace) -> LostCycles {
    let n = trace.num_ranks.max(1);
    let wall = trace.events.iter().map(|e| e.t_end).fold(0.0, f64::max);

    let mut useful = vec![0.0f64; n];
    let mut phase_time = vec![[0.0f64; Phase::ALL.len()]; n];
    let mut phase_seen = [false; Phase::ALL.len()];
    for e in &trace.events {
        let p = Phase::ALL.iter().position(|x| *x == e.phase).unwrap();
        phase_time[e.rank][p] += e.duration();
        phase_seen[p] = true;
        if e.phase != Phase::MpiComm {
            useful[e.rank] += e.duration();
        }
    }

    let mut mpi_wait = vec![0.0f64; n];
    for w in &trace.workers {
        if w.worker == 0 && w.state == WorkerState::MpiWait {
            mpi_wait[w.rank] += w.duration();
        }
    }

    let mut rows = Vec::new();
    for (p, &phase) in Phase::ALL.iter().enumerate() {
        if !phase_seen[p] {
            continue;
        }
        let max_t = (0..n).map(|r| phase_time[r][p]).fold(0.0f64, f64::max);
        for (rank, pt) in phase_time.iter().enumerate() {
            rows.push(LostCyclesRow {
                rank,
                phase,
                time: pt[p],
                imbalance: max_t - pt[p],
            });
        }
    }
    rows.sort_by(|a, b| (a.rank, a.phase).cmp(&(b.rank, b.phase)));

    let overhead: Vec<f64> = (0..n)
        .map(|r| (wall - useful[r] - mpi_wait[r]).max(0.0))
        .collect();
    let useful_total: f64 = useful.iter().sum();
    let max_useful = useful.iter().fold(0.0f64, |a, &b| a.max(b));

    LostCycles {
        wall,
        rows,
        useful,
        mpi_wait,
        overhead,
        parallel_efficiency: if wall > 0.0 { useful_total / (n as f64 * wall) } else { 1.0 },
        load_balance: if max_useful > 0.0 {
            useful_total / (n as f64 * max_useful)
        } else {
            1.0
        },
        comm_efficiency: if wall > 0.0 { max_useful / wall } else { 1.0 },
    }
}

impl LostCycles {
    /// Fixed-width text table for `cfpd trace analyze`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "lost-cycles decomposition (per rank x phase, seconds)\n\
             rank  phase             time        imbalance\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>4}  {:<16}  {:<10.6}  {:<10.6}\n",
                r.rank,
                r.phase.name(),
                r.time,
                r.imbalance
            ));
        }
        out.push_str("\nrank  useful      mpi-wait    overhead\n");
        for r in 0..self.useful.len() {
            out.push_str(&format!(
                "{:>4}  {:<10.6}  {:<10.6}  {:<10.6}\n",
                r, self.useful[r], self.mpi_wait[r], self.overhead[r]
            ));
        }
        out.push_str(&format!(
            "\nwall {:.6}s  PE {:.4}  LB {:.4}  CommE {:.4}\n",
            self.wall, self.parallel_efficiency, self.load_balance, self.comm_efficiency
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_of_single_rank_is_its_useful_time() {
        let mut t = Trace::new(1);
        t.record(0, Phase::Assembly, 0.0, 2.0);
        t.record(0, Phase::Solver1, 2.0, 5.0);
        let cp = critical_path(&t);
        assert!((cp.length - 5.0).abs() < 1e-12);
        assert!((cp.max_rank_useful - 5.0).abs() < 1e-12);
        assert!(cp.length <= cp.wall + 1e-12);
    }

    #[test]
    fn message_edge_routes_path_through_sender() {
        // Rank 0 computes [0,4]; rank 1 computes [0,1], waits [1,5]
        // for a message sent at t=4, then computes [5,6]. True critical
        // path: 0's four seconds + 1's final second = 5.
        let mut t = Trace::new(2);
        t.record_worker(0, 0, WorkerState::Assembly, 0.0, 4.0);
        t.record_worker(1, 0, WorkerState::Assembly, 0.0, 1.0);
        t.record_worker(1, 0, WorkerState::MpiWait, 1.0, 5.0);
        t.record_worker(1, 0, WorkerState::Solver1, 5.0, 6.0);
        t.record_msg(0, 1, 7, 8, 4.0, 5.0);
        let cp = critical_path(&t);
        assert!((cp.length - 5.0).abs() < 1e-12, "length = {}", cp.length);
        assert_eq!(cp.end_rank, 1);
        assert!(cp.length >= cp.max_rank_useful - 1e-12);
        assert!(cp.length <= cp.wall + 1e-12);
        // The path must visit both ranks.
        let ranks: std::collections::HashSet<usize> =
            cp.segments.iter().map(|s| s.rank).collect();
        assert!(ranks.contains(&0) && ranks.contains(&1), "segments: {:?}", cp.segments);
    }

    #[test]
    fn path_bounds_hold_with_ignored_stale_message() {
        // A message whose sender frontier already advanced past t_send
        // must not inflate the path.
        let mut t = Trace::new(2);
        t.record_worker(0, 0, WorkerState::Assembly, 0.0, 10.0);
        t.record_worker(1, 0, WorkerState::MpiWait, 0.0, 2.0);
        t.record_worker(1, 0, WorkerState::Sgs, 2.0, 3.0);
        t.record_msg(0, 1, 1, 8, 0.5, 1.0);
        let cp = critical_path(&t);
        assert!(cp.length <= cp.wall + 1e-12);
        assert!(cp.length >= cp.max_rank_useful - 1e-12);
    }

    #[test]
    fn lost_cycles_decomposition_sums_to_wall() {
        let mut t = Trace::new(2);
        t.record(0, Phase::Assembly, 0.0, 3.0);
        t.record(1, Phase::Assembly, 0.0, 2.0);
        t.record_worker(0, 0, WorkerState::Assembly, 0.0, 3.0);
        t.record_worker(1, 0, WorkerState::Assembly, 0.0, 2.0);
        t.record_worker(1, 0, WorkerState::MpiWait, 2.0, 3.0);
        let lc = lost_cycles(&t);
        assert_eq!(lc.wall, 3.0);
        for r in 0..2 {
            let sum = lc.useful[r] + lc.mpi_wait[r] + lc.overhead[r];
            assert!((sum - lc.wall).abs() < 1e-12, "rank {r}: {sum}");
        }
        // Rank 1 lost 1s to imbalance in Assembly.
        let row = lc.rows.iter().find(|r| r.rank == 1).unwrap();
        assert!((row.imbalance - 1.0).abs() < 1e-12);
        assert!((lc.parallel_efficiency - 5.0 / 6.0).abs() < 1e-12);
        assert!((lc.load_balance - 5.0 / 6.0).abs() < 1e-12);
        assert!((lc.comm_efficiency - 1.0).abs() < 1e-12);
        assert!(lc.render().contains("PE 0.8333"));
    }

    #[test]
    fn lost_cycles_matches_trace_stats_definitions() {
        // PE here must equal trace_stats' parallel_efficiency (the POP
        // rollup cross-check depends on shared definitions).
        let mut t = Trace::new(2);
        t.record(0, Phase::Solver1, 0.0, 2.0);
        t.record(0, Phase::MpiComm, 2.0, 2.5);
        t.record(1, Phase::Solver1, 0.0, 2.5);
        let lc = lost_cycles(&t);
        let st = crate::stats::trace_stats(&t);
        assert!((lc.parallel_efficiency - st.parallel_efficiency).abs() < 1e-15);
        assert!((lc.wall - st.wall_time).abs() < 1e-15);
    }
}
