//! # cfpd-trace — performance tracing (Extrae + Paraver substitute)
//!
//! The paper instruments Alya with Extrae and inspects the trace with
//! Paraver (§2.2, Fig. 2). This crate provides the same capability at
//! the scale of this reproduction: phase-interval event records per
//! rank, the load-balance metric Lₙ of eq. 9, per-phase time breakdowns
//! (Table 1), an ASCII timeline renderer (Fig. 2), and CSV export.

pub mod balance;
pub mod event;
pub mod render;
pub mod stats;

pub use balance::{load_balance, phase_breakdown, PhaseRow};
pub use event::{ChaosEvent, ChaosKind, Phase, Trace, TraceEvent};
pub use render::{render_timeline, render_timeline_ranks};
pub use stats::{trace_stats, TraceStats};
