//! # cfpd-trace — performance tracing (Extrae + Paraver substitute)
//!
//! The paper instruments Alya with Extrae and inspects the trace with
//! Paraver (§2.2, Fig. 2). This crate provides the same capability at
//! the scale of this reproduction: phase-interval event records per
//! rank, per-(rank, worker) typed state events with point-to-point
//! message records, the load-balance metric Lₙ of eq. 9, per-phase time
//! breakdowns (Table 1), an ASCII timeline renderer (Fig. 2), CSV
//! export, Paraver `.prv`/`.pcf`/`.row` and Chrome `trace_event` JSON
//! exporters ([`export`]), a critical-path / lost-cycles analysis
//! engine ([`analysis`]), and a deterministic trace diff ([`diff`]).

pub mod analysis;
pub mod balance;
pub mod diff;
pub mod event;
pub mod export;
pub mod render;
pub mod stats;

pub use analysis::{critical_path, lost_cycles, CpSegment, CriticalPath, LostCycles};
pub use balance::{load_balance, phase_breakdown, PhaseRow};
pub use diff::{diff_summaries, DiffReport};
pub use event::{
    carve_states, worker_view, ChaosEvent, ChaosKind, DlbMark, DlbMarkKind, MsgRecord,
    Phase, Trace, TraceEvent, WorkerEvent, WorkerState,
};
pub use export::{export_chrome, export_pcf, export_prv, export_row, export_summary};
pub use render::{render_timeline, render_timeline_ranks};
pub use stats::{trace_stats, TraceStats};
