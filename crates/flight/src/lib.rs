//! # cfpd-flight — the flight recorder (post-mortem black box)
//!
//! A fixed-capacity, sharded ring buffer of recent structured events:
//! phase transitions, solver iteration heartbeats (with residuals), DLB
//! lend/pre-lend marks, comm waits, fault injections, checkpoint and
//! WAL marks. Hot paths call [`record`] unconditionally; when the
//! recorder is disabled that is a single relaxed load and a branch
//! (same contract as `cfpd_telemetry::enabled`), and when enabled the
//! budget is ≤ 100 ns per record (pinned by the `flight_record` row of
//! `BENCH_telemetry_overhead.json`).
//!
//! ## Memory contract
//!
//! The ring is `SHARDS` shards of `SLOTS_PER_SHARD` slots, allocated
//! once on first use and never resized: recording never allocates. A
//! recording thread picks its shard once (thread-local, round-robin)
//! and only ever bumps that shard's cursor, so concurrent recorders do
//! not contend on a cacheline; the only cross-thread atomic is the
//! global sequence counter that gives dumps a total order. When a
//! shard wraps, its oldest events are overwritten (the recorder keeps
//! the *recent* window, like an aircraft flight recorder) and the
//! overwrite count is reported in the dump's `meta` line.
//!
//! Slots are plain `AtomicU64` fields written with relaxed stores,
//! bracketed by a release store of the sequence number (zeroed first,
//! written last). A reader that races a wrapping writer can observe a
//! torn slot; this is acceptable for a diagnostic ring — dumps are
//! taken from a supervisor after the interesting thread has already
//! died or been abandoned — and the dump's trailing digest guards the
//! *rendered text* so a reader can always tell whether the file it
//! holds is the file that was written.
//!
//! ## Timing-only invariant
//!
//! Recording never feeds back into simulation state: no branch in any
//! deterministic core path consults the recorder. The golden-trace
//! suites pin this by running the goldens byte-identical with the
//! recorder enabled.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Shards in the ring (matches `cfpd_telemetry::SHARDS`: more than the
/// worker counts the verify scenarios run).
pub const SHARDS: usize = 16;
/// Slots per shard; the ring holds the most recent ~`SHARDS × this`
/// events (skew between shards can bias the retained window slightly).
pub const SLOTS_PER_SHARD: usize = 4096;
/// Total slot capacity of the ring.
pub const CAPACITY: usize = SHARDS * SLOTS_PER_SHARD;

/// What a recorded event describes. Discriminants are part of the dump
/// text format (rendered by name, not number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A POP phase attribution: `code` = phase index into
    /// [`PHASE_NAMES`], `a`/`b` = f64 bits of the start/end seconds.
    Phase = 1,
    /// Krylov iteration heartbeat: `code` 1 = CG, 2 = BiCGSTAB,
    /// `a` = iteration, `b` = f64 bits of the relative residual.
    SolverIter = 2,
    /// LeWI lend: `code` = lender rank, `a` = cores lent.
    DlbLend = 3,
    /// Predictive pre-lend: `code` = lender rank, `a` = cores.
    DlbPreLend = 4,
    /// Reclaim: `code` = reclaiming rank, `a` = cores reclaimed.
    DlbReclaim = 5,
    /// Blocking communication wait: `code` = collective op id,
    /// `a` = nanoseconds waited.
    CommWait = 6,
    /// Fault injection fired: `a` = detail (plan-specific).
    Fault = 7,
    /// A rank finished a simulation step: `a` = step index.
    Step = 8,
    /// Checkpoint written: `a` = f64 bits of the capture time (s).
    Ckpt = 9,
    /// Supervisor WAL append mirror: `rank` = job id (low 32 bits),
    /// `code` = WAL record kind, `a` = WAL sequence number.
    Wal = 10,
    /// Free-form supervisor mark (deadline kill, dump cause, …).
    Mark = 11,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Phase => "phase",
            EventKind::SolverIter => "solver",
            EventKind::DlbLend => "lend",
            EventKind::DlbPreLend => "prelend",
            EventKind::DlbReclaim => "reclaim",
            EventKind::CommWait => "wait",
            EventKind::Fault => "fault",
            EventKind::Step => "step",
            EventKind::Ckpt => "ckpt",
            EventKind::Wal => "wal",
            EventKind::Mark => "mark",
        }
    }

    pub fn from_name(name: &str) -> Option<EventKind> {
        Some(match name {
            "phase" => EventKind::Phase,
            "solver" => EventKind::SolverIter,
            "lend" => EventKind::DlbLend,
            "prelend" => EventKind::DlbPreLend,
            "reclaim" => EventKind::DlbReclaim,
            "wait" => EventKind::CommWait,
            "fault" => EventKind::Fault,
            "step" => EventKind::Step,
            "ckpt" => EventKind::Ckpt,
            "wal" => EventKind::Wal,
            "mark" => EventKind::Mark,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Phase,
            2 => EventKind::SolverIter,
            3 => EventKind::DlbLend,
            4 => EventKind::DlbPreLend,
            5 => EventKind::DlbReclaim,
            6 => EventKind::CommWait,
            7 => EventKind::Fault,
            8 => EventKind::Step,
            9 => EventKind::Ckpt,
            10 => EventKind::Wal,
            11 => EventKind::Mark,
            _ => return None,
        })
    }
}

/// POP phase names in `code` order for [`EventKind::Phase`] events —
/// must match `cfpd_telemetry::PopPhase::ALL` order.
pub const PHASE_NAMES: [&str; 6] =
    ["mpi", "assembly", "solver1", "solver2", "sgs", "particles"];

/// One drained event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global recording order (monotonic, starts at 1).
    pub seq: u64,
    /// Nanoseconds since the recorder was first used.
    pub t_ns: u64,
    /// Recording rank (or job id for supervisor [`EventKind::Wal`]).
    pub rank: u32,
    pub kind: EventKind,
    pub code: u32,
    pub a: u64,
    pub b: u64,
}

impl FlightEvent {
    /// Human-readable one-line description (used by the timeline).
    pub fn describe(&self) -> String {
        match self.kind {
            EventKind::Phase => {
                let name =
                    PHASE_NAMES.get(self.code as usize).copied().unwrap_or("?");
                format!(
                    "phase {name} {:.6}s..{:.6}s",
                    f64::from_bits(self.a),
                    f64::from_bits(self.b)
                )
            }
            EventKind::SolverIter => {
                let which = if self.code == 2 { "bicgstab" } else { "cg" };
                format!(
                    "{which} iter {} residual {:.3e}",
                    self.a,
                    f64::from_bits(self.b)
                )
            }
            EventKind::DlbLend => {
                format!("dlb lend: rank {} lends {} cores", self.code, self.a)
            }
            EventKind::DlbPreLend => {
                format!("dlb pre-lend: rank {} lends {} cores", self.code, self.a)
            }
            EventKind::DlbReclaim => {
                format!("dlb reclaim: rank {} reclaims {} cores", self.code, self.a)
            }
            EventKind::CommWait => {
                format!("comm wait op#{} {} ns", self.code, self.a)
            }
            EventKind::Fault => format!("fault injected (detail {})", self.a),
            EventKind::Step => format!("step {} done", self.a),
            EventKind::Ckpt => {
                format!("checkpoint written at t={:.6}s", f64::from_bits(self.a))
            }
            EventKind::Wal => {
                format!("wal append kind#{} seq {} job {}", self.code, self.a, self.rank)
            }
            EventKind::Mark => format!("mark #{} ({})", self.code, self.a),
        }
    }
}

struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Shard {
    cursor: AtomicUsize,
    slots: Box<[Slot]>,
}

struct Recorder {
    epoch: Instant,
    shards: Box<[Shard]>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(1);
static RECORDER: OnceLock<Recorder> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        shards: (0..SHARDS)
            .map(|_| Shard {
                cursor: AtomicUsize::new(0),
                slots: (0..SLOTS_PER_SHARD)
                    .map(|_| Slot {
                        seq: AtomicU64::new(0),
                        t_ns: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                        a: AtomicU64::new(0),
                        b: AtomicU64::new(0),
                    })
                    .collect(),
            })
            .collect(),
    })
}

/// Is the recorder on? Single relaxed load — the entire disabled-path
/// cost of an instrumented hot loop.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on or off. Enabling allocates the ring on first
/// use; disabling leaves recorded events in place for dumping.
pub fn set_enabled(on: bool) {
    if on {
        recorder(); // pin the epoch before the first record
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable the recorder when `CFPD_FLIGHT=1` is set (mirrors
/// `cfpd_telemetry::init_from_env`).
pub fn init_from_env() {
    if std::env::var("CFPD_FLIGHT").map(|v| v == "1").unwrap_or(false) {
        set_enabled(true);
    }
}

#[inline]
fn pack_meta(rank: u32, kind: EventKind, code: u32) -> u64 {
    ((rank as u64) << 40) | ((kind as u64) << 32) | code as u64
}

/// Record one event. When disabled this is a relaxed load and a branch
/// (~0 cost); when enabled, one clock read, two `fetch_add`s and five
/// relaxed stores into this thread's shard — no allocation, no lock.
#[inline]
pub fn record(kind: EventKind, rank: u32, code: u32, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let rec = recorder();
    let d = rec.epoch.elapsed();
    let t_ns = d.as_secs().wrapping_mul(1_000_000_000).wrapping_add(d.subsec_nanos() as u64);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let shard = &rec.shards[shard_index()];
    let slot = &shard.slots[shard.cursor.fetch_add(1, Ordering::Relaxed) % SLOTS_PER_SHARD];
    // Zero the sequence first so a racing reader skips the slot rather
    // than pairing the new sequence with stale fields.
    slot.seq.store(0, Ordering::Release);
    slot.t_ns.store(t_ns, Ordering::Relaxed);
    slot.meta.store(pack_meta(rank, kind, code), Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Release);
}

/// Total events overwritten by ring wrap so far.
pub fn dropped() -> u64 {
    let Some(rec) = RECORDER.get() else { return 0 };
    rec.shards
        .iter()
        .map(|s| s.cursor.load(Ordering::Relaxed).saturating_sub(SLOTS_PER_SHARD) as u64)
        .sum()
}

/// Drain a snapshot of the ring, merged across shards in recording
/// (sequence) order. Events being overwritten mid-read are skipped.
pub fn events() -> Vec<FlightEvent> {
    let Some(rec) = RECORDER.get() else { return Vec::new() };
    let mut out = Vec::new();
    for shard in rec.shards.iter() {
        for slot in shard.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8(((meta >> 32) & 0xff) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                seq,
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                rank: (meta >> 40) as u32,
                kind,
                code: (meta & 0xffff_ffff) as u32,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Clear the ring and restart the sequence counter (tests and
/// benchmarks; the daemon never resets — its dumps keep full context).
pub fn reset() {
    SEQ.store(1, Ordering::Relaxed);
    let Some(rec) = RECORDER.get() else { return };
    for shard in rec.shards.iter() {
        shard.cursor.store(0, Ordering::Relaxed);
        for slot in shard.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

/// A parsed, digest-verified dump.
#[derive(Debug, Clone)]
pub struct FlightDump {
    pub events: Vec<FlightEvent>,
    /// Events lost to ring wrap before the dump was taken.
    pub dropped: u64,
    pub capacity: u64,
}

const DUMP_MAGIC: &str = "cfpd flight v1";

/// Render the current ring as the digest-guarded dump text. The final
/// `digest <16 hex>` line is the FNV digest of every preceding byte,
/// so a truncated or edited file fails [`parse_dump`].
pub fn dump_text() -> String {
    render_dump(&events(), dropped())
}

/// Render an explicit event list as dump text (same format as
/// [`dump_text`]; used by tests).
pub fn render_dump(events: &[FlightEvent], dropped: u64) -> String {
    let mut body = String::with_capacity(64 + events.len() * 64);
    body.push_str(DUMP_MAGIC);
    body.push('\n');
    body.push_str(&format!(
        "meta events={} dropped={} capacity={}\n",
        events.len(),
        dropped,
        CAPACITY
    ));
    for e in events {
        body.push_str(&format!(
            "e {} {} {} {} {} {:016x} {:016x}\n",
            e.seq,
            e.t_ns,
            e.rank,
            e.kind.name(),
            e.code,
            e.a,
            e.b
        ));
    }
    let digest = cfpd_testkit::digest_bytes(body.as_bytes());
    body.push_str(&format!("digest {digest:016x}\n"));
    body
}

/// Parse and digest-verify a dump produced by [`dump_text`].
pub fn parse_dump(text: &str) -> Result<FlightDump, String> {
    let trimmed = text.trim_end_matches('\n');
    let (prefix, digest_line) = match trimmed.rfind('\n') {
        Some(i) => (&text[..i + 1], &trimmed[i + 1..]),
        None => return Err("flight dump: too short".into()),
    };
    let hex = digest_line
        .strip_prefix("digest ")
        .ok_or_else(|| "flight dump: missing digest trailer".to_string())?;
    let want = u64::from_str_radix(hex.trim(), 16)
        .map_err(|_| "flight dump: malformed digest trailer".to_string())?;
    let got = cfpd_testkit::digest_bytes(prefix.as_bytes());
    if got != want {
        return Err(format!(
            "flight dump: digest mismatch (file says {want:016x}, content is {got:016x})"
        ));
    }
    let mut lines = prefix.lines();
    if lines.next() != Some(DUMP_MAGIC) {
        return Err("flight dump: bad magic line".into());
    }
    let meta = lines.next().ok_or_else(|| "flight dump: missing meta".to_string())?;
    let mut dropped = 0u64;
    let mut capacity = CAPACITY as u64;
    for field in meta.strip_prefix("meta ").unwrap_or("").split_whitespace() {
        if let Some(v) = field.strip_prefix("dropped=") {
            dropped = v.parse().map_err(|_| "flight dump: bad meta".to_string())?;
        } else if let Some(v) = field.strip_prefix("capacity=") {
            capacity = v.parse().map_err(|_| "flight dump: bad meta".to_string())?;
        }
    }
    let mut events = Vec::new();
    for line in lines {
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 8 || parts[0] != "e" {
            return Err(format!("flight dump: malformed event line: {line}"));
        }
        let kind = EventKind::from_name(parts[4])
            .ok_or_else(|| format!("flight dump: unknown event kind {}", parts[4]))?;
        let num = |s: &str| s.parse::<u64>().map_err(|_| format!("flight dump: bad number {s}"));
        let hexnum =
            |s: &str| u64::from_str_radix(s, 16).map_err(|_| format!("flight dump: bad hex {s}"));
        events.push(FlightEvent {
            seq: num(parts[1])?,
            t_ns: num(parts[2])?,
            rank: num(parts[3])? as u32,
            kind,
            code: num(parts[5])? as u32,
            a: hexnum(parts[6])?,
            b: hexnum(parts[7])?,
        });
    }
    Ok(FlightDump { events, dropped, capacity })
}

/// Render the last `last_n` events as a relative-time timeline.
pub fn render_timeline(events: &[FlightEvent], last_n: usize) -> String {
    let window = &events[events.len().saturating_sub(last_n)..];
    let mut out = String::new();
    if window.is_empty() {
        out.push_str("(no events)\n");
        return out;
    }
    let t0 = window[0].t_ns;
    out.push_str(&format!(
        "last {} of {} events (t relative to window start)\n",
        window.len(),
        events.len()
    ));
    for e in window {
        let dt_ms = (e.t_ns.saturating_sub(t0)) as f64 / 1e6;
        out.push_str(&format!("  +{dt_ms:>10.3} ms  r{:<4} {}\n", e.rank, e.describe()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The recorder is process-global; serialize tests that mutate it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        record(EventKind::Step, 0, 0, 7, 0);
        assert!(events().is_empty());
    }

    #[test]
    fn records_in_sequence_order_across_threads() {
        let _g = guard();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                s.spawn(move || {
                    for i in 0..100u64 {
                        record(EventKind::Step, t, 0, i, 0);
                    }
                });
            }
        });
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 400);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(dropped(), 0);
        reset();
    }

    #[test]
    fn ring_wraps_and_keeps_the_recent_window() {
        let _g = guard();
        set_enabled(true);
        reset();
        // Single thread → single shard: overflow it deliberately.
        let n = SLOTS_PER_SHARD as u64 + 100;
        for i in 0..n {
            record(EventKind::SolverIter, 0, 1, i, 1.0f64.to_bits());
        }
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), SLOTS_PER_SHARD);
        assert!(dropped() >= 100);
        // The survivors are the most recent records.
        assert_eq!(evs.last().unwrap().a, n - 1);
        reset();
    }

    #[test]
    fn dump_round_trips_and_digest_guards_the_text() {
        let _g = guard();
        set_enabled(true);
        reset();
        record(EventKind::Phase, 1, 2, 0.5f64.to_bits(), 0.75f64.to_bits());
        record(EventKind::Wal, 42, 3, 17, 0);
        set_enabled(false);
        let text = dump_text();
        let dump = parse_dump(&text).expect("round trip");
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events, events());
        assert_eq!(dump.dropped, 0);
        // Any edit breaks the digest.
        let tampered = text.replace(" 42 wal ", " 43 wal ");
        assert!(parse_dump(&tampered).is_err());
        let truncated = &text[..text.len() / 2];
        assert!(parse_dump(truncated).is_err());
        reset();
    }

    #[test]
    fn timeline_renders_descriptions() {
        let evs = vec![
            FlightEvent {
                seq: 1,
                t_ns: 1_000_000,
                rank: 0,
                kind: EventKind::Phase,
                code: 2,
                a: 0.0f64.to_bits(),
                b: 0.25f64.to_bits(),
            },
            FlightEvent {
                seq: 2,
                t_ns: 2_500_000,
                rank: 1,
                kind: EventKind::SolverIter,
                code: 1,
                a: 9,
                b: 1e-7f64.to_bits(),
            },
        ];
        let tl = render_timeline(&evs, 10);
        assert!(tl.contains("phase solver1"));
        assert!(tl.contains("cg iter 9"));
        assert!(tl.contains("+     1.500 ms"));
    }

    #[test]
    fn describe_covers_every_kind() {
        for (kind, needle) in [
            (EventKind::DlbLend, "dlb lend"),
            (EventKind::DlbPreLend, "dlb pre-lend"),
            (EventKind::DlbReclaim, "dlb reclaim"),
            (EventKind::CommWait, "comm wait"),
            (EventKind::Fault, "fault injected"),
            (EventKind::Step, "step"),
            (EventKind::Ckpt, "checkpoint"),
            (EventKind::Mark, "mark"),
        ] {
            let e = FlightEvent { seq: 1, t_ns: 0, rank: 0, kind, code: 0, a: 0, b: 0 };
            assert!(e.describe().contains(needle), "{kind:?}");
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
    }
}
