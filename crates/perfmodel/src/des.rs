//! Discrete-event simulation of ranks executing phase programs on the
//! virtual cluster, with optional DLB core lending.
//!
//! Each rank runs a *program*: a sequence of work segments (malleable —
//! they speed up with extra cores — or serial, like communication
//! latency), signal posts and signal waits. Ranks co-located on a node
//! share its cores; with DLB enabled, a rank blocked in a wait lends its
//! cores to the node's working ranks, exactly the LeWI behaviour of
//! `cfpd-dlb` but in virtual time — this is what lets us reproduce the
//! paper's 96/192-core results from a 1-core container.

use cfpd_trace::{Phase, Trace};
use std::collections::HashMap;

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// Compute `amount` work units tagged as `phase`. If `malleable`,
    /// the rate scales with the cores currently held; otherwise it runs
    /// at single-core speed (communication latencies, serial sections).
    Work { phase: Phase, amount: f64, malleable: bool },
    /// Increment signal `id` by 1 (non-blocking).
    Post { id: u32 },
    /// Block until signal `id` reaches `count`.
    Wait { id: u32, count: u32 },
}

/// A rank's placement and program.
#[derive(Debug, Clone)]
pub struct RankProgram {
    pub node: usize,
    /// Cores this rank owns on its node (fractional under
    /// oversubscription, e.g. coupled 96+96 on 96 cores).
    pub owned_cores: f64,
    pub segments: Vec<Segment>,
}

/// DES parameters.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Work units per second per core (platform core speed × strategy
    /// factors are baked into segment amounts by the scenario builder).
    pub core_speed: f64,
    /// Enable LeWI lending of blocked ranks' cores.
    pub dlb: bool,
    /// Parallel efficiency of running a malleable segment on `c` cores;
    /// the scenario supplies the platform's curve.
    pub efficiency_loss: f64,
}

impl DesConfig {
    #[inline]
    fn rate(&self, cores: f64, malleable: bool) -> f64 {
        if !malleable {
            return self.core_speed * cores.min(1.0);
        }
        self.core_speed * cores * crate::platform::efficiency_curve(self.efficiency_loss, cores)
    }
}

/// Result of a DES run.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Wall time until the last rank finished.
    pub total_time: f64,
    /// Per-rank, per-phase busy time intervals (Paraver-style trace).
    pub trace: Trace,
    /// Per-rank finish times.
    pub finish: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RankState {
    /// Executing segment `seg` with `remaining` work.
    Working,
    /// Blocked in a Wait.
    Blocked,
    /// Program finished.
    Done,
}

/// Run the DES. Panics on deadlock (a Wait that can never be satisfied —
/// a scenario construction bug, not a runtime condition).
pub fn simulate(programs: &[RankProgram], cfg: &DesConfig) -> DesResult {
    let n = programs.len();
    let mut seg_idx = vec![0usize; n];
    let mut remaining = vec![0.0f64; n];
    let mut state = vec![RankState::Working; n];
    let mut signals: HashMap<u32, u32> = HashMap::new();
    let mut now = 0.0f64;
    let mut work_start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut trace = Trace::new(n);
    let num_nodes = programs.iter().map(|p| p.node).max().map_or(1, |m| m + 1);

    // Initialize: enter first segments.
    #[allow(clippy::needless_range_loop)]
    for r in 0..n {
        if programs[r].segments.is_empty() {
            state[r] = RankState::Done;
        }
    }

    // Advance a rank through non-work segments until it hits Work, a
    // blocking Wait, or the end. Returns true if any signal was posted
    // (which may unblock others).
    fn settle(
        r: usize,
        programs: &[RankProgram],
        seg_idx: &mut [usize],
        remaining: &mut [f64],
        state: &mut [RankState],
        signals: &mut HashMap<u32, u32>,
        now: f64,
        work_start: &mut [f64],
        finish: &mut [f64],
    ) -> bool {
        let mut posted = false;
        loop {
            let segs = &programs[r].segments;
            if seg_idx[r] >= segs.len() {
                if state[r] != RankState::Done {
                    state[r] = RankState::Done;
                    finish[r] = now;
                }
                return posted;
            }
            match segs[seg_idx[r]] {
                Segment::Work { amount, .. } => {
                    if amount <= 0.0 {
                        seg_idx[r] += 1;
                        continue;
                    }
                    remaining[r] = amount;
                    state[r] = RankState::Working;
                    work_start[r] = now;
                    return posted;
                }
                Segment::Post { id } => {
                    *signals.entry(id).or_insert(0) += 1;
                    posted = true;
                    seg_idx[r] += 1;
                }
                Segment::Wait { id, count } => {
                    if signals.get(&id).copied().unwrap_or(0) >= count {
                        seg_idx[r] += 1;
                    } else {
                        state[r] = RankState::Blocked;
                        return posted;
                    }
                }
            }
        }
    }

    // Settle everyone initially, repeating while posts unblock waiters.
    loop {
        let mut any_posted = false;
        for r in 0..n {
            if state[r] == RankState::Done {
                continue;
            }
            // Re-settle blocked ranks too (their signal may be ready now).
            if state[r] == RankState::Blocked || remaining[r] == 0.0 {
                any_posted |= settle(
                    r, programs, &mut seg_idx, &mut remaining, &mut state, &mut signals, now,
                    &mut work_start, &mut finish,
                );
            }
        }
        if !any_posted {
            break;
        }
    }

    let max_events = 200_000_000usize;
    let mut events = 0usize;
    loop {
        events += 1;
        assert!(events < max_events, "DES runaway");
        // Core allocation per node.
        let mut node_lent = vec![0.0f64; num_nodes];
        let mut node_workers = vec![0usize; num_nodes];
        for r in 0..n {
            match state[r] {
                RankState::Working => node_workers[programs[r].node] += 1,
                RankState::Blocked | RankState::Done => {
                    if cfg.dlb {
                        node_lent[programs[r].node] += programs[r].owned_cores;
                    }
                }
            }
        }
        let cores_of = |r: usize| -> f64 {
            let node = programs[r].node;
            let extra = if cfg.dlb && node_workers[node] > 0 {
                node_lent[node] / node_workers[node] as f64
            } else {
                0.0
            };
            programs[r].owned_cores + extra
        };

        // Find the earliest finisher among working ranks.
        let mut dt_min = f64::INFINITY;
        for r in 0..n {
            if state[r] == RankState::Working {
                if let Segment::Work { malleable, .. } = programs[r].segments[seg_idx[r]] {
                    let rate = cfg.rate(cores_of(r), malleable);
                    let dt = remaining[r] / rate.max(1e-300);
                    dt_min = dt_min.min(dt);
                }
            }
        }
        if !dt_min.is_finite() {
            // Nobody is working: either all done or deadlock.
            if state.iter().all(|&s| s == RankState::Done) {
                break;
            }
            panic!("DES deadlock: blocked ranks with no pending work");
        }

        // Advance time; drain work.
        now += dt_min;
        let mut finished_any = false;
        for r in 0..n {
            if state[r] != RankState::Working {
                continue;
            }
            if let Segment::Work { phase, malleable, .. } = programs[r].segments[seg_idx[r]] {
                let rate = cfg.rate(cores_of(r), malleable);
                remaining[r] -= rate * dt_min;
                if remaining[r] <= 1e-12 * rate.max(1.0) {
                    remaining[r] = 0.0;
                    trace.record(r, phase, work_start[r], now);
                    seg_idx[r] += 1;
                    finished_any = true;
                    settle(
                        r, programs, &mut seg_idx, &mut remaining, &mut state, &mut signals,
                        now, &mut work_start, &mut finish,
                    );
                }
            }
        }
        debug_assert!(finished_any);
        // Posts may unblock waiters; iterate to fixpoint.
        loop {
            let mut any = false;
            for r in 0..n {
                if state[r] == RankState::Blocked {
                    any |= settle(
                        r, programs, &mut seg_idx, &mut remaining, &mut state, &mut signals,
                        now, &mut work_start, &mut finish,
                    );
                }
            }
            if !any {
                break;
            }
        }
    }

    DesResult { total_time: now, trace, finish }
}

/// Convenience: a group barrier at `id` for `participants` ranks is
/// `Post{id}` followed by `Wait{id, participants}`.
pub fn barrier_segments(id: u32, participants: u32) -> [Segment; 2] {
    [Segment::Post { id }, Segment::Wait { id, count: participants }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dlb: bool) -> DesConfig {
        DesConfig { core_speed: 1.0, dlb, efficiency_loss: 0.0 }
    }

    fn work(amount: f64) -> Segment {
        Segment::Work { phase: Phase::Assembly, amount, malleable: true }
    }

    #[test]
    fn single_rank_time_is_work_over_speed() {
        let progs = vec![RankProgram { node: 0, owned_cores: 2.0, segments: vec![work(10.0)] }];
        let r = simulate(&progs, &cfg(false));
        assert!((r.total_time - 5.0).abs() < 1e-9, "{}", r.total_time);
    }

    #[test]
    fn barrier_waits_for_slowest() {
        let mk = |amount: f64| RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: {
                let mut s = vec![work(amount)];
                s.extend(barrier_segments(1, 2));
                s.push(work(1.0));
                s
            },
        };
        let r = simulate(&[mk(1.0), mk(9.0)], &cfg(false));
        assert!((r.total_time - 10.0).abs() < 1e-9, "{}", r.total_time);
        // Rank 0 idles 8 units at the barrier.
        assert!((r.finish[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dlb_accelerates_the_straggler() {
        // 2 ranks, 1 core each, same node. Work 1 and 9. Without DLB the
        // barrier releases at t=9. With DLB: rank 0 finishes at 1, lends
        // its core; rank 1 runs the remaining 8 units at rate 2 ->
        // finishes at 1 + 4 = 5.
        let mk = |amount: f64| RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: {
                let mut s = vec![work(amount)];
                s.extend(barrier_segments(1, 2));
                s
            },
        };
        let no = simulate(&[mk(1.0), mk(9.0)], &cfg(false));
        let yes = simulate(&[mk(1.0), mk(9.0)], &cfg(true));
        assert!((no.total_time - 9.0).abs() < 1e-9);
        assert!((yes.total_time - 5.0).abs() < 1e-9, "{}", yes.total_time);
    }

    #[test]
    fn dlb_does_not_cross_nodes() {
        let mk = |node: usize, amount: f64| RankProgram {
            node,
            owned_cores: 1.0,
            segments: {
                let mut s = vec![work(amount)];
                s.extend(barrier_segments(1, 2));
                s
            },
        };
        // Straggler on node 1; the idle rank is on node 0: no help.
        let r = simulate(&[mk(0, 1.0), mk(1, 9.0)], &cfg(true));
        assert!((r.total_time - 9.0).abs() < 1e-9, "{}", r.total_time);
    }

    #[test]
    fn non_malleable_work_ignores_extra_cores() {
        let progs = vec![
            RankProgram {
                node: 0,
                owned_cores: 1.0,
                segments: vec![Segment::Work {
                    phase: Phase::MpiComm,
                    amount: 4.0,
                    malleable: false,
                }],
            },
            RankProgram { node: 0, owned_cores: 3.0, segments: vec![] },
        ];
        let r = simulate(&progs, &cfg(true));
        // Rank 1 is Done instantly and lends 3 cores; the comm segment
        // still runs at single-core rate.
        assert!((r.total_time - 4.0).abs() < 1e-9, "{}", r.total_time);
    }

    #[test]
    fn producer_consumer_signal_pipeline() {
        // Fluid posts velocity after its work; particles wait for it —
        // the coupled-mode dependency (Fig. 3).
        let fluid = RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: vec![work(3.0), Segment::Post { id: 7 }, work(3.0)],
        };
        let particles = RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: vec![Segment::Wait { id: 7, count: 1 }, work(2.0)],
        };
        let r = simulate(&[fluid, particles], &cfg(false));
        // Particles start at t=3, end at 5; fluid ends at 6.
        assert!((r.finish[1] - 5.0).abs() < 1e-9);
        assert!((r.finish[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_via_fractional_cores() {
        // Two ranks time-share one core (0.5 each): 4 units take 8 s.
        let mk = || RankProgram { node: 0, owned_cores: 0.5, segments: vec![work(4.0)] };
        let r = simulate(&[mk(), mk()], &cfg(false));
        assert!((r.total_time - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn impossible_wait_panics() {
        let progs = vec![RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: vec![Segment::Wait { id: 1, count: 1 }],
        }];
        simulate(&progs, &cfg(false));
    }

    #[test]
    fn trace_records_phase_intervals() {
        let progs = vec![RankProgram {
            node: 0,
            owned_cores: 1.0,
            segments: vec![
                Segment::Work { phase: Phase::Assembly, amount: 2.0, malleable: true },
                Segment::Work { phase: Phase::Particles, amount: 1.0, malleable: true },
            ],
        }];
        let r = simulate(&progs, &cfg(false));
        assert_eq!(r.trace.events.len(), 2);
        assert_eq!(r.trace.per_rank_time(Phase::Assembly), vec![2.0]);
        assert_eq!(r.trace.per_rank_time(Phase::Particles), vec![1.0]);
    }

    #[test]
    fn efficiency_loss_slows_many_core_rates() {
        let progs = vec![RankProgram { node: 0, owned_cores: 8.0, segments: vec![work(8.0)] }];
        let ideal = simulate(&progs, &cfg(false));
        let lossy = simulate(
            &progs,
            &DesConfig { core_speed: 1.0, dlb: false, efficiency_loss: 0.05 },
        );
        assert!((ideal.total_time - 1.0).abs() < 1e-9);
        assert!(lossy.total_time > ideal.total_time);
    }
}
