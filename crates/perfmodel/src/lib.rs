//! # cfpd-perfmodel — virtual platforms + discrete-event cluster model
//!
//! The paper's evaluation compares two physical clusters (Intel-based
//! MareNostrum4 and Arm-based Thunder) that this reproduction cannot
//! access — and this container exposes a single CPU core, so wall-clock
//! parallel speedups are unobservable locally. Per DESIGN.md §2 the
//! substitution is: *measure real workloads* (element weights, particle
//! distributions, solver sizes from the actual executing code) and
//! *model cluster time* with
//!
//! * [`platform`] — per-cluster cost models calibrated against the
//!   paper's own published IPC numbers (§4.3), and
//! * [`des`] — a discrete-event simulation of ranks, nodes, barriers,
//!   velocity-exchange pipelines and LeWI core lending in virtual time,
//! * [`scenario`] — builders mapping the paper's execution modes
//!   (synchronous / coupled, Fig. 3) onto DES rank programs.

pub mod des;
pub mod energy;
pub mod platform;
pub mod scenario;

pub use des::{barrier_segments, simulate, DesConfig, DesResult, RankProgram, Segment};
pub use energy::{estimate_energy, EnergyReport, PowerModel};
pub use platform::{busy_idle_split, efficiency_curve, Platform, WORK_PER_TET_INSTR};
pub use scenario::{CoupledScenario, Mapping, PhaseSpec, Sensitivity, SyncScenario};
