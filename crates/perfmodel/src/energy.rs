//! Energy-to-solution estimation — an *extension beyond the paper*.
//!
//! The paper's hardware context (the Mont-Blanc project, refs. [5],
//! [17], [20], [21]) is motivated by energy efficiency of Arm SoCs, but
//! the paper itself reports only runtime. This module adds a simple
//! busy/idle power model on top of the DES traces so the reproduction
//! can also ask the Mont-Blanc question: *which cluster spends less
//! energy per simulation, and how much energy does DLB save by
//! converting idle waiting into useful work or rest?*
//!
//! Power constants are coarse public estimates (documented per
//! platform); as with time, only cross-platform and with/without-DLB
//! *ratios* are meaningful.

use crate::des::DesResult;
use crate::platform::Platform;
use cfpd_trace::Phase;

/// Busy/idle per-core power figures [W].
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    pub busy_w_per_core: f64,
    pub idle_w_per_core: f64,
}

impl PowerModel {
    /// Estimate for the platform's cores.
    ///
    /// * MareNostrum4: Xeon Platinum 8160, 150 W TDP / 24 cores ≈ 6.2 W
    ///   busy; package idle ≈ 25 % of TDP.
    /// * Thunder: ThunderX CN8890 ≈ 120 W / 48 cores ≈ 2.5 W busy;
    ///   in-order cores idle low, ≈ 20 %.
    pub fn for_platform(platform: &Platform) -> PowerModel {
        match platform.name {
            "MareNostrum4" => PowerModel { busy_w_per_core: 6.2, idle_w_per_core: 1.6 },
            "Thunder" => PowerModel { busy_w_per_core: 2.5, idle_w_per_core: 0.5 },
            _ => PowerModel { busy_w_per_core: 5.0, idle_w_per_core: 1.0 },
        }
    }
}

/// Energy breakdown of one DES run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Energy spent computing (busy cores) [J].
    pub busy_joules: f64,
    /// Energy spent idling / waiting [J].
    pub idle_joules: f64,
}

impl EnergyReport {
    pub fn total(&self) -> f64 {
        self.busy_joules + self.idle_joules
    }
}

/// Estimate the energy of a simulated run: every rank's busy intervals
/// charge its owned cores at busy power; the rest of the wall time (and
/// all unused node cores) charge idle power.
///
/// Approximation: a rank's *owned* core count is charged while busy —
/// borrowed DLB cores are owned by a blocked (idle-charged) rank, so
/// total core accounting stays conserved.
pub fn estimate_energy(
    platform: &Platform,
    power: &PowerModel,
    result: &DesResult,
    owned_cores_per_rank: f64,
) -> EnergyReport {
    let wall = result.total_time;
    let total_cores = platform.total_cores() as f64;
    let mut busy_core_seconds = 0.0;
    for e in &result.trace.events {
        if e.phase != Phase::MpiComm {
            busy_core_seconds += e.duration() * owned_cores_per_rank;
        }
    }
    let total_core_seconds = total_cores * wall;
    let (busy, idle) = crate::platform::busy_idle_split(busy_core_seconds, total_core_seconds);
    EnergyReport {
        busy_joules: busy * power.busy_w_per_core,
        idle_joules: idle * power.idle_w_per_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{simulate, DesConfig, RankProgram, Segment};

    fn run(work: Vec<f64>, dlb: bool) -> (Platform, DesResult) {
        let platform = Platform::mare_nostrum4();
        let programs: Vec<RankProgram> = work
            .iter()
            .map(|&w| RankProgram {
                node: 0,
                owned_cores: 1.0,
                segments: vec![
                    Segment::Work { phase: Phase::Assembly, amount: w, malleable: true },
                    Segment::Post { id: 1 },
                    Segment::Wait { id: 1, count: 2 },
                ],
            })
            .collect();
        let r = simulate(
            &programs,
            &DesConfig { core_speed: 1.0, dlb, efficiency_loss: 0.0 },
        );
        (platform, r)
    }

    #[test]
    fn balanced_run_is_mostly_busy_energy() {
        let (p, r) = run(vec![10.0, 10.0], false);
        let e = estimate_energy(&p, &PowerModel::for_platform(&p), &r, 1.0);
        assert!(e.busy_joules > 0.0);
        // 2 of 96 cores busy; the rest idles.
        assert!(e.idle_joules > e.busy_joules);
    }

    #[test]
    fn dlb_reduces_total_energy_of_imbalanced_run() {
        // Imbalance wastes wall time -> idle energy. DLB shortens wall.
        let (p, r_off) = run(vec![2.0, 18.0], false);
        let (_, r_on) = run(vec![2.0, 18.0], true);
        let pm = PowerModel::for_platform(&p);
        let e_off = estimate_energy(&p, &pm, &r_off, 1.0);
        let e_on = estimate_energy(&p, &pm, &r_on, 1.0);
        assert!(r_on.total_time < r_off.total_time);
        assert!(
            e_on.total() < e_off.total(),
            "DLB should cut energy: {} vs {}",
            e_on.total(),
            e_off.total()
        );
    }

    #[test]
    fn busy_energy_equals_work_times_power() {
        let (p, r) = run(vec![5.0, 5.0], false);
        let pm = PowerModel { busy_w_per_core: 2.0, idle_w_per_core: 0.0 };
        let e = estimate_energy(&p, &pm, &r, 1.0);
        // 10 core-seconds of busy work at 2 W.
        assert!((e.busy_joules - 20.0).abs() < 1e-9);
        assert_eq!(e.idle_joules, 0.0);
    }
}
