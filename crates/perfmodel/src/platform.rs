//! Virtual platform models of the paper's two clusters.
//!
//! This container has a single CPU core, and the paper's central
//! comparison (out-of-order Intel Xeon vs in-order Cavium ThunderX)
//! needs two microarchitectures — so cluster time is *modeled*, not
//! measured (see DESIGN.md §2). The model's constants are calibrated to
//! the paper's own published IPC measurements (§4.3):
//!
//! | cluster      | MPI-only IPC | atomics IPC | multidep IPC |
//! |--------------|--------------|-------------|--------------|
//! | MareNostrum4 | 2.25         | 1.15 (−50%) | 94–96 %      |
//! | Thunder      | 0.49         | 0.42 (−14%) | 94–96 %      |

use cfpd_solver::AssemblyStrategy;

/// A modeled cluster.
#[derive(Debug, Clone)]
pub struct Platform {
    pub name: &'static str,
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Core clock [GHz].
    pub freq_ghz: f64,
    /// IPC of the pure-MPI code (the baseline for everything).
    pub base_ipc: f64,
    /// IPC multiplier while executing assembly with `omp atomic`
    /// scatter-adds (hurts deep out-of-order pipelines far more).
    pub atomic_ipc_factor: f64,
    /// IPC multiplier under mesh coloring (spatial locality loss).
    pub coloring_ipc_factor: f64,
    /// IPC multiplier under multidependences (paper: 94–96 % of MPI-only).
    pub multidep_ipc_factor: f64,
    /// Per-color parallel-loop launch overhead [s].
    pub color_barrier_cost: f64,
    /// Per-task scheduling cost of the task runtime [s].
    pub task_spawn_cost: f64,
    /// Latency of a barrier/allreduce across ranks [s].
    pub comm_latency: f64,
    /// Fraction of per-thread efficiency lost per extra thread in a
    /// shared-memory parallel region (sync + bandwidth contention).
    pub thread_efficiency_loss: f64,
}

impl Platform {
    /// MareNostrum4: 2 × Intel Xeon Platinum 8160, 24 cores @ 2.1 GHz
    /// per socket (48/node), out-of-order cores with high ILP.
    pub fn mare_nostrum4() -> Platform {
        Platform {
            name: "MareNostrum4",
            nodes: 2,
            cores_per_node: 48,
            freq_ghz: 2.1,
            base_ipc: 2.25,
            atomic_ipc_factor: 1.15 / 2.25, // ≈ 0.511 (−50 %, §4.3)
            coloring_ipc_factor: 0.78,
            multidep_ipc_factor: 0.95,
            color_barrier_cost: 8e-6,
            task_spawn_cost: 2e-6,
            comm_latency: 8e-6,
            thread_efficiency_loss: 0.012,
        }
    }

    /// Thunder: 2 × Cavium ThunderX CN8890, 48 custom Armv8 in-order
    /// cores @ 1.8 GHz per socket (96/node).
    pub fn thunder() -> Platform {
        Platform {
            name: "Thunder",
            nodes: 2,
            cores_per_node: 96,
            freq_ghz: 1.8,
            base_ipc: 0.49,
            atomic_ipc_factor: 0.42 / 0.49, // ≈ 0.857 (−14 %, §4.3)
            coloring_ipc_factor: 0.92,
            multidep_ipc_factor: 0.95,
            color_barrier_cost: 12e-6,
            task_spawn_cost: 3e-6,
            // Single 40 GbE link vs MN4's Omni-Path: slower collectives.
            comm_latency: 25e-6,
            thread_efficiency_loss: 0.008,
        }
    }

    /// Total cores across the modeled nodes.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Work units one core retires per second at MPI-only IPC. Work
    /// units are normalized so that assembling one Tet4 costs
    /// [`WORK_PER_TET`] units.
    pub fn core_speed(&self) -> f64 {
        self.freq_ghz * 1e9 * self.base_ipc / WORK_PER_TET_INSTR
    }

    /// IPC multiplier of an assembly-like loop under `strategy`
    /// (relative to the MPI-only code).
    pub fn strategy_ipc_factor(&self, strategy: AssemblyStrategy) -> f64 {
        match strategy {
            AssemblyStrategy::Serial => 1.0,
            AssemblyStrategy::Atomics => self.atomic_ipc_factor,
            AssemblyStrategy::Coloring => self.coloring_ipc_factor,
            AssemblyStrategy::Multidep => self.multidep_ipc_factor,
        }
    }

    /// Parallel efficiency of a `threads`-wide shared-memory region.
    pub fn thread_efficiency(&self, threads: f64) -> f64 {
        efficiency_curve(self.thread_efficiency_loss, threads)
    }

    /// Paper-cited IPC under a strategy (for the calibration report).
    pub fn modeled_ipc(&self, strategy: AssemblyStrategy) -> f64 {
        self.base_ipc * self.strategy_ipc_factor(strategy)
    }
}

/// Instructions to assemble one Tet4 element (order-of-magnitude
/// estimate; only the *ratio* between platforms and strategies matters
/// for the reproduced shapes, not this absolute scale).
pub const WORK_PER_TET_INSTR: f64 = 2.0e4;

/// The one shared speed-factor curve: parallel efficiency of a
/// `threads`-wide shared-memory region losing `loss` per extra thread.
///
/// Both the platform model ([`Platform::thread_efficiency`]) and the
/// DES rate law (`DesConfig::rate`) consult this function — they used
/// to carry private copies with subtly different clamping. Guarantees
/// (pinned by a property test): the result is in `(0, 1]`, is exactly
/// `1.0` at or below one thread, and never increases with more threads.
pub fn efficiency_curve(loss: f64, threads: f64) -> f64 {
    1.0 / (1.0 + loss.max(0.0) * (threads - 1.0).max(0.0))
}

/// The one shared busy/idle clamp: split `busy` core-seconds out of a
/// `total` budget such that both parts are non-negative and sum to
/// exactly `total` (the energy model's former ad-hoc clamping).
pub fn busy_idle_split(busy: f64, total: f64) -> (f64, f64) {
    let busy = busy.min(total).max(0.0);
    (busy, (total - busy).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_ipcs() {
        let mn4 = Platform::mare_nostrum4();
        assert!((mn4.modeled_ipc(AssemblyStrategy::Serial) - 2.25).abs() < 1e-12);
        assert!((mn4.modeled_ipc(AssemblyStrategy::Atomics) - 1.15).abs() < 1e-12);
        let th = Platform::thunder();
        assert!((th.modeled_ipc(AssemblyStrategy::Serial) - 0.49).abs() < 1e-12);
        assert!((th.modeled_ipc(AssemblyStrategy::Atomics) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn atomic_penalty_much_worse_on_intel() {
        // The paper's architectural observation: the atomics slowdown is
        // ~50 % on the OoO Intel core but only ~14 % on the in-order Arm.
        let mn4 = Platform::mare_nostrum4();
        let th = Platform::thunder();
        assert!(mn4.atomic_ipc_factor < 0.6);
        assert!(th.atomic_ipc_factor > 0.8);
    }

    #[test]
    fn multidep_keeps_most_of_the_ipc() {
        for p in [Platform::mare_nostrum4(), Platform::thunder()] {
            let f = p.strategy_ipc_factor(AssemblyStrategy::Multidep);
            assert!((0.94..=0.96).contains(&f), "{}: {f}", p.name);
        }
    }

    #[test]
    fn totals_match_paper_hardware() {
        assert_eq!(Platform::mare_nostrum4().total_cores(), 96);
        assert_eq!(Platform::thunder().total_cores(), 192);
    }

    #[test]
    fn thread_efficiency_decreases() {
        let p = Platform::mare_nostrum4();
        assert_eq!(p.thread_efficiency(1.0), 1.0);
        assert!(p.thread_efficiency(4.0) < 1.0);
        assert!(p.thread_efficiency(4.0) > 0.9);
    }

    #[test]
    fn efficiency_curve_properties() {
        use cfpd_testkit::prop::{check, f64_range, PropConfig};
        let gen = (f64_range(0.0, 0.5), f64_range(0.0, 256.0), f64_range(0.0, 8.0));
        check(
            "efficiency curve is clamped, shared and monotone",
            PropConfig::cases(256),
            &gen,
            |&(loss, threads, dt)| {
                let eff = efficiency_curve(loss, threads);
                assert!(eff > 0.0 && eff <= 1.0, "eff {eff} outside (0, 1]");
                if threads <= 1.0 {
                    assert_eq!(eff, 1.0, "at most one thread loses nothing");
                }
                // More threads never increase per-thread efficiency.
                assert!(efficiency_curve(loss, threads + dt) <= eff);
                // The platform method is the same curve, not a copy.
                for p in [Platform::mare_nostrum4(), Platform::thunder()] {
                    assert_eq!(
                        p.thread_efficiency(threads),
                        efficiency_curve(p.thread_efficiency_loss, threads)
                    );
                }
            },
        );
    }

    #[test]
    fn busy_idle_split_properties() {
        use cfpd_testkit::prop::{check, f64_range, PropConfig};
        // Busy may exceed the budget (the clamp's whole purpose) and
        // even be negative on degenerate inputs; the split must always
        // be non-negative and sum exactly to the budget.
        let gen = (f64_range(-10.0, 2000.0), f64_range(0.0, 1000.0));
        check(
            "busy/idle split conserves the core-second budget",
            PropConfig::cases(256),
            &gen,
            |&(busy_in, total)| {
                let (busy, idle) = busy_idle_split(busy_in, total);
                assert!(busy >= 0.0 && idle >= 0.0);
                assert!(busy <= total);
                assert!((busy + idle - total).abs() <= 1e-12 * total.max(1.0));
            },
        );
    }
}
