//! Scenario builders: turn measured per-rank workloads into DES rank
//! programs for the paper's two execution modes (Fig. 3) — synchronous
//! (all ranks solve fluid then particles) and coupled (an f-rank fluid
//! code feeding a p-rank particle code through a velocity exchange).

use crate::des::{simulate, DesConfig, DesResult, RankProgram, Segment};
use crate::platform::Platform;
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

/// How a phase's cost responds to the assembly parallelization strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sensitivity {
    /// Unaffected (solvers, particle transport).
    None,
    /// Racy element loop: pays the strategy's IPC factor plus per-color
    /// or per-task scheduling overheads (`colors`, `tasks` per rank).
    Assembly { colors: usize, tasks: usize },
    /// Race-free element loop (the SGS phase): needs no atomics, so the
    /// Atomics strategy runs at full speed, while coloring/multidep
    /// still pay their locality/scheduling overheads (paper Fig. 7).
    Sgs { colors: usize, tasks: usize },
}

/// Per-rank work of a phase: constant across steps, or one vector per
/// step (the particle phase drifts as particles advect deeper).
#[derive(Debug, Clone)]
pub enum WorkProfile {
    Static(Vec<f64>),
    PerStep(Vec<Vec<f64>>),
}

impl WorkProfile {
    /// Number of ranks this profile describes.
    pub fn ranks(&self) -> usize {
        match self {
            WorkProfile::Static(v) => v.len(),
            WorkProfile::PerStep(vs) => vs.first().map_or(0, |v| v.len()),
        }
    }

    /// Work vector at `step` (PerStep profiles clamp to the last step).
    pub fn at(&self, step: usize) -> &[f64] {
        match self {
            WorkProfile::Static(v) => v,
            WorkProfile::PerStep(vs) => &vs[step.min(vs.len() - 1)],
        }
    }
}

/// One phase of the step with its per-rank work profile.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    pub phase: Phase,
    /// Work units per rank (length = number of ranks in the group).
    pub work: WorkProfile,
    pub sensitivity: Sensitivity,
}

impl PhaseSpec {
    /// Constant-per-step phase.
    pub fn fixed(phase: Phase, per_rank: Vec<f64>, sensitivity: Sensitivity) -> PhaseSpec {
        PhaseSpec { phase, work: WorkProfile::Static(per_rank), sensitivity }
    }

    /// Phase whose per-rank work changes each step.
    pub fn per_step(phase: Phase, per_step: Vec<Vec<f64>>, sensitivity: Sensitivity) -> PhaseSpec {
        PhaseSpec { phase, work: WorkProfile::PerStep(per_step), sensitivity }
    }
}

/// Rank-to-node placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Ranks 0..k on node 0, etc. (default MPI placement).
    Block,
    /// Rank r on node r % nodes — mixes the two coupled codes on every
    /// node, giving DLB cross-code lending opportunities.
    RoundRobin,
}

impl Mapping {
    fn node_of(self, rank: usize, ranks: usize, nodes: usize) -> usize {
        match self {
            Mapping::Block => rank / ranks.div_ceil(nodes),
            Mapping::RoundRobin => rank % nodes,
        }
    }
}

/// A synchronous-mode scenario (one group of `ranks()` ranks running all
/// phases each step).
#[derive(Debug, Clone)]
pub struct SyncScenario {
    pub platform: Platform,
    pub phases: Vec<PhaseSpec>,
    pub steps: usize,
    /// OpenMP threads (cores owned) per rank.
    pub threads_per_rank: usize,
    pub strategy: AssemblyStrategy,
    pub dlb: bool,
    pub mapping: Mapping,
}

impl SyncScenario {
    pub fn ranks(&self) -> usize {
        self.phases.first().map_or(0, |p| p.work.ranks())
    }

    /// Build rank programs and simulate.
    pub fn run(&self) -> DesResult {
        let n = self.ranks();
        assert!(n > 0, "scenario needs at least one rank");
        for p in &self.phases {
            assert_eq!(p.work.ranks(), n, "inconsistent rank counts");
        }
        let nodes = self.platform.nodes;
        let ranks_per_node = n.div_ceil(nodes);
        let owned =
            (self.platform.cores_per_node as f64 / ranks_per_node as f64).min(self.threads_per_rank as f64);
        let comm_work = self.platform.comm_latency * self.platform.core_speed();

        let mut programs: Vec<RankProgram> = (0..n)
            .map(|r| RankProgram {
                node: self.mapping.node_of(r, n, nodes),
                owned_cores: owned,
                segments: Vec::new(),
            })
            .collect();
        let mut signal = 0u32;
        for step in 0..self.steps {
            for spec in &self.phases {
                let (work_scale, overhead) = strategy_cost(
                    &self.platform,
                    self.strategy,
                    spec.sensitivity,
                    self.threads_per_rank,
                );
                signal += 1;
                let work = spec.work.at(step);
                for (r, prog) in programs.iter_mut().enumerate() {
                    let amount = work[r] * work_scale;
                    if amount > 0.0 {
                        prog.segments.push(Segment::Work {
                            phase: spec.phase,
                            amount,
                            malleable: true,
                        });
                    }
                    if overhead > 0.0 {
                        prog.segments.push(Segment::Work {
                            phase: spec.phase,
                            amount: overhead * self.platform.core_speed(),
                            malleable: false,
                        });
                    }
                    // End-of-phase synchronization (allreduce/barrier).
                    prog.segments.push(Segment::Work {
                        phase: Phase::MpiComm,
                        amount: comm_work,
                        malleable: false,
                    });
                    prog.segments.push(Segment::Post { id: signal });
                    prog.segments.push(Segment::Wait { id: signal, count: n as u32 });
                }
            }
        }
        simulate(
            &programs,
            &DesConfig {
                core_speed: self.platform.core_speed(),
                dlb: self.dlb,
                efficiency_loss: self.platform.thread_efficiency_loss,
            },
        )
    }
}

/// A coupled-mode scenario: `fluid` group of f ranks and `particles`
/// group of p ranks; each step the particle group consumes the velocity
/// field the fluid group produced for that step (one-way pipeline,
/// Fig. 3 bottom).
#[derive(Debug, Clone)]
pub struct CoupledScenario {
    pub platform: Platform,
    /// Fluid-group phases (per-rank work vectors of length f).
    pub fluid_phases: Vec<PhaseSpec>,
    /// Particle-group phases (length p).
    pub particle_phases: Vec<PhaseSpec>,
    pub steps: usize,
    pub threads_per_rank: usize,
    pub strategy: AssemblyStrategy,
    pub dlb: bool,
    pub mapping: Mapping,
}

impl CoupledScenario {
    pub fn fluid_ranks(&self) -> usize {
        self.fluid_phases.first().map_or(0, |p| p.work.ranks())
    }

    pub fn particle_ranks(&self) -> usize {
        self.particle_phases.first().map_or(0, |p| p.work.ranks())
    }

    pub fn run(&self) -> DesResult {
        let f = self.fluid_ranks();
        let p = self.particle_ranks();
        assert!(f > 0 && p > 0, "coupled mode needs both groups");
        let n = f + p;
        let nodes = self.platform.nodes;
        let ranks_per_node = n.div_ceil(nodes);
        // Oversubscription (e.g. 96+96 on 96 cores) yields fractional
        // core ownership — the time-sharing cost the paper's "bad user
        // choices" pay.
        let owned = (self.platform.cores_per_node as f64 / ranks_per_node as f64)
            .min(self.threads_per_rank as f64);
        let comm_work = self.platform.comm_latency * self.platform.core_speed();
        let speed = self.platform.core_speed();

        let mut programs: Vec<RankProgram> = (0..n)
            .map(|r| RankProgram {
                node: self.mapping.node_of(r, n, nodes),
                owned_cores: owned,
                segments: Vec::new(),
            })
            .collect();

        // Signal space: per step, id = base + step*K + k.
        let vel_signal = |step: usize| 1_000_000 + step as u32;
        let mut signal = 0u32;
        for step in 0..self.steps {
            // Fluid group: all fluid phases, group barrier per phase,
            // then post the velocity for this step.
            for spec in &self.fluid_phases {
                let (scale, overhead) =
                    strategy_cost(&self.platform, self.strategy, spec.sensitivity, self.threads_per_rank);
                signal += 1;
                let work = spec.work.at(step);
                for (i, prog) in programs.iter_mut().take(f).enumerate() {
                    let amount = work[i] * scale;
                    if amount > 0.0 {
                        prog.segments.push(Segment::Work { phase: spec.phase, amount, malleable: true });
                    }
                    if overhead > 0.0 {
                        prog.segments.push(Segment::Work {
                            phase: spec.phase,
                            amount: overhead * speed,
                            malleable: false,
                        });
                    }
                    prog.segments.push(Segment::Work { phase: Phase::MpiComm, amount: comm_work, malleable: false });
                    prog.segments.push(Segment::Post { id: signal });
                    prog.segments.push(Segment::Wait { id: signal, count: f as u32 });
                }
            }
            for prog in programs.iter_mut().take(f) {
                prog.segments.push(Segment::Post { id: vel_signal(step) });
            }

            // Particle group: wait for this step's velocity, then the
            // particle phases with a group barrier each.
            for (k, spec) in self.particle_phases.iter().enumerate() {
                signal += 1;
                let work = spec.work.at(step);
                for (i, prog) in programs.iter_mut().skip(f).enumerate() {
                    if k == 0 {
                        prog.segments.push(Segment::Wait { id: vel_signal(step), count: f as u32 });
                    }
                    let amount = work[i];
                    if amount > 0.0 {
                        prog.segments.push(Segment::Work { phase: spec.phase, amount, malleable: true });
                    }
                    prog.segments.push(Segment::Work { phase: Phase::MpiComm, amount: comm_work, malleable: false });
                    prog.segments.push(Segment::Post { id: signal });
                    prog.segments.push(Segment::Wait { id: signal, count: p as u32 });
                }
            }
        }

        simulate(
            &programs,
            &DesConfig {
                core_speed: speed,
                dlb: self.dlb,
                efficiency_loss: self.platform.thread_efficiency_loss,
            },
        )
    }
}

/// Work multiplier and per-rank serial overhead [s] of running a phase
/// under a strategy.
fn strategy_cost(
    platform: &Platform,
    strategy: AssemblyStrategy,
    sensitivity: Sensitivity,
    threads: usize,
) -> (f64, f64) {
    let overhead_of = |colors: usize, tasks: usize| match strategy {
        AssemblyStrategy::Serial | AssemblyStrategy::Atomics => 0.0,
        AssemblyStrategy::Coloring => colors as f64 * platform.color_barrier_cost,
        AssemblyStrategy::Multidep => {
            tasks as f64 * platform.task_spawn_cost / threads.max(1) as f64
        }
    };
    match sensitivity {
        Sensitivity::None => (1.0, 0.0),
        Sensitivity::Assembly { colors, tasks } => (
            1.0 / platform.strategy_ipc_factor(strategy),
            overhead_of(colors, tasks),
        ),
        Sensitivity::Sgs { colors, tasks } => {
            // No race to protect: the Atomics variant is a plain loop.
            // Coloring's locality loss is also milder than in assembly —
            // SGS has no matrix scatter, only the element-data gather
            // side suffers — modeled as half the (log-scale) penalty,
            // i.e. the square root of the assembly factor. This keeps
            // the paper's "overhead below 10 %" observation (Fig. 7).
            let scale = match strategy {
                AssemblyStrategy::Serial | AssemblyStrategy::Atomics => 1.0,
                AssemblyStrategy::Coloring => {
                    1.0 / platform.strategy_ipc_factor(AssemblyStrategy::Coloring).sqrt()
                }
                AssemblyStrategy::Multidep => {
                    1.0 / platform.strategy_ipc_factor(AssemblyStrategy::Multidep)
                }
            };
            (scale, overhead_of(colors, tasks))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_phase(phase: Phase, n: usize, w: f64) -> PhaseSpec {
        PhaseSpec::fixed(phase, vec![w; n], Sensitivity::None)
    }

    fn asm_phase(n: usize, w: f64) -> PhaseSpec {
        PhaseSpec::fixed(
            Phase::Assembly,
            vec![w; n],
            Sensitivity::Assembly { colors: 20, tasks: 64 },
        )
    }

    fn base_sync(n: usize) -> SyncScenario {
        SyncScenario {
            platform: Platform::mare_nostrum4(),
            phases: vec![asm_phase(n, 1e6), flat_phase(Phase::Particles, n, 1e5)],
            steps: 2,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb: false,
            mapping: Mapping::Block,
        }
    }

    #[test]
    fn sync_scenario_runs_and_traces() {
        let s = base_sync(8);
        let r = s.run();
        assert!(r.total_time > 0.0);
        assert!(!r.trace.events.is_empty());
        // Both phases appear in the trace.
        assert!(r.trace.per_rank_time(Phase::Assembly)[0] > 0.0);
        assert!(r.trace.per_rank_time(Phase::Particles)[0] > 0.0);
    }

    #[test]
    fn atomics_strategy_slower_than_serial_baseline() {
        let mut s = base_sync(8);
        let t_serial = s.run().total_time;
        s.strategy = AssemblyStrategy::Atomics;
        let t_atomics = s.run().total_time;
        assert!(t_atomics > t_serial, "{t_atomics} vs {t_serial}");
    }

    #[test]
    fn multidep_close_to_serial() {
        let mut s = base_sync(8);
        let t_serial = s.run().total_time;
        s.strategy = AssemblyStrategy::Multidep;
        let t_md = s.run().total_time;
        assert!(t_md < t_serial * 1.15, "{t_md} vs {t_serial}");
    }

    #[test]
    fn dlb_helps_imbalanced_sync_run() {
        let n = 8;
        let mut work = vec![1e5; n];
        work[0] = 1e7; // one overloaded rank
        let mut s = base_sync(n);
        s.phases = vec![PhaseSpec::fixed(Phase::Particles, work, Sensitivity::None)];
        let t_orig = s.run().total_time;
        s.dlb = true;
        let t_dlb = s.run().total_time;
        assert!(
            t_dlb < t_orig * 0.5,
            "DLB should at least halve an extreme imbalance: {t_dlb} vs {t_orig}"
        );
    }

    #[test]
    fn dlb_never_hurts_balanced_run() {
        let mut s = base_sync(8);
        let t_orig = s.run().total_time;
        s.dlb = true;
        let t_dlb = s.run().total_time;
        assert!(t_dlb <= t_orig * 1.0001, "{t_dlb} vs {t_orig}");
    }

    #[test]
    fn sgs_sensitivity_atomics_is_free() {
        // In the SGS phase the Atomics strategy is a plain loop: same
        // time as Serial; Coloring/Multidep pay overhead.
        let mut s = base_sync(8);
        s.phases = vec![PhaseSpec::fixed(
            Phase::Sgs,
            vec![1e6; 8],
            Sensitivity::Sgs { colors: 20, tasks: 64 },
        )];
        let t_serial = s.run().total_time;
        s.strategy = AssemblyStrategy::Atomics;
        let t_atomics = s.run().total_time;
        assert!((t_atomics - t_serial).abs() < 1e-12 * t_serial.max(1.0));
        s.strategy = AssemblyStrategy::Coloring;
        let t_color = s.run().total_time;
        assert!(t_color > t_atomics);
        // ... but by less than the assembly-phase coloring penalty.
        let mut asm = base_sync(8);
        asm.strategy = AssemblyStrategy::Coloring;
        asm.phases = vec![PhaseSpec::fixed(
            Phase::Sgs,
            vec![1e6; 8],
            Sensitivity::Assembly { colors: 20, tasks: 64 },
        )];
        let t_asm_penalty = asm.run().total_time;
        assert!(t_color < t_asm_penalty);
    }

    #[test]
    fn per_step_work_profile_clamps_to_last() {
        let profile = WorkProfile::PerStep(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(profile.ranks(), 2);
        assert_eq!(profile.at(0), &[1.0, 2.0]);
        assert_eq!(profile.at(1), &[3.0, 4.0]);
        assert_eq!(profile.at(99), &[3.0, 4.0], "clamps to last step");
    }

    #[test]
    fn per_step_particle_phase_drives_time() {
        // A per-step particle profile that doubles each step must yield
        // a longer run than its first-step value held constant.
        let plat = Platform::mare_nostrum4();
        let mk = |phases: Vec<PhaseSpec>| SyncScenario {
            platform: plat.clone(),
            phases,
            steps: 3,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb: false,
            mapping: Mapping::Block,
        };
        let growing = mk(vec![PhaseSpec::per_step(
            Phase::Particles,
            vec![vec![1e5; 4], vec![2e5; 4], vec![4e5; 4]],
            Sensitivity::None,
        )]);
        let flat = mk(vec![PhaseSpec::fixed(
            Phase::Particles,
            vec![1e5; 4],
            Sensitivity::None,
        )]);
        assert!(growing.run().total_time > flat.run().total_time * 2.0);
    }

    #[test]
    fn coupled_overlaps_fluid_and_particles() {
        let plat = Platform::mare_nostrum4();
        let f = 4;
        let p = 4;
        let coupled = CoupledScenario {
            platform: plat.clone(),
            fluid_phases: vec![flat_phase(Phase::Assembly, f, 1e6)],
            particle_phases: vec![flat_phase(Phase::Particles, p, 1e6)],
            steps: 4,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb: false,
            mapping: Mapping::RoundRobin,
        };
        let t_coupled = coupled.run().total_time;
        // Equivalent synchronous run: same total work on f+p ranks, but
        // phases serialized. Per-rank work halves (n ranks vs f).
        let sync = SyncScenario {
            platform: plat,
            phases: vec![
                flat_phase(Phase::Assembly, f + p, 5e5),
                flat_phase(Phase::Particles, f + p, 5e5),
            ],
            steps: 4,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb: false,
            mapping: Mapping::Block,
        };
        let t_sync = sync.run().total_time;
        // With perfect balance both should be in the same ballpark; the
        // coupled one pipelines, the sync one uses all ranks per phase.
        assert!(t_coupled < t_sync * 3.0 && t_sync < t_coupled * 3.0);
    }

    #[test]
    fn coupled_dlb_rescues_bad_split() {
        // Overloaded particle group (tiny p) with idle fluid ranks
        // co-resident: DLB lends fluid cores during the particle phase.
        let plat = Platform::mare_nostrum4();
        let f = 6;
        let p = 2;
        let mk = |dlb: bool| CoupledScenario {
            platform: plat.clone(),
            fluid_phases: vec![flat_phase(Phase::Assembly, f, 1e5)],
            particle_phases: vec![flat_phase(Phase::Particles, p, 4e6)],
            steps: 3,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb,
            mapping: Mapping::RoundRobin,
        };
        let t_orig = mk(false).run().total_time;
        let t_dlb = mk(true).run().total_time;
        assert!(t_dlb < t_orig * 0.7, "{t_dlb} vs {t_orig}");
    }

    #[test]
    fn oversubscribed_coupled_run_slower() {
        let plat = Platform::mare_nostrum4(); // 96 cores
        let mk = |f: usize, p: usize| CoupledScenario {
            platform: plat.clone(),
            fluid_phases: vec![flat_phase(Phase::Assembly, f, 4.8e6 / f as f64)],
            particle_phases: vec![flat_phase(Phase::Particles, p, 4.8e6 / p as f64)],
            steps: 2,
            threads_per_rank: 1,
            strategy: AssemblyStrategy::Serial,
            dlb: false,
            mapping: Mapping::RoundRobin,
        };
        let fit = mk(48, 48).run().total_time; // exactly 96 ranks
        let over = mk(96, 96).run().total_time; // 192 ranks on 96 cores
        assert!(over > fit, "oversubscribed {over} vs fitting {fit}");
    }
}
