//! A minimal JSON writer (zero-dependency), used by the telemetry
//! snapshot renderer and by `cfpd chaos --json`.
//!
//! Emits compact, valid JSON with deterministic formatting: strings are
//! escaped per RFC 8259, `f64`s use Rust's shortest round-trip form
//! (non-finite values become `null`), and commas/keys are managed by a
//! container stack, so callers cannot produce mismatched separators.

/// Streaming JSON builder.
pub struct JsonWriter {
    out: String,
    /// One frame per open container: `true` once it has a first element
    /// (so the next element needs a comma).
    stack: Vec<bool>,
    /// A key was just written; the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter { out: String::new(), stack: Vec::new(), pending_key: false }
    }

    fn separate(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.separate();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Close `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop().expect("end_object without begin");
        self.out.push('}');
        self
    }

    /// Open `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.separate();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Close `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop().expect("end_array without begin");
        self.out.push(']');
        self
    }

    /// Write an object key; the next write is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.separate();
        self.write_escaped(k);
        self.out.push(':');
        self.pending_key = true;
        self
    }

    pub fn string(&mut self, s: &str) -> &mut Self {
        self.separate();
        self.write_escaped(s);
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.separate();
        self.out.push_str(&v.to_string());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.separate();
        self.out.push_str(&v.to_string());
        self
    }

    /// Shortest round-trip decimal; NaN/±inf render as `null` (JSON has
    /// no non-finite numbers).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.separate();
        if v.is_finite() {
            let s = format!("{v:?}");
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// The finished document. Panics if a container is still open — a
    /// malformed document is a bug at the call site.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        assert!(!self.pending_key, "dangling JSON key");
        self.out
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders_compactly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("telemetry");
        w.key("counts").begin_array().u64(1).u64(2).u64(3).end_array();
        w.key("nested").begin_object().key("pi").f64(0.5).key("ok").bool(true).end_object();
        w.key("neg").i64(-7);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"telemetry","counts":[1,2,3],"nested":{"pi":0.5,"ok":true},"neg":-7}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("msg").string("line1\nline2\t\"quoted\" \\ \u{1}");
        w.end_object();
        assert_eq!(w.finish(), r#"{"msg":"line1\nline2\t\"quoted\" \\ \u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array().f64(f64::NAN).f64(f64::INFINITY).f64(1.25).end_array();
        assert_eq!(w.finish(), "[null,null,1.25]");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_containers_panic() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
