//! The global static metrics registry.
//!
//! Metrics are created on first use, leaked to `'static` (a metric,
//! once named, lives for the process — the property that lets call
//! sites cache the handle in a `OnceLock` and skip the registry lock on
//! the hot path), and enumerated in name order for snapshots.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::render::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The counter named `name`, created on first use. Cache the returned
/// handle (the [`crate::count!`] macro does) — this takes the registry
/// lock.
pub fn counter(name: &str) -> &'static Counter {
    let mut r = registry();
    r.counters
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut r = registry();
    r.gauges
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut r = registry();
    r.histograms
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Zero every registered metric and the POP time table. Used by `cfpd
/// report` (and tests) to scope a measurement to one run; concurrent
/// recordings may survive a reset, so quiesce first for exact reads.
pub fn reset() {
    let r = registry();
    for c in r.counters.values() {
        c.reset();
    }
    for g in r.gauges.values() {
        g.reset();
    }
    for h in r.histograms.values() {
        h.reset();
    }
    drop(r);
    crate::pop::reset();
}

/// Merge every registered metric (name order, fixed shard order) plus
/// the POP rollup into a read-side snapshot.
pub fn snapshot() -> TelemetrySnapshot {
    let r = registry();
    TelemetrySnapshot {
        counters: r.counters.iter().map(|(n, c)| (n.clone(), c.value())).collect(),
        gauges: r.gauges.iter().map(|(n, g)| (n.clone(), g.value())).collect(),
        histograms: r.histograms.iter().map(|(n, h)| (n.clone(), h.merged())).collect(),
        pop: crate::pop::report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let a = counter("registry.same") as *const Counter;
        let b = counter("registry.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_is_name_ordered_and_reset_zeroes() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        counter("registry.zz").add_unchecked(2);
        counter("registry.aa").add_unchecked(1);
        crate::set_enabled(false);
        let snap = snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("registry.aa") || n.starts_with("registry.zz"))
            .collect();
        assert_eq!(names, vec!["registry.aa", "registry.zz"]);
        reset();
        assert_eq!(counter("registry.zz").value(), 0);
        assert_eq!(counter("registry.aa").value(), 0);
    }
}
