//! RAII span timers.

use crate::metrics::Histogram;
use std::time::Instant;

/// Times a region and records its elapsed nanoseconds into a histogram
/// on drop. Construct via [`crate::span!`] (which skips the clock read
/// entirely while telemetry is disabled) or [`Span::start`].
pub struct Span {
    hist: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Start timing into `hist` (unconditionally — use [`crate::span!`]
    /// for the enabled-gated form).
    #[inline]
    pub fn start(hist: &'static Histogram) -> Span {
        Span { hist, start: Instant::now() }
    }

    /// Elapsed nanoseconds so far. Stays in u64 arithmetic — the u128
    /// `Duration::as_nanos` path costs a visible fraction of the span
    /// budget on the bench — wrapping only beyond ~584 years.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.start.elapsed();
        d.as_secs().wrapping_mul(1_000_000_000).wrapping_add(d.subsec_nanos() as u64)
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        self.hist.record_unchecked(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_elapsed() {
        let _g = crate::testutil::guard();
        let h = crate::histogram("span.unit");
        h.reset();
        {
            let _s = Span::start(h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let m = h.merged();
        assert_eq!(m.count, 1);
        assert!(m.min >= 500_000, "recorded {} ns", m.min);
    }
}
