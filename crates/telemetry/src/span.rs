//! RAII span timers.

use crate::metrics::Histogram;
use std::time::Instant;

/// Times a region and records its elapsed nanoseconds into a histogram
/// on drop. Construct via [`crate::span!`] (which skips the clock read
/// entirely while telemetry is disabled) or [`Span::start`].
pub struct Span {
    hist: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Start timing into `hist` (unconditionally — use [`crate::span!`]
    /// for the enabled-gated form).
    pub fn start(hist: &'static Histogram) -> Span {
        Span { hist, start: Instant::now() }
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        let ns = self.start.elapsed().as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_unchecked(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_elapsed() {
        let _g = crate::testutil::guard();
        let h = crate::histogram("span.unit");
        h.reset();
        {
            let _s = Span::start(h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let m = h.merged();
        assert_eq!(m.count, 1);
        assert!(m.min >= 500_000, "recorded {} ns", m.min);
    }
}
