//! Read-side snapshot and its renderers.
//!
//! Both renderers are deterministic: metrics come from the registry in
//! name order, histogram buckets in value order, POP phases in
//! [`crate::PopPhase::ALL`] order. Two snapshots of identical recorded
//! values render byte-identical documents.

use crate::json::JsonWriter;
use crate::metrics::HistSnapshot;
use crate::pop::PopReport;
use std::fmt::Write as _;

/// A merged view of every registered metric plus the POP rollup, as
/// produced by [`crate::snapshot`].
pub struct TelemetrySnapshot {
    /// `(name, merged value)` in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, merged value)` in name order.
    pub gauges: Vec<(String, i64)>,
    /// `(name, merged view)` in name order.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// `None` when no phase time was attributed.
    pub pop: Option<PopReport>,
}

impl TelemetrySnapshot {
    /// Is there anything to report?
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
            && self.pop.is_none()
    }

    /// Fixed-width text table (zero-valued metrics are elided).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry ==\n");
        if let Some(pop) = &self.pop {
            out.push_str("[pop]\n");
            let _ = writeln!(out, "  ranks               {:>12}", pop.ranks);
            let _ = writeln!(out, "  wall_time_s         {:>12.6}", pop.wall_time);
            let _ = writeln!(out, "  useful_time_s       {:>12.6}", pop.useful_time);
            let _ = writeln!(out, "  mpi_time_s          {:>12.6}", pop.mpi_time);
            let _ = writeln!(out, "  parallel_efficiency {:>12.6}", pop.parallel_efficiency);
            let _ = writeln!(out, "  load_balance        {:>12.6}", pop.load_balance);
            let _ = writeln!(out, "  comm_efficiency     {:>12.6}", pop.comm_efficiency);
            for (name, secs) in &pop.per_phase {
                let _ = writeln!(out, "  phase.{:<13} {:>12.6}", name, secs);
            }
            if pop.dropped > 0 {
                let _ = writeln!(out, "  dropped_spans       {:>12}", pop.dropped);
            }
        }
        let live_counters: Vec<_> =
            self.counters.iter().filter(|(_, v)| *v != 0).collect();
        if !live_counters.is_empty() {
            out.push_str("[counters]\n");
            for (name, v) in live_counters {
                let _ = writeln!(out, "  {name:<40} {v:>16}");
            }
        }
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0).collect();
        if !live_gauges.is_empty() {
            out.push_str("[gauges]\n");
            for (name, v) in live_gauges {
                let _ = writeln!(out, "  {name:<40} {v:>16}");
            }
        }
        let live_hists: Vec<_> =
            self.histograms.iter().filter(|(_, h)| h.count != 0).collect();
        if !live_hists.is_empty() {
            out.push_str("[histograms]\n");
            for (name, h) in live_hists {
                let _ = writeln!(
                    out,
                    "  {name:<40} count={} min={} mean={:.1} max={}",
                    h.count,
                    h.min,
                    h.mean(),
                    h.max
                );
            }
        }
        out
    }

    /// Compact JSON document (zero-valued metrics included — the schema
    /// is stable regardless of what fired).
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("pop");
        match &self.pop {
            None => {
                w.begin_object().end_object();
            }
            Some(pop) => {
                w.begin_object();
                w.key("ranks").u64(pop.ranks as u64);
                w.key("wall_time_s").f64(pop.wall_time);
                w.key("useful_time_s").f64(pop.useful_time);
                w.key("mpi_time_s").f64(pop.mpi_time);
                w.key("parallel_efficiency").f64(pop.parallel_efficiency);
                w.key("load_balance").f64(pop.load_balance);
                w.key("comm_efficiency").f64(pop.comm_efficiency);
                w.key("per_rank_useful_s").begin_array();
                for v in &pop.per_rank_useful {
                    w.f64(*v);
                }
                w.end_array();
                w.key("per_phase_s").begin_object();
                for (name, secs) in &pop.per_phase {
                    w.key(name).f64(*secs);
                }
                w.end_object();
                w.key("dropped_spans").u64(pop.dropped);
                w.end_object();
            }
        }
        w.key("counters").begin_object();
        for (name, v) in &self.counters {
            w.key(name).u64(*v);
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (name, v) in &self.gauges {
            w.key(name).i64(*v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, h) in &self.histograms {
            w.key(name).begin_object();
            w.key("count").u64(h.count);
            w.key("sum").u64(h.sum);
            w.key("min").u64(if h.count == 0 { 0 } else { h.min });
            w.key("max").u64(h.max);
            w.key("mean").f64(h.mean());
            w.key("buckets").begin_array();
            for (lo, hi, c) in h.nonzero_buckets() {
                w.begin_object();
                w.key("lo").u64(lo);
                w.key("hi").u64(hi);
                w.key("count").u64(c);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Renders from the same frozen, name-ordered snapshot as
    /// [`Self::render_json`] — never from the live registry — so a
    /// single snapshot taken under concurrent jobs yields one coherent,
    /// deterministic document (no interleaved shard reads; two calls on
    /// one snapshot are byte-identical). Metric names are prefixed with
    /// `cfpd_` and sanitized to `[a-zA-Z0-9_]` (dots become
    /// underscores). Histograms render as cumulative `_bucket` series
    /// over the log2 bucket upper bounds plus the mandatory
    /// `le="+Inf"`, `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("cfpd_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
            }
            out
        }
        let mut out = String::new();
        let w = &mut out;
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(w, "# TYPE {n} counter");
            let _ = writeln!(w, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(w, "# TYPE {n} gauge");
            let _ = writeln!(w, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(w, "# TYPE {n} histogram");
            // Cumulative counts at each non-empty bucket's inclusive
            // upper bound; the final +Inf bucket always carries the
            // total.
            let mut cum = 0u64;
            for (_, hi, c) in h.nonzero_buckets() {
                cum += c;
                if hi == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(w, "{n}_bucket{{le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(w, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(w, "{n}_sum {}", h.sum);
            let _ = writeln!(w, "{n}_count {}", h.count);
        }
        if let Some(pop) = &self.pop {
            for (name, v) in [
                ("cfpd_pop_ranks", pop.ranks as f64),
                ("cfpd_pop_wall_time_seconds", pop.wall_time),
                ("cfpd_pop_useful_time_seconds", pop.useful_time),
                ("cfpd_pop_mpi_time_seconds", pop.mpi_time),
                ("cfpd_pop_parallel_efficiency", pop.parallel_efficiency),
                ("cfpd_pop_load_balance", pop.load_balance),
                ("cfpd_pop_comm_efficiency", pop.comm_efficiency),
            ] {
                let _ = writeln!(w, "# TYPE {name} gauge");
                let _ = writeln!(w, "{name} {v}");
            }
            let _ = writeln!(w, "# TYPE cfpd_pop_phase_seconds gauge");
            for (phase, secs) in &pop.per_phase {
                let _ = writeln!(
                    w,
                    "cfpd_pop_phase_seconds{{phase=\"{}\"}} {secs}",
                    escape_label_value(phase)
                );
            }
        }
        out
    }
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
/// Applied to every label value the renderer emits, so hostile phase
/// or label names cannot break the document structure.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BUCKETS;

    fn sample() -> TelemetrySnapshot {
        let mut buckets = [0u64; BUCKETS];
        buckets[1] = 2;
        buckets[3] = 1;
        TelemetrySnapshot {
            counters: vec![("a.count".into(), 3), ("b.zero".into(), 0)],
            gauges: vec![("g.cores".into(), -2)],
            histograms: vec![(
                "h.wait".into(),
                HistSnapshot { count: 3, sum: 7, min: 1, max: 5, buckets },
            )],
            pop: Some(PopReport {
                ranks: 2,
                wall_time: 3.0,
                useful_time: 3.0,
                mpi_time: 3.0,
                parallel_efficiency: 0.5,
                load_balance: 0.75,
                comm_efficiency: 2.0 / 3.0,
                per_rank_useful: vec![2.0, 1.0],
                per_phase: vec![("mpi", 3.0), ("assembly", 2.0)],
                dropped: 0,
            }),
        }
    }

    #[test]
    fn renders_are_deterministic_and_structured() {
        let s = sample();
        assert_eq!(s.render_table(), s.render_table());
        assert_eq!(s.render_json(), s.render_json());
        let table = s.render_table();
        assert!(table.contains("parallel_efficiency"));
        assert!(table.contains("a.count"));
        assert!(!table.contains("b.zero"), "zero counters elided from the table");
        let json = s.render_json();
        assert!(json.contains(r#""parallel_efficiency":0.5"#));
        assert!(json.contains(r#""load_balance":0.75"#));
        assert!(json.contains(r#""b.zero":0"#), "zero counters kept in JSON");
        assert!(json.contains(r#""lo":4,"hi":7,"count":1"#));
    }

    #[test]
    fn prometheus_render_is_deterministic_and_cumulative() {
        let s = sample();
        assert_eq!(s.render_prometheus(), s.render_prometheus());
        let prom = s.render_prometheus();
        // Dots sanitized, TYPE lines precede samples.
        assert!(prom.contains("# TYPE cfpd_a_count counter\ncfpd_a_count 3\n"));
        assert!(prom.contains("# TYPE cfpd_g_cores gauge\ncfpd_g_cores -2\n"));
        // Histogram buckets are cumulative: bucket 1 ([1,1]) holds 2,
        // bucket 3 ([4,7]) brings the running total to 3.
        assert!(prom.contains("cfpd_h_wait_bucket{le=\"1\"} 2\n"));
        assert!(prom.contains("cfpd_h_wait_bucket{le=\"7\"} 3\n"));
        assert!(prom.contains("cfpd_h_wait_bucket{le=\"+Inf\"} 3\n"));
        assert!(prom.contains("cfpd_h_wait_sum 7\n"));
        assert!(prom.contains("cfpd_h_wait_count 3\n"));
        assert!(prom.contains("cfpd_pop_parallel_efficiency 0.5\n"));
        assert!(prom.contains("cfpd_pop_phase_seconds{phase=\"mpi\"} 3\n"));
        assert!(prom.ends_with('\n'));
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let s = TelemetrySnapshot {
            counters: vec![("a".into(), 0)],
            gauges: vec![],
            histograms: vec![],
            pop: None,
        };
        assert!(s.is_empty());
        assert_eq!(s.render_json(), r#"{"pop":{},"counters":{"a":0},"gauges":{},"histograms":{}}"#);
    }
}
