//! Online POP-style efficiency rollup.
//!
//! A fixed (rank × phase) table of f64 time accumulators fed by the
//! simulation's phase attribution (the same `(rank, phase, t_start,
//! t_end)` tuples the wall-clock trace records, but accumulated, not
//! logged). From it the POP metrics of the paper's methodology are
//! derived online:
//!
//! * **load balance** `LB = Σᵣ usefulᵣ / (n · maxᵣ usefulᵣ)` — eq. 9
//!   over per-rank useful (non-MPI) time, matching
//!   `cfpd_trace::load_balance`;
//! * **communication efficiency** `CommE = maxᵣ usefulᵣ / wall`;
//! * **parallel efficiency** `PE = LB × CommE = Σᵣ usefulᵣ / (n · wall)`
//!   — matching `cfpd_trace::trace_stats`.
//!
//! `wall` is the latest phase end time seen on any rank, which equals
//! `Trace::total_time()` when the same attributions feed both sides —
//! the 1e-9 agreement the telemetry regression test pins.

use crate::metrics::{Pad, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Ranks the static table can attribute. Recordings for ranks beyond
/// this are counted in `telemetry.pop_dropped` and otherwise ignored.
pub const MAX_RANKS: usize = 64;

/// Phase attribution of a span, mirroring `cfpd_trace::Phase` (same
/// order; kept separate so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopPhase {
    Mpi,
    Assembly,
    Solver1,
    Solver2,
    Sgs,
    Particles,
}

impl PopPhase {
    pub const ALL: [PopPhase; 6] = [
        PopPhase::Mpi,
        PopPhase::Assembly,
        PopPhase::Solver1,
        PopPhase::Solver2,
        PopPhase::Sgs,
        PopPhase::Particles,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PopPhase::Mpi => "mpi",
            PopPhase::Assembly => "assembly",
            PopPhase::Solver1 => "solver1",
            PopPhase::Solver2 => "solver2",
            PopPhase::Sgs => "sgs",
            PopPhase::Particles => "particles",
        }
    }

    /// Stable index into [`PopPhase::ALL`] (also the flight recorder's
    /// phase code).
    pub fn index(self) -> usize {
        match self {
            PopPhase::Mpi => 0,
            PopPhase::Assembly => 1,
            PopPhase::Solver1 => 2,
            PopPhase::Solver2 => 3,
            PopPhase::Sgs => 4,
            PopPhase::Particles => 5,
        }
    }
}

const PHASES: usize = PopPhase::ALL.len();

/// One f64 accumulator as atomic bits. Each cell has a single writing
/// rank thread, but the CAS loop keeps concurrent writers correct too.
struct F64Cell(AtomicU64);

impl F64Cell {
    const fn new() -> F64Cell {
        F64Cell(AtomicU64::new(0)) // 0u64 == 0.0f64 bits
    }

    fn add(&self, v: f64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + v).to_bits())
        });
    }

    fn max(&self, v: f64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            let cur = f64::from_bits(bits);
            if v > cur { Some(v.to_bits()) } else { None }
        });
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

struct RankRow {
    phase_seconds: [F64Cell; PHASES],
    /// Latest phase end time this rank attributed (run-epoch seconds).
    last_end: F64Cell,
}

struct PopTable {
    rows: [Pad<RankRow>; MAX_RANKS],
    /// Spans attributed to ranks ≥ MAX_RANKS (sharded, like a counter).
    dropped: [Pad<AtomicU64>; SHARDS],
}

fn table() -> &'static PopTable {
    static TABLE: std::sync::OnceLock<PopTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| PopTable {
        rows: std::array::from_fn(|_| {
            Pad(RankRow {
                phase_seconds: std::array::from_fn(|_| F64Cell::new()),
                last_end: F64Cell::new(),
            })
        }),
        dropped: std::array::from_fn(|_| Pad(AtomicU64::new(0))),
    })
}

/// Attribute the span `[t_start, t_end]` (run-epoch seconds) on `rank`
/// to `phase`. No-op while telemetry is disabled.
#[inline]
pub fn phase(rank: usize, phase: PopPhase, t_start: f64, t_end: f64) {
    if !crate::enabled() {
        return;
    }
    let t = table();
    if rank >= MAX_RANKS {
        t.dropped[crate::metrics::shard_index()].0.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let row = &t.rows[rank].0;
    row.phase_seconds[phase.index()].add(t_end - t_start);
    row.last_end.max(t_end);
}

/// Feedback tap: accumulated seconds attributed to `(rank, phase)` so
/// far — the online per-(rank, phase) signal a predictive load balancer
/// reads between steps without waiting for the end-of-run
/// [`report`]. `None` for ranks beyond [`MAX_RANKS`]. Reads whatever
/// has been recorded regardless of whether telemetry is currently
/// enabled (recording itself is still gated).
pub fn phase_seconds(rank: usize, phase: PopPhase) -> Option<f64> {
    if rank >= MAX_RANKS {
        return None;
    }
    Some(table().rows[rank].0.phase_seconds[phase.index()].get())
}

/// Feedback tap companion to [`phase_seconds`]: `rank`'s accumulated
/// useful (non-MPI) seconds across all phases.
pub fn useful_seconds(rank: usize) -> Option<f64> {
    if rank >= MAX_RANKS {
        return None;
    }
    let row = &table().rows[rank].0;
    let mut useful = 0.0;
    for p in PopPhase::ALL {
        if p != PopPhase::Mpi {
            useful += row.phase_seconds[p.index()].get();
        }
    }
    Some(useful)
}

/// Zero the table.
pub fn reset() {
    let t = table();
    for row in &t.rows {
        for c in &row.0.phase_seconds {
            c.reset();
        }
        row.0.last_end.reset();
    }
    for d in &t.dropped {
        d.0.store(0, Ordering::Relaxed);
    }
}

/// The POP rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct PopReport {
    /// Ranks that attributed any time (contiguous prefix assumed; the
    /// highest recording rank defines `ranks`).
    pub ranks: usize,
    /// Latest phase end over all ranks — the online wall clock.
    pub wall_time: f64,
    /// Σ per-rank useful (non-MPI) seconds.
    pub useful_time: f64,
    /// Σ per-rank MPI seconds.
    pub mpi_time: f64,
    /// `useful / (ranks × wall)`.
    pub parallel_efficiency: f64,
    /// Eq. 9 over per-rank useful time.
    pub load_balance: f64,
    /// `parallel_efficiency / load_balance` (= max useful / wall).
    pub comm_efficiency: f64,
    /// Per-rank useful seconds, rank order.
    pub per_rank_useful: Vec<f64>,
    /// Seconds per phase summed over ranks, [`PopPhase::ALL`] order.
    pub per_phase: Vec<(&'static str, f64)>,
    /// Spans dropped for ranks ≥ [`MAX_RANKS`].
    pub dropped: u64,
}

/// Merge the table into a [`PopReport`]; `None` if nothing was
/// recorded.
pub fn report() -> Option<PopReport> {
    let t = table();
    let mut ranks = 0;
    for (r, row) in t.rows.iter().enumerate() {
        let any = row.0.last_end.get() > 0.0
            || row.0.phase_seconds.iter().any(|c| c.get() > 0.0);
        if any {
            ranks = r + 1;
        }
    }
    let dropped = t
        .dropped
        .iter()
        .fold(0u64, |acc, d| acc.wrapping_add(d.0.load(Ordering::Relaxed)));
    if ranks == 0 {
        return None;
    }

    let mut per_rank_useful = vec![0.0f64; ranks];
    let mut mpi_time = 0.0f64;
    let mut wall = 0.0f64;
    let mut per_phase: Vec<(&'static str, f64)> =
        PopPhase::ALL.iter().map(|p| (p.name(), 0.0)).collect();
    for (r, row) in t.rows.iter().take(ranks).enumerate() {
        for (i, p) in PopPhase::ALL.iter().enumerate() {
            let s = row.0.phase_seconds[i].get();
            per_phase[i].1 += s;
            if *p == PopPhase::Mpi {
                mpi_time += s;
            } else {
                per_rank_useful[r] += s;
            }
        }
        wall = wall.max(row.0.last_end.get());
    }
    let useful_time: f64 = per_rank_useful.iter().sum();
    let max_useful = per_rank_useful.iter().cloned().fold(0.0f64, f64::max);
    let n = ranks as f64;
    // Zero-guard conventions follow cfpd_trace: an idle run is perfectly
    // efficient, an all-zero phase vector is perfectly balanced.
    let parallel_efficiency = if wall > 0.0 { useful_time / (n * wall) } else { 1.0 };
    let load_balance = if max_useful > 0.0 { useful_time / (n * max_useful) } else { 1.0 };
    let comm_efficiency = if wall > 0.0 && max_useful > 0.0 { max_useful / wall } else { 1.0 };
    Some(PopReport {
        ranks,
        wall_time: wall,
        useful_time,
        mpi_time,
        parallel_efficiency,
        load_balance,
        comm_efficiency,
        per_rank_useful,
        per_phase,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_matches_hand_computation() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        reset();
        // Rank 0: 2 s useful + 1 s MPI, ends at 3. Rank 1: 1 s useful,
        // idles until 3 (its last span still ends at 3).
        phase(0, PopPhase::Assembly, 0.0, 2.0);
        phase(0, PopPhase::Mpi, 2.0, 3.0);
        phase(1, PopPhase::Particles, 0.0, 1.0);
        phase(1, PopPhase::Mpi, 1.0, 3.0);
        crate::set_enabled(false);
        let r = report().expect("recorded");
        assert_eq!(r.ranks, 2);
        assert_eq!(r.wall_time, 3.0);
        assert_eq!(r.useful_time, 3.0);
        assert_eq!(r.mpi_time, 3.0);
        // PE = 3 / (2*3) = 0.5; LB = 3 / (2*2) = 0.75; CommE = 2/3.
        assert!((r.parallel_efficiency - 0.5).abs() < 1e-12);
        assert!((r.load_balance - 0.75).abs() < 1e-12);
        assert!((r.comm_efficiency - 2.0 / 3.0).abs() < 1e-12);
        // The POP identity: PE = LB × CommE.
        assert!(
            (r.parallel_efficiency - r.load_balance * r.comm_efficiency).abs() < 1e-12
        );
        reset();
        assert!(report().is_none());
    }

    #[test]
    fn feedback_tap_reads_the_live_accumulators() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        reset();
        phase(0, PopPhase::Assembly, 0.0, 1.5);
        phase(0, PopPhase::Mpi, 1.5, 2.0);
        phase(1, PopPhase::Solver1, 0.0, 0.25);
        crate::set_enabled(false);
        assert!((phase_seconds(0, PopPhase::Assembly).unwrap() - 1.5).abs() < 1e-12);
        assert!((phase_seconds(0, PopPhase::Mpi).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(phase_seconds(2, PopPhase::Assembly), Some(0.0));
        assert_eq!(phase_seconds(MAX_RANKS, PopPhase::Assembly), None);
        // Useful excludes MPI.
        assert!((useful_seconds(0).unwrap() - 1.5).abs() < 1e-12);
        assert!((useful_seconds(1).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(useful_seconds(MAX_RANKS + 1), None);
        reset();
        assert_eq!(useful_seconds(0), Some(0.0));
    }

    #[test]
    fn out_of_range_rank_is_counted_not_recorded() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        reset();
        phase(MAX_RANKS + 3, PopPhase::Sgs, 0.0, 1.0);
        phase(0, PopPhase::Sgs, 0.0, 1.0);
        crate::set_enabled(false);
        let r = report().expect("recorded");
        assert_eq!(r.ranks, 1);
        assert_eq!(r.dropped, 1);
        reset();
    }
}
