//! Sharded metric primitives: counters, gauges and log2-bucketed
//! histograms.
//!
//! Every metric is an array of [`SHARDS`] cacheline-padded atomic
//! cells. A recording thread picks its shard once (a thread-local,
//! assigned round-robin on first use) and then only ever touches that
//! cell with relaxed operations — no cross-thread cacheline traffic on
//! the hot path. Reads merge the shards in fixed index order, so a
//! snapshot of a quiesced metric is bit-deterministic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards per metric. More than the worker counts this repo runs
/// (ranks × pool workers stay well under it in the verify scenarios);
/// a 17th thread shares a shard, which costs contention, not
/// correctness.
pub const SHARDS: usize = 16;

/// Pad to two cachelines (128 B covers prefetch-pair effects on both
/// x86 and the paper's Arm cores).
#[repr(align(128))]
pub(crate) struct Pad<T>(pub T);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's shard index (assigned round-robin on first use).
#[inline]
pub(crate) fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// Monotonic event counter.
pub struct Counter {
    shards: Box<[Pad<AtomicU64>]>,
}

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter { shards: (0..SHARDS).map(|_| Pad(AtomicU64::new(0))).collect() }
    }

    /// Add `n`, checking the global enabled flag first.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.add_unchecked(n);
        }
    }

    /// Add 1, checking the global enabled flag first.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` without consulting the enabled flag (the recording
    /// macros check it once and call this).
    #[inline]
    pub fn add_unchecked(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Merged value (fixed shard order, wrapping adds).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    pub(crate) fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Signed up/down gauge (e.g. cores currently lent out). Additive:
/// concurrent `add`s commute, the value is the merged sum of deltas.
pub struct Gauge {
    shards: Box<[Pad<AtomicU64>]>,
}

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge { shards: (0..SHARDS).map(|_| Pad(AtomicU64::new(0))).collect() }
    }

    /// Apply a signed delta, checking the global enabled flag first.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.add_unchecked(delta);
        }
    }

    /// Apply a signed delta without consulting the enabled flag.
    #[inline]
    pub fn add_unchecked(&self, delta: i64) {
        // Two's-complement wrapping add: the merged sum of deltas is
        // exact as long as the true value fits i64.
        self.shards[shard_index()].0.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Merged value.
    pub fn value(&self) -> i64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
            as i64
    }

    pub(crate) fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Bucket count: bucket `i` holds values whose bit length is `i`, i.e.
/// bucket 0 is exactly `{0}` and bucket `i ≥ 1` spans `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Index of the log2 bucket for `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for the zero bucket).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 { 0 } else { 1u64 << (i - 1) }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of recorded values (exact unless > u64::MAX total).
    sum: AtomicU64,
    /// Exact extrema via relaxed `fetch_min`/`fetch_max`.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Log2-bucketed histogram with exact count / sum / min / max.
pub struct Histogram {
    shards: Box<[Pad<HistShard>]>,
}

/// Merged, read-side view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// `(lo, hi, count)` rows of the non-empty buckets, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
            .collect()
    }
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram { shards: (0..SHARDS).map(|_| Pad(HistShard::new())).collect() }
    }

    /// Record one observation, checking the global enabled flag first.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_unchecked(v);
        }
    }

    /// Record one observation without consulting the enabled flag.
    #[inline]
    pub fn record_unchecked(&self, v: u64) {
        let shard = &self.shards[shard_index()].0;
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.min.fetch_min(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merge the shards (fixed order) into a read-side snapshot.
    pub fn merged(&self) -> HistSnapshot {
        let mut out = HistSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        };
        for s in self.shards.iter() {
            let s = &s.0;
            out.count = out.count.wrapping_add(s.count.load(Ordering::Relaxed));
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.min = out.min.min(s.min.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (dst, src) in out.buckets.iter_mut().zip(&s.buckets) {
                *dst = dst.wrapping_add(src.load(Ordering::Relaxed));
            }
        }
        out
    }

    pub(crate) fn reset(&self) {
        for s in self.shards.iter() {
            s.0.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn counter_merges_across_threads() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_deltas_commute() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let g = Gauge::new();
        std::thread::scope(|s| {
            for t in 0..6 {
                let g = &g;
                s.spawn(move || {
                    for _ in 0..100 {
                        g.add(if t % 2 == 0 { 3 } else { -2 });
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(g.value(), 3 * 300 - 2 * 300);
    }

    #[test]
    fn histogram_exact_min_max_sum() {
        let _g = crate::testutil::guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 1, 5, 1023, 1024, 7_000_000] {
            h.record(v);
        }
        crate::set_enabled(false);
        let s = h.merged();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 5 + 1023 + 1024 + 7_000_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 7_000_000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[3], 1); // 5 in [4,8)
        assert_eq!(s.buckets[10], 1); // 1023 in [512,1024)
        assert_eq!(s.buckets[11], 1); // 1024 in [1024,2048)
        assert_eq!(s.nonzero_buckets().len(), 6);
    }

    #[test]
    fn disabled_records_are_dropped() {
        let _g = crate::testutil::guard();
        crate::set_enabled(false);
        let c = Counter::new();
        let h = Histogram::new();
        c.inc();
        h.record(9);
        assert_eq!(c.value(), 0);
        assert_eq!(h.merged().count, 0);
    }
}
