//! # cfpd-telemetry — always-on runtime observability
//!
//! The paper's whole argument rests on *measuring* where runtime goes
//! (Paraver traces, the Lₙ load balance of eq. 9, parallel efficiency).
//! `cfpd-trace` supports that analysis post hoc, from a fully recorded
//! event timeline — exactly what a production serving deployment cannot
//! afford to keep per request. This crate is the cheap always-on
//! counterpart, modelled on the POP methodology the paper uses and on
//! DLB's own statistics mode:
//!
//! * a static **registry** of named [`Counter`]s, [`Gauge`]s and
//!   log2-bucketed [`Histogram`]s, sharded per thread over
//!   cacheline-padded atomics (relaxed increments, snapshot-on-read
//!   merge in fixed shard order, so a read is bit-deterministic for a
//!   given set of recorded values);
//! * RAII [`Span`] timers and a per-(rank, phase) time table
//!   ([`pop`]) feeding an **online POP-style rollup**: parallel
//!   efficiency = load balance × communication efficiency, computed
//!   from accumulated useful/MPI time — no event log;
//! * a [`TelemetrySnapshot`] with stable-ordered text-table and JSON
//!   renderers (the JSON writer in [`json`] is dependency-free and
//!   reused by `cfpd chaos --json`).
//!
//! ## Enablement and overhead
//!
//! Telemetry is **globally disabled by default** and enabled either
//! programmatically ([`set_enabled`]) or via `CFPD_TELEMETRY=1`
//! ([`init_from_env`]). The disabled path of every recording macro is a
//! single relaxed atomic load and a branch — ≤ ~5 ns per op, measured
//! by the `telemetry_overhead` bench (see `BENCH_telemetry_overhead.json`).
//! The enabled path budget is ≤ 50 ns per counter increment (one
//! thread-local shard lookup plus one relaxed `fetch_add` on an
//! uncontended padded cacheline). Telemetry never touches physics
//! state: golden traces are byte-identical with it on or off.
//!
//! ## Determinism contract
//!
//! Recording is concurrent and relaxed; *reading* is deterministic.
//! [`snapshot`] merges shards in fixed index order with wrapping
//! integer adds and fixed-order f64 sums, and orders metrics by name,
//! so two snapshots of identical recorded values render byte-identical
//! documents.

pub mod json;
pub mod metrics;
pub mod pop;
pub mod registry;
pub mod render;
pub mod span;

pub use json::JsonWriter;
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram};
pub use pop::{PopPhase, PopReport};
pub use registry::{counter, gauge, histogram, reset, snapshot};
pub use render::TelemetrySnapshot;
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry recording globally enabled? The guard every recording
/// macro checks first — a single relaxed load on the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off globally (all metrics, all threads).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable recording when the `CFPD_TELEMETRY` environment variable is
/// `1` (the opt-in used by `cfpd golden` / `cfpd chaos`).
pub fn init_from_env() {
    if std::env::var("CFPD_TELEMETRY").as_deref() == Ok("1") {
        set_enabled(true);
    }
}

/// Bump a named counter by 1 (or by `$n`). The call site caches the
/// registry lookup in a `OnceLock`, so the steady-state enabled cost is
/// one thread-local shard pick plus one relaxed `fetch_add`; disabled,
/// it is one relaxed load and a branch.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::counter($name)).add_unchecked($n);
        }
    };
}

/// Add a signed delta to a named gauge (same cost model as [`count!`]).
#[macro_export]
macro_rules! gauge_add {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::gauge($name)).add_unchecked($n);
        }
    };
}

/// Record a `u64` observation into a named histogram.
#[macro_export]
macro_rules! observe {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::histogram($name)).record_unchecked($v);
        }
    };
}

/// Start an RAII span that records its elapsed nanoseconds into the
/// named histogram when dropped. Returns `None` (no clock read at all)
/// while telemetry is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            Some($crate::Span::start(SITE.get_or_init(|| $crate::histogram($name))))
        } else {
            None
        }
    }};
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Unit tests flip the global enabled flag; serialize them so a
    /// disabled-path assertion never races an enabled test.
    pub fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_record_nothing() {
        let _g = testutil::guard();
        set_enabled(false);
        count!("lib.disabled_counter");
        observe!("lib.disabled_hist", 42);
        assert!(span!("lib.disabled_span").is_none());
        set_enabled(true);
        count!("lib.disabled_counter");
        set_enabled(false);
        // Only the enabled increment landed.
        assert_eq!(counter("lib.disabled_counter").value(), 1);
        assert_eq!(histogram("lib.disabled_hist").merged().count, 0);
    }

    #[test]
    fn span_macro_times_into_histogram() {
        let _g = testutil::guard();
        set_enabled(true);
        {
            let _s = span!("lib.span_hist");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_enabled(false);
        let h = histogram("lib.span_hist").merged();
        assert_eq!(h.count, 1);
        assert!(h.min >= 1_000_000, "span recorded {} ns", h.min);
    }
}
