//! # cfpd-bench — harnesses regenerating every table and figure of the
//! paper's evaluation (§4)
//!
//! Each `benches/` target reproduces one artifact (see DESIGN.md §4 for
//! the experiment index) and writes its output both to stdout and to
//! `results/<name>.txt` at the workspace root. This library holds the
//! shared machinery: the figure-scale mesh, cached per-rank workload
//! profiles, scenario construction and table formatting.

use cfpd_core::{measure_workload, PhaseCostModel, WorkloadProfile};
use cfpd_mesh::{generate_airway, AirwayMesh, AirwaySpec};
use cfpd_perfmodel::{CoupledScenario, Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;
use std::collections::HashMap;
use std::io::Write;

/// Reference particle count representing the paper's 4·10⁵ injection
/// (scaled 1:100 per DESIGN.md; the 7·10⁶ case is 17.5× this).
pub const PARTICLES_SMALL: usize = 4_000;
/// The 7·10⁶-equivalent injection.
pub const PARTICLES_LARGE: usize = 70_000;
/// Steps the paper averages over.
pub const STEPS: usize = 10;

/// Shared context: the figure-scale airway mesh plus caches of
/// per-rank-count workload profiles and coloring statistics.
pub struct FigureContext {
    pub airway: AirwayMesh,
    profiles: HashMap<usize, WorkloadProfile>,
    colors: HashMap<usize, usize>,
}

impl FigureContext {
    /// Build the figure mesh (4 branch generations, ~160 k hybrid
    /// elements — the largest scale that keeps every figure target
    /// under a few minutes on one core).
    pub fn new() -> FigureContext {
        let airway = generate_airway(&AirwaySpec::default()).expect("figure mesh");
        FigureContext { airway, profiles: HashMap::new(), colors: HashMap::new() }
    }

    /// Workload profile for `ranks` ranks at the reference particle
    /// count (cached). Particle vectors scale linearly for other counts.
    pub fn profile(&mut self, ranks: usize) -> &WorkloadProfile {
        let airway = &self.airway;
        self.profiles.entry(ranks).or_insert_with(|| {
            measure_workload(airway, ranks, PARTICLES_SMALL, STEPS, PhaseCostModel::default(), 42)
        })
    }

    /// Number of colors a rank-local greedy coloring needs at `ranks`
    /// ranks (measured on rank 0's subdomain; cached).
    pub fn colors_per_rank(&mut self, ranks: usize) -> usize {
        let airway = &self.airway;
        *self.colors.entry(ranks).or_insert_with(|| {
            let mesh = &airway.mesh;
            let n2e = mesh.node_to_elements();
            let adj = mesh.element_adjacency(&n2e);
            let g = cfpd_partition::Graph::from_csr_unit(&adj);
            let part = cfpd_partition::partition_kway(&g, ranks, 2);
            let members = part.part_members();
            let elems = &members[0];
            let weights: Vec<f64> =
                elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
            let local = cfpd_partition::local_element_graph(mesh, elems, &weights);
            cfpd_partition::greedy_coloring(&local).num_colors
        })
    }

    /// Particle work vectors scaled to `num_particles`.
    pub fn particle_work(&mut self, ranks: usize, num_particles: usize) -> Vec<Vec<f64>> {
        let scale = num_particles as f64 / PARTICLES_SMALL as f64;
        self.profile(ranks)
            .particles_per_step
            .iter()
            .map(|v| v.iter().map(|w| w * scale).collect())
            .collect()
    }
}

impl Default for FigureContext {
    fn default() -> Self {
        Self::new()
    }
}

/// The five-phase synchronous step of the paper's profile, as DES phase
/// specs for `ranks` ranks under a strategy using `threads` per rank.
pub fn sync_phases(
    ctx: &mut FigureContext,
    ranks: usize,
    num_particles: usize,
    threads: usize,
) -> Vec<PhaseSpec> {
    let colors = ctx.colors_per_rank(ranks);
    let tasks = 16 * threads;
    let particles = ctx.particle_work(ranks, num_particles);
    let p = ctx.profile(ranks);
    vec![
        PhaseSpec::fixed(
            Phase::Assembly,
            p.assembly.clone(),
            Sensitivity::Assembly { colors, tasks },
        ),
        PhaseSpec::fixed(Phase::Solver1, p.solver1.clone(), Sensitivity::None),
        PhaseSpec::fixed(Phase::Solver2, p.solver2.clone(), Sensitivity::None),
        PhaseSpec::fixed(Phase::Sgs, p.sgs.clone(), Sensitivity::Sgs { colors, tasks }),
        PhaseSpec::per_step(Phase::Particles, particles, Sensitivity::None),
    ]
}

/// One x-axis entry of the Fig. 8–11 sweeps.
#[derive(Debug, Clone)]
pub struct DlbFigureRow {
    pub label: String,
    pub t_orig: f64,
    pub t_dlb: f64,
}

impl DlbFigureRow {
    pub fn speedup(&self) -> f64 {
        self.t_orig / self.t_dlb
    }
}

/// Run the Fig. 8–11 sweep: synchronous plus the coupled `f+p` ladder,
/// each with and without DLB, on `platform` with `num_particles`.
pub fn dlb_figure(
    ctx: &mut FigureContext,
    platform: &Platform,
    num_particles: usize,
) -> Vec<DlbFigureRow> {
    let c = platform.total_cores();
    let mut rows = Vec::new();

    // Synchronous with one rank per core.
    {
        let mut row = DlbFigureRow { label: format!("sync {c}"), t_orig: 0.0, t_dlb: 0.0 };
        for &dlb in &[false, true] {
            let scenario = SyncScenario {
                platform: platform.clone(),
                phases: sync_phases(ctx, c, num_particles, 1),
                steps: STEPS,
                threads_per_rank: 1,
                strategy: AssemblyStrategy::Multidep,
                dlb,
                mapping: Mapping::Block,
            };
            let t = scenario.run().total_time;
            if dlb {
                row.t_dlb = t;
            } else {
                row.t_orig = t;
            }
        }
        rows.push(row);
    }

    // Coupled ladder (fluid + particles). Includes oversubscribed
    // combinations — the "bad user decision" cases of the paper.
    let combos = [
        (c / 2, c / 2),
        (3 * c / 4, c / 4),
        (c / 4, 3 * c / 4),
        (c, c),
        (c / 2, c),
        (c, c / 2),
    ];
    for (f, p) in combos {
        let fluid_phases = {
            let colors = ctx.colors_per_rank(f);
            let prof = ctx.profile(f);
            vec![
                PhaseSpec::fixed(
                    Phase::Assembly,
                    prof.assembly.clone(),
                    Sensitivity::Assembly { colors, tasks: 16 },
                ),
                PhaseSpec::fixed(Phase::Solver1, prof.solver1.clone(), Sensitivity::None),
                PhaseSpec::fixed(Phase::Solver2, prof.solver2.clone(), Sensitivity::None),
                PhaseSpec::fixed(
                    Phase::Sgs,
                    prof.sgs.clone(),
                    Sensitivity::Sgs { colors, tasks: 16 },
                ),
            ]
        };
        let particle_phases = vec![PhaseSpec::per_step(
            Phase::Particles,
            ctx.particle_work(p, num_particles),
            Sensitivity::None,
        )];
        let mut row = DlbFigureRow { label: format!("{f}+{p}"), t_orig: 0.0, t_dlb: 0.0 };
        for &dlb in &[false, true] {
            let scenario = CoupledScenario {
                platform: platform.clone(),
                fluid_phases: fluid_phases.clone(),
                particle_phases: particle_phases.clone(),
                steps: STEPS,
                threads_per_rank: 1,
                strategy: AssemblyStrategy::Multidep,
                dlb,
                mapping: Mapping::RoundRobin,
            };
            let t = scenario.run().total_time;
            if dlb {
                row.t_dlb = t;
            } else {
                row.t_orig = t;
            }
        }
        rows.push(row);
    }
    rows
}

/// Atomically write `body` to `path`: stage in a `.tmp` sibling, then
/// rename over the target, so a reader (or a crash) never sees a
/// half-written document and both copies of a pinned bench are always
/// byte-identical or absent.
fn write_atomic(path: &std::path::Path, body: &[u8]) {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, body).expect("write staged json");
    std::fs::rename(&tmp, path).expect("rename staged json over target");
    println!("[written to {}]", path.display());
}

/// Write a bench JSON document to `results/<stem>[_quick].json` and,
/// for full (non-quick) runs, a repo-root copy `<stem>.json` — the
/// placement convention every bench binary shares. Both copies go
/// through the same atomic staged-rename path, and every full run
/// appends one provenance line to `results/trajectory.jsonl` so pinned
/// numbers carry a re-measurement history.
pub fn emit_json(stem: &str, quick: bool, body: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let file = if quick { format!("{stem}_quick.json") } else { format!("{stem}.json") };
    write_atomic(&dir.join(file), body.as_bytes());
    if !quick {
        let root_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("{stem}.json"));
        write_atomic(&root_path, body.as_bytes());

        let unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = format!(
            "{{\"bench\":\"{stem}\",\"unix_s\":{unix_s},\"digest\":\"{:016x}\",\"bytes\":{}}}\n",
            cfpd_testkit::digest_bytes(body.as_bytes()),
            body.len()
        );
        let log = dir.join("trajectory.jsonl");
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .expect("append trajectory line");
    }
}

/// Render the shared `"rows": [...]` section of the bench JSON schema:
/// one `{ name, median_ns, iters, elements }` object per row, with
/// `median_ns` printed to `prec` decimals.
pub fn json_rows(rows: &[(String, f64, usize, usize)], prec: usize) -> String {
    let mut body = String::from("  \"rows\": [\n");
    for (i, (name, median_ns, iters, elements)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"median_ns\": {median_ns:.prec$}, \
             \"iters\": {iters}, \"elements\": {elements} }}{sep}\n"
        ));
    }
    body.push_str("  ]\n");
    body
}

/// Write `content` to `results/<name>.txt` (workspace root) and stdout.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(content.as_bytes()).expect("write results");
    println!("[written to {}]", path.display());
}

/// Simple fixed-width table formatter.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}
