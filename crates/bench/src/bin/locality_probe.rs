//! Gather-locality probe for the pressure-system SpMV: why serial CSR
//! prefers the native node order while SELL prefers RCM.
//!
//! The matrix and solution vector are LLC-resident on the bench host,
//! so SpMV cost is governed by x-gather *cache-line* behaviour, not
//! DRAM bandwidth. For the native and RCM orderings this prints:
//!
//! * `distinct-x-lines/row` — Σ over rows of distinct 64-byte x lines
//!   the row's gather touches (spatial footprint: smaller = the
//!   bandwidth reduction RCM is built for);
//! * `line-breaks-in-row` — column steps that cross a line boundary
//!   within a row;
//! * `lines-shared-with-prev-row` — lines also touched by the previous
//!   row (temporal reuse: the row-serial CSR loop finds these L1-hot).
//!
//! See EXPERIMENTS.md "Why serial CG preferred the native order": the
//! native ring-by-ring generation order wins the temporal metric, RCM
//! wins the spatial one, and CSR-row-serial vs SELL-chunk traversal
//! pick opposite winners.

use cfpd_mesh::{generate_airway, AirwaySpec};
use cfpd_partition::rcm_perm;
use cfpd_solver::CsrMatrix;

fn stats(m: &CsrMatrix) {
    let mut lines_per_row = 0usize;
    let mut line_breaks = 0usize;
    let mut shared_with_prev = 0usize;
    let mut prev: Vec<u32> = Vec::new();
    let mut nnz = 0usize;
    for r in 0..m.n {
        let cols = &m.col_idx[m.row_ptr[r] as usize..m.row_ptr[r + 1] as usize];
        nnz += cols.len();
        for w in cols.windows(2) {
            if w[1] / 8 != w[0] / 8 {
                line_breaks += 1;
            }
        }
        let mut lines: Vec<u32> = cols.iter().map(|&c| c / 8).collect();
        lines.sort_unstable();
        lines.dedup();
        lines_per_row += lines.len();
        shared_with_prev += lines.iter().filter(|l| prev.binary_search(l).is_ok()).count();
        prev = lines;
    }
    println!(
        "  nnz={nnz} distinct-x-lines/row(sum)={lines_per_row} \
         line-breaks-in-row={line_breaks} lines-shared-with-prev-row={shared_with_prev}"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { AirwaySpec::small() } else { AirwaySpec::default() };
    let airway = generate_airway(&spec).expect("airway mesh");
    let mesh = airway.mesh;
    let n2e = mesh.node_to_elements();
    let m = CsrMatrix::from_mesh(&mesh, &n2e);
    println!("native order (n={}):", m.n);
    stats(&m);

    let adj = mesh.node_adjacency();
    let perm = rcm_perm(&adj);
    let mut mesh_rcm = mesh;
    mesh_rcm.renumber_nodes(&perm);
    let n2e = mesh_rcm.node_to_elements();
    let m = CsrMatrix::from_mesh(&mesh_rcm, &n2e);
    println!("rcm order:");
    stats(&m);
}
