//! Locality hot-path benchmark: default vs `LayoutPlan`-optimized
//! assembly, SpMV and pressure CG on the airway mesh, plus the RCM
//! bandwidth reduction — the before/after evidence for DESIGN.md §9
//! and the raw-speed pass of §14.
//!
//! Writes the usual text table to `results/BENCH_hotpath.txt` and a
//! machine-readable `results/BENCH_hotpath.json` (per-routine name,
//! median ns, timed iterations, element count). The JSON additionally
//! carries a `"phases"` section (per-phase default vs opt medians for
//! SpMV, Jacobi apply, axpy/dot, SGS sweep and assembly) and an
//! `"end_to_end"` section (assembly + fixed-work CG, the tentpole
//! speedup metric), so later PRs have a perf trajectory to diff
//! against.
//!
//! Full (non-`--quick`) runs refuse to overwrite a committed
//! `BENCH_hotpath.json` whose end-to-end numbers would regress by more
//! than 10%, unless `CFPD_BLESS_BENCH=1` — the bench-trajectory gate.
//!
//! `--quick` shrinks the mesh and sample count for the CI smoke in
//! `scripts/verify.sh`.

use std::hint::black_box;

use cfpd_bench::{emit, emit_json, json_rows};
use cfpd_core::BoundaryConditions;
use cfpd_mesh::{generate_airway, AirwaySpec, Mesh, Vec3};
use cfpd_partition::{bandwidth_under_perm, csr_bandwidth, rcm_perm};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, assemble_momentum_batched, assemble_poisson, axpy_dot_fused, cg, cg_fused,
    cg_fused_sell, cg_parallel, compute_sgs, AssemblyPlan, AssemblyStrategy, CsrMatrix,
    FluidProps, MatFreeMomentum, RefElement, SellMatrix, SgsField,
};
use cfpd_testkit::bench::{Bench, BenchConfig, BenchStats};
use cfpd_testkit::json;

const N_SUBDOMAINS: usize = 16;
/// Fixed CG iteration count: every solver variant does identical work
/// per sample (Jacobi-CG at 1e-6 would need thousands of iterations on
/// the figure mesh — a fixed-work solve is the comparable benchmark).
const CG_ITERS: usize = 150;
/// Chunk count for the standalone axpy/dot phase benches (mirrors the
/// fused CG's nnz-balanced splitting).
const AXPY_CHUNKS: usize = 64;

fn synthetic_velocity(mesh: &Mesh) -> Vec<Vec3> {
    mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect()
}

/// Dirichlet-closed pressure Poisson system (the Solver2 workload).
fn pressure_system(mesh: &Mesh, pool: &ThreadPool) -> (CsrMatrix, Vec<f64>) {
    let n2e = mesh.node_to_elements();
    let mut matrix = CsrMatrix::from_mesh(mesh, &n2e);
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let plan = AssemblyPlan::new(mesh, elems, AssemblyStrategy::Serial, 1);
    let refs = RefElement::all();
    let velocity = synthetic_velocity(mesh);
    let mut rhs = vec![vec![0.0; mesh.num_nodes()]];
    assemble_poisson(pool, &refs, mesh, &plan, &velocity, FluidProps::default(), 1e-4, &mut matrix, &mut rhs);
    let bc = BoundaryConditions::from_mesh(mesh);
    for &v in &bc.outlet_nodes {
        matrix.set_dirichlet_row(v as usize);
        rhs[0][v as usize] = 0.0;
    }
    (matrix, rhs.remove(0))
}

fn bench_assembly(b: &mut Bench, mesh: &Mesh, pool: &ThreadPool) {
    let n2e = mesh.node_to_elements();
    let template = CsrMatrix::from_mesh(mesh, &n2e);
    let refs = RefElement::all();
    let velocity = synthetic_velocity(mesh);
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let zero_p = vec![0.0; mesh.num_nodes()];
    let plan_default = AssemblyPlan::new(mesh, elems.clone(), AssemblyStrategy::Multidep, N_SUBDOMAINS);
    let plan_batched = AssemblyPlan::with_batches(
        mesh,
        elems.clone(),
        AssemblyStrategy::Multidep,
        N_SUBDOMAINS,
        &template,
    );
    let mut plan_lanes =
        AssemblyPlan::with_batches(mesh, elems, AssemblyStrategy::Multidep, N_SUBDOMAINS, &template);
    plan_lanes.lane_kernels = true;

    for (label, plan, batched) in [
        ("assembly/default", &plan_default, false),
        ("assembly/batched", &plan_batched, true),
        ("assembly/batched-lanes", &plan_lanes, true),
    ] {
        let f = if batched { assemble_momentum_batched } else { assemble_momentum };
        b.bench_batched(
            label,
            || (template.clone(), vec![vec![0.0; mesh.num_nodes()]; 3]),
            |(mut a, mut rhs)| {
                let stats = f(
                    pool,
                    &refs,
                    mesh,
                    plan,
                    &velocity,
                    &zero_p,
                    FluidProps::default(),
                    1e-4,
                    Vec3::new(0.0, 0.0, -9.81),
                    &mut a,
                    &mut rhs,
                );
                black_box((a, rhs, stats.elements));
            },
        );
    }
}

fn bench_spmv_and_cg(
    b: &mut Bench,
    label: &str,
    matrix: &CsrMatrix,
    rhs: &[f64],
    pool: &ThreadPool,
) {
    let n = matrix.n;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    b.bench(&format!("spmv/{label}"), || {
        let mut y = vec![0.0; n];
        matrix.spmv(black_box(&x), &mut y);
        black_box(y);
    });
    let mut sell = SellMatrix::from_csr(matrix);
    sell.update_values(&matrix.values);
    b.bench(&format!("spmv-sell/{label}"), || {
        let mut y = vec![0.0; n];
        sell.spmv(black_box(&x), &mut y);
        black_box(y);
    });
    for (solver, name) in [
        ("serial", format!("cg-serial/{label}")),
        ("parallel", format!("cg-parallel/{label}")),
        ("fused", format!("cg-fused/{label}")),
        ("sell", format!("cg-sell/{label}")),
    ] {
        b.bench_batched(
            &name,
            || vec![0.0; n],
            |mut x| {
                let stats = match solver {
                    "serial" => cg(matrix, rhs, &mut x, 0.0, CG_ITERS),
                    "parallel" => cg_parallel(matrix, rhs, &mut x, 0.0, CG_ITERS, pool),
                    "fused" => cg_fused(matrix, rhs, &mut x, 0.0, CG_ITERS, pool),
                    _ => cg_fused_sell(matrix, &sell, rhs, &mut x, 0.0, CG_ITERS, pool),
                };
                assert_eq!(stats.iterations, CG_ITERS, "{name} did unequal work");
                assert!(stats.residual.is_finite());
                black_box((x, stats.residual));
            },
        );
    }
}

/// Standalone per-phase kernels outside a full CG run: Jacobi apply,
/// axpy/dot (split vs fused), the SGS sweep (default vs kind-batched)
/// and the matrix-free momentum pipeline.
fn bench_phases(b: &mut Bench, mesh: &Mesh, matrix: &CsrMatrix, pool: &ThreadPool) {
    let n = matrix.n;
    let diag = matrix.diagonal();
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
    b.bench("jacobi/apply", || {
        let mut z = vec![0.0; n];
        for i in 0..n {
            let d = diag[i];
            z[i] = if d.abs() > 1e-300 { black_box(r[i]) / d } else { r[i] };
        }
        black_box(z);
    });

    let chunk = n.div_ceil(AXPY_CHUNKS).max(1);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..n).step_by(chunk).map(|lo| lo..(lo + chunk).min(n)).collect();
    b.bench_batched(
        "axpy-dot/split",
        || r.clone(),
        |mut y| {
            let alpha = 0.3;
            for i in 0..n {
                y[i] += alpha * r[i];
            }
            let mut acc = 0.0;
            for yi in &y {
                acc += yi * yi;
            }
            black_box((y, acc));
        },
    );
    b.bench_batched(
        "axpy-dot/fused",
        || r.clone(),
        |mut y| {
            let acc = axpy_dot_fused(pool, &ranges, 0.3, &r, &mut y);
            black_box((y, acc));
        },
    );

    // SGS sweep: default element-loop scheduling vs kind-batched SoA.
    let refs = RefElement::all();
    let velocity = synthetic_velocity(mesh);
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let plan_default =
        AssemblyPlan::new(mesh, elems.clone(), AssemblyStrategy::Multidep, N_SUBDOMAINS);
    let mut plan_batched =
        AssemblyPlan::new(mesh, elems.clone(), AssemblyStrategy::Multidep, N_SUBDOMAINS);
    plan_batched.batched_sgs = true;
    let mut field_default = SgsField::new(mesh);
    let mut field_batched = SgsField::new(mesh);
    b.bench("sgs/default", || {
        let stats = compute_sgs(
            pool, &refs, mesh, &plan_default, &velocity, FluidProps::default(),
            &mut field_default, 5, 1e-6,
        );
        black_box(stats.elements);
    });
    b.bench("sgs/batched", || {
        let stats = compute_sgs(
            pool, &refs, mesh, &plan_batched, &velocity, FluidProps::default(),
            &mut field_batched, 5, 1e-6,
        );
        black_box(stats.elements);
    });

    // Matrix-free momentum: assemble-lite (no CSR scatter) + apply.
    let n2e = mesh.node_to_elements();
    let pattern = CsrMatrix::from_mesh(mesh, &n2e);
    let mut mf = MatFreeMomentum::new(mesh, &pattern, &elems);
    let zero_p = vec![0.0; n];
    b.bench("matfree/assemble", || {
        let mut rhs = vec![vec![0.0; n]; 3];
        mf.assemble(
            &refs, mesh, &velocity, &zero_p, FluidProps::default(), 1e-4,
            Vec3::new(0.0, 0.0, -9.81), &mut rhs,
        );
        black_box(rhs.len());
    });
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    b.bench("matfree/apply", || {
        let mut y = vec![0.0; n];
        mf.apply(black_box(&x), &mut y);
        black_box(y);
    });
}

fn median_ns(rows: &[(String, BenchStats)], name: &str) -> f64 {
    rows.iter()
        .find(|(n, _)| n == name)
        .map(|(_, s)| s.median * 1e9)
        .unwrap_or_else(|| panic!("bench row {name} missing"))
}

/// The per-phase default→opt mapping surfaced in the JSON and report.
const PHASES: [(&str, &str, &str); 5] = [
    ("spmv", "spmv/native-order", "spmv-sell/rcm-order"),
    ("jacobi", "jacobi/apply", "jacobi/apply"),
    ("axpy_dot", "axpy-dot/split", "axpy-dot/fused"),
    ("sgs", "sgs/default", "sgs/batched"),
    ("assembly", "assembly/default", "assembly/batched-lanes"),
];

struct EndToEnd {
    default_ns: f64,
    opt_ns: f64,
}

fn end_to_end(rows: &[(String, BenchStats)]) -> EndToEnd {
    EndToEnd {
        default_ns: median_ns(rows, "assembly/default") + median_ns(rows, "cg-serial/native-order"),
        opt_ns: median_ns(rows, "assembly/batched-lanes") + median_ns(rows, "cg-sell/rcm-order"),
    }
}

/// Bench-trajectory gate: against the committed `BENCH_hotpath.json`,
/// refuse a >10% end-to-end regression unless `CFPD_BLESS_BENCH=1`.
/// A committed file with the pre-phase schema (no `end_to_end` key)
/// allows the overwrite — that is the schema migration itself.
fn trajectory_gate(e2e: &EndToEnd) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let Ok(doc) = json::parse(&text) else {
        eprintln!("trajectory gate: committed BENCH_hotpath.json unparsable; allowing overwrite");
        return;
    };
    let Some(old) = doc.get("end_to_end") else {
        eprintln!("trajectory gate: committed schema predates phases; allowing overwrite");
        return;
    };
    let mut regressions = Vec::new();
    for (key, new_ns) in [("default_ns", e2e.default_ns), ("opt_ns", e2e.opt_ns)] {
        if let Some(old_ns) = old.get(key).and_then(|v| v.as_f64()) {
            if new_ns > old_ns * 1.10 {
                regressions.push(format!(
                    "{key}: {:.1} ms -> {:.1} ms (+{:.0}%)",
                    old_ns / 1e6,
                    new_ns / 1e6,
                    (new_ns / old_ns - 1.0) * 100.0
                ));
            }
        }
    }
    if regressions.is_empty() {
        return;
    }
    if std::env::var("CFPD_BLESS_BENCH").as_deref() == Ok("1") {
        eprintln!(
            "trajectory gate: CFPD_BLESS_BENCH=1, blessing regression: {}",
            regressions.join("; ")
        );
        return;
    }
    eprintln!(
        "trajectory gate: refusing to overwrite BENCH_hotpath.json with >10% end-to-end \
         regression ({}); rerun with CFPD_BLESS_BENCH=1 to bless",
        regressions.join("; ")
    );
    std::process::exit(1);
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[(String, BenchStats)],
    e2e: &EndToEnd,
    elements: usize,
    nodes: usize,
    bw_before: usize,
    bw_after: usize,
    quick: bool,
) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n"));
    body.push_str(&format!("  \"elements\": {elements},\n  \"nodes\": {nodes},\n"));
    body.push_str(&format!(
        "  \"rcm\": {{ \"bandwidth_before\": {bw_before}, \"bandwidth_after\": {bw_after} }},\n"
    ));
    body.push_str("  \"phases\": {\n");
    for (i, (phase, d, o)) in PHASES.iter().enumerate() {
        let sep = if i + 1 == PHASES.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{phase}\": {{ \"default_ns\": {:.0}, \"opt_ns\": {:.0} }}{sep}\n",
            median_ns(rows, d),
            median_ns(rows, o)
        ));
    }
    body.push_str("  },\n");
    body.push_str(&format!(
        "  \"end_to_end\": {{ \"default_ns\": {:.0}, \"opt_ns\": {:.0}, \"speedup\": {:.2} }},\n",
        e2e.default_ns,
        e2e.opt_ns,
        e2e.default_ns / e2e.opt_ns
    ));
    let flat: Vec<(String, f64, usize, usize)> = rows
        .iter()
        .map(|(name, stats)| (name.clone(), stats.median * 1e9, stats.samples as usize, elements))
        .collect();
    body.push_str(&json_rows(&flat, 0));
    body.push_str("}\n");
    emit_json("BENCH_hotpath", quick, &body);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { AirwaySpec::small() } else { AirwaySpec::default() };
    let config = if quick {
        BenchConfig { warmup: 1, samples: 5 }
    } else {
        BenchConfig { warmup: 2, samples: 9 }
    };

    let airway = generate_airway(&spec).expect("airway mesh");
    let mesh = airway.mesh;
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool = ThreadPool::new(workers);
    eprintln!(
        "hotpath bench: {} elements / {} nodes, {} worker(s), {} samples{}",
        mesh.num_elements(),
        mesh.num_nodes(),
        workers,
        config.samples,
        if quick { " (quick)" } else { "" }
    );

    // RCM bandwidth evidence + a renumbered copy of the mesh.
    let adj = mesh.node_adjacency();
    let perm = rcm_perm(&adj);
    let bw_before = csr_bandwidth(&adj);
    let bw_after = bandwidth_under_perm(&adj, &perm);
    let mut mesh_rcm = mesh.clone();
    mesh_rcm.renumber_nodes(&perm);

    let name = if quick { "BENCH_hotpath_quick" } else { "BENCH_hotpath" };
    let mut b = Bench::with_config(name, config);
    bench_assembly(&mut b, &mesh, &pool);
    let (m_native, rhs_native) = pressure_system(&mesh, &pool);
    bench_spmv_and_cg(&mut b, "native-order", &m_native, &rhs_native, &pool);
    let (m_rcm, rhs_rcm) = pressure_system(&mesh_rcm, &pool);
    bench_spmv_and_cg(&mut b, "rcm-order", &m_rcm, &rhs_rcm, &pool);
    bench_phases(&mut b, &mesh, &m_native, &pool);

    let e2e = end_to_end(b.rows());
    if !quick {
        trajectory_gate(&e2e);
    }

    let mut report = b.report();
    report.push_str(&format!(
        "\nRCM bandwidth on this mesh: {bw_before} -> {bw_after} ({}x reduction)\n",
        bw_before as f64 / bw_after.max(1) as f64
    ));
    report.push_str("\nper-phase breakdown (median, default -> opt):\n");
    for (phase, d, o) in PHASES {
        let dn = median_ns(b.rows(), d);
        let on = median_ns(b.rows(), o);
        report.push_str(&format!(
            "  {phase:<9} {:>12.1} us -> {:>12.1} us ({:.2}x)  [{d} -> {o}]\n",
            dn / 1e3,
            on / 1e3,
            dn / on.max(1.0)
        ));
    }
    report.push_str(&format!(
        "\nend-to-end (assembly + {CG_ITERS}-iter CG): {:.1} ms -> {:.1} ms ({:.2}x)\n",
        e2e.default_ns / 1e6,
        e2e.opt_ns / 1e6,
        e2e.default_ns / e2e.opt_ns
    ));
    emit(name, &report);
    write_json(
        b.rows(),
        &e2e,
        mesh.num_elements(),
        mesh.num_nodes(),
        bw_before,
        bw_after,
        quick,
    );
}
