//! Locality hot-path benchmark: default vs `LayoutPlan`-optimized
//! assembly, SpMV and pressure CG on the airway mesh, plus the RCM
//! bandwidth reduction — the before/after evidence for DESIGN.md §9.
//!
//! Writes the usual text table to `results/BENCH_hotpath.txt` and a
//! machine-readable `results/BENCH_hotpath.json` (per-routine name,
//! median ns, timed iterations, element count) so later PRs have a
//! perf trajectory to diff against.
//!
//! `--quick` shrinks the mesh and sample count for the CI smoke in
//! `scripts/verify.sh`.

use std::hint::black_box;

use cfpd_bench::{emit, emit_json, json_rows};
use cfpd_core::BoundaryConditions;
use cfpd_mesh::{generate_airway, AirwaySpec, Mesh, Vec3};
use cfpd_partition::{bandwidth_under_perm, csr_bandwidth, rcm_perm};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, assemble_momentum_batched, assemble_poisson, cg, cg_fused, cg_parallel,
    AssemblyPlan, AssemblyStrategy, CsrMatrix, FluidProps, RefElement,
};
use cfpd_testkit::bench::{Bench, BenchConfig, BenchStats};

const N_SUBDOMAINS: usize = 16;
/// Fixed CG iteration count: every solver variant does identical work
/// per sample (Jacobi-CG at 1e-6 would need thousands of iterations on
/// the figure mesh — a fixed-work solve is the comparable benchmark).
const CG_ITERS: usize = 150;

fn synthetic_velocity(mesh: &Mesh) -> Vec<Vec3> {
    mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect()
}

/// Dirichlet-closed pressure Poisson system (the Solver2 workload).
fn pressure_system(mesh: &Mesh, pool: &ThreadPool) -> (CsrMatrix, Vec<f64>) {
    let n2e = mesh.node_to_elements();
    let mut matrix = CsrMatrix::from_mesh(mesh, &n2e);
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let plan = AssemblyPlan::new(mesh, elems, AssemblyStrategy::Serial, 1);
    let refs = RefElement::all();
    let velocity = synthetic_velocity(mesh);
    let mut rhs = vec![vec![0.0; mesh.num_nodes()]];
    assemble_poisson(pool, &refs, mesh, &plan, &velocity, FluidProps::default(), 1e-4, &mut matrix, &mut rhs);
    let bc = BoundaryConditions::from_mesh(mesh);
    for &v in &bc.outlet_nodes {
        matrix.set_dirichlet_row(v as usize);
        rhs[0][v as usize] = 0.0;
    }
    (matrix, rhs.remove(0))
}

fn bench_assembly(b: &mut Bench, mesh: &Mesh, pool: &ThreadPool) {
    let n2e = mesh.node_to_elements();
    let template = CsrMatrix::from_mesh(mesh, &n2e);
    let refs = RefElement::all();
    let velocity = synthetic_velocity(mesh);
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let zero_p = vec![0.0; mesh.num_nodes()];
    let plan_default = AssemblyPlan::new(mesh, elems.clone(), AssemblyStrategy::Multidep, N_SUBDOMAINS);
    let plan_batched =
        AssemblyPlan::with_batches(mesh, elems, AssemblyStrategy::Multidep, N_SUBDOMAINS, &template);

    for (label, batched) in [("assembly/default", false), ("assembly/batched", true)] {
        let plan = if batched { &plan_batched } else { &plan_default };
        let f = if batched { assemble_momentum_batched } else { assemble_momentum };
        b.bench_batched(
            label,
            || (template.clone(), vec![vec![0.0; mesh.num_nodes()]; 3]),
            |(mut a, mut rhs)| {
                let stats = f(
                    pool,
                    &refs,
                    mesh,
                    plan,
                    &velocity,
                    &zero_p,
                    FluidProps::default(),
                    1e-4,
                    Vec3::new(0.0, 0.0, -9.81),
                    &mut a,
                    &mut rhs,
                );
                black_box((a, rhs, stats.elements));
            },
        );
    }
}

fn bench_spmv_and_cg(
    b: &mut Bench,
    label: &str,
    matrix: &CsrMatrix,
    rhs: &[f64],
    pool: &ThreadPool,
) {
    let n = matrix.n;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    b.bench(&format!("spmv/{label}"), || {
        let mut y = vec![0.0; n];
        matrix.spmv(black_box(&x), &mut y);
        black_box(y);
    });
    for (solver, name) in [
        ("serial", format!("cg-serial/{label}")),
        ("parallel", format!("cg-parallel/{label}")),
        ("fused", format!("cg-fused/{label}")),
    ] {
        b.bench_batched(
            &name,
            || vec![0.0; n],
            |mut x| {
                let stats = match solver {
                    "serial" => cg(matrix, rhs, &mut x, 0.0, CG_ITERS),
                    "parallel" => cg_parallel(matrix, rhs, &mut x, 0.0, CG_ITERS, pool),
                    _ => cg_fused(matrix, rhs, &mut x, 0.0, CG_ITERS, pool),
                };
                assert_eq!(stats.iterations, CG_ITERS, "{name} did unequal work");
                assert!(stats.residual.is_finite());
                black_box((x, stats.residual));
            },
        );
    }
}

fn write_json(
    rows: &[(String, BenchStats)],
    elements: usize,
    nodes: usize,
    bw_before: usize,
    bw_after: usize,
    quick: bool,
) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n"));
    body.push_str(&format!("  \"elements\": {elements},\n  \"nodes\": {nodes},\n"));
    body.push_str(&format!(
        "  \"rcm\": {{ \"bandwidth_before\": {bw_before}, \"bandwidth_after\": {bw_after} }},\n"
    ));
    let flat: Vec<(String, f64, usize, usize)> = rows
        .iter()
        .map(|(name, stats)| (name.clone(), stats.median * 1e9, stats.samples as usize, elements))
        .collect();
    body.push_str(&json_rows(&flat, 0));
    body.push_str("}\n");
    emit_json("BENCH_hotpath", quick, &body);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { AirwaySpec::small() } else { AirwaySpec::default() };
    let config = if quick {
        BenchConfig { warmup: 1, samples: 5 }
    } else {
        BenchConfig { warmup: 2, samples: 9 }
    };

    let airway = generate_airway(&spec).expect("airway mesh");
    let mesh = airway.mesh;
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool = ThreadPool::new(workers);
    eprintln!(
        "hotpath bench: {} elements / {} nodes, {} worker(s), {} samples{}",
        mesh.num_elements(),
        mesh.num_nodes(),
        workers,
        config.samples,
        if quick { " (quick)" } else { "" }
    );

    // RCM bandwidth evidence + a renumbered copy of the mesh.
    let adj = mesh.node_adjacency();
    let perm = rcm_perm(&adj);
    let bw_before = csr_bandwidth(&adj);
    let bw_after = bandwidth_under_perm(&adj, &perm);
    let mut mesh_rcm = mesh.clone();
    mesh_rcm.renumber_nodes(&perm);

    let name = if quick { "BENCH_hotpath_quick" } else { "BENCH_hotpath" };
    let mut b = Bench::with_config(name, config);
    bench_assembly(&mut b, &mesh, &pool);
    let (m_native, rhs_native) = pressure_system(&mesh, &pool);
    bench_spmv_and_cg(&mut b, "native-order", &m_native, &rhs_native, &pool);
    let (m_rcm, rhs_rcm) = pressure_system(&mesh_rcm, &pool);
    bench_spmv_and_cg(&mut b, "rcm-order", &m_rcm, &rhs_rcm, &pool);

    let mut report = b.report();
    report.push_str(&format!(
        "\nRCM bandwidth on this mesh: {bw_before} -> {bw_after} ({}x reduction)\n",
        bw_before as f64 / bw_after.max(1) as f64
    ));
    emit(name, &report);
    write_json(b.rows(), mesh.num_elements(), mesh.num_nodes(), bw_before, bw_after, quick);
}
