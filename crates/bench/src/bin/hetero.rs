//! Heterogeneous-cluster DLB bench: reactive LeWI vs predictive
//! pre-lending on emulated mixed MareNostrum4/ThunderX nodes.
//!
//! Runs the deterministic virtual-time emulator (`cfpd_hetero`) over
//! each non-uniform profile and both `DlbPolicy` variants, then reports
//! the POP efficiency triple — PE = LB × CommE — plus virtual wall
//! time, pre-lend and fallback counts, and the headline `pe_margin`
//! (predictive PE − reactive PE). Everything is virtual time, so the
//! JSON is byte-identical across repeat runs and machines; `--quick`
//! only shrinks the step count.
//!
//! Writes `results/BENCH_hetero[_quick].json` (+ the repo-root copy on
//! full runs) and a text table to `results/BENCH_hetero.txt`.

use cfpd_bench::{emit, emit_json, format_table};
use cfpd_dlb::DlbPolicy;
use cfpd_hetero::{emulate, profile_by_name, EmulatorConfig, PolicyMetrics, PROFILE_NAMES};

const RANKS: usize = 8;
const NODES: usize = 2;
const SEED: u64 = 42;

struct ProfileRow {
    profile: &'static str,
    reactive: PolicyMetrics,
    predictive: PolicyMetrics,
}

impl ProfileRow {
    fn pe_margin(&self) -> f64 {
        self.predictive.pe - self.reactive.pe
    }

    fn speedup(&self) -> f64 {
        self.reactive.wall_secs / self.predictive.wall_secs
    }
}

fn run_profile(name: &'static str, steps: usize) -> ProfileRow {
    let profile = profile_by_name(name, SEED).expect("known profile");
    let cfg = EmulatorConfig::calibrated(&profile, RANKS, NODES, steps);
    ProfileRow {
        profile: name,
        reactive: emulate(&cfg, DlbPolicy::Reactive),
        predictive: emulate(&cfg, DlbPolicy::Predictive),
    }
}

fn policy_json(m: &PolicyMetrics) -> String {
    format!(
        "{{ \"pe\": {:.6}, \"lb\": {:.6}, \"comm_e\": {:.6}, \"wall_s\": {:.6}, \
         \"pre_lends\": {}, \"fallbacks\": {} }}",
        m.pe, m.lb, m.comm_e, m.wall_secs, m.pre_lends, m.fallbacks
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 6 } else { 40 };
    eprintln!(
        "hetero bench: {RANKS} ranks / {NODES} nodes, {steps} steps{}",
        if quick { " (quick)" } else { "" }
    );

    let rows: Vec<ProfileRow> = PROFILE_NAMES
        .iter()
        .filter(|&&n| n != "uniform") // control profile: nothing to balance
        .map(|&n| run_profile(n, steps))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            [(&r.reactive, ""), (&r.predictive, "")]
                .into_iter()
                .map(move |(m, _)| {
                    vec![
                        r.profile.to_string(),
                        m.policy.name().to_string(),
                        format!("{:.3}", m.pe),
                        format!("{:.3}", m.lb),
                        format!("{:.3}", m.comm_e),
                        format!("{:.2}", m.wall_secs),
                        format!("{}", m.pre_lends),
                        format!("{}", m.fallbacks),
                    ]
                })
        })
        .collect();
    let mut report = format_table(
        &["profile", "policy", "PE", "LB", "CommE", "wall_s", "pre_lends", "fallbacks"],
        &table,
    );
    report.push('\n');
    for r in &rows {
        report.push_str(&format!(
            "{}: predictive PE margin {:+.3} ({:.3} -> {:.3}), wall speedup {:.2}x\n",
            r.profile,
            r.pe_margin(),
            r.reactive.pe,
            r.predictive.pe,
            r.speedup()
        ));
        assert!(
            r.pe_margin() > 0.0,
            "{}: predictive must not lose to reactive",
            r.profile
        );
    }

    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"hetero\",\n  \"quick\": {quick},\n"));
    body.push_str(&format!(
        "  \"ranks\": {RANKS},\n  \"nodes\": {NODES},\n  \"steps\": {steps},\n"
    ));
    body.push_str("  \"profiles\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}\": {{\n      \"reactive\": {},\n      \"predictive\": {},\n      \
             \"pe_margin\": {:.6},\n      \"wall_speedup\": {:.6}\n    }}{sep}\n",
            r.profile,
            policy_json(&r.reactive),
            policy_json(&r.predictive),
            r.pe_margin(),
            r.speedup()
        ));
    }
    body.push_str("  }\n}\n");

    let name = if quick { "BENCH_hetero_quick" } else { "BENCH_hetero" };
    emit(name, &report);
    emit_json("BENCH_hetero", quick, &body);
}
