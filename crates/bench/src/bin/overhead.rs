//! Telemetry overhead microbench.
//!
//! Times the per-operation cost of each telemetry primitive, most
//! importantly the disabled fast path: a `count!` with telemetry off
//! must stay in the single-digit-ns range so the hooks can remain
//! compiled into every hot loop unconditionally.
//!
//! Writes `results/BENCH_telemetry_overhead.json` plus a repo-root
//! copy `BENCH_telemetry_overhead.json` (same row schema as
//! `BENCH_hotpath.json`: `{ name, median_ns, iters, elements }`,
//! where `median_ns` is per-op and `elements` is ops per sample).

use cfpd_telemetry::pop::PopPhase;
use cfpd_telemetry::{self as tel, Span};
use cfpd_testkit::bench::{Bench, BenchConfig, BenchStats};

const OPS: usize = 1_000_000;
const OPS_QUICK: usize = 100_000;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ops = if quick { OPS_QUICK } else { OPS };
    let config = if quick {
        BenchConfig { warmup: 1, samples: 5 }
    } else {
        BenchConfig { warmup: 3, samples: 15 }
    };
    let mut b = Bench::with_config("telemetry_overhead", config);

    // Disabled path: the macro's `enabled()` check short-circuits, so
    // this is the cost every instrumented hot loop pays when telemetry
    // is off. black_box keeps the loop from being optimised away.
    tel::set_enabled(false);
    b.bench("counter_disabled", || {
        for i in 0..ops {
            tel::count!("bench.overhead.disabled");
            std::hint::black_box(i);
        }
    });

    tel::set_enabled(true);
    tel::reset();
    b.bench("counter_enabled", || {
        for i in 0..ops {
            tel::count!("bench.overhead.enabled");
            std::hint::black_box(i);
        }
    });

    b.bench("histogram_record", || {
        for i in 0..ops {
            tel::observe!("bench.overhead.hist", (i & 0xffff) as u64);
        }
    });

    // Span covers two Instant::now() calls plus a histogram record.
    let span_ops = ops / 10;
    let span_hist = tel::histogram("bench.overhead.span_ns");
    b.bench("span_create_drop", || {
        for _ in 0..span_ops {
            let s = Span::start(span_hist);
            std::hint::black_box(&s);
        }
    });

    let pop_ops = ops / 10;
    b.bench("pop_phase", || {
        for i in 0..pop_ops {
            let t = i as f64 * 1e-9;
            tel::pop::phase(0, PopPhase::Solver1, t, t + 1e-9);
        }
    });
    tel::set_enabled(false);
    tel::reset();

    // Flight recorder: the disabled path is the cost compiled into
    // every hot loop when the black box is off; the enabled path is
    // the full ring write (seq claim + 5 atomic stores) and carries
    // the <= 100 ns/record budget from the observability contract.
    cfpd_flight::set_enabled(false);
    b.bench("flight_disabled", || {
        for i in 0..ops {
            cfpd_flight::record(cfpd_flight::EventKind::Mark, 0, 0, i as u64, 0);
            std::hint::black_box(i);
        }
    });

    cfpd_flight::set_enabled(true);
    cfpd_flight::reset();
    let flight_ops = ops / 10;
    b.bench("flight_record", || {
        for i in 0..flight_ops {
            cfpd_flight::record(cfpd_flight::EventKind::Mark, 0, 1, i as u64, i as u64);
        }
    });
    cfpd_flight::set_enabled(false);
    cfpd_flight::reset();

    println!("telemetry overhead ({} ops/sample{})", ops, if quick { ", quick" } else { "" });
    for (name, stats) in b.rows() {
        let per_op = per_op_ns(stats, ops_for(name, ops));
        println!("  {name:<20} {per_op:>8.2} ns/op  (median of {} samples)", stats.samples);
    }

    write_json(b.rows(), ops, quick);
}

fn ops_for(name: &str, ops: usize) -> usize {
    match name {
        "span_create_drop" | "pop_phase" | "flight_record" => ops / 10,
        _ => ops,
    }
}

fn per_op_ns(stats: &BenchStats, ops: usize) -> f64 {
    stats.median * 1e9 / ops as f64
}

fn write_json(rows: &[(String, BenchStats)], ops: usize, quick: bool) {
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"bench\": \"telemetry_overhead\",\n  \"quick\": {quick},\n  \"ops_per_sample\": {ops},\n"
    ));
    let flat: Vec<(String, f64, usize, usize)> = rows
        .iter()
        .map(|(name, stats)| {
            let n = ops_for(name, ops);
            (name.clone(), per_op_ns(stats, n), stats.samples as usize, n)
        })
        .collect();
    body.push_str(&cfpd_bench::json_rows(&flat, 3));
    body.push_str("}\n");
    cfpd_bench::emit_json("BENCH_telemetry_overhead", quick, &body);
}
