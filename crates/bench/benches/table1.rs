//! **Table 1** — load balance (Lₙ, eq. 9) and % of execution time per
//! phase, for the respiratory simulation with 96 MPI processes on one
//! Thunder node, pure-MPI production configuration.
//!
//! Paper values: assembly 0.66 / 40.84 %, Solver1 0.90 / 16.13 %,
//! Solver2 0.89 / 4.20 %, SGS 0.61 / 21.43 %, particles 0.02 / 3.37 %.
//! (The % column is calibrated; the Lₙ column and everything downstream
//! are emergent from the real partitions/particle dynamics — see
//! cfpd-core::workload.)

use cfpd_bench::{emit, format_table, sync_phases, FigureContext, PARTICLES_SMALL, STEPS};
use cfpd_perfmodel::{Mapping, Platform, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::{phase_breakdown, Phase};

fn main() {
    let mut ctx = FigureContext::new();
    // One Thunder node, 96 ranks (the paper's Table 1 setup).
    let mut platform = Platform::thunder();
    platform.nodes = 1;
    let scenario = SyncScenario {
        phases: sync_phases(&mut ctx, 96, PARTICLES_SMALL, 1),
        platform,
        steps: STEPS,
        threads_per_rank: 1,
        strategy: AssemblyStrategy::Serial, // production pure-MPI run
        dlb: false,
        mapping: Mapping::Block,
    };
    let result = scenario.run();
    let rows = phase_breakdown(&result.trace);

    let paper: &[(Phase, f64, f64)] = &[
        (Phase::Assembly, 0.66, 40.84),
        (Phase::Solver1, 0.90, 16.13),
        (Phase::Solver2, 0.89, 4.20),
        (Phase::Sgs, 0.61, 21.43),
        (Phase::Particles, 0.02, 3.37),
    ];

    let mut table = Vec::new();
    for &(phase, lb_paper, pct_paper) in paper {
        let row = rows.iter().find(|r| r.phase == phase);
        let (lb, pct) = row.map_or((f64::NAN, f64::NAN), |r| (r.load_balance, r.pct_time));
        table.push(vec![
            phase.name().to_string(),
            format!("{lb:.2}"),
            format!("{lb_paper:.2}"),
            format!("{pct:.2}%"),
            format!("{pct_paper:.2}%"),
        ]);
    }
    // MPI/idle share for completeness.
    if let Some(r) = rows.iter().find(|r| r.phase == Phase::MpiComm) {
        table.push(vec![
            "MPI".into(),
            format!("{:.2}", r.load_balance),
            "-".into(),
            format!("{:.2}%", r.pct_time),
            "-".into(),
        ]);
    }

    let out = format!(
        "Table 1 — per-phase load balance and time share (96 ranks, Thunder node)\n\n{}\n\
         Reproduction notes:\n\
         - %Time column is calibrated to the paper's profile (DESIGN.md);\n\
         - L96 values are emergent: assembly/SGS imbalance from the hybrid\n\
           element mix vs count-balanced partitions, particle imbalance from\n\
           inlet-concentrated injection (paper: inherent to the problem).\n",
        format_table(
            &["Phase", "L96", "L96 (paper)", "%Time", "%Time (paper)"],
            &table
        )
    );
    emit("table1", &out);
}
