//! Micro-benchmarks of the real executing kernels on the host machine
//! (single core in this container — these measure *throughput of the
//! real implementations*, complementing the virtual-platform figure
//! harnesses). Timed with the in-repo `cfpd-testkit` bench timer.

use std::hint::black_box;

use cfpd_bench::emit;
use cfpd_mesh::{generate_airway, AirwaySpec, Vec3};
use cfpd_partition::{greedy_coloring, partition_kway, Graph};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, cg, AssemblyPlan, AssemblyStrategy, CsrMatrix, FluidProps, RefElement,
};
use cfpd_testkit::bench::{Bench, BenchConfig};

fn bench_assembly_strategies(b: &mut Bench) {
    let am = generate_airway(&AirwaySpec::small()).unwrap();
    let mesh = &am.mesh;
    let n2e = mesh.node_to_elements();
    let matrix = CsrMatrix::from_mesh(mesh, &n2e);
    let refs = RefElement::all();
    let pool = ThreadPool::new(2);
    let velocity: Vec<Vec3> = mesh.coords.iter().map(|p| Vec3::new(p.z, 0.0, -1.0)).collect();
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();

    for strategy in AssemblyStrategy::ALL {
        let plan = AssemblyPlan::new(mesh, elems.clone(), strategy, 16);
        b.bench_batched(
            &format!("assembly/{}", strategy.label()),
            || (matrix.clone(), vec![vec![0.0; mesh.num_nodes()]; 3]),
            |(mut a, mut rhs)| {
                let zero_p = vec![0.0; mesh.num_nodes()];
                let stats = assemble_momentum(
                    &pool,
                    &refs,
                    mesh,
                    &plan,
                    &velocity,
                    &zero_p,
                    FluidProps::default(),
                    1e-4,
                    Vec3::new(0.0, 0.0, -9.81),
                    &mut a,
                    &mut rhs,
                );
                black_box(stats.elements);
            },
        );
    }
}

fn bench_solvers(b: &mut Bench) {
    let am = generate_airway(&AirwaySpec::small()).unwrap();
    let mesh = &am.mesh;
    let n2e = mesh.node_to_elements();
    let mut a = CsrMatrix::from_mesh(mesh, &n2e);
    // SPD Laplacian-like fill: off-diagonal -1, diagonal = degree.
    for row in 0..a.n {
        let (lo, hi) = (a.row_ptr[row] as usize, a.row_ptr[row + 1] as usize);
        let deg = (hi - lo - 1) as f64;
        for k in lo..hi {
            a.values[k] = if a.col_idx[k] as usize == row { deg + 1.0 } else { -1.0 };
        }
    }
    let b_vec = vec![1.0; a.n];

    let x = vec![1.0; a.n];
    let mut y = vec![0.0; a.n];
    b.bench("solver/spmv", || {
        a.spmv(black_box(&x), &mut y);
        black_box(y[0]);
    });
    b.bench("solver/cg", || {
        let mut x = vec![0.0; a.n];
        let stats = cg(&a, &b_vec, &mut x, 1e-8, 500);
        black_box(stats.iterations);
    });
}

fn bench_particles(b: &mut Bench) {
    use cfpd_particles::{inject_at_inlet, step_particles, Locator, ParticleProps, ParticleSet};
    let am = generate_airway(&AirwaySpec::small()).unwrap();
    let locator = Locator::new(&am.mesh);
    let mut set = ParticleSet::default();
    inject_at_inlet(
        &mut set,
        &locator,
        am.inlet_center,
        am.inlet_direction,
        am.inlet_radius,
        1.5,
        ParticleProps::default(),
        2000,
        42,
    );
    let flow: Vec<Vec3> = vec![Vec3::new(0.0, 0.0, -2.0); am.mesh.num_nodes()];

    b.bench_batched(
        "particles/step_2000",
        || set.clone(),
        |mut s| {
            let stats = step_particles(
                &mut s,
                &locator,
                &flow,
                1.14,
                1.9e-5,
                Vec3::new(0.0, 0.0, -9.81),
                1e-4,
            );
            black_box(stats.moved);
        },
    );
}

fn bench_partitioning(b: &mut Bench) {
    let am = generate_airway(&AirwaySpec::small()).unwrap();
    let n2e = am.mesh.node_to_elements();
    let adj = am.mesh.element_adjacency(&n2e);
    let g = Graph::from_csr_unit(&adj);

    b.bench("partition/kway_16", || {
        black_box(partition_kway(&g, 16, 4).edge_cut(&g));
    });
    b.bench("partition/coloring", || {
        black_box(greedy_coloring(&g).num_colors);
    });
}

fn bench_meshgen(b: &mut Bench) {
    b.bench("meshgen/airway_small", || {
        black_box(generate_airway(&AirwaySpec::small()).unwrap().mesh.num_elements());
    });
}

fn main() {
    let mut b = Bench::with_config("micro", BenchConfig { warmup: 3, samples: 10 });
    bench_assembly_strategies(&mut b);
    bench_solvers(&mut b);
    bench_particles(&mut b);
    bench_partitioning(&mut b);
    bench_meshgen(&mut b);
    emit("micro", &b.report());
}
