//! **Ablation: sensitivity to the irregularity calibration κ.** The one
//! free constant of the workload model (indirect-access cost
//! heterogeneity, κ = 1.5 calibrated to the paper's assembly L₉₆ =
//! 0.66) — this ablation shows the paper's *qualitative* conclusions
//! (strategy ordering, hybrid gains, DLB wins) hold across a wide κ
//! range, i.e. the reproduction does not hinge on the calibration.

use cfpd_bench::emit;
use cfpd_core::{measure_workload, PhaseCostModel};
use cfpd_perfmodel::{Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn main() {
    let ctx = cfpd_bench::FigureContext::new();
    let platform = Platform::mare_nostrum4();
    let mut lines = vec![
        "Ablation — sensitivity of Fig. 6 conclusions to the irregularity κ".to_string(),
        String::new(),
        format!(
            "{:>6} {:>8} | {:>8} {:>9} {:>9} {:>9}",
            "kappa", "L96", "MPI-only", "Atomics", "Coloring", "Multidep"
        ),
        "-".repeat(64),
    ];
    for kappa in [0.0, 0.75, 1.5, 2.25] {
        let cost = PhaseCostModel { irregularity_kappa: kappa, ..PhaseCostModel::default() };
        let w96 = measure_workload(&ctx.airway, 96, 4000, 1, cost, 42);
        let w24 = measure_workload(&ctx.airway, 24, 4000, 1, cost, 42);
        let lb = w96.assembly_balance();
        let time = |work: Vec<f64>, threads: usize, strategy| {
            SyncScenario {
                platform: platform.clone(),
                phases: vec![PhaseSpec::fixed(
                    Phase::Assembly,
                    work,
                    Sensitivity::Assembly { colors: 24, tasks: 16 * threads },
                )],
                steps: 1,
                threads_per_rank: threads,
                strategy,
                dlb: false,
                mapping: Mapping::Block,
            }
            .run()
            .total_time
        };
        let t_mpi = time(w96.assembly.clone(), 1, AssemblyStrategy::Serial);
        let speedups: Vec<f64> = [
            AssemblyStrategy::Atomics,
            AssemblyStrategy::Coloring,
            AssemblyStrategy::Multidep,
        ]
        .iter()
        .map(|&s| t_mpi / time(w24.assembly.clone(), 4, s))
        .collect();
        lines.push(format!(
            "{:>6.2} {:>8.3} | {:>8} {:>9.2} {:>9.2} {:>9.2}",
            kappa, lb, "1.00", speedups[0], speedups[1], speedups[2]
        ));
        // The qualitative claims must hold at every kappa.
        assert!(
            speedups[0] < speedups[1] && speedups[1] < speedups[2],
            "strategy ordering broke at kappa={kappa}: {speedups:?}"
        );
    }
    lines.push(String::new());
    lines.push(
        "Strategy ordering (Atomics < Coloring < Multidep) holds at every κ;\n\
         κ only shifts how much the hybrid runs gain from the coarser MPI\n\
         decomposition. κ = 1.5 (the calibrated value) reproduces the paper's\n\
         measured L96 = 0.66."
            .to_string(),
    );
    emit("ablation_kappa", &lines.join("\n"));
}
