//! **Extension: energy-to-solution.** Beyond the paper (which reports
//! only runtime), this harness asks the Mont-Blanc question its
//! hardware context poses: how do the Intel and Arm clusters compare in
//! energy per simulation, and how much energy does DLB save by removing
//! idle waiting? Uses the busy/idle power model documented in
//! `cfpd-perfmodel::energy`.

use cfpd_bench::{emit, format_table, sync_phases, FigureContext, PARTICLES_LARGE, STEPS};
use cfpd_perfmodel::{estimate_energy, Mapping, Platform, PowerModel, SyncScenario};
use cfpd_solver::AssemblyStrategy;

fn main() {
    let mut ctx = FigureContext::new();
    let mut rows = Vec::new();
    for platform in [Platform::mare_nostrum4(), Platform::thunder()] {
        let c = platform.total_cores();
        let pm = PowerModel::for_platform(&platform);
        for dlb in [false, true] {
            let scenario = SyncScenario {
                phases: sync_phases(&mut ctx, c, PARTICLES_LARGE, 1),
                platform: platform.clone(),
                steps: STEPS,
                threads_per_rank: 1,
                strategy: AssemblyStrategy::Multidep,
                dlb,
                mapping: Mapping::Block,
            };
            let r = scenario.run();
            let e = estimate_energy(&platform, &pm, &r, 1.0);
            rows.push(vec![
                platform.name.to_string(),
                if dlb { "DLB" } else { "orig" }.to_string(),
                format!("{:.3}", r.total_time),
                format!("{:.1}", e.busy_joules),
                format!("{:.1}", e.idle_joules),
                format!("{:.1}", e.total()),
            ]);
        }
    }
    let out = format!(
        "Extension — energy-to-solution (sync mode, 7e6-eq particles, 10 steps)\n\n{}\n\
         Reading: the Arm cluster trades longer runtime for lower power;\n\
         DLB cuts the idle-energy term on both platforms by converting\n\
         waiting into computation (shorter wall time at the same busy work).\n\
         Power constants are coarse public estimates; compare ratios only.\n",
        format_table(
            &["cluster", "runtime", "t [s]", "E_busy [J]", "E_idle [J]", "E_total [J]"],
            &rows
        )
    );
    emit("ext_energy", &out);
}
