//! **Figure 6** — speedup of the *hybrid* matrix assembly with respect
//! to the pure-MPI code, for the three parallelization strategies
//! (Atomics / Coloring / Multidep) and thread counts 1, 2, 4 per rank,
//! on both modeled clusters (total cores fixed: 96 on MareNostrum4,
//! 192 on Thunder).
//!
//! Paper shapes to reproduce: Atomics mostly < 1 (much worse on the
//! Intel machine, −50 % IPC); Coloring in between (≥ MPI-only on
//! Thunder); Multidep best everywhere; MN4 Multidep ≈ 2.5× Atomics,
//! Thunder Multidep ≈ 1.2× Atomics.

use cfpd_bench::{emit, format_table, FigureContext};
use cfpd_perfmodel::{Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn phase_time(
    ctx: &mut FigureContext,
    platform: &Platform,
    ranks: usize,
    threads: usize,
    strategy: AssemblyStrategy,
) -> f64 {
    let colors = ctx.colors_per_rank(ranks);
    let work = ctx.profile(ranks).assembly.clone();
    SyncScenario {
        platform: platform.clone(),
        phases: vec![PhaseSpec::fixed(
            Phase::Assembly,
            work,
            Sensitivity::Assembly { colors, tasks: 16 * threads },
        )],
        steps: 1,
        threads_per_rank: threads,
        strategy,
        dlb: false,
        mapping: Mapping::Block,
    }
    .run()
    .total_time
}

fn main() {
    let mut ctx = FigureContext::new();
    let mut out = String::from(
        "Figure 6 — speedup of hybrid assembly wrt the MPI-only code\n\
         (configurations: total-MPI-ranks x threads-per-rank, resources constant)\n\n",
    );
    for platform in [Platform::mare_nostrum4(), Platform::thunder()] {
        let cores = platform.total_cores();
        let t_mpi = phase_time(&mut ctx, &platform, cores, 1, AssemblyStrategy::Serial);
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4] {
            let ranks = cores / threads;
            let mut row = vec![format!("{ranks}x{threads}")];
            for strategy in [
                AssemblyStrategy::Atomics,
                AssemblyStrategy::Coloring,
                AssemblyStrategy::Multidep,
            ] {
                let t = phase_time(&mut ctx, &platform, ranks, threads, strategy);
                row.push(format!("{:.2}", t_mpi / t));
            }
            rows.push(row);
        }
        out.push_str(&format!(
            "{} ({} cores), baseline pure-MPI {}x1: {:.4} s/step\n{}\n",
            platform.name,
            cores,
            cores,
            t_mpi,
            format_table(&["config", "Atomics", "Coloring", "Multidep"], &rows)
        ));
    }
    out.push_str(
        "Shape checks vs paper: Atomics < 1 (far below on MareNostrum4);\n\
         Coloring between Atomics and Multidep; Multidep best everywhere;\n\
         Multidep/Atomics ratio much larger on MareNostrum4 than on Thunder.\n",
    );
    emit("fig6_assembly", &out);
}
