//! **Figure 2** — Paraver-style trace timeline of one simulation step
//! with 96 MPI processes on a Thunder node: per-rank phase intervals
//! showing the characteristic pattern (assembly → solvers → SGS →
//! particles) and the load imbalance inside each phase — in particular
//! the particle phase concentrated on the inlet-owning ranks.

use cfpd_bench::{emit, sync_phases, FigureContext, PARTICLES_SMALL};
use cfpd_perfmodel::{Mapping, Platform, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::{render_timeline_ranks, Phase};

fn main() {
    let mut ctx = FigureContext::new();
    let mut platform = Platform::thunder();
    platform.nodes = 1;
    let scenario = SyncScenario {
        phases: sync_phases(&mut ctx, 96, PARTICLES_SMALL, 1),
        platform,
        steps: 1, // the paper's Fig. 2 shows a single time step
        threads_per_rank: 1,
        strategy: AssemblyStrategy::Serial,
        dlb: false,
        mapping: Mapping::Block,
    };
    let result = scenario.run();
    // Downsample to 24 rows, but always include the ranks carrying the
    // particle phase (they would otherwise be thinned away).
    let ptime = result.trace.per_rank_time(Phase::Particles);
    let mut ranks: Vec<usize> = (0..96).step_by(4).collect();
    for (r, &t) in ptime.iter().enumerate() {
        if t > 0.0 && !ranks.contains(&r) {
            ranks.push(r);
        }
    }
    ranks.sort_unstable();
    let timeline = render_timeline_ranks(&result.trace, 150, &ranks);
    let out = format!(
        "Figure 2 — trace of one respiratory-simulation step, 96 ranks (Thunder node)\n\n{timeline}\n\
         Reading guide (matches the paper's description):\n\
         - A (assembly) and S (SGS) rows end unevenly: per-phase load imbalance;\n\
         - 1/2 (solvers) are comparatively even;\n\
         - P (particles) appears only on the few ranks owning inlet elements —\n\
           the extreme particle-phase imbalance (L96 = 0.02 in Table 1).\n"
    );
    emit("fig2_trace", &out);
}
