//! **Figure 7** — speedup of the hybrid SGS computation wrt the
//! MPI-only code. The SGS phase has no shared update, so no strategy
//! needs atomics; the figure isolates the *overhead* of coloring and
//! multidependences (paper: below 10 %, and all hybrid configurations
//! outperform MPI-only).

use cfpd_bench::{emit, format_table, FigureContext};
use cfpd_perfmodel::{Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn phase_time(
    ctx: &mut FigureContext,
    platform: &Platform,
    ranks: usize,
    threads: usize,
    strategy: AssemblyStrategy,
) -> f64 {
    let colors = ctx.colors_per_rank(ranks);
    let work = ctx.profile(ranks).sgs.clone();
    SyncScenario {
        platform: platform.clone(),
        phases: vec![PhaseSpec::fixed(
            Phase::Sgs,
            work,
            Sensitivity::Sgs { colors, tasks: 16 * threads },
        )],
        steps: 1,
        threads_per_rank: threads,
        strategy,
        dlb: false,
        mapping: Mapping::Block,
    }
    .run()
    .total_time
}

fn main() {
    let mut ctx = FigureContext::new();
    let mut out = String::from(
        "Figure 7 — speedup of hybrid SGS wrt the MPI-only code\n\
         (no race to protect: 'Atomics' is a plain parallel loop; coloring and\n\
         multidependences only add scheduling overhead here)\n\n",
    );
    for platform in [Platform::mare_nostrum4(), Platform::thunder()] {
        let cores = platform.total_cores();
        let t_mpi = phase_time(&mut ctx, &platform, cores, 1, AssemblyStrategy::Serial);
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4] {
            let ranks = cores / threads;
            let mut row = vec![format!("{ranks}x{threads}")];
            for strategy in [
                AssemblyStrategy::Atomics,
                AssemblyStrategy::Coloring,
                AssemblyStrategy::Multidep,
            ] {
                let t = phase_time(&mut ctx, &platform, ranks, threads, strategy);
                row.push(format!("{:.2}", t_mpi / t));
            }
            rows.push(row);
        }
        out.push_str(&format!(
            "{} ({} cores), baseline pure-MPI {}x1: {:.4} s/step\n{}\n",
            platform.name,
            cores,
            cores,
            t_mpi,
            format_table(&["config", "Atomics", "Coloring", "Multidep"], &rows)
        ));
    }
    out.push_str(
        "Shape checks vs paper: hybrid >= MPI-only in all configurations;\n\
         Coloring/Multidep within ~10% of the plain loop (pure overhead).\n",
    );
    emit("fig7_sgs", &out);
}
