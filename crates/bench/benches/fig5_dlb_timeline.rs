//! **Figure 5** — DLB behaviour on an unbalanced hybrid run: when MPI
//! process 1 blocks in a communication call it lends its cores to MPI
//! process 2, which temporarily runs with more threads and finishes
//! faster; cores are reclaimed at the end of the blocking call.
//!
//! Unlike Figs. 6–11 (virtual-platform model), this figure exercises the
//! *real* machinery end-to-end: real rank threads (`cfpd-simmpi`), the
//! real LeWI arbiter (`cfpd-dlb`) and real resizable pools
//! (`cfpd-runtime`), with the event log rendered as a timeline.

use cfpd_bench::emit;
use cfpd_dlb::{DlbCluster, DlbEventKind};
use cfpd_runtime::{parallel_for, ThreadPool};
use cfpd_simmpi::Universe;
use std::sync::Arc;

fn main() {
    let cluster = Arc::new(DlbCluster::new_block(2, 1));
    let pools: Vec<Arc<ThreadPool>> = (0..2).map(|_| Arc::new(ThreadPool::new(4))).collect();
    cluster.register(0, Arc::clone(&pools[0]), 2);
    cluster.register(1, Arc::clone(&pools[1]), 2);

    let pools2 = pools.clone();
    let hooks: Arc<dyn cfpd_simmpi::MpiHooks> = Arc::clone(&cluster) as _;
    Universe::run_with_hooks(2, hooks, move |comm| {
        let pool = &pools2[comm.rank()];
        if comm.rank() == 0 {
            // Lightly loaded rank: short compute, then blocks in recv —
            // the moment DLB lends its 2 cores to rank 1.
            parallel_for(pool, 0..200_000, 4096, |r| {
                let mut acc = 0.0f64;
                for i in r {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            });
            let _: u8 = comm.recv(1, 0);
        } else {
            // Heavily loaded rank: many parallel regions; its pool grows
            // while rank 0 is blocked.
            std::thread::sleep(std::time::Duration::from_millis(10));
            for _ in 0..30 {
                parallel_for(pool, 0..400_000, 4096, |r| {
                    let mut acc = 0.0f64;
                    for i in r {
                        acc += (i as f64).sqrt();
                    }
                    std::hint::black_box(acc);
                });
            }
            comm.send(0, 0, 1u8);
        }
    });

    let mut lines = Vec::new();
    lines.push("Figure 5 — DLB (LeWI) lend/borrow/reclaim event log".to_string());
    lines.push(String::new());
    lines.push(format!("{:>10}  {:>5}  {}", "t [ms]", "rank", "event"));
    lines.push("-".repeat(60));
    for (_, e) in cluster.all_events() {
        let desc = match e.kind {
            DlbEventKind::Lend { cores } => format!("blocked in MPI, lent {cores} core(s)"),
            DlbEventKind::Borrow { cores, active } => {
                format!("borrowed {cores} core(s) -> {active} active threads")
            }
            DlbEventKind::Reclaim { cores } => format!("unblocked, reclaimed {cores} core(s)"),
            DlbEventKind::Revoke { cores, active } => {
                format!("loan revoked ({cores}) -> {active} active threads")
            }
            DlbEventKind::LeaseExpired { cores } => {
                format!("lease expired, kept core(s) donated ({cores})")
            }
            DlbEventKind::Crashed { cores } => {
                format!("rank crashed, allotment donated permanently ({cores})")
            }
            DlbEventKind::PreLend { cores } => {
                format!("predicted surplus, pre-lent {cores} core(s) before blocking")
            }
        };
        lines.push(format!("{:>10.3}  {:>5}  {}", e.t * 1e3, e.rank, desc));
    }
    let stats = cluster.total_stats();
    lines.push(String::new());
    lines.push(format!(
        "totals: {} lends, {} grants, {} reclaims, {} revokes, {} core-loans",
        stats.lends, stats.grants, stats.reclaims, stats.revokes, stats.cores_lent_total
    ));
    lines.push(
        "Shape check vs paper Fig. 5: blocked rank lends -> busy rank's thread count \
         rises above its ownership -> reclaim restores it."
            .to_string(),
    );
    emit("fig5_dlb_timeline", &lines.join("\n"));
}
