//! **§4.3 IPC calibration** — the paper reports measured IPC for the
//! pure-MPI code and the atomics version on both clusters; the platform
//! model is calibrated against exactly these numbers, so this harness
//! is the reproduction's calibration audit.

use cfpd_bench::{emit, format_table};
use cfpd_perfmodel::Platform;
use cfpd_solver::AssemblyStrategy;

fn main() {
    let mut rows = Vec::new();
    let paper: &[(&str, f64, f64)] =
        &[("MareNostrum4", 2.25, 1.15), ("Thunder", 0.49, 0.42)];
    for (platform, &(name, ipc_mpi, ipc_atomic)) in
        [Platform::mare_nostrum4(), Platform::thunder()].iter().zip(paper)
    {
        for (strategy, paper_val) in [
            (AssemblyStrategy::Serial, Some(ipc_mpi)),
            (AssemblyStrategy::Atomics, Some(ipc_atomic)),
            (AssemblyStrategy::Coloring, None),
            (AssemblyStrategy::Multidep, None),
        ] {
            let modeled = platform.modeled_ipc(strategy);
            rows.push(vec![
                name.to_string(),
                strategy.label().to_string(),
                format!("{modeled:.3}"),
                paper_val.map_or("-".into(), |v| format!("{v:.2}")),
                format!("{:.0}%", 100.0 * modeled / platform.base_ipc),
            ]);
        }
    }
    let out = format!(
        "IPC calibration — modeled vs paper-measured IPC in the assembly phase\n\n{}\n\
         Paper statements reproduced: atomics cost −50% IPC on the out-of-order\n\
         Intel core but only −14% on the in-order Arm core; multidependences\n\
         retain 94–96% of the MPI-only IPC on both.\n",
        format_table(&["cluster", "version", "modeled IPC", "paper IPC", "% of MPI-only"], &rows)
    );
    emit("ipc_calibration", &out);
}
