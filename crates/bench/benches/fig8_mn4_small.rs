//! **Figure 8** — execution time simulating the 4·10⁵-equivalent
//! particle injection on MareNostrum4 (2 nodes × 48 cores), original
//! code vs DLB, over the synchronous mode and the coupled `f+p` ladder.
//!
//! Paper shapes: a bad coupled split costs up to ~2× vs the best
//! configuration; DLB improves every configuration and flattens the
//! sensitivity to the user's choice.

use cfpd_bench::{dlb_figure, emit, format_table, FigureContext, PARTICLES_SMALL};
use cfpd_perfmodel::Platform;

fn main() {
    let mut ctx = FigureContext::new();
    let rows = dlb_figure(&mut ctx, &Platform::mare_nostrum4(), PARTICLES_SMALL);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.4}", r.t_orig),
                format!("{:.4}", r.t_dlb),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    let best = rows.iter().map(|r| r.t_orig).fold(f64::INFINITY, f64::min);
    let worst = rows.iter().map(|r| r.t_orig).fold(0.0f64, f64::max);
    let out = format!(
        "Figure 8 — 4e5-equivalent particles on MareNostrum4 (96 cores, 10 steps)\n\n{}\n\
         worst/best original configuration: {:.2}x (paper: up to ~2x)\n\
         DLB improves every configuration; speedups {:.2}x..{:.2}x\n",
        format_table(&["config (f+p)", "t_orig [s]", "t_dlb [s]", "DLB speedup"], &table),
        worst / best,
        rows.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min),
        rows.iter().map(|r| r.speedup()).fold(0.0f64, f64::max),
    );
    emit("fig8_mn4_small", &out);
}
