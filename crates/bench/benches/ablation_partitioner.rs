//! **Ablation: partitioner choice.** Graph-growing k-way (the Metis
//! stand-in used everywhere) vs recursive coordinate bisection (RCB) on
//! the airway mesh: balance, edge cut and partitioning time — the
//! quantities that flow into MPI communication volume and the assembly
//! imbalance the paper's techniques fight.

use cfpd_bench::{emit, format_table, FigureContext};
use cfpd_partition::{partition_kway, partition_rcb, Graph};

fn main() {
    let ctx = FigureContext::new();
    let mesh = &ctx.airway.mesh;
    let n2e = mesh.node_to_elements();
    let adj = mesh.element_adjacency(&n2e);
    let g = Graph::from_csr_unit(&adj);
    let centroids: Vec<[f64; 3]> = (0..mesh.num_elements())
        .map(|e| {
            let c = mesh.centroid(e);
            [c.x, c.y, c.z]
        })
        .collect();
    let unit = vec![1.0; mesh.num_elements()];

    let mut rows = Vec::new();
    for ranks in [24usize, 96, 192] {
        for (name, part, secs) in [
            {
                let t0 = std::time::Instant::now();
                let p = partition_kway(&g, ranks, 4);
                ("kway", p, t0.elapsed().as_secs_f64())
            },
            {
                let t0 = std::time::Instant::now();
                let p = partition_rcb(&centroids, &unit, ranks);
                ("rcb", p, t0.elapsed().as_secs_f64())
            },
        ] {
            rows.push(vec![
                format!("{ranks}"),
                name.to_string(),
                format!("{:.3}", part.load_balance(&g)),
                format!("{}", part.edge_cut(&g)),
                format!("{:.2}", secs * 1e3),
            ]);
        }
    }
    let total_edges = g.adjncy.len() / 2;
    let out = format!(
        "Ablation — partitioner: graph-growing k-way vs recursive coordinate bisection\n\
         ({} elements, {} adjacency edges)\n\n{}\n\
         The connectivity-aware k-way partitioner cuts far fewer edges (lower\n\
         MPI halo volume) at comparable balance; RCB is faster to compute.\n\
         Edge cut drives the solver-phase communication the paper's DLB hides.\n",
        mesh.num_elements(),
        total_edges,
        format_table(&["ranks", "method", "balance", "edge cut", "time [ms]"], &rows)
    );
    emit("ablation_partitioner", &out);
}
