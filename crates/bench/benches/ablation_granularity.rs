//! **Ablation: multidependences task granularity.** The paper maps one
//! task per Metis subdomain but does not study how many subdomains to
//! carve per rank. This ablation sweeps the task count on a real
//! rank-sized mesh piece and reports (a) real scheduler statistics
//! (available parallelism, mutexinoutset retries) from executing the
//! actual task graph, and (b) modeled assembly time on both platforms
//! (task-spawn overhead vs parallelism).

use cfpd_bench::{emit, format_table, FigureContext};
use cfpd_perfmodel::{Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_runtime::{Dep, TaskGraph, ThreadPool};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn main() {
    let mut ctx = FigureContext::new();
    let task_counts = [4usize, 8, 16, 32, 64, 128, 256];
    // Modeled per-platform assembly times first (needs &mut ctx).
    let mut modeled_times = Vec::new();
    for &tasks in &task_counts {
        let mut modeled = Vec::new();
        for platform in [Platform::mare_nostrum4(), Platform::thunder()] {
            let threads = 4;
            let ranks = platform.total_cores() / threads;
            let colors = ctx.colors_per_rank(ranks);
            let work = ctx.profile(ranks).assembly.clone();
            let t = SyncScenario {
                platform: platform.clone(),
                phases: vec![PhaseSpec::fixed(
                    Phase::Assembly,
                    work,
                    Sensitivity::Assembly { colors, tasks },
                )],
                steps: 1,
                threads_per_rank: threads,
                strategy: AssemblyStrategy::Multidep,
                dlb: false,
                mapping: Mapping::Block,
            }
            .run()
            .total_time;
            modeled.push(t);
        }
        modeled_times.push(modeled);
    }

    let mesh = &ctx.airway.mesh;
    // One MareNostrum4 rank's domain at the 24x4 hybrid configuration.
    let n2e = mesh.node_to_elements();
    let adj = mesh.element_adjacency(&n2e);
    let g = cfpd_partition::Graph::from_csr_unit(&adj);
    let part = cfpd_partition::partition_kway(&g, 24, 2);
    let elems = part.part_members()[0].clone();
    let weights: Vec<f64> = elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();

    let pool = ThreadPool::new(4);
    let mut rows = Vec::new();
    for (ti, &tasks) in task_counts.iter().enumerate() {
        // Real decomposition + real task-graph execution (counting the
        // work by touching each element's nodes).
        let d = cfpd_partition::decompose_subdomains(mesh, &elems, &weights, tasks);
        let mut edge_ids = std::collections::HashMap::new();
        let mut next = 0usize;
        let mut graph = TaskGraph::new();
        let sink = std::sync::atomic::AtomicU64::new(0);
        for (s, members) in d.members.iter().enumerate() {
            let deps: Vec<Dep> = d.adjacency[s]
                .iter()
                .map(|&t| {
                    let key = (s.min(t as usize), s.max(t as usize));
                    let id = *edge_ids.entry(key).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    Dep::mutex(id)
                })
                .collect();
            let sink = &sink;
            graph.add_task(&deps, move || {
                let mut acc = 0u64;
                for &e in members {
                    for &v in mesh.elem_nodes(e as usize) {
                        acc = acc.wrapping_add(v as u64);
                    }
                }
                sink.fetch_add(acc, std::sync::atomic::Ordering::Relaxed);
            });
        }
        let mean_degree: f64 = d.adjacency.iter().map(|a| a.len() as f64).sum::<f64>()
            / d.num_subdomains() as f64;
        let stats = graph.execute(&pool);
        let modeled = &modeled_times[ti];

        rows.push(vec![
            tasks.to_string(),
            format!("{:.1}", mean_degree),
            stats.max_ready.to_string(),
            stats.mutex_retries.to_string(),
            format!("{:.2}", modeled[0] * 1e3),
            format!("{:.2}", modeled[1] * 1e3),
        ]);
    }
    let out = format!(
        "Ablation — multidependences task granularity (subdomains per rank)\n\
         (real task-graph execution on one 24-rank domain + modeled phase time)\n\n{}\n\
         Observations: more tasks expose more parallelism (max_ready) at the\n\
         cost of denser adjacency (mean degree), more exclusion retries and\n\
         higher spawn overhead in the modeled time; a plateau around 16-64\n\
         tasks per rank justifies the default of 16 x threads.\n",
        format_table(
            &["tasks", "mean adj", "max ready", "mutex retries", "MN4 [ms]", "Thunder [ms]"],
            &rows
        )
    );
    emit("ablation_granularity", &out);
}
