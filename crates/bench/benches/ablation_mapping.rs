//! **Ablation: rank→node mapping in coupled mode.** DLB can only move
//! cores *within* a node. With the default block mapping, the fluid
//! code fills node 0 and the particle code node 1 — DLB then has almost
//! nothing to lend across codes. Round-robin mixes both codes on every
//! node and unlocks the full cross-code lending the paper's coupled
//! results rely on. This ablation quantifies that placement effect.

use cfpd_bench::{emit, format_table, FigureContext, PARTICLES_LARGE, STEPS};
use cfpd_perfmodel::{CoupledScenario, Mapping, PhaseSpec, Platform, Sensitivity};
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn main() {
    let mut ctx = FigureContext::new();
    let platform = Platform::mare_nostrum4();
    let c = platform.total_cores();
    let (f, p) = (c / 2, c / 2);

    let fluid_phases = {
        let colors = ctx.colors_per_rank(f);
        let prof = ctx.profile(f);
        vec![
            PhaseSpec::fixed(
                Phase::Assembly,
                prof.assembly.clone(),
                Sensitivity::Assembly { colors, tasks: 16 },
            ),
            PhaseSpec::fixed(Phase::Solver1, prof.solver1.clone(), Sensitivity::None),
            PhaseSpec::fixed(Phase::Solver2, prof.solver2.clone(), Sensitivity::None),
            PhaseSpec::fixed(Phase::Sgs, prof.sgs.clone(), Sensitivity::Sgs { colors, tasks: 16 }),
        ]
    };
    let particle_phases = vec![PhaseSpec::per_step(
        Phase::Particles,
        ctx.particle_work(p, PARTICLES_LARGE),
        Sensitivity::None,
    )];

    let mut rows = Vec::new();
    for (mapping, name) in [(Mapping::Block, "block"), (Mapping::RoundRobin, "round-robin")] {
        let mut times = Vec::new();
        for dlb in [false, true] {
            let t = CoupledScenario {
                platform: platform.clone(),
                fluid_phases: fluid_phases.clone(),
                particle_phases: particle_phases.clone(),
                steps: STEPS,
                threads_per_rank: 1,
                strategy: AssemblyStrategy::Multidep,
                dlb,
                mapping,
            }
            .run()
            .total_time;
            times.push(t);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            format!("{:.2}x", times[0] / times[1]),
        ]);
    }
    let out = format!(
        "Ablation — rank placement for coupled {f}+{p} on MareNostrum4, 7e6-eq particles\n\n{}\n\
         With block placement the two codes occupy different nodes and DLB\n\
         cannot lend across them; mixing the codes per node (round-robin)\n\
         recovers the full DLB benefit. Placement is a first-order decision\n\
         for coupled runs — a practical corollary the paper leaves implicit.\n",
        format_table(&["mapping", "t_orig [s]", "t_dlb [s]", "DLB speedup"], &rows)
    );
    emit("ablation_mapping", &out);
}
