//! Matrix expansion: the cross-product of the `[matrix]` axes minus
//! the `[exclude]` constraints, each cell materialized as a fully
//! seeded, deterministic [`Scenario`].
//!
//! Expansion order is deterministic and independent of everything but
//! the document: axes iterate in declaration order with the **last**
//! axis fastest (odometer order), and a cell's id is its axis
//! assignments joined in declaration order — `mode=sync,layout=opt,...`.
//! Reports sort by expansion index, never by completion time.

use crate::dsl::{DslError, RawPair};
use crate::scenario::{CampaignSpec, CellSettings};
use cfpd_core::Scenario;

/// One expanded matrix cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Position in expansion order (the report's sort key).
    pub index: usize,
    /// Canonical id: `key=value` per axis, joined with `,` in axis
    /// declaration order; `base` when the campaign has no axes.
    pub id: String,
    /// The axis assignment of this cell, in declaration order.
    pub axes: Vec<(String, String)>,
    /// The fully materialized run request.
    pub scenario: Scenario,
}

/// Number of cells the axes produce before exclusion.
pub fn full_matrix_size(spec: &CampaignSpec) -> usize {
    spec.axes.iter().map(|a| a.values.len()).product()
}

fn excluded(spec: &CampaignSpec, assignment: &[(String, String)]) -> bool {
    spec.excludes.iter().any(|group| {
        group.iter().all(|c| {
            assignment.iter().any(|(k, v)| *k == c.key && *v == c.value)
        })
    })
}

/// Expand the campaign into its cells. Errors only on value
/// re-validation (which `CampaignSpec::from_doc` already guarantees
/// passes, so callers can treat an `Err` as a bug).
pub fn expand(spec: &CampaignSpec) -> Result<Vec<Cell>, DslError> {
    let mut base = CellSettings::default();
    for p in &spec.base {
        base.apply(p)?;
    }

    if spec.axes.is_empty() {
        return Ok(vec![Cell {
            index: 0,
            id: "base".to_string(),
            axes: Vec::new(),
            scenario: base.to_scenario(),
        }]);
    }

    let total = full_matrix_size(spec);
    let mut cells = Vec::new();
    // Odometer over axis value indices, last axis fastest.
    let mut odo = vec![0usize; spec.axes.len()];
    for _ in 0..total {
        let assignment: Vec<(String, String)> = spec
            .axes
            .iter()
            .zip(&odo)
            .map(|(a, &i)| (a.key.clone(), a.values[i].clone()))
            .collect();
        if !excluded(spec, &assignment) {
            let mut settings = base.clone();
            for (axis, &i) in spec.axes.iter().zip(&odo) {
                settings.apply(&RawPair {
                    key: axis.key.clone(),
                    value: axis.values[i].clone(),
                    line: axis.line,
                })?;
            }
            let id = assignment
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            cells.push(Cell {
                index: cells.len(),
                id,
                axes: assignment,
                scenario: settings.to_scenario(),
            });
        }
        // Tick the odometer.
        for d in (0..odo.len()).rev() {
            odo[d] += 1;
            if odo[d] < spec.axes[d].values.len() {
                break;
            }
            odo[d] = 0;
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_core::ExecutionMode;

    const DOC: &str = "\
[campaign]
name = t

[scenario]
ranks = 2
generations = 1
particles = 40
steps = 1

[matrix]
mode = sync, coupled:1+1
layout = default, opt
dlb = off, on
";

    #[test]
    fn expansion_is_the_cross_product_in_odometer_order() {
        let spec = CampaignSpec::from_text(DOC).unwrap();
        let cells = expand(&spec).unwrap();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].id, "mode=sync,layout=default,dlb=off");
        assert_eq!(cells[1].id, "mode=sync,layout=default,dlb=on");
        assert_eq!(cells[7].id, "mode=coupled:1+1,layout=opt,dlb=on");
        assert_eq!(
            cells[7].scenario.config.mode,
            ExecutionMode::Coupled { fluid: 1, particles: 1 }
        );
        assert!(cells[7].scenario.opts.dlb);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn excludes_drop_matching_cells() {
        let doc = format!("{DOC}\n[exclude]\nmode = coupled:1+1\nlayout = opt\n");
        let spec = CampaignSpec::from_text(&doc).unwrap();
        let cells = expand(&spec).unwrap();
        // 8 minus the 2 cells with (coupled, opt): dlb off and on.
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| !c.id.contains("mode=coupled:1+1,layout=opt")));
    }

    #[test]
    fn no_axes_means_one_base_cell() {
        let spec =
            CampaignSpec::from_text("[campaign]\nname = solo\n[scenario]\nranks = 2\n").unwrap();
        let cells = expand(&spec).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].id, "base");
    }
}
