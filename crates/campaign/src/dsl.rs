//! The declarative campaign format: a strict line-oriented
//! `key = value` + `[section]` DSL with real error spans.
//!
//! Grammar (one construct per line, `#` starts a comment):
//!
//! ```text
//! campaign := line*
//! line     := blank | comment | section | pair
//! section  := '[' name ']'            # name: [a-z_][a-z0-9_]*
//! pair     := key '=' value           # key:  [a-z_][a-z0-9_]*
//! ```
//!
//! Values are free text to end of line (trimmed); list-valued keys
//! (matrix axes) split on `,`. There is no quoting, no escaping, no
//! line continuation — the format is deliberately small enough that
//! "parse → render → parse" is exactly the identity on structure, which
//! the property suite pins.
//!
//! Strictness rules (all reported with 1-based line numbers):
//! * a pair before any `[section]` header is an error,
//! * a duplicate key within one section instance is an error that
//!   names **both** lines,
//! * section names and keys must match `[a-z_][a-z0-9_]*`,
//! * a `[` line must close with `]`, a pair line must contain `=`.
//!
//! Sections may repeat (the typed layer decides which ones are allowed
//! to — `[exclude]` is, the others are not).

use std::fmt;

/// A parse or validation error carrying its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number the error anchors to (0 = whole document).
    pub line: usize,
    pub message: String,
}

impl DslError {
    pub fn at(line: usize, message: impl Into<String>) -> DslError {
        DslError { line, message: message.into() }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

/// One `key = value` pair with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawPair {
    pub key: String,
    pub value: String,
    pub line: usize,
}

/// One `[section]` instance with its pairs, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSection {
    pub name: String,
    pub line: usize,
    pub pairs: Vec<RawPair>,
}

impl RawSection {
    /// The value of `key` in this section, if present.
    pub fn get(&self, key: &str) -> Option<&RawPair> {
        self.pairs.iter().find(|p| p.key == key)
    }
}

/// A parsed campaign document: sections in source order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawDoc {
    pub sections: Vec<RawSection>,
}

impl RawDoc {
    /// All section instances named `name`, in source order.
    pub fn sections_named<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a RawSection> {
        let name = name.to_string();
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// The single section named `name`; `Err` if it appears twice,
    /// `Ok(None)` if absent.
    pub fn unique_section(&self, name: &str) -> Result<Option<&RawSection>, DslError> {
        let mut found: Option<&RawSection> = None;
        for s in self.sections_named(name) {
            if let Some(first) = found {
                return Err(DslError::at(
                    s.line,
                    format!("duplicate [{name}] section (first defined at line {})", first.line),
                ));
            }
            found = Some(s);
        }
        Ok(found)
    }
}

fn valid_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Parse a campaign document. Errors carry the offending line number.
pub fn parse(input: &str) -> Result<RawDoc, DslError> {
    let mut doc = RawDoc::default();
    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        // Strip comments (no quoting in the grammar, so '#' anywhere
        // starts a comment) and surrounding whitespace.
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(DslError::at(lineno, format!("unterminated section header {line:?}")));
            };
            let name = name.trim();
            if !valid_ident(name) {
                return Err(DslError::at(
                    lineno,
                    format!("invalid section name {name:?} (expected [a-z_][a-z0-9_]*)"),
                ));
            }
            doc.sections.push(RawSection { name: name.to_string(), line: lineno, pairs: Vec::new() });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(DslError::at(
                lineno,
                format!("expected 'key = value' or '[section]', got {line:?}"),
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        if !valid_ident(key) {
            return Err(DslError::at(
                lineno,
                format!("invalid key {key:?} (expected [a-z_][a-z0-9_]*)"),
            ));
        }
        let Some(section) = doc.sections.last_mut() else {
            return Err(DslError::at(
                lineno,
                format!("key {key:?} before any [section] header"),
            ));
        };
        if let Some(first) = section.pairs.iter().find(|p| p.key == key) {
            return Err(DslError::at(
                lineno,
                format!(
                    "duplicate key {key:?} in [{}] (first defined at line {})",
                    section.name, first.line
                ),
            ));
        }
        section.pairs.push(RawPair {
            key: key.to_string(),
            value: value.to_string(),
            line: lineno,
        });
    }
    Ok(doc)
}

/// Render a document back to canonical text: one blank line between
/// sections, `key = value` pairs, no comments. `parse(render(d))` is
/// structurally identical to `d` modulo line numbers — the round-trip
/// property the test suite pins.
pub fn render(doc: &RawDoc) -> String {
    let mut out = String::new();
    for (i, s) in doc.sections.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push('[');
        out.push_str(&s.name);
        out.push_str("]\n");
        for p in &s.pairs {
            out.push_str(&p.key);
            out.push_str(" = ");
            out.push_str(&p.value);
            out.push('\n');
        }
    }
    out
}

/// Structural equality modulo source positions (render/reparse moves
/// every line number).
pub fn structurally_equal(a: &RawDoc, b: &RawDoc) -> bool {
    a.sections.len() == b.sections.len()
        && a.sections.iter().zip(&b.sections).all(|(x, y)| {
            x.name == y.name
                && x.pairs.len() == y.pairs.len()
                && x.pairs
                    .iter()
                    .zip(&y.pairs)
                    .all(|(p, q)| p.key == q.key && p.value == q.value)
        })
}

/// Split a list value on commas, trimming each element. Empty elements
/// (leading/trailing/doubled commas) are an error.
pub fn split_list(pair: &RawPair) -> Result<Vec<String>, DslError> {
    let mut out = Vec::new();
    for part in pair.value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(DslError::at(
                pair.line,
                format!("empty element in list value for {:?}", pair.key),
            ));
        }
        out.push(part.to_string());
    }
    if out.is_empty() {
        return Err(DslError::at(pair.line, format!("empty list value for {:?}", pair.key)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_pairs_and_comments() {
        let doc = parse("# header\n[campaign]\nname = small # trailing\n\n[matrix]\nmode = sync, coupled:1+1\n").unwrap();
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections[0].name, "campaign");
        assert_eq!(doc.sections[0].pairs[0].value, "small");
        assert_eq!(doc.sections[0].pairs[0].line, 3);
        assert_eq!(doc.sections[1].get("mode").unwrap().value, "sync, coupled:1+1");
    }

    #[test]
    fn duplicate_key_names_both_lines() {
        let err = parse("[a]\nx = 1\ny = 2\nx = 3\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("first defined at line 2"), "{err}");
    }

    #[test]
    fn pair_before_section_is_an_error() {
        let err = parse("x = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("before any [section]"), "{err}");
    }

    #[test]
    fn malformed_lines_carry_their_line_number() {
        assert_eq!(parse("[a\n").unwrap_err().line, 1);
        assert_eq!(parse("[a]\nnonsense\n").unwrap_err().line, 2);
        assert_eq!(parse("[a]\n9bad = 1\n").unwrap_err().line, 2);
        assert_eq!(parse("[B@d]\n").unwrap_err().line, 1);
    }

    #[test]
    fn render_round_trips() {
        let text = "[campaign]\nname = x\n\n[matrix]\nmode = sync, coupled:1+1\ndlb = off, on\n";
        let doc = parse(text).unwrap();
        assert_eq!(render(&doc), text);
        assert!(structurally_equal(&doc, &parse(&render(&doc)).unwrap()));
    }

    #[test]
    fn split_list_rejects_empty_elements() {
        let pair = RawPair { key: "mode".into(), value: "sync,,opt".into(), line: 7 };
        assert_eq!(split_list(&pair).unwrap_err().line, 7);
        let ok = RawPair { key: "mode".into(), value: " a , b ".into(), line: 1 };
        assert_eq!(split_list(&ok).unwrap(), vec!["a", "b"]);
    }
}
