//! The campaign aggregator: join per-cell run outcomes into one
//! comparable report, render it (human table, canonical JSON, optional
//! wall-clock section), and diff it against a baseline with regression
//! budgets.
//!
//! ## Determinism contract
//!
//! The canonical report — `render_json` and `render_table` — contains
//! **only deterministic quantities**: physics digests, logical-event
//! and iteration counts, censuses, and load-balance numbers computed
//! from logical per-rank work (element counts), all ordered by
//! expansion index. It is byte-identical across repeat runs and across
//! worker-pool sizes, which is what lets a blessed report serve as an
//! N-cell golden. Wall-clock quantities (total time, POP efficiencies
//! from the run's phase trace) live in the separate, explicitly
//! non-canonical [`CampaignReport::render_timing`] section.

use crate::matrix::Cell;
use crate::scenario::Budget;
use cfpd_core::{LogicalEvent, ScenarioOutcome};
use cfpd_telemetry::JsonWriter;
use cfpd_testkit::{parse_json, JsonValue};
use std::fmt::Write as _;

/// Deterministic metrics of one cell (see the determinism contract).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    pub id: String,
    pub axes: Vec<(String, String)>,
    /// FNV-1a digest of the cell's golden document.
    pub digest: u64,
    /// Logical event count.
    pub events: u64,
    /// Total solver iterations over all systems / the Poisson system.
    pub iters_total: u64,
    pub iters_poisson: u64,
    /// active / deposited / escaped / lost.
    pub census: [u64; 4],
    /// `f64::to_bits` of the deposited fraction.
    pub deposited_frac_bits: u64,
    /// `f64::to_bits` of the assembly load balance L = mean/max over
    /// per-rank step-0 element counts (1.0 when a mode has a single
    /// assembling rank).
    pub lb_assembly_bits: u64,
    /// Non-canonical wall-clock metrics (never rendered canonically).
    pub wall: WallMetrics,
}

/// Wall-clock metrics of one cell — the POP-style rollup of the run's
/// own phase trace. Excluded from the canonical report by design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallMetrics {
    pub total_time: f64,
    pub parallel_efficiency: f64,
    pub load_balance: f64,
    pub comm_efficiency: f64,
}

/// Extract [`CellMetrics`] from a finished run.
pub fn cell_metrics(cell: &Cell, out: &ScenarioOutcome) -> CellMetrics {
    let r = &out.result;
    let mut iters_total = 0u64;
    let mut iters_poisson = 0u64;
    let mut elems_per_rank: Vec<(usize, u64)> = Vec::new();
    for e in &r.logical {
        match e {
            LogicalEvent::Solve { system, iterations, .. } => {
                iters_total += *iterations as u64;
                if *system == 3 {
                    iters_poisson += *iterations as u64;
                }
            }
            LogicalEvent::Assembly { step: 0, rank, elements } => {
                elems_per_rank.push((*rank, *elements as u64));
            }
            _ => {}
        }
    }
    // Assembly load balance over logical work units (element counts):
    // L = mean/max, the paper's eq. 9 with deterministic inputs.
    let lb_assembly = if elems_per_rank.is_empty() {
        1.0
    } else {
        let sum: u64 = elems_per_rank.iter().map(|(_, e)| e).sum();
        let max = elems_per_rank.iter().map(|(_, e)| *e).max().unwrap_or(1).max(1);
        sum as f64 / (elems_per_rank.len() as f64 * max as f64)
    };
    let c = r.census;
    let total = c.active + c.deposited + c.escaped + c.lost;
    let deposited_frac =
        if total == 0 { 0.0 } else { c.deposited as f64 / total as f64 };

    // Wall-clock POP rollup of this run's own phase trace (the same
    // computation `cfpd report` cross-checks against cfpd-trace).
    let ts = cfpd_trace::trace_stats(&r.trace);
    let n = r.trace.num_ranks.max(1);
    let mut useful = vec![0.0f64; n];
    for e in &r.trace.events {
        if e.phase != cfpd_trace::Phase::MpiComm {
            useful[e.rank] += e.duration();
        }
    }
    let max_useful = useful.iter().cloned().fold(0.0f64, f64::max);
    let comm_e = if ts.wall_time > 0.0 && max_useful > 0.0 {
        max_useful / ts.wall_time
    } else {
        1.0
    };

    CellMetrics {
        id: cell.id.clone(),
        axes: cell.axes.clone(),
        digest: out.digest,
        events: r.logical.len() as u64,
        iters_total,
        iters_poisson,
        census: [c.active as u64, c.deposited as u64, c.escaped as u64, c.lost as u64],
        deposited_frac_bits: deposited_frac.to_bits(),
        lb_assembly_bits: lb_assembly.to_bits(),
        wall: WallMetrics {
            total_time: r.total_time,
            parallel_efficiency: ts.parallel_efficiency,
            load_balance: cfpd_trace::load_balance(&useful),
            comm_efficiency: comm_e,
        },
    }
}

/// A cell that panicked instead of completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    pub id: String,
    pub message: String,
}

/// The aggregate result of one campaign run, cells in expansion order.
#[derive(Debug)]
pub struct CampaignReport {
    pub name: String,
    pub cells: Vec<Result<CellMetrics, CellFailure>>,
}

fn hex(bits: u64) -> String {
    format!("{bits:016x}")
}

impl CampaignReport {
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.is_err()).count()
    }

    /// Canonical JSON document — the format baselines are stored in
    /// (`tests/golden/campaign_small.golden`) and [`compare`] consumes.
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("campaign").string(&self.name);
        w.key("cells").u64(self.cells.len() as u64);
        w.key("matrix").begin_array();
        for cell in &self.cells {
            w.begin_object();
            match cell {
                Ok(m) => {
                    w.key("id").string(&m.id);
                    w.key("axes").begin_object();
                    for (k, v) in &m.axes {
                        w.key(k).string(v);
                    }
                    w.end_object();
                    w.key("digest").string(&hex(m.digest));
                    w.key("events").u64(m.events);
                    w.key("iters_total").u64(m.iters_total);
                    w.key("iters_poisson").u64(m.iters_poisson);
                    w.key("census").begin_object();
                    for (name, v) in
                        ["active", "deposited", "escaped", "lost"].iter().zip(m.census)
                    {
                        w.key(name).u64(v);
                    }
                    w.end_object();
                    w.key("deposited_frac").string(&hex(m.deposited_frac_bits));
                    w.key("lb_assembly").string(&hex(m.lb_assembly_bits));
                }
                Err(f) => {
                    w.key("id").string(&f.id);
                    w.key("error").string(&f.message);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }

    /// Human-readable table of the deterministic metrics.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let id_w = self
            .cells
            .iter()
            .map(|c| match c {
                Ok(m) => m.id.len(),
                Err(f) => f.id.len(),
            })
            .max()
            .unwrap_or(4)
            .max(4);
        writeln!(
            out,
            "campaign {}: {} cells ({} failed)",
            self.name,
            self.cells.len(),
            self.failures()
        )
        .unwrap();
        writeln!(
            out,
            "{:<id_w$}  {:<16}  {:>6}  {:>6}  {:>24}  {:>10}",
            "cell", "digest", "events", "iters", "census a/d/e/l", "lb(asm)"
        )
        .unwrap();
        for cell in &self.cells {
            match cell {
                Ok(m) => {
                    writeln!(
                        out,
                        "{:<id_w$}  {:<16}  {:>6}  {:>6}  {:>24}  {:>10.6}",
                        m.id,
                        hex(m.digest),
                        m.events,
                        m.iters_total,
                        format!(
                            "{}/{}/{}/{}",
                            m.census[0], m.census[1], m.census[2], m.census[3]
                        ),
                        f64::from_bits(m.lb_assembly_bits),
                    )
                    .unwrap();
                }
                Err(f) => {
                    writeln!(out, "{:<id_w$}  FAILED: {}", f.id, f.message).unwrap();
                }
            }
        }
        out
    }

    /// Wall-clock section (explicitly non-canonical: differs between
    /// runs and pool sizes; never part of the byte-identity contract).
    pub fn render_timing(&self) -> String {
        let mut out = String::new();
        writeln!(out, "[timing — wall clock, non-canonical]").unwrap();
        for cell in self.cells.iter().flatten() {
            writeln!(
                out,
                "  {:<40}  total {:>8.3}s  PE {:.3}  LB {:.3}  CommE {:.3}",
                cell.id,
                cell.wall.total_time,
                cell.wall.parallel_efficiency,
                cell.wall.load_balance,
                cell.wall.comm_efficiency,
            )
            .unwrap();
        }
        out
    }
}

/// One row of the baseline comparison.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    pub id: String,
    pub digest_changed: bool,
    pub d_events: i64,
    pub d_iters: i64,
    pub d_census: [i64; 4],
    /// Over budget?
    pub regression: bool,
}

/// Result of comparing a current report against a baseline.
#[derive(Debug)]
pub struct DeltaReport {
    pub rows: Vec<DeltaRow>,
    /// Cell ids present in the baseline but not in the current run.
    pub missing: Vec<String>,
    /// Cell ids present in the current run but not in the baseline.
    pub extra: Vec<String>,
    /// Cells that failed to run (always regressions).
    pub failed: Vec<String>,
}

impl DeltaReport {
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regression).count()
            + self.missing.len()
            + self.extra.len()
            + self.failed.len()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for id in &self.missing {
            writeln!(out, "MISSING  {id} (in baseline, not in run)").unwrap();
        }
        for id in &self.extra {
            writeln!(out, "EXTRA    {id} (in run, not in baseline)").unwrap();
        }
        for id in &self.failed {
            writeln!(out, "FAILED   {id}").unwrap();
        }
        for r in &self.rows {
            let tag = if r.regression {
                "REGRESS"
            } else if r.digest_changed || r.d_events != 0 || r.d_iters != 0 {
                "drift  "
            } else {
                "ok     "
            };
            writeln!(
                out,
                "{tag}  {:<40}  digest {}  Δevents {:+}  Δiters {:+}  Δcensus {:+}/{:+}/{:+}/{:+}",
                r.id,
                if r.digest_changed { "CHANGED" } else { "equal" },
                r.d_events,
                r.d_iters,
                r.d_census[0],
                r.d_census[1],
                r.d_census[2],
                r.d_census[3],
            )
            .unwrap();
        }
        let n = self.regressions();
        writeln!(
            out,
            "verdict: {}",
            if n == 0 { "zero regressions".to_string() } else { format!("{n} regression(s)") }
        )
        .unwrap();
        out
    }
}

fn cell_map(doc: &JsonValue) -> Result<Vec<(String, JsonValue)>, String> {
    let cells = doc
        .get("matrix")
        .and_then(|m| m.as_array())
        .ok_or("report has no 'matrix' array")?;
    let mut out = Vec::new();
    for c in cells {
        let id = c
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or("matrix cell without 'id'")?
            .to_string();
        out.push((id, c.clone()));
    }
    Ok(out)
}

fn u64_field(cell: &JsonValue, key: &str) -> u64 {
    cell.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn census_of(cell: &JsonValue) -> [u64; 4] {
    let mut out = [0u64; 4];
    if let Some(c) = cell.get("census") {
        for (i, name) in ["active", "deposited", "escaped", "lost"].iter().enumerate() {
            out[i] = c.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
        }
    }
    out
}

/// Compare a current report (canonical JSON) against a baseline under
/// the given budget. `Err` means one of the documents is unreadable.
pub fn compare(current: &str, baseline: &str, budget: &Budget) -> Result<DeltaReport, String> {
    let cur = parse_json(current).map_err(|e| format!("current report: {e}"))?;
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur_cells = cell_map(&cur)?;
    let base_cells = cell_map(&base)?;

    let mut rows = Vec::new();
    let mut failed = Vec::new();
    let mut extra = Vec::new();
    for (id, c) in &cur_cells {
        if c.get("error").is_some() {
            failed.push(id.clone());
            continue;
        }
        let Some((_, b)) = base_cells.iter().find(|(bid, _)| bid == id) else {
            extra.push(id.clone());
            continue;
        };
        let digest_changed = c.get("digest").and_then(|v| v.as_str())
            != b.get("digest").and_then(|v| v.as_str());
        let d_events = u64_field(c, "events") as i64 - u64_field(b, "events") as i64;
        let d_iters =
            u64_field(c, "iters_total") as i64 - u64_field(b, "iters_total") as i64;
        let (cc, bc) = (census_of(c), census_of(b));
        let d_census = [
            cc[0] as i64 - bc[0] as i64,
            cc[1] as i64 - bc[1] as i64,
            cc[2] as i64 - bc[2] as i64,
            cc[3] as i64 - bc[3] as i64,
        ];
        let regression = (budget.digest_exact && digest_changed)
            || d_events.unsigned_abs() > budget.events
            || d_iters.unsigned_abs() > budget.iters
            || d_census.iter().any(|d| d.unsigned_abs() > budget.census);
        rows.push(DeltaRow { id: id.clone(), digest_changed, d_events, d_iters, d_census, regression });
    }
    let missing = base_cells
        .iter()
        .filter(|(id, _)| !cur_cells.iter().any(|(cid, _)| cid == id))
        .map(|(id, _)| id.clone())
        .collect();
    Ok(DeltaReport { rows, missing, extra, failed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json(digest: &str, iters: u64) -> String {
        format!(
            r#"{{"campaign":"t","cells":1,"matrix":[{{"id":"a","digest":"{digest}","events":10,"iters_total":{iters},"iters_poisson":4,"census":{{"active":5,"deposited":0,"escaped":0,"lost":0}}}}]}}"#
        )
    }

    #[test]
    fn identical_reports_compare_clean() {
        let a = report_json("00000000000000aa", 40);
        let d = compare(&a, &a, &Budget::default()).unwrap();
        assert_eq!(d.regressions(), 0);
        assert!(d.render().contains("zero regressions"));
    }

    #[test]
    fn digest_change_is_a_regression_unless_ignored() {
        let a = report_json("00000000000000aa", 40);
        let b = report_json("00000000000000bb", 40);
        let d = compare(&a, &b, &Budget::default()).unwrap();
        assert_eq!(d.regressions(), 1);
        let lax = Budget { digest_exact: false, ..Budget::default() };
        assert_eq!(compare(&a, &b, &lax).unwrap().regressions(), 0);
    }

    #[test]
    fn iteration_drift_respects_the_budget() {
        let a = report_json("00000000000000aa", 43);
        let b = report_json("00000000000000aa", 40);
        assert_eq!(compare(&a, &b, &Budget::default()).unwrap().regressions(), 1);
        let lax = Budget { iters: 3, ..Budget::default() };
        assert_eq!(compare(&a, &b, &lax).unwrap().regressions(), 0);
        let tight = Budget { iters: 2, ..Budget::default() };
        assert_eq!(compare(&a, &b, &tight).unwrap().regressions(), 1);
    }

    #[test]
    fn missing_and_extra_cells_are_regressions() {
        let a = report_json("00000000000000aa", 40);
        let empty = r#"{"campaign":"t","cells":0,"matrix":[]}"#;
        assert_eq!(compare(&a, empty, &Budget::default()).unwrap().regressions(), 1);
        assert_eq!(compare(empty, &a, &Budget::default()).unwrap().regressions(), 1);
    }
}
