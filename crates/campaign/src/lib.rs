//! # cfpd-campaign — the scenario campaign engine
//!
//! The paper's evaluation is a *matrix*: execution modes × node counts
//! × DLB on/off. This crate turns that matrix into a first-class,
//! declarative object:
//!
//! * [`dsl`] — a zero-dependency line-oriented `key = value` +
//!   `[section]` format with real error spans (line-accurate duplicate
//!   and malformed-value reports) and a canonical renderer that
//!   round-trips;
//! * [`scenario`] — the typed layer: the scenario key registry, the
//!   mapping onto [`cfpd_core::Scenario`], and regression budgets;
//! * [`matrix`] — the expander: cross-product of `[matrix]` axes in
//!   odometer order minus `[exclude]` constraints, each cell a fully
//!   seeded deterministic run with a canonical id;
//! * [`runner`] — a bounded in-process worker pool fanning the cells
//!   out through `cfpd_core::run_scenario` (the exact code path behind
//!   `cfpd golden`), results ordered by expansion index so reports are
//!   byte-identical across pool sizes;
//! * [`aggregate`] — the joiner: deterministic per-cell metrics
//!   (physics digest, event/iteration counts, census, logical load
//!   balance) into one comparable table/JSON report, plus the
//!   baseline diff with budgets that backs `cfpd campaign report`'s
//!   nonzero-exit regression gate.
//!
//! Because every expanded cell is a deterministic run, the engine
//! doubles as the repo's differential-testing harness: the blessed
//! report of `examples/campaigns/small.campaign`
//! (`tests/golden/campaign_small.golden`) pins the full
//! sync/coupled × default/opt × DLB-off/on matrix bit-for-bit, turning
//! the existing pair of goldens into an N-cell gate.
//!
//! The `cfpd` binary (including `cfpd campaign run|expand|report` and
//! `cfpd serve`) lives in `cfpd-serve`, the top of the crate DAG — the
//! serve scheduler depends on this crate's runner and aggregate layers,
//! so the CLI rides with it to avoid a dependency cycle.

pub mod aggregate;
pub mod dsl;
pub mod matrix;
pub mod runner;
pub mod scenario;

pub use aggregate::{
    cell_metrics, compare, CampaignReport, CellFailure, CellMetrics, DeltaReport, WallMetrics,
};
pub use dsl::{parse, render, DslError, RawDoc, RawPair, RawSection};
pub use matrix::{expand, full_matrix_size, Cell};
pub use runner::{run_bounded, run_campaign, run_campaign_with, run_cells, run_cells_with};
pub use scenario::{Axis, Budget, CampaignSpec, CellSettings, SCENARIO_KEYS};
