//! The typed layer over the raw DSL: campaign-level settings, the
//! scenario key registry, and the mapping from `key = value` pairs onto
//! [`cfpd_core::Scenario`].
//!
//! Every key usable in `[scenario]` is also usable as a `[matrix]` axis
//! — an axis is just "this key takes each of these values in turn".

use crate::dsl::{self, DslError, RawDoc, RawPair};
use cfpd_core::{ExecutionMode, RunOptions, Scenario, SimulationConfig};
use cfpd_solver::AssemblyStrategy;

/// Every scenario key the DSL understands, in documentation order.
pub const SCENARIO_KEYS: &[&str] = &[
    "ranks", "threads", "generations", "particles", "steps", "seed", "subdomains", "tol",
    "max_iters", "inflow", "dt", "mode", "strategy", "layout", "dlb", "trace", "dlb_policy",
    "hetero",
];

/// The mutable settings a scenario cell is built from: the simulation
/// configuration plus the run shape (`ranks`/`threads`) and the
/// [`RunOptions`] toggles the DSL exposes.
#[derive(Debug, Clone)]
pub struct CellSettings {
    pub ranks: usize,
    pub threads: usize,
    pub config: SimulationConfig,
    pub dlb: bool,
    pub trace: bool,
    pub dlb_policy: cfpd_dlb::DlbPolicy,
    /// Heterogeneity profile name (`hetero = mn4_thunder`); resolved to
    /// a [`cfpd_simmpi::RankProfile`] (seeded with the scenario seed)
    /// when the cell materializes.
    pub hetero: Option<String>,
}

impl Default for CellSettings {
    /// The defaults mirror `cfpd golden`: 2 ranks, one thread each,
    /// `SimulationConfig::default()`, everything optional off.
    fn default() -> CellSettings {
        CellSettings {
            ranks: 2,
            threads: 1,
            config: SimulationConfig::default(),
            dlb: false,
            trace: false,
            dlb_policy: cfpd_dlb::DlbPolicy::default(),
            hetero: None,
        }
    }
}

fn parse_num<T: std::str::FromStr>(pair: &RawPair, what: &str) -> Result<T, DslError> {
    pair.value.parse().map_err(|_| {
        DslError::at(pair.line, format!("invalid {what} for {:?}: {:?}", pair.key, pair.value))
    })
}

fn parse_switch(pair: &RawPair) -> Result<bool, DslError> {
    match pair.value.as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(DslError::at(
            pair.line,
            format!("invalid value {other:?} for {:?} (expected: off, on)", pair.key),
        )),
    }
}

/// Parse `sync` or `coupled:F+P` (e.g. `coupled:1+1`).
fn parse_mode(pair: &RawPair) -> Result<ExecutionMode, DslError> {
    let v = pair.value.as_str();
    if v == "sync" {
        return Ok(ExecutionMode::Synchronous);
    }
    if let Some(split) = v.strip_prefix("coupled:") {
        if let Some((f, p)) = split.split_once('+') {
            let fluid: usize = f.trim().parse().unwrap_or(0);
            let particles: usize = p.trim().parse().unwrap_or(0);
            if fluid >= 1 && particles >= 1 {
                return Ok(ExecutionMode::Coupled { fluid, particles });
            }
        }
    }
    Err(DslError::at(
        pair.line,
        format!("invalid mode {v:?} (expected: sync, coupled:F+P with F,P >= 1)"),
    ))
}

impl CellSettings {
    /// Apply one `key = value` pair. Unknown keys and malformed values
    /// are errors anchored to the pair's source line.
    pub fn apply(&mut self, pair: &RawPair) -> Result<(), DslError> {
        match pair.key.as_str() {
            "ranks" => {
                self.ranks = parse_num(pair, "rank count")?;
                if self.ranks == 0 {
                    return Err(DslError::at(pair.line, "ranks must be >= 1"));
                }
            }
            "threads" => {
                self.threads = parse_num(pair, "thread count")?;
                if self.threads == 0 {
                    return Err(DslError::at(pair.line, "threads must be >= 1"));
                }
            }
            "generations" => self.config.airway.generations = parse_num(pair, "generation count")?,
            "particles" => self.config.num_particles = parse_num(pair, "particle count")?,
            "steps" => {
                self.config.steps = parse_num(pair, "step count")?;
                if self.config.steps == 0 {
                    return Err(DslError::at(pair.line, "steps must be >= 1"));
                }
            }
            "seed" => self.config.seed = parse_num(pair, "seed")?,
            "subdomains" => self.config.subdomains_per_rank = parse_num(pair, "subdomain count")?,
            "tol" => self.config.solver_tol = parse_num(pair, "tolerance")?,
            "max_iters" => self.config.solver_max_iters = parse_num(pair, "iteration cap")?,
            "inflow" => self.config.inflow_speed = parse_num(pair, "inflow speed")?,
            "dt" => self.config.dt = parse_num(pair, "time step")?,
            "mode" => self.config.mode = parse_mode(pair)?,
            "strategy" => {
                self.config.strategy = match pair.value.as_str() {
                    "atomics" => AssemblyStrategy::Atomics,
                    "coloring" => AssemblyStrategy::Coloring,
                    "multidep" => AssemblyStrategy::Multidep,
                    "serial" => AssemblyStrategy::Serial,
                    other => {
                        return Err(DslError::at(
                            pair.line,
                            format!(
                                "invalid strategy {other:?} (expected: atomics, coloring, \
                                 multidep, serial)"
                            ),
                        ))
                    }
                }
            }
            "layout" => {
                // One precedence helper for flag/DSL vs CFPD_LAYOUT env:
                // an explicit value always beats the environment.
                self.config.layout = cfpd_core::resolve_layout(Some(pair.value.as_str()))
                    .map_err(|e| DslError::at(pair.line, e))?;
            }
            "dlb" => self.dlb = parse_switch(pair)?,
            "trace" => self.trace = parse_switch(pair)?,
            "dlb_policy" => {
                self.dlb_policy =
                    cfpd_dlb::DlbPolicy::parse(pair.value.as_str()).ok_or_else(|| {
                        DslError::at(
                            pair.line,
                            format!(
                                "invalid dlb_policy {:?} (expected: reactive, lewi, predictive)",
                                pair.value
                            ),
                        )
                    })?
            }
            "hetero" => {
                // Validate the name now (seed 0 probe) so a typo fails
                // at parse time with the offending line, not mid-run.
                cfpd_hetero::profile_by_name(pair.value.as_str(), 0)
                    .map_err(|e| DslError::at(pair.line, e))?;
                self.hetero = Some(pair.value.clone());
            }
            other => {
                return Err(DslError::at(
                    pair.line,
                    format!("unknown scenario key {other:?} (known: {})", SCENARIO_KEYS.join(", ")),
                ))
            }
        }
        Ok(())
    }

    /// Materialize the run request.
    pub fn to_scenario(&self) -> Scenario {
        let hetero = self.hetero.as_ref().map(|name| {
            cfpd_hetero::profile_by_name(name, self.config.seed)
                .expect("hetero name validated at parse time")
        });
        Scenario {
            config: self.config.clone(),
            ranks: self.ranks,
            threads: self.threads,
            opts: RunOptions {
                dlb: self.dlb,
                trace: self.trace,
                policy: self.dlb_policy,
                hetero,
                ..Default::default()
            },
        }
    }
}

/// Regression budgets for the baseline comparison (`[budget]`): how far
/// a metric may drift from the baseline before `campaign report` exits
/// nonzero. The default budget is zero everywhere — any drift is a
/// regression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// `digest = exact` (default): any physics-digest change is a
    /// regression. `digest = ignore`: digests are reported but not gated.
    pub digest_exact: bool,
    /// Allowed |delta| in total solver iterations per cell.
    pub iters: u64,
    /// Allowed |delta| per census field per cell.
    pub census: u64,
    /// Allowed |delta| in logical event count per cell.
    pub events: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget { digest_exact: true, iters: 0, census: 0, events: 0 }
    }
}

/// One matrix axis: a scenario key and the values it sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    pub key: String,
    pub values: Vec<String>,
    pub line: usize,
}

/// A fully-validated campaign: base settings, axes, excludes, budget.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub name: String,
    /// Worker-pool size for `campaign run` (overridable with `--jobs`).
    pub jobs: usize,
    /// `[scenario]` pairs, kept raw so cells re-apply them in order.
    pub base: Vec<RawPair>,
    pub axes: Vec<Axis>,
    /// Each `[exclude]` section is one conjunction of `key = value`
    /// constraints; a cell matching every constraint of any group is
    /// dropped from the matrix.
    pub excludes: Vec<Vec<RawPair>>,
    pub budget: Budget,
}

impl CampaignSpec {
    /// Parse and validate a campaign document.
    pub fn from_text(text: &str) -> Result<CampaignSpec, DslError> {
        let doc = dsl::parse(text)?;
        CampaignSpec::from_doc(&doc)
    }

    /// Validate a parsed document into a typed campaign.
    pub fn from_doc(doc: &RawDoc) -> Result<CampaignSpec, DslError> {
        for s in &doc.sections {
            if !matches!(s.name.as_str(), "campaign" | "scenario" | "matrix" | "exclude" | "budget")
            {
                return Err(DslError::at(
                    s.line,
                    format!(
                        "unknown section [{}] (known: campaign, scenario, matrix, exclude, budget)",
                        s.name
                    ),
                ));
            }
        }

        let header = doc
            .unique_section("campaign")?
            .ok_or_else(|| DslError::at(0, "missing [campaign] section"))?;
        let mut name = None;
        let mut jobs = 4usize;
        for p in &header.pairs {
            match p.key.as_str() {
                "name" => name = Some(p.value.clone()),
                "jobs" => {
                    jobs = parse_num(p, "job count")?;
                    if jobs == 0 {
                        return Err(DslError::at(p.line, "jobs must be >= 1"));
                    }
                }
                other => {
                    return Err(DslError::at(
                        p.line,
                        format!("unknown [campaign] key {other:?} (known: name, jobs)"),
                    ))
                }
            }
        }
        let name =
            name.ok_or_else(|| DslError::at(header.line, "missing 'name' in [campaign]"))?;

        // Base settings: validate every pair by applying it once.
        let base: Vec<RawPair> = match doc.unique_section("scenario")? {
            Some(s) => s.pairs.clone(),
            None => Vec::new(),
        };
        let mut probe = CellSettings::default();
        for p in &base {
            probe.apply(p)?;
        }

        // Axes: list-valued pairs; every value must parse, no duplicates.
        let mut axes = Vec::new();
        if let Some(matrix) = doc.unique_section("matrix")? {
            for p in &matrix.pairs {
                let values = dsl::split_list(p)?;
                for (i, v) in values.iter().enumerate() {
                    if values[..i].contains(v) {
                        return Err(DslError::at(
                            p.line,
                            format!("duplicate axis value {v:?} for {:?}", p.key),
                        ));
                    }
                    let mut scratch = probe.clone();
                    scratch.apply(&RawPair {
                        key: p.key.clone(),
                        value: v.clone(),
                        line: p.line,
                    })?;
                }
                axes.push(Axis { key: p.key.clone(), values, line: p.line });
            }
        }

        // Excludes: every key must be an axis, every value one of the
        // axis's declared values (an exclude that can never match is a
        // campaign bug, not a no-op).
        let mut excludes = Vec::new();
        for s in doc.sections_named("exclude") {
            if s.pairs.is_empty() {
                return Err(DslError::at(s.line, "[exclude] section with no constraints"));
            }
            for p in &s.pairs {
                let Some(axis) = axes.iter().find(|a| a.key == p.key) else {
                    return Err(DslError::at(
                        p.line,
                        format!("exclude key {:?} is not a [matrix] axis", p.key),
                    ));
                };
                if !axis.values.contains(&p.value) {
                    return Err(DslError::at(
                        p.line,
                        format!(
                            "exclude value {:?} is not among the declared values of axis {:?}",
                            p.value, p.key
                        ),
                    ));
                }
            }
            excludes.push(s.pairs.clone());
        }

        // Budget.
        let mut budget = Budget::default();
        if let Some(s) = doc.unique_section("budget")? {
            for p in &s.pairs {
                match p.key.as_str() {
                    "digest" => {
                        budget.digest_exact = match p.value.as_str() {
                            "exact" => true,
                            "ignore" => false,
                            other => {
                                return Err(DslError::at(
                                    p.line,
                                    format!(
                                        "invalid value {other:?} for digest \
                                         (expected: exact, ignore)"
                                    ),
                                ))
                            }
                        }
                    }
                    "iters" => budget.iters = parse_num(p, "iteration budget")?,
                    "census" => budget.census = parse_num(p, "census budget")?,
                    "events" => budget.events = parse_num(p, "event budget")?,
                    other => {
                        return Err(DslError::at(
                            p.line,
                            format!(
                                "unknown [budget] key {other:?} \
                                 (known: digest, iters, census, events)"
                            ),
                        ))
                    }
                }
            }
        }

        Ok(CampaignSpec { name, jobs, base, axes, excludes, budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_solver::LayoutPlan;

    fn pair(key: &str, value: &str) -> RawPair {
        RawPair { key: key.into(), value: value.into(), line: 1 }
    }

    #[test]
    fn apply_maps_keys_onto_the_config() {
        let mut s = CellSettings::default();
        for (k, v) in [
            ("ranks", "3"),
            ("generations", "1"),
            ("particles", "40"),
            ("steps", "2"),
            ("seed", "99"),
            ("mode", "coupled:2+1"),
            ("layout", "opt"),
            ("dlb", "on"),
        ] {
            s.apply(&pair(k, v)).unwrap();
        }
        assert_eq!(s.ranks, 3);
        assert_eq!(s.config.num_particles, 40);
        assert_eq!(s.config.mode, ExecutionMode::Coupled { fluid: 2, particles: 1 });
        assert_eq!(s.config.layout, LayoutPlan::optimized());
        assert!(s.dlb);
    }

    #[test]
    fn hetero_and_policy_keys_round_trip() {
        let mut s = CellSettings::default();
        s.apply(&pair("hetero", "mn4_thunder")).unwrap();
        s.apply(&pair("dlb_policy", "predictive")).unwrap();
        s.apply(&pair("dlb", "on")).unwrap();
        s.apply(&pair("seed", "77")).unwrap();
        let sc = s.to_scenario();
        assert_eq!(sc.opts.policy, cfpd_dlb::DlbPolicy::Predictive);
        let profile = sc.opts.hetero.expect("profile resolved");
        assert_eq!(profile.name, "mn4_thunder");
        assert_eq!(profile.seed, 77, "profile seeded with the scenario seed");

        // Unknown names fail at parse time, anchored to the line, and
        // name both the offender and the accepted set.
        let p = RawPair { key: "hetero".into(), value: "warp9".into(), line: 31 };
        let err = CellSettings::default().apply(&p).unwrap_err();
        assert_eq!(err.line, 31);
        assert!(err.message.contains("warp9") && err.message.contains("mn4_thunder"), "{err}");
        let p = RawPair { key: "dlb_policy".into(), value: "psychic".into(), line: 8 };
        let err = CellSettings::default().apply(&p).unwrap_err();
        assert_eq!(err.line, 8);
        assert!(err.message.contains("predictive"), "{err}");
    }

    #[test]
    fn bad_values_carry_the_source_line() {
        let mut s = CellSettings::default();
        let p = RawPair { key: "mode".into(), value: "coupled:0+1".into(), line: 12 };
        assert_eq!(s.apply(&p).unwrap_err().line, 12);
        let p = RawPair { key: "bogus".into(), value: "1".into(), line: 9 };
        assert_eq!(s.apply(&p).unwrap_err().line, 9);
    }

    #[test]
    fn campaign_requires_name_and_validates_excludes() {
        let err = CampaignSpec::from_text("[campaign]\njobs = 2\n").unwrap_err();
        assert!(err.message.contains("missing 'name'"), "{err}");

        let err = CampaignSpec::from_text(
            "[campaign]\nname = x\n[matrix]\ndlb = off, on\n[exclude]\nlayout = opt\n",
        )
        .unwrap_err();
        assert!(err.message.contains("not a [matrix] axis"), "{err}");

        let err = CampaignSpec::from_text(
            "[campaign]\nname = x\n[matrix]\ndlb = off, on\n[exclude]\ndlb = maybe\n",
        )
        .unwrap_err();
        assert!(err.message.contains("not among the declared values"), "{err}");
    }
}
