//! The campaign runner: fan the expanded matrix out across a bounded
//! in-process worker pool.
//!
//! Each worker claims cells from a shared atomic cursor and runs them
//! through [`cfpd_core::run_scenario`] — the same entry point `cfpd
//! golden` uses — so a campaign cell *is* a golden run. Results land in
//! a slot indexed by the cell's expansion index, which makes the
//! aggregate report independent of completion order and therefore of
//! the pool size: `jobs = 1`, `2` and `8` produce byte-identical
//! reports (pinned by the concurrency-determinism test).
//!
//! A panicking cell is caught per-worker (`catch_unwind`) and reported
//! as a failed cell; it never takes the campaign down with it.

use crate::aggregate::{cell_metrics, CampaignReport, CellFailure, CellMetrics};
use crate::matrix::{expand, Cell};
use crate::scenario::CampaignSpec;
use cfpd_core::run_scenario;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one cell, shielding the caller from panics.
fn run_cell(cell: &Cell) -> Result<CellMetrics, CellFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_scenario(&cell.scenario))) {
        Ok(out) => Ok(cell_metrics(cell, &out)),
        Err(payload) => {
            Err(CellFailure { id: cell.id.clone(), message: panic_message(payload) })
        }
    }
}

/// Run every cell of `cells` over a pool of `jobs` workers; results in
/// expansion order regardless of completion order.
pub fn run_cells(name: &str, cells: &[Cell], jobs: usize) -> CampaignReport {
    let jobs = jobs.max(1).min(cells.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CellMetrics, CellFailure>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();

    if jobs <= 1 {
        // Inline fast path: no worker threads for a serial campaign.
        for (cell, slot) in cells.iter().zip(&slots) {
            *slot.lock().unwrap() = Some(run_cell(cell));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = run_cell(cell);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
    }

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every cell slot filled"))
        .collect();
    CampaignReport { name: name.to_string(), cells: results }
}

/// Expand and run a whole campaign. `jobs` overrides the campaign's
/// own `jobs` setting when `Some`.
pub fn run_campaign(spec: &CampaignSpec, jobs: Option<usize>) -> CampaignReport {
    let cells = expand(spec).expect("spec validated at parse time");
    run_cells(&spec.name, &cells, jobs.unwrap_or(spec.jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
[campaign]
name = unit
jobs = 2

[scenario]
ranks = 2
generations = 1
particles = 40
steps = 1

[matrix]
layout = default, opt
";

    #[test]
    fn pool_sizes_produce_identical_reports() {
        let spec = CampaignSpec::from_text(TINY).unwrap();
        let cells = expand(&spec).unwrap();
        let serial = run_cells(&spec.name, &cells, 1);
        let wide = run_cells(&spec.name, &cells, 4);
        assert_eq!(serial.render_json(), wide.render_json());
        assert_eq!(serial.failures(), 0);
    }
}
