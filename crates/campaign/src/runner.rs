//! The campaign runner: fan the expanded matrix out across a bounded
//! in-process worker pool.
//!
//! Each worker claims cells from a shared atomic cursor and runs them
//! through [`cfpd_core::run_scenario`] — the same entry point `cfpd
//! golden` uses — so a campaign cell *is* a golden run. Results land in
//! a slot indexed by the cell's expansion index, which makes the
//! aggregate report independent of completion order and therefore of
//! the pool size: `jobs = 1`, `2` and `8` produce byte-identical
//! reports (pinned by the concurrency-determinism test).
//!
//! A panicking cell is caught per-worker (`catch_unwind`) and reported
//! as a failed cell; it never takes the campaign down with it. With a
//! per-cell wall-clock budget (`--cell-timeout`), a *stuck* cell is
//! likewise contained: the worker abandons it after the budget and
//! records `failed(timeout)` instead of wedging the whole campaign.

use crate::aggregate::{cell_metrics, CampaignReport, CellFailure, CellMetrics};
use crate::matrix::{expand, Cell};
use crate::scenario::CampaignSpec;
use cfpd_core::run_scenario;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one cell, shielding the caller from panics.
fn run_cell(cell: &Cell) -> Result<CellMetrics, CellFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_scenario(&cell.scenario))) {
        Ok(out) => Ok(cell_metrics(cell, &out)),
        Err(payload) => {
            Err(CellFailure { id: cell.id.clone(), message: panic_message(payload) })
        }
    }
}

/// Run `f` with an optional wall-clock budget. `None` on timeout.
///
/// The budgeted path runs `f` on a freshly spawned thread and waits on
/// a channel; if the budget elapses first the thread is *abandoned* —
/// Rust has no safe way to kill it — so a truly stuck computation keeps
/// its detached thread until process exit. That is the documented (and
/// bounded: one thread per timed-out cell) cost of not wedging the
/// caller. Without a budget `f` runs inline on the caller's thread.
///
/// Shared by the campaign pool's per-cell timeout and the `cfpd serve`
/// scheduler's per-segment timeout.
pub fn run_bounded<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
    budget: Option<Duration>,
) -> Option<T> {
    let Some(budget) = budget else { return Some(f()) };
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(budget).ok()
}

/// [`run_cell`] under an optional wall-clock budget; a timed-out cell
/// becomes a `failed(timeout: ...)` report row.
fn run_cell_bounded(
    cell: &Cell,
    timeout: Option<Duration>,
) -> Result<CellMetrics, CellFailure> {
    let owned = cell.clone();
    match run_bounded(move || run_cell(&owned), timeout) {
        Some(result) => result,
        None => Err(CellFailure {
            id: cell.id.clone(),
            message: format!(
                "timeout: cell exceeded its {:.3}s wall-clock budget (worker abandoned)",
                timeout.expect("timeout fired").as_secs_f64()
            ),
        }),
    }
}

/// Run every cell of `cells` over a pool of `jobs` workers; results in
/// expansion order regardless of completion order.
pub fn run_cells(name: &str, cells: &[Cell], jobs: usize) -> CampaignReport {
    run_cells_with(name, cells, jobs, None)
}

/// [`run_cells`] with an optional per-cell wall-clock timeout.
pub fn run_cells_with(
    name: &str,
    cells: &[Cell],
    jobs: usize,
    cell_timeout: Option<Duration>,
) -> CampaignReport {
    let jobs = jobs.max(1).min(cells.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CellMetrics, CellFailure>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();

    if jobs <= 1 && cell_timeout.is_none() {
        // Inline fast path: no worker threads for a serial campaign.
        for (cell, slot) in cells.iter().zip(&slots) {
            *slot.lock().unwrap() = Some(run_cell(cell));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = run_cell_bounded(cell, cell_timeout);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
    }

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every cell slot filled"))
        .collect();
    CampaignReport { name: name.to_string(), cells: results }
}

/// Expand and run a whole campaign. `jobs` overrides the campaign's
/// own `jobs` setting when `Some`.
pub fn run_campaign(spec: &CampaignSpec, jobs: Option<usize>) -> CampaignReport {
    run_campaign_with(spec, jobs, None)
}

/// [`run_campaign`] with an optional per-cell wall-clock timeout.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    jobs: Option<usize>,
    cell_timeout: Option<Duration>,
) -> CampaignReport {
    let cells = expand(spec).expect("spec validated at parse time");
    run_cells_with(&spec.name, &cells, jobs.unwrap_or(spec.jobs), cell_timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
[campaign]
name = unit
jobs = 2

[scenario]
ranks = 2
generations = 1
particles = 40
steps = 1

[matrix]
layout = default, opt
";

    #[test]
    fn pool_sizes_produce_identical_reports() {
        let spec = CampaignSpec::from_text(TINY).unwrap();
        let cells = expand(&spec).unwrap();
        let serial = run_cells(&spec.name, &cells, 1);
        let wide = run_cells(&spec.name, &cells, 4);
        assert_eq!(serial.render_json(), wide.render_json());
        assert_eq!(serial.failures(), 0);
    }

    #[test]
    fn generous_timeout_changes_nothing() {
        let spec = CampaignSpec::from_text(TINY).unwrap();
        let cells = expand(&spec).unwrap();
        let plain = run_cells(&spec.name, &cells, 2);
        let budgeted =
            run_cells_with(&spec.name, &cells, 2, Some(Duration::from_secs(600)));
        assert_eq!(plain.render_json(), budgeted.render_json());
    }

    #[test]
    fn stuck_computation_times_out_without_wedging_the_caller() {
        // The budget mechanism itself, without needing a stuck solver:
        // a sleeping closure must be abandoned once the budget elapses.
        let out = run_bounded(
            || {
                std::thread::sleep(Duration::from_secs(30));
                42
            },
            Some(Duration::from_millis(50)),
        );
        assert_eq!(out, None, "stuck closure must time out");
        let ok = run_bounded(|| 7, Some(Duration::from_secs(30)));
        assert_eq!(ok, Some(7));
        let inline = run_bounded(|| 9, None);
        assert_eq!(inline, Some(9));
    }
}
