//! K-way graph partitioning by greedy graph growing with boundary
//! refinement — the workspace's stand-in for Metis (used by the paper
//! both for MPI domain decomposition and for carving each MPI domain
//! into the OpenMP-task subdomains of the multidependences scheme).

use crate::graph::Graph;
use std::collections::BinaryHeap;

/// Result of a k-way partition: `parts[v]` is the part of vertex `v`.
#[derive(Debug, Clone)]
pub struct Partition {
    pub parts: Vec<u32>,
    pub num_parts: usize,
}

impl Partition {
    /// Weight of each part.
    pub fn part_weights(&self, g: &Graph) -> Vec<f64> {
        let mut w = vec![0.0; self.num_parts];
        for (v, &p) in self.parts.iter().enumerate() {
            w[p as usize] += g.vwgt[v];
        }
        w
    }

    /// Load-balance metric over parts, matching the paper's Lₙ (eq. 9):
    /// `sum(w_i) / (n * max(w_i))`. 1.0 = perfectly balanced.
    pub fn load_balance(&self, g: &Graph) -> f64 {
        let w = self.part_weights(g);
        let max = w.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            return 1.0;
        }
        w.iter().sum::<f64>() / (self.num_parts as f64 * max)
    }

    /// Number of cut edges (each undirected edge counted once).
    pub fn edge_cut(&self, g: &Graph) -> usize {
        let mut cut = 0;
        for v in 0..g.num_vertices() {
            for &w in g.neighbors(v) {
                if (w as usize) > v && self.parts[w as usize] != self.parts[v] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Vertex lists per part (indices sorted ascending, preserving the
    /// generator's spatial locality within each part).
    pub fn part_members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.parts.iter().enumerate() {
            members[p as usize].push(v as u32);
        }
        members
    }
}

/// Partition `g` into `k` parts.
///
/// Algorithm: greedy graph growing (Karypis-Kumar style initial phase) —
/// parts are grown one at a time by a weight-bounded BFS from a
/// pseudo-peripheral seed, preferring frontier vertices with the most
/// neighbors already in the growing part (minimizes perimeter) — followed
/// by `refine_passes` of greedy boundary refinement that moves boundary
/// vertices to reduce edge cut without violating a 3 % balance tolerance.
pub fn partition_kway(g: &Graph, k: usize, refine_passes: usize) -> Partition {
    assert!(k >= 1, "k must be >= 1");
    let n = g.num_vertices();
    let mut parts = vec![u32::MAX; n];
    if k == 1 || n == 0 {
        return Partition { parts: vec![0; n], num_parts: k };
    }

    let total = g.total_weight();
    let mut remaining = total;
    let mut seed = g.pseudo_peripheral(0);

    for p in 0..k as u32 {
        let parts_left = k as u32 - p;
        let target = remaining / parts_left as f64;
        if p == k as u32 - 1 {
            // Last part takes everything left.
            for v in 0..n {
                if parts[v] == u32::MAX {
                    parts[v] = p;
                }
            }
            break;
        }
        // Grow from `seed`: max-heap on number of neighbors already
        // inside the part (ties broken by insertion order via a counter
        // for determinism).
        let mut heap: BinaryHeap<(i64, std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
        let mut counter = 0u64;
        let mut grown = 0.0f64;
        if parts[seed] != u32::MAX {
            // Seed already taken (disconnected leftovers): pick any free.
            seed = (0..n).find(|&v| parts[v] == u32::MAX).unwrap();
        }
        heap.push((0, std::cmp::Reverse(counter), seed as u32));
        while grown < target {
            let v = loop {
                match heap.pop() {
                    Some((_, _, v)) if parts[v as usize] == u32::MAX => break Some(v),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let v = match v {
                Some(v) => v as usize,
                // Frontier exhausted (disconnected component): restart
                // from any unassigned vertex.
                None => match (0..n).find(|&v| parts[v] == u32::MAX) {
                    Some(v) => v,
                    None => break,
                },
            };
            parts[v] = p;
            grown += g.vwgt[v];
            for &w in g.neighbors(v) {
                if parts[w as usize] == u32::MAX {
                    let gain = g
                        .neighbors(w as usize)
                        .iter()
                        .filter(|&&x| parts[x as usize] == p)
                        .count() as i64;
                    counter += 1;
                    heap.push((gain, std::cmp::Reverse(counter), w));
                }
            }
        }
        remaining -= grown;
        // Next seed: far from the just-grown region.
        seed = g.pseudo_peripheral(seed);
    }

    let mut part = Partition { parts, num_parts: k };
    refine(g, &mut part, refine_passes);
    part
}

/// Greedy boundary refinement: move boundary vertices to the neighboring
/// part where they have strictly more connections, if the move keeps the
/// destination part within `1 + TOL` of the average weight and does not
/// empty the source part.
fn refine(g: &Graph, part: &mut Partition, passes: usize) {
    const TOL: f64 = 0.03;
    let n = g.num_vertices();
    let k = part.num_parts;
    let avg = g.total_weight() / k as f64;
    let max_w = avg * (1.0 + TOL);
    let mut weights = part.part_weights(g);

    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let pv = part.parts[v] as usize;
            // Count connections per neighboring part.
            let mut best_part = pv;
            let mut here = 0usize;
            let mut best = 0usize;
            let mut counts: Vec<(usize, usize)> = Vec::with_capacity(4);
            for &w in g.neighbors(v) {
                let pw = part.parts[w as usize] as usize;
                if pw == pv {
                    here += 1;
                    continue;
                }
                match counts.iter_mut().find(|(p, _)| *p == pw) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((pw, 1)),
                }
            }
            for (p, c) in counts {
                if c > best {
                    best = c;
                    best_part = p;
                }
            }
            if best_part != pv
                && best > here
                && weights[best_part] + g.vwgt[v] <= max_w
                && weights[pv] - g.vwgt[v] > 0.0
            {
                part.parts[v] = best_part as u32;
                weights[pv] -= g.vwgt[v];
                weights[best_part] += g.vwgt[v];
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grid graph of `nx * ny` vertices (4-neighborhood).
    fn grid(nx: usize, ny: usize) -> Graph {
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x > 0 {
                    adjncy.push(idx(x - 1, y));
                }
                if x + 1 < nx {
                    adjncy.push(idx(x + 1, y));
                }
                if y > 0 {
                    adjncy.push(idx(x, y - 1));
                }
                if y + 1 < ny {
                    adjncy.push(idx(x, y + 1));
                }
                xadj.push(adjncy.len() as u32);
            }
        }
        Graph { xadj, adjncy, vwgt: vec![1.0; nx * ny] }
    }

    #[test]
    fn every_vertex_assigned_exactly_one_part() {
        let g = grid(10, 10);
        let p = partition_kway(&g, 4, 4);
        assert_eq!(p.parts.len(), 100);
        assert!(p.parts.iter().all(|&x| (x as usize) < 4));
    }

    #[test]
    fn parts_reasonably_balanced() {
        let g = grid(16, 16);
        let p = partition_kway(&g, 8, 6);
        let lb = p.load_balance(&g);
        assert!(lb > 0.85, "load balance {lb} too poor");
    }

    #[test]
    fn edge_cut_much_smaller_than_total_edges() {
        let g = grid(20, 20);
        let p = partition_kway(&g, 4, 6);
        let total_edges = g.adjncy.len() / 2;
        let cut = p.edge_cut(&g);
        assert!(
            cut * 4 < total_edges,
            "cut {cut} should be far below {total_edges}"
        );
    }

    #[test]
    fn single_part_trivial() {
        let g = grid(5, 5);
        let p = partition_kway(&g, 1, 3);
        assert!(p.parts.iter().all(|&x| x == 0));
        assert_eq!(p.load_balance(&g), 1.0);
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn k_equals_n_each_vertex_its_own_part() {
        let g = grid(3, 3);
        let p = partition_kway(&g, 9, 2);
        let w = p.part_weights(&g);
        // All parts non-empty.
        assert!(w.iter().all(|&x| x > 0.0), "{w:?}");
    }

    #[test]
    fn weighted_balance_accounts_for_weights() {
        // Two heavy vertices must not land in the same part when k = 2
        // and everything else is light.
        let mut g = grid(8, 8);
        g.vwgt[0] = 20.0;
        g.vwgt[63] = 20.0;
        let p = partition_kway(&g, 2, 6);
        assert_ne!(p.parts[0], p.parts[63]);
        assert!(p.load_balance(&g) > 0.8);
    }

    #[test]
    fn handles_disconnected_graph() {
        // Two disjoint triangles.
        let g = Graph {
            xadj: vec![0, 2, 4, 6, 8, 10, 12],
            adjncy: vec![1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4],
            vwgt: vec![1.0; 6],
        };
        let p = partition_kway(&g, 2, 2);
        assert!(p.parts.iter().all(|&x| x < 2));
        let w = p.part_weights(&g);
        assert!(w[0] > 0.0 && w[1] > 0.0);
    }

    #[test]
    fn part_members_partition_the_vertex_set() {
        let g = grid(7, 9);
        let p = partition_kway(&g, 5, 3);
        let members = p.part_members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 63);
        let mut seen = vec![false; 63];
        for m in &members {
            for &v in m {
                assert!(!seen[v as usize], "vertex {v} in two parts");
                seen[v as usize] = true;
            }
        }
    }
}
