//! Weighted undirected graphs in CSR form (the Metis input format).

use cfpd_mesh::Csr;

/// An undirected graph with vertex weights, stored CSR-style.
///
/// For mesh partitioning the vertices are elements and edges connect
/// elements sharing at least one mesh node; vertex weights are the
/// per-element assembly cost (heterogeneous across the hybrid element
/// types, which is one organic source of the paper's assembly-phase
/// imbalance).
#[derive(Debug, Clone)]
pub struct Graph {
    pub xadj: Vec<u32>,
    pub adjncy: Vec<u32>,
    pub vwgt: Vec<f64>,
}

impl Graph {
    /// Build from a CSR adjacency and per-vertex weights.
    pub fn from_csr(adj: &Csr, vwgt: Vec<f64>) -> Graph {
        assert_eq!(adj.len(), vwgt.len(), "one weight per vertex");
        Graph { xadj: adj.offsets.clone(), adjncy: adj.targets.clone(), vwgt }
    }

    /// Build with unit weights.
    pub fn from_csr_unit(adj: &Csr) -> Graph {
        let n = adj.len();
        Graph::from_csr(adj, vec![1.0; n])
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len().saturating_sub(1)
    }

    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }

    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// A vertex far from `start` (last vertex reached by BFS) — a cheap
    /// pseudo-peripheral vertex, used to seed partition growth.
    pub fn pseudo_peripheral(&self, start: usize) -> usize {
        let n = self.num_vertices();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start as u32);
        seen[start] = true;
        let mut last = start as u32;
        while let Some(v) = queue.pop_front() {
            last = v;
            for &w in self.neighbors(v as usize) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        last as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    pub(crate) fn path4() -> Graph {
        Graph {
            xadj: vec![0, 1, 3, 5, 6],
            adjncy: vec![1, 0, 2, 1, 3, 2],
            vwgt: vec![1.0; 4],
        }
    }

    #[test]
    fn basics() {
        let g = path4();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn pseudo_peripheral_finds_far_end() {
        let g = path4();
        assert_eq!(g.pseudo_peripheral(0), 3);
        assert_eq!(g.pseudo_peripheral(3), 0);
    }
}
