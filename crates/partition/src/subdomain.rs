//! Subdomain decomposition for the multidependences scheme (§3.1).
//!
//! The paper partitions each MPI domain into subdomains with Metis and
//! maps each subdomain to an OpenMP task; subdomains that *share at
//! least one mesh node* are "incompatible" (their tasks are linked with
//! `mutexinoutset` so they never run concurrently), while non-adjacent
//! subdomains run in parallel without atomics.

use crate::graph::Graph;
use crate::kway::{partition_kway, Partition};
use cfpd_mesh::Mesh;

/// A decomposition of a set of elements into subdomains plus the
/// subdomain adjacency needed to build mutexinoutset dependences.
#[derive(Debug, Clone)]
pub struct SubdomainDecomposition {
    /// For each subdomain, the (global) element ids it owns, ascending.
    pub members: Vec<Vec<u32>>,
    /// For each subdomain, the subdomains sharing ≥ 1 mesh node with it
    /// (excluding itself), ascending.
    pub adjacency: Vec<Vec<u32>>,
}

impl SubdomainDecomposition {
    pub fn num_subdomains(&self) -> usize {
        self.members.len()
    }
}

/// Decompose the element set `elems` (global element ids into `mesh`)
/// into `n_sub` subdomains, balancing per-element `weights`
/// (`weights[i]` corresponds to `elems[i]`).
///
/// Returns the members (global ids) and the node-sharing adjacency
/// between subdomains.
pub fn decompose_subdomains(
    mesh: &Mesh,
    elems: &[u32],
    weights: &[f64],
    n_sub: usize,
) -> SubdomainDecomposition {
    assert_eq!(elems.len(), weights.len());
    if elems.is_empty() {
        return SubdomainDecomposition {
            members: vec![Vec::new(); n_sub],
            adjacency: vec![Vec::new(); n_sub],
        };
    }

    let g = local_element_graph(mesh, elems, weights);
    // node -> local elements touching it (restricted node-to-elem map),
    // needed again below for the subdomain adjacency.
    let node_elems = restricted_node_map(mesh, elems);
    let part: Partition = partition_kway(&g, n_sub, 4);

    // Members in global element ids.
    let mut members = vec![Vec::new(); n_sub];
    for (li, &p) in part.parts.iter().enumerate() {
        members[p as usize].push(elems[li]);
    }
    for m in &mut members {
        m.sort_unstable();
    }

    // Subdomain adjacency: two subdomains sharing ≥ 1 node.
    let mut adjacency_sets: Vec<std::collections::BTreeSet<u32>> =
        vec![Default::default(); n_sub];
    for locals in node_elems.values() {
        for i in 0..locals.len() {
            for j in i + 1..locals.len() {
                let (pi, pj) = (part.parts[locals[i] as usize], part.parts[locals[j] as usize]);
                if pi != pj {
                    adjacency_sets[pi as usize].insert(pj);
                    adjacency_sets[pj as usize].insert(pi);
                }
            }
        }
    }
    let adjacency = adjacency_sets
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();

    SubdomainDecomposition { members, adjacency }
}

/// Restricted node → local-element map: for each mesh node, the
/// positions in `elems` of the listed elements touching it.
fn restricted_node_map(
    mesh: &Mesh,
    elems: &[u32],
) -> std::collections::HashMap<u32, Vec<u32>> {
    let mut node_elems: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (li, &e) in elems.iter().enumerate() {
        for &v in mesh.elem_nodes(e as usize) {
            node_elems.entry(v).or_default().push(li as u32);
        }
    }
    node_elems
}

/// Build the element graph restricted to `elems` (local ids are
/// positions in `elems`; edges connect elements sharing ≥ 1 mesh node) —
/// the graph both the coloring strategy and the subdomain decomposition
/// operate on inside one MPI domain.
pub fn local_element_graph(mesh: &Mesh, elems: &[u32], weights: &[f64]) -> Graph {
    let node_elems = restricted_node_map(mesh, elems);
    let n = elems.len();
    let mut adj_sets: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
    for locals in node_elems.values() {
        for i in 0..locals.len() {
            for j in i + 1..locals.len() {
                adj_sets[locals[i] as usize].insert(locals[j]);
                adj_sets[locals[j] as usize].insert(locals[i]);
            }
        }
    }
    let mut xadj = vec![0u32];
    let mut adjncy = Vec::new();
    for s in &adj_sets {
        adjncy.extend(s.iter().copied());
        xadj.push(adjncy.len() as u32);
    }
    Graph { xadj, adjncy, vwgt: weights.to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn demo() -> (cfpd_mesh::Mesh, Vec<u32>, Vec<f64>) {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let n = am.mesh.num_elements();
        let elems: Vec<u32> = (0..n as u32).collect();
        let weights = am.mesh.cost_weights();
        (am.mesh, elems, weights)
    }

    #[test]
    fn members_partition_elements() {
        let (mesh, elems, weights) = demo();
        let d = decompose_subdomains(&mesh, &elems, &weights, 8);
        let total: usize = d.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, elems.len());
        let mut seen = vec![false; elems.len()];
        for m in &d.members {
            for &e in m {
                assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let (mesh, elems, weights) = demo();
        let d = decompose_subdomains(&mesh, &elems, &weights, 8);
        for (s, neigh) in d.adjacency.iter().enumerate() {
            for &t in neigh {
                assert_ne!(t as usize, s, "self adjacency");
                assert!(
                    d.adjacency[t as usize].contains(&(s as u32)),
                    "asymmetric adjacency {s} -> {t}"
                );
            }
        }
    }

    #[test]
    fn adjacent_subdomains_share_a_node_nonadjacent_dont() {
        let (mesh, elems, weights) = demo();
        let d = decompose_subdomains(&mesh, &elems, &weights, 6);
        // Collect node sets per subdomain.
        let node_sets: Vec<std::collections::HashSet<u32>> = d
            .members
            .iter()
            .map(|m| {
                m.iter()
                    .flat_map(|&e| mesh.elem_nodes(e as usize).iter().copied())
                    .collect()
            })
            .collect();
        for s in 0..d.num_subdomains() {
            for t in s + 1..d.num_subdomains() {
                let shares = !node_sets[s].is_disjoint(&node_sets[t]);
                let adj = d.adjacency[s].contains(&(t as u32));
                assert_eq!(shares, adj, "subdomains {s},{t}: shares={shares} adj={adj}");
            }
        }
    }

    #[test]
    fn subset_of_elements_supported() {
        // Decompose only half the mesh (as a rank-local domain would).
        let (mesh, elems, weights) = demo();
        let half = elems.len() / 2;
        let d = decompose_subdomains(&mesh, &elems[..half], &weights[..half], 4);
        let total: usize = d.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, half);
    }

    #[test]
    fn empty_input() {
        let (mesh, _, _) = demo();
        let d = decompose_subdomains(&mesh, &[], &[], 4);
        assert_eq!(d.num_subdomains(), 4);
        assert!(d.members.iter().all(|m| m.is_empty()));
    }
}
