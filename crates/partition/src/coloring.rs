//! Greedy mesh/graph coloring (Farhat & Crivelli 1989, ref. [7] of the
//! paper): elements sharing a node get different colors so that all
//! elements of one color can be assembled in parallel without atomics.
//! The cost — analyzed in the paper (§3.1, Fig. 6) — is lost spatial
//! locality, because consecutive elements end up in different colors.

use crate::graph::Graph;

/// A vertex coloring: `colors[v]` in `0..num_colors`.
#[derive(Debug, Clone)]
pub struct Coloring {
    pub colors: Vec<u32>,
    pub num_colors: usize,
}

impl Coloring {
    /// Vertex lists grouped by color, each sorted ascending.
    pub fn color_classes(&self) -> Vec<Vec<u32>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c as usize].push(v as u32);
        }
        classes
    }

    /// Verify no two adjacent vertices share a color.
    pub fn is_valid(&self, g: &Graph) -> bool {
        (0..g.num_vertices())
            .all(|v| g.neighbors(v).iter().all(|&w| self.colors[w as usize] != self.colors[v]))
    }

    /// Mean distance between consecutive vertices within each color
    /// class — a proxy for the spatial-locality loss coloring causes
    /// (element ids are generated in spatial order, so large id jumps
    /// mean cache-unfriendly strides). A plain sequential sweep scores 1.
    pub fn mean_stride(&self) -> f64 {
        let classes = self.color_classes();
        let mut jumps = 0.0f64;
        let mut count = 0usize;
        for class in &classes {
            for w in class.windows(2) {
                jumps += (w[1] - w[0]) as f64;
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            jumps / count as f64
        }
    }
}

/// Greedy coloring in largest-degree-first order — the classical
/// heuristic; bounded by max_degree + 1 colors.
pub fn greedy_coloring(g: &Graph) -> Coloring {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v as usize)));

    let mut colors = vec![u32::MAX; n];
    let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
    // Scratch: forbidden[c] == v marks color c used by a neighbor of v.
    let mut forbidden = vec![u32::MAX; max_deg + 2];
    let mut num_colors = 0usize;
    for &v in &order {
        for &w in g.neighbors(v as usize) {
            let c = colors[w as usize];
            if c != u32::MAX {
                forbidden[c as usize] = v;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == v {
            c += 1;
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c as usize + 1);
    }
    Coloring { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for v in 0..n {
            adjncy.push(((v + n - 1) % n) as u32);
            adjncy.push(((v + 1) % n) as u32);
            xadj.push(adjncy.len() as u32);
        }
        Graph { xadj, adjncy, vwgt: vec![1.0; n] }
    }

    #[test]
    fn even_cycle_two_colors() {
        let g = cycle(10);
        let c = greedy_coloring(&g);
        assert!(c.is_valid(&g));
        assert!(c.num_colors <= 3); // greedy may use 3, optimum is 2
    }

    #[test]
    fn odd_cycle_three_colors() {
        let g = cycle(7);
        let c = greedy_coloring(&g);
        assert!(c.is_valid(&g));
        assert!(c.num_colors >= 3);
        assert!(c.num_colors <= 3);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let n = 5;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for v in 0..n {
            for w in 0..n {
                if w != v {
                    adjncy.push(w as u32);
                }
            }
            xadj.push(adjncy.len() as u32);
        }
        let g = Graph { xadj, adjncy, vwgt: vec![1.0; n] };
        let c = greedy_coloring(&g);
        assert!(c.is_valid(&g));
        assert_eq!(c.num_colors, n);
    }

    #[test]
    fn color_classes_cover_all_vertices() {
        let g = cycle(12);
        let c = greedy_coloring(&g);
        let total: usize = c.color_classes().iter().map(|cl| cl.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn coloring_on_airway_mesh_is_valid() {
        let am = cfpd_mesh::generate_airway(&cfpd_mesh::AirwaySpec::small()).unwrap();
        let n2e = am.mesh.node_to_elements();
        let adj = am.mesh.element_adjacency(&n2e);
        let g = Graph::from_csr_unit(&adj);
        let c = greedy_coloring(&g);
        assert!(c.is_valid(&g));
        // Mesh coloring destroys locality: mean stride well above 1.
        assert!(c.mean_stride() > 2.0, "stride {}", c.mean_stride());
    }

    #[test]
    fn empty_graph() {
        let g = Graph { xadj: vec![0], adjncy: vec![], vwgt: vec![] };
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors, 0);
        assert!(c.is_valid(&g));
        assert_eq!(c.mean_stride(), 1.0);
    }
}
