//! Recursive coordinate bisection (RCB) — a geometric partitioner used
//! as an ablation baseline against the graph-growing k-way partitioner
//! (the paper's Metis stand-in). RCB is faster but ignores connectivity,
//! yielding higher edge cuts; the ablation bench quantifies the
//! difference on airway meshes.

use crate::kway::Partition;

/// Partition `points` (with `weights`) into `k` parts by recursively
/// bisecting along the longest axis at the weighted median.
pub fn partition_rcb(points: &[[f64; 3]], weights: &[f64], k: usize) -> Partition {
    assert_eq!(points.len(), weights.len());
    assert!(k >= 1);
    let n = points.len();
    let mut parts = vec![0u32; n];
    if k > 1 && n > 0 {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        rcb_recurse(points, weights, &mut ids, 0, k as u32, &mut parts);
    }
    Partition { parts, num_parts: k }
}

fn rcb_recurse(
    points: &[[f64; 3]],
    weights: &[f64],
    ids: &mut [u32],
    first_part: u32,
    num_parts: u32,
    parts: &mut [u32],
) {
    if num_parts == 1 || ids.is_empty() {
        for &i in ids.iter() {
            parts[i as usize] = first_part;
        }
        return;
    }
    // Longest axis of the bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids.iter() {
        for c in 0..3 {
            lo[c] = lo[c].min(points[i as usize][c]);
            hi[c] = hi[c].max(points[i as usize][c]);
        }
    }
    let axis = (0..3).max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();
    ids.sort_unstable_by(|&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap()
    });
    // Split proportionally to the sub-part counts at the weighted median.
    let left_parts = num_parts / 2;
    let right_parts = num_parts - left_parts;
    let total: f64 = ids.iter().map(|&i| weights[i as usize]).sum();
    let target = total * left_parts as f64 / num_parts as f64;
    let mut acc = 0.0;
    let mut split = ids.len();
    for (pos, &i) in ids.iter().enumerate() {
        acc += weights[i as usize];
        if acc >= target {
            split = pos + 1;
            break;
        }
    }
    split = split.clamp(1, ids.len().saturating_sub(1).max(1));
    let (left, right) = ids.split_at_mut(split);
    rcb_recurse(points, weights, left, first_part, left_parts, parts);
    rcb_recurse(points, weights, right, first_part + left_parts, right_parts, parts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<[f64; 3]> {
        let mut pts = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                pts.push([x as f64, y as f64, 0.0]);
            }
        }
        pts
    }

    #[test]
    fn covers_all_with_valid_parts() {
        let pts = grid_points(10, 10);
        let w = vec![1.0; 100];
        let p = partition_rcb(&pts, &w, 7);
        assert!(p.parts.iter().all(|&x| x < 7));
        // All parts non-empty for a uniform grid.
        let mut counts = vec![0usize; 7];
        for &x in &p.parts {
            counts[x as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn balances_uniform_weights() {
        let pts = grid_points(16, 16);
        let w = vec![1.0; 256];
        let p = partition_rcb(&pts, &w, 8);
        let mut counts = vec![0.0f64; 8];
        for &x in &p.parts {
            counts[x as usize] += 1.0;
        }
        let max = counts.iter().cloned().fold(0.0, f64::max);
        let lb = counts.iter().sum::<f64>() / (8.0 * max);
        assert!(lb > 0.85, "RCB balance {lb}");
    }

    #[test]
    fn bisection_splits_along_longest_axis() {
        // A 100x2 strip bisected in 2 must split along x.
        let pts = grid_points(100, 2);
        let w = vec![1.0; 200];
        let p = partition_rcb(&pts, &w, 2);
        // All points with x < 50 in one part.
        let part_of_left = p.parts[0];
        for (i, pt) in pts.iter().enumerate() {
            if pt[0] < 49.0 {
                assert_eq!(p.parts[i], part_of_left, "point {i} at {pt:?}");
            }
        }
    }

    #[test]
    fn single_part_and_empty() {
        let p = partition_rcb(&[], &[], 3);
        assert_eq!(p.parts.len(), 0);
        let pts = grid_points(3, 3);
        let w = vec![1.0; 9];
        let p = partition_rcb(&pts, &w, 1);
        assert!(p.parts.iter().all(|&x| x == 0));
    }

    #[test]
    fn weighted_median_respects_weights() {
        // One very heavy point at the left end: with k=2 it should sit
        // alone (or nearly) in its part.
        let pts = grid_points(10, 1);
        let mut w = vec![1.0; 10];
        w[0] = 9.0;
        let p = partition_rcb(&pts, &w, 2);
        let heavy_part = p.parts[0];
        let same: usize = (0..10).filter(|&i| p.parts[i] == heavy_part).count();
        assert!(same <= 2, "heavy point should dominate its part, got {same} members");
    }
}
