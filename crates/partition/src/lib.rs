//! # cfpd-partition — graph partitioning and coloring (Metis substitute)
//!
//! The paper relies on Metis at two levels: (i) decomposing the mesh
//! into per-MPI-process domains, and (ii) decomposing each MPI domain
//! into the subdomains that become OpenMP tasks in the multidependences
//! scheme (§3.1). It also uses mesh coloring (Farhat & Crivelli) as one
//! of the three assembly parallelization strategies. This crate
//! implements all three from scratch:
//!
//! * [`graph`] — CSR weighted graphs,
//! * [`kway`] — greedy graph-growing k-way partitioning with boundary
//!   refinement,
//! * [`coloring`] — greedy largest-degree-first coloring,
//! * [`subdomain`] — subdomain decomposition + node-sharing adjacency
//!   (the "incompatibility" relation driving `mutexinoutset`),
//! * [`rcm`] — reverse Cuthill–McKee node reordering (CSR bandwidth
//!   reduction for the locality-aware hot path).

pub mod coloring;
pub mod graph;
pub mod kway;
pub mod rcb;
pub mod rcm;
pub mod subdomain;

pub use coloring::{greedy_coloring, Coloring};
pub use graph::Graph;
pub use kway::{partition_kway, Partition};
pub use rcb::partition_rcb;
pub use rcm::{bandwidth_under_perm, csr_bandwidth, invert_perm, rcm_order, rcm_perm};
pub use subdomain::{decompose_subdomains, local_element_graph, SubdomainDecomposition};
