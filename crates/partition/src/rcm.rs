//! Reverse Cuthill–McKee node reordering.
//!
//! The airway generator numbers nodes in extrusion order (ring by ring,
//! branch by branch), which leaves the node-node CSR pattern with a
//! bandwidth proportional to the tube circumference × branch count. RCM
//! renumbers nodes by a breadth-first sweep from a pseudo-peripheral
//! start (neighbors visited in increasing-degree order, final order
//! reversed), clustering each node's stencil into a narrow index band —
//! the classic locality transform for FEM matrices (George & Liu).
//!
//! The permutation convention throughout is `perm[old] = new`; the
//! element order is untouched, so partitions, colorings and subdomain
//! decompositions built on element adjacency are unaffected.

use cfpd_mesh::Csr;

/// Visit order of an RCM sweep: `order[new] = old`. Every connected
/// component is swept from its own pseudo-peripheral start; components
/// are taken in order of their minimum node index, so the result is
/// deterministic.
pub fn rcm_order(adj: &Csr) -> Vec<u32> {
    let n = adj.len();
    let degree = |v: usize| adj.row(v).len();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut component = Vec::new();
    let mut neighbors: Vec<u32> = Vec::new();

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let start = pseudo_peripheral(adj, seed);
        // BFS from `start`, queueing each node's unvisited neighbors in
        // increasing-degree order (ties by index, for determinism).
        component.clear();
        component.push(start as u32);
        visited[start] = true;
        let mut head = 0;
        while head < component.len() {
            let v = component[head] as usize;
            head += 1;
            neighbors.clear();
            neighbors.extend(adj.row(v).iter().copied().filter(|&w| !visited[w as usize]));
            neighbors.sort_unstable_by_key(|&w| (degree(w as usize), w));
            for &w in &neighbors {
                visited[w as usize] = true;
                component.push(w);
            }
        }
        // Reverse within the component (the "R" in RCM).
        order.extend(component.iter().rev());
    }
    order
}

/// Pseudo-peripheral node of `seed`'s component: repeat BFS from the
/// minimum-degree node of the deepest level until the eccentricity
/// stops growing (George–Liu heuristic, deterministic tie-breaks).
fn pseudo_peripheral(adj: &Csr, seed: usize) -> usize {
    let mut start = seed;
    let mut level = vec![u32::MAX; adj.len()];
    let mut frontier = Vec::new();
    let mut depth_prev = 0u32;
    for _ in 0..4 {
        // BFS recording levels; only the component of `start` is touched.
        for &v in &frontier {
            level[v as usize] = u32::MAX;
        }
        frontier.clear();
        frontier.push(start as u32);
        level[start] = 0;
        let mut head = 0;
        let mut depth = 0u32;
        while head < frontier.len() {
            let v = frontier[head] as usize;
            head += 1;
            depth = level[v];
            for &w in adj.row(v) {
                if level[w as usize] == u32::MAX {
                    level[w as usize] = level[v] + 1;
                    frontier.push(w);
                }
            }
        }
        // Minimum-degree node in the deepest level, smallest index first.
        let next = frontier
            .iter()
            .filter(|&&v| level[v as usize] == depth)
            .min_by_key(|&&v| (adj.row(v as usize).len(), v))
            .map(|&v| v as usize)
            .unwrap_or(start);
        if depth <= depth_prev && depth_prev > 0 {
            break;
        }
        depth_prev = depth;
        start = next;
    }
    start
}

/// RCM node permutation, `perm[old] = new`. Guaranteed never worse than
/// the identity: if the RCM sweep does not shrink the bandwidth of
/// `adj` (possible on already well-ordered graphs), the identity
/// permutation is returned instead.
pub fn rcm_perm(adj: &Csr) -> Vec<u32> {
    let order = rcm_order(adj);
    let perm = invert_perm(&order);
    if bandwidth_under_perm(adj, &perm) <= csr_bandwidth(adj) {
        perm
    } else {
        (0..adj.len() as u32).collect()
    }
}

/// Invert a permutation: if `p[a] = b` then `invert_perm(p)[b] = a`.
pub fn invert_perm(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (a, &b) in perm.iter().enumerate() {
        inv[b as usize] = a as u32;
    }
    inv
}

/// Bandwidth of a CSR adjacency: `max |i - j|` over all stored edges
/// (0 for a diagonal-only or empty pattern).
pub fn csr_bandwidth(adj: &Csr) -> usize {
    let mut bw = 0usize;
    for i in 0..adj.len() {
        for &j in adj.row(i) {
            bw = bw.max(i.abs_diff(j as usize));
        }
    }
    bw
}

/// Bandwidth the pattern would have after renumbering with
/// `perm[old] = new`.
pub fn bandwidth_under_perm(adj: &Csr, perm: &[u32]) -> usize {
    let mut bw = 0usize;
    for i in 0..adj.len() {
        let pi = perm[i] as usize;
        for &j in adj.row(i) {
            bw = bw.max(pi.abs_diff(perm[j as usize] as usize));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-...-(n-1) but numbered so the natural order is
    /// terrible: node i sits at position (i * stride) mod n.
    fn scrambled_path(n: usize, stride: usize) -> Csr {
        assert_eq!(gcd(n, stride), 1, "stride must be coprime with n");
        let pos: Vec<usize> = (0..n).map(|i| (i * stride) % n).collect();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n - 1 {
            let (a, b) = (pos[i], pos[i + 1]);
            rows[a].push(b as u32);
            rows[b].push(a as u32);
        }
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        for mut r in rows {
            r.sort_unstable();
            targets.extend_from_slice(&r);
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 { a } else { gcd(b, a % b) }
    }

    #[test]
    fn path_graph_reaches_bandwidth_one() {
        let adj = scrambled_path(101, 37);
        assert!(csr_bandwidth(&adj) > 1);
        let perm = rcm_perm(&adj);
        assert_eq!(bandwidth_under_perm(&adj, &perm), 1);
    }

    #[test]
    fn order_and_perm_are_inverse_bijections() {
        let adj = scrambled_path(53, 24);
        let order = rcm_order(&adj);
        let perm = invert_perm(&order);
        let mut seen = vec![false; 53];
        for &v in &perm {
            assert!(!seen[v as usize], "duplicate image {v}");
            seen[v as usize] = true;
        }
        for (new, &old) in order.iter().enumerate() {
            assert_eq!(perm[old as usize] as usize, new);
        }
    }

    #[test]
    fn disconnected_components_all_covered() {
        // Two disjoint triangles.
        let offsets = vec![0u32, 2, 4, 6, 8, 10, 12];
        let targets = vec![1u32, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4];
        let adj = Csr { offsets, targets };
        let order = rcm_order(&adj);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn never_worse_than_identity() {
        // Already optimally ordered path: identity must be kept or matched.
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        let n = 40;
        for i in 0..n {
            if i > 0 {
                targets.push(i as u32 - 1);
            }
            if i + 1 < n {
                targets.push(i as u32 + 1);
            }
            offsets.push(targets.len() as u32);
        }
        let adj = Csr { offsets, targets };
        let perm = rcm_perm(&adj);
        assert!(bandwidth_under_perm(&adj, &perm) <= csr_bandwidth(&adj));
    }
}
