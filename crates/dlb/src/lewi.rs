//! The LeWI ("Lend When Idle") policy of the DLB library (§3.2).
//!
//! Ranks co-located on a node register their worker pool and core
//! allotment with a [`DlbNode`]. When a rank enters a blocking MPI call
//! it *lends* its cores to the node; the node redistributes them to the
//! busy ranks by growing their pools (`omp_set_num_threads`, here
//! [`cfpd_runtime::ThreadPool::set_active`]). When the blocked rank
//! returns, it *reclaims* its cores, shrinking borrowers back.

//! Graceful degradation under faults: a stalled rank's *kept* core is
//! donated once a lease timeout expires ([`DlbNode::sweep_leases`]),
//! and a crashed rank's whole allotment is permanently redistributed
//! ([`DlbNode::mark_crashed`]) — in both cases preserving LeWI's core
//! conservation (no core is ever minted; reclaim takes back exactly
//! what was actually lent, tracked per rank in `lent_out`).

use cfpd_runtime::ThreadPool;
use cfpd_testkit::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened on the node, with a timestamp relative to node
/// creation — this is the event stream rendered for the paper's Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub enum DlbEventKind {
    /// Rank blocked and lent `cores` to the node.
    Lend { cores: usize },
    /// Rank lent `cores` *ahead* of an anticipated blocking call
    /// (predictive policy); it keeps computing on a reduced allotment.
    PreLend { cores: usize },
    /// Rank was granted `cores` extra cores (its pool grew to `active`).
    Borrow { cores: usize, active: usize },
    /// Rank unblocked and reclaimed its cores.
    Reclaim { cores: usize },
    /// Rank had borrowed cores revoked (its pool shrank to `active`).
    Revoke { cores: usize, active: usize },
    /// Rank overstayed its lending lease while blocked: its kept
    /// core(s) were forcibly donated to the node.
    LeaseExpired { cores: usize },
    /// Rank was declared crashed: its entire allotment was permanently
    /// donated to the node.
    Crashed { cores: usize },
}

/// Timestamped DLB event.
#[derive(Debug, Clone)]
pub struct DlbEvent {
    pub t: f64,
    pub rank: usize,
    pub kind: DlbEventKind,
}

struct RankSlot {
    pool: Arc<ThreadPool>,
    owned: usize,
    borrowed: usize,
    blocked: bool,
    /// Cores this rank has actually handed to the node and not yet
    /// reclaimed. Reclaim takes back exactly this much — never a
    /// recomputed `owned - keep`, which would mint cores after a lease
    /// sweep donated the kept core.
    lent_out: usize,
    /// When the rank entered its current blocking call (lease clock).
    blocked_since: Option<Instant>,
    /// Crashed ranks are out of the game: lend/reclaim ignore them and
    /// their allotment belongs to the node forever.
    crashed: bool,
}

struct NodeState {
    ranks: BTreeMap<usize, RankSlot>,
    /// Cores currently lent to the node and not yet granted to anyone.
    free_lent: usize,
}

/// Aggregated LeWI statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DlbStats {
    pub lends: usize,
    pub pre_lends: usize,
    pub reclaims: usize,
    pub grants: usize,
    pub revokes: usize,
    pub cores_lent_total: usize,
    pub lease_expiries: usize,
    pub crashes: usize,
}

/// Which lending discipline drives the DLB hook chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DlbPolicy {
    /// LeWI: lend reactively when a rank blocks in MPI.
    #[default]
    Reactive,
    /// Model-driven: a predictor pre-lends anticipated surplus cores
    /// *before* the blocking call ([`DlbNode::pre_lend`]), with the
    /// reactive machinery still active underneath as the
    /// conservation-preserving fallback.
    Predictive,
}

impl DlbPolicy {
    /// Parse a policy name as used by campaign specs and the CLI.
    pub fn parse(s: &str) -> Option<DlbPolicy> {
        match s {
            "reactive" | "lewi" => Some(DlbPolicy::Reactive),
            "predictive" => Some(DlbPolicy::Predictive),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DlbPolicy::Reactive => "reactive",
            DlbPolicy::Predictive => "predictive",
        }
    }
}

/// Lending behaviour when a rank blocks in MPI (DLB's `LEWI_KEEP_ONE_CPU`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LendPolicy {
    /// Keep one core busy-waiting in the MPI call (DLB's default).
    #[default]
    KeepOne,
    /// Lend every core; the blocking call parks on a borrowed slice.
    /// Maximizes lending at the cost of slower unblock detection.
    LendAll,
}

/// How lent cores are distributed among busy ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrantPolicy {
    /// Round-robin one core at a time (even shares).
    #[default]
    Even,
    /// Give everything to the busy rank with the fewest active cores
    /// (helps a single dominant straggler fastest).
    Neediest,
}

/// Per-node DLB arbiter implementing LeWI.
pub struct DlbNode {
    state: Mutex<NodeState>,
    events: Mutex<Vec<DlbEvent>>,
    stats: Mutex<DlbStats>,
    epoch: Instant,
    lend_policy: LendPolicy,
    grant_policy: GrantPolicy,
    /// How long a blocked rank may sit on its kept core before a lease
    /// sweep donates it. `None` disables lease expiry.
    lease: Option<Duration>,
}

impl DlbNode {
    pub fn new() -> Arc<DlbNode> {
        Self::with_policies(LendPolicy::default(), GrantPolicy::default())
    }

    /// Create a node arbiter with explicit policies.
    pub fn with_policies(lend: LendPolicy, grant: GrantPolicy) -> Arc<DlbNode> {
        Self::with_lease(lend, grant, None)
    }

    /// Create a node arbiter with explicit policies and a lending lease:
    /// a rank blocked longer than `lease` has its kept core(s) donated
    /// by [`DlbNode::sweep_leases`].
    pub fn with_lease(
        lend: LendPolicy,
        grant: GrantPolicy,
        lease: Option<Duration>,
    ) -> Arc<DlbNode> {
        Self::with_lease_at(lend, grant, lease, Instant::now())
    }

    /// Like [`DlbNode::with_lease`] but with an explicit event-timestamp
    /// epoch — traced runs share one clock between DLB events, phase
    /// records and message records.
    pub fn with_lease_at(
        lend: LendPolicy,
        grant: GrantPolicy,
        lease: Option<Duration>,
        epoch: Instant,
    ) -> Arc<DlbNode> {
        Arc::new(DlbNode {
            state: Mutex::new(NodeState { ranks: BTreeMap::new(), free_lent: 0 }),
            events: Mutex::new(Vec::new()),
            stats: Mutex::new(DlbStats::default()),
            epoch,
            lend_policy: lend,
            grant_policy: grant,
            lease,
        })
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Register a rank living on this node with its pool and the number
    /// of cores it owns. The pool is clamped to `owned` immediately.
    pub fn register(&self, rank: usize, pool: Arc<ThreadPool>, owned: usize) {
        assert!(owned >= 1, "a rank owns at least one core");
        pool.set_active(owned);
        let mut st = self.state.lock();
        let prev = st.ranks.insert(
            rank,
            RankSlot {
                pool,
                owned,
                borrowed: 0,
                blocked: false,
                lent_out: 0,
                blocked_since: None,
                crashed: false,
            },
        );
        assert!(prev.is_none(), "rank {rank} registered twice");
    }

    /// Rank entered a blocking MPI call: lend its cores and redistribute.
    pub fn lend(&self, rank: usize) {
        let mut st = self.state.lock();
        let slot = match st.ranks.get_mut(&rank) {
            Some(s) => s,
            None => return, // unregistered rank (e.g. DLB off for it)
        };
        if slot.blocked || slot.crashed {
            return; // nested blocking (collective built on recv): ignore
        }
        slot.blocked = true;
        slot.blocked_since = Some(Instant::now());
        // A blocked rank has no use for borrowed cores either.
        let returned = slot.borrowed;
        slot.borrowed = 0;
        let keep = if self.lend_policy == LendPolicy::KeepOne { 1 } else { 0 };
        // Accumulate on top of anything already pre-lent (predictive
        // policy) so a pre-lent core is never minted a second time.
        let lent = slot.owned.saturating_sub(keep).saturating_sub(slot.lent_out);
        slot.lent_out += lent;
        slot.pool.set_active(keep.max(1));
        st.free_lent += lent + returned;
        drop(st);
        {
            let mut ev = self.events.lock();
            ev.push(DlbEvent { t: self.now(), rank, kind: DlbEventKind::Lend { cores: lent } });
        }
        {
            let mut s = self.stats.lock();
            s.lends += 1;
            s.cores_lent_total += lent;
        }
        cfpd_telemetry::count!("dlb.lends");
        cfpd_telemetry::count!("dlb.cores_lent_total", lent as u64);
        cfpd_telemetry::gauge_add!("dlb.cores_lent_out", lent as i64);
        cfpd_flight::record(cfpd_flight::EventKind::DlbLend, rank as u32, rank as u32, lent as u64, 0);
        self.redistribute();
    }

    /// Rank left its blocking call: reclaim owned cores, revoking
    /// borrowers if the free pool cannot cover them.
    pub fn reclaim(&self, rank: usize) {
        let mut st = self.state.lock();
        let slot = match st.ranks.get_mut(&rank) {
            Some(s) => s,
            None => return,
        };
        if slot.crashed || (!slot.blocked && slot.lent_out == 0) {
            return;
        }
        slot.blocked = false;
        slot.blocked_since = None;
        // Take back exactly what was lent — including a kept core a
        // lease sweep donated mid-block, or cores pre-lent by the
        // predictive policy on a rank that never blocked — so no core
        // is ever minted.
        let mut need = slot.lent_out;
        let reclaimed = need;
        slot.lent_out = 0;
        slot.pool.set_active(slot.owned + slot.borrowed);
        let from_free = need.min(st.free_lent);
        st.free_lent -= from_free;
        need -= from_free;
        // Revoke from borrowers (largest borrowers first).
        let mut revocations: Vec<(usize, usize, usize)> = Vec::new(); // (rank, revoke, new_active)
        if need > 0 {
            let mut borrowers: Vec<(usize, usize)> = st
                .ranks
                .iter()
                .filter(|(_, s)| s.borrowed > 0)
                .map(|(&r, s)| (r, s.borrowed))
                .collect();
            borrowers.sort_by_key(|&(r, b)| (std::cmp::Reverse(b), r));
            for (r, _) in borrowers {
                if need == 0 {
                    break;
                }
                let s = st.ranks.get_mut(&r).unwrap();
                let take = s.borrowed.min(need);
                s.borrowed -= take;
                need -= take;
                let active = s.owned + s.borrowed;
                s.pool.set_active(active);
                revocations.push((r, take, active));
            }
        }
        drop(st);
        let t = self.now();
        {
            let mut ev = self.events.lock();
            ev.push(DlbEvent {
                t,
                rank,
                kind: DlbEventKind::Reclaim { cores: from_free + revocations.iter().map(|r| r.1).sum::<usize>() },
            });
            for (r, take, active) in &revocations {
                ev.push(DlbEvent {
                    t,
                    rank: *r,
                    kind: DlbEventKind::Revoke { cores: *take, active: *active },
                });
            }
        }
        let mut s = self.stats.lock();
        s.reclaims += 1;
        s.revokes += revocations.len();
        drop(s);
        cfpd_telemetry::count!("dlb.reclaims");
        cfpd_telemetry::count!("dlb.revokes", revocations.len() as u64);
        cfpd_telemetry::gauge_add!("dlb.cores_lent_out", -(reclaimed as i64));
        cfpd_flight::record(
            cfpd_flight::EventKind::DlbReclaim,
            rank as u32,
            rank as u32,
            reclaimed as u64,
            0,
        );
    }

    /// Predictively lend up to `want` cores *ahead* of an anticipated
    /// blocking call (`DlbPolicy::Predictive`). Unlike [`DlbNode::lend`]
    /// the rank stays runnable: it is not marked blocked, keeps at least
    /// one core, and continues computing on the reduced allotment while
    /// peers borrow the surplus. The cores are taken back by the same
    /// [`DlbNode::reclaim`] that ends a reactive lend, so conservation
    /// holds through mispredictions too. Returns the cores actually
    /// lent.
    pub fn pre_lend(&self, rank: usize, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut st = self.state.lock();
        let slot = match st.ranks.get_mut(&rank) {
            Some(s) => s,
            None => return 0,
        };
        if slot.blocked || slot.crashed {
            return 0; // already lending reactively (or out of the game)
        }
        // A rank about to shed cores has no use for borrowed ones.
        let returned = slot.borrowed;
        slot.borrowed = 0;
        let headroom = slot.owned.saturating_sub(slot.lent_out).saturating_sub(1);
        let cores = want.min(headroom);
        if cores == 0 && returned == 0 {
            return 0;
        }
        slot.lent_out += cores;
        slot.pool.set_active(slot.owned - slot.lent_out);
        st.free_lent += cores + returned;
        drop(st);
        if cores > 0 {
            {
                let mut ev = self.events.lock();
                ev.push(DlbEvent {
                    t: self.now(),
                    rank,
                    kind: DlbEventKind::PreLend { cores },
                });
            }
            {
                let mut s = self.stats.lock();
                s.pre_lends += 1;
                s.cores_lent_total += cores;
            }
            cfpd_telemetry::count!("dlb.pre_lends");
            cfpd_telemetry::count!("dlb.cores_lent_total", cores as u64);
            cfpd_telemetry::gauge_add!("dlb.cores_lent_out", cores as i64);
            cfpd_flight::record(
                cfpd_flight::EventKind::DlbPreLend,
                rank as u32,
                rank as u32,
                cores as u64,
                0,
            );
        }
        self.redistribute();
        cores
    }

    /// Declare a rank crashed (fail-silent): everything it still holds
    /// — kept core, unlent cores, borrowed cores — is donated to the
    /// node permanently and the rank is excluded from future
    /// lend/reclaim traffic. Idempotent. The rank's own pool is floored
    /// at one worker (a pool cannot run with zero executors).
    pub fn mark_crashed(&self, rank: usize) {
        let mut st = self.state.lock();
        let slot = match st.ranks.get_mut(&rank) {
            Some(s) => s,
            None => return,
        };
        if slot.crashed {
            return;
        }
        slot.crashed = true;
        slot.blocked = true; // never a grant recipient again
        slot.blocked_since = None;
        let donated = slot.owned.saturating_sub(slot.lent_out) + slot.borrowed;
        slot.borrowed = 0;
        slot.lent_out = slot.owned;
        slot.pool.set_active(1);
        st.free_lent += donated;
        drop(st);
        {
            let mut ev = self.events.lock();
            ev.push(DlbEvent {
                t: self.now(),
                rank,
                kind: DlbEventKind::Crashed { cores: donated },
            });
        }
        {
            let mut s = self.stats.lock();
            s.crashes += 1;
            s.cores_lent_total += donated;
        }
        cfpd_telemetry::count!("dlb.crashes");
        cfpd_telemetry::count!("dlb.cores_lent_total", donated as u64);
        cfpd_telemetry::gauge_add!("dlb.cores_lent_out", donated as i64);
        self.redistribute();
    }

    /// Sweep the lending leases: any rank blocked longer than the
    /// node's lease has its kept core(s) donated so the node can keep
    /// working around a stalled peer. No-op without a configured lease.
    /// Returns how many ranks were swept.
    pub fn sweep_leases(&self) -> usize {
        let Some(lease) = self.lease else { return 0 };
        let mut st = self.state.lock();
        let mut swept: Vec<(usize, usize)> = Vec::new(); // (rank, donated)
        for (&rank, slot) in st.ranks.iter_mut() {
            if slot.crashed || !slot.blocked {
                continue;
            }
            let overdue = slot.blocked_since.is_some_and(|t0| t0.elapsed() >= lease);
            let held = slot.owned.saturating_sub(slot.lent_out);
            if overdue && held > 0 {
                slot.lent_out += held;
                slot.pool.set_active(1); // floor; the core itself is gone
                swept.push((rank, held));
            }
        }
        for &(_, donated) in &swept {
            st.free_lent += donated;
        }
        drop(st);
        if swept.is_empty() {
            return 0;
        }
        let t = self.now();
        {
            let mut ev = self.events.lock();
            for &(rank, donated) in &swept {
                ev.push(DlbEvent { t, rank, kind: DlbEventKind::LeaseExpired { cores: donated } });
            }
        }
        let swept_cores = swept.iter().map(|&(_, d)| d).sum::<usize>();
        {
            let mut s = self.stats.lock();
            s.lease_expiries += swept.len();
            s.cores_lent_total += swept_cores;
        }
        cfpd_telemetry::count!("dlb.lease_expiries", swept.len() as u64);
        cfpd_telemetry::count!("dlb.cores_lent_total", swept_cores as u64);
        cfpd_telemetry::gauge_add!("dlb.cores_lent_out", swept_cores as i64);
        self.redistribute();
        swept.len()
    }

    /// Core-conservation check for tests: total active workers across
    /// pools never exceed total owned cores plus the pool floor of each
    /// fully-lent (blocked-LendAll, lease-swept, or crashed) rank, and
    /// unaccounted free cores are non-negative.
    pub fn conservation(&self) -> (usize, usize) {
        let st = self.state.lock();
        let total_owned: usize = st.ranks.values().map(|s| s.owned).sum();
        let mut budget = total_owned;
        let mut active = 0usize;
        for s in st.ranks.values() {
            active += s.pool.active();
            // A rank whose entire allotment is lent away still runs a
            // single floor worker that owns no core.
            if s.lent_out >= s.owned {
                budget += 1;
            }
        }
        (active + st.free_lent, budget)
    }
    fn redistribute(&self) {
        let mut st = self.state.lock();
        if st.free_lent == 0 {
            return;
        }
        // A pre-lending rank (`lent_out > 0` while unblocked) never
        // receives grants: it just shed cores on purpose, and handing
        // them straight back would undo the prediction.
        let busy: Vec<usize> = st
            .ranks
            .iter()
            .filter(|(_, s)| !s.blocked && s.lent_out == 0)
            .map(|(&r, _)| r)
            .collect();
        if busy.is_empty() {
            return;
        }
        let mut grants: Vec<(usize, usize, usize)> = Vec::new();
        let mut free = st.free_lent;
        // One core at a time; the recipient is chosen by the grant
        // policy. A rank saturated at its pool capacity absorbs nothing
        // (extra threads would be clamped and the cores wasted).
        let mut idx = 0usize;
        let mut granted_to: BTreeMap<usize, usize> = BTreeMap::new();
        while free > 0 {
            let has_room = |s: &RankSlot| s.owned + s.borrowed < s.pool.max_workers();
            let recipient = match self.grant_policy {
                GrantPolicy::Even => {
                    // Round-robin over busy ranks, skipping full pools.
                    let mut pick = None;
                    for k in 0..busy.len() {
                        let r = busy[(idx + k) % busy.len()];
                        if has_room(&st.ranks[&r]) {
                            idx = (idx + k + 1) % busy.len();
                            pick = Some(r);
                            break;
                        }
                    }
                    pick
                }
                GrantPolicy::Neediest => busy
                    .iter()
                    .copied()
                    .filter(|r| has_room(&st.ranks[r]))
                    .min_by_key(|r| {
                        let s = &st.ranks[r];
                        (s.owned + s.borrowed, *r)
                    }),
            };
            let Some(r) = recipient else { break };
            let slot = st.ranks.get_mut(&r).unwrap();
            slot.borrowed += 1;
            *granted_to.entry(r).or_default() += 1;
            free -= 1;
        }
        st.free_lent = free;
        for (&r, &n) in &granted_to {
            let s = &st.ranks[&r];
            let active = s.owned + s.borrowed;
            s.pool.set_active(active);
            grants.push((r, n, active));
        }
        drop(st);
        let t = self.now();
        let mut ev = self.events.lock();
        for (r, n, active) in &grants {
            ev.push(DlbEvent { t, rank: *r, kind: DlbEventKind::Borrow { cores: *n, active: *active } });
        }
        drop(ev);
        self.stats.lock().grants += grants.len();
        cfpd_telemetry::count!("dlb.grants", grants.len() as u64);
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<DlbEvent> {
        self.events.lock().clone()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> DlbStats {
        *self.stats.lock()
    }

    /// Current active executor count of a registered rank's pool.
    pub fn active_of(&self, rank: usize) -> Option<usize> {
        self.state.lock().ranks.get(&rank).map(|s| s.pool.active())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max: usize) -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(max))
    }

    #[test]
    fn lend_grows_the_busy_rank() {
        let node = DlbNode::new();
        node.register(0, pool(4), 2);
        node.register(1, pool(4), 2);
        assert_eq!(node.active_of(0), Some(2));
        node.lend(0);
        // Rank 0 keeps 1 core; its other core goes to rank 1.
        assert_eq!(node.active_of(0), Some(1));
        assert_eq!(node.active_of(1), Some(3));
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(2));
        assert_eq!(node.active_of(1), Some(2));
    }

    #[test]
    fn redistribution_is_even() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 2);
        node.register(2, pool(8), 2);
        node.lend(0); // lends 3 (keeps 1)
        let a1 = node.active_of(1).unwrap();
        let a2 = node.active_of(2).unwrap();
        assert_eq!(a1 + a2, 2 + 2 + 3);
        assert!((a1 as i64 - a2 as i64).abs() <= 1, "{a1} vs {a2}");
    }

    #[test]
    fn reclaim_revokes_from_borrowers() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.lend(0);
        assert_eq!(node.active_of(1), Some(7));
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(4));
        assert_eq!(node.active_of(1), Some(4));
        let stats = node.stats();
        assert_eq!(stats.lends, 1);
        assert_eq!(stats.reclaims, 1);
        assert!(stats.revokes >= 1);
    }

    #[test]
    fn blocked_borrower_returns_loans() {
        let node = DlbNode::new();
        node.register(0, pool(8), 3);
        node.register(1, pool(8), 3);
        node.register(2, pool(8), 2);
        node.lend(0); // rank1/rank2 borrow rank0's 2 cores
        let borrowed_total = node.active_of(1).unwrap() + node.active_of(2).unwrap();
        assert_eq!(borrowed_total, 3 + 2 + 2);
        node.lend(1); // rank 1 blocks too: its owned + borrowed go to rank 2
        // Rank 2 can absorb up to its pool max (8).
        let a2 = node.active_of(2).unwrap();
        assert!(a2 > 2, "rank 2 should have grown, got {a2}");
        node.reclaim(0);
        node.reclaim(1);
        assert_eq!(node.active_of(0), Some(3));
        assert_eq!(node.active_of(1), Some(3));
        assert_eq!(node.active_of(2), Some(2));
    }

    #[test]
    fn grants_capped_by_pool_capacity() {
        let node = DlbNode::new();
        node.register(0, pool(8), 6);
        node.register(1, pool(4), 2); // can absorb at most 2 extra
        node.lend(0); // lends 5
        assert_eq!(node.active_of(1), Some(4), "cap at pool max_workers");
    }

    #[test]
    fn double_lend_is_idempotent() {
        let node = DlbNode::new();
        node.register(0, pool(4), 2);
        node.register(1, pool(4), 2);
        node.lend(0);
        node.lend(0); // e.g. nested blocking calls
        assert_eq!(node.active_of(1), Some(3));
        node.reclaim(0);
        assert_eq!(node.active_of(1), Some(2));
        node.reclaim(0); // idempotent
        assert_eq!(node.active_of(0), Some(2));
    }

    #[test]
    fn unregistered_rank_ignored() {
        let node = DlbNode::new();
        node.register(0, pool(4), 2);
        node.lend(99); // no-op
        node.reclaim(99);
        assert_eq!(node.active_of(0), Some(2));
    }

    #[test]
    fn lend_all_policy_lends_every_core() {
        let node = DlbNode::with_policies(LendPolicy::LendAll, GrantPolicy::Even);
        node.register(0, pool(4), 2);
        node.register(1, pool(4), 2);
        node.lend(0);
        // Both of rank 0's cores go to rank 1 (pool floor keeps 1 thread
        // alive for the blocked rank's own pool).
        assert_eq!(node.active_of(1), Some(4));
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(2));
        assert_eq!(node.active_of(1), Some(2));
    }

    #[test]
    fn neediest_policy_feeds_the_smallest_pool() {
        let node = DlbNode::with_policies(LendPolicy::KeepOne, GrantPolicy::Neediest);
        node.register(0, pool(8), 5);
        node.register(1, pool(8), 4);
        node.register(2, pool(8), 1); // the straggler with fewest cores
        node.lend(0); // lends 4
        // All 4 go to rank 2 first until it catches up with rank 1.
        let a1 = node.active_of(1).unwrap();
        let a2 = node.active_of(2).unwrap();
        assert!(a2 > 1, "straggler must be fed first: {a2}");
        assert!(a2 >= a1 - 1, "neediest should roughly equalize: {a1} vs {a2}");
        node.reclaim(0);
        assert_eq!(node.active_of(2), Some(1));
    }

    fn assert_conserved(node: &DlbNode) {
        let (held, budget) = node.conservation();
        assert_eq!(held, budget, "core conservation violated");
    }

    #[test]
    fn lease_sweep_donates_the_kept_core_and_reclaim_recovers() {
        let node = DlbNode::with_lease(
            LendPolicy::KeepOne,
            GrantPolicy::Even,
            Some(Duration::ZERO), // every blocked rank is instantly overdue
        );
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.lend(0); // lends 3, keeps 1
        assert_eq!(node.active_of(1), Some(7));
        assert_conserved(&node);
        assert_eq!(node.sweep_leases(), 1); // the kept core goes too
        assert_eq!(node.active_of(1), Some(8));
        assert_eq!(node.active_of(0), Some(1), "floor worker only");
        assert_conserved(&node);
        // Reclaim must take back owned cores exactly — including the
        // swept one — with no core minted or lost.
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(4));
        assert_eq!(node.active_of(1), Some(4));
        assert_conserved(&node);
        let stats = node.stats();
        assert_eq!(stats.lease_expiries, 1);
        assert!(node
            .events()
            .iter()
            .any(|e| matches!(e.kind, DlbEventKind::LeaseExpired { cores: 1 })));
    }

    #[test]
    fn lease_sweep_is_a_noop_without_a_lease_or_under_lend_all() {
        let node = DlbNode::new(); // no lease configured
        node.register(0, pool(4), 2);
        node.lend(0);
        assert_eq!(node.sweep_leases(), 0);
        // LendAll already lends everything: nothing left to sweep.
        let node = DlbNode::with_lease(
            LendPolicy::LendAll,
            GrantPolicy::Even,
            Some(Duration::ZERO),
        );
        node.register(0, pool(4), 2);
        node.register(1, pool(4), 2);
        node.lend(0);
        assert_eq!(node.sweep_leases(), 0);
        assert_conserved(&node);
    }

    #[test]
    fn crashed_rank_donates_everything_permanently() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.mark_crashed(0);
        assert_eq!(node.active_of(1), Some(8), "survivor gets the allotment");
        assert_eq!(node.active_of(0), Some(1), "floor worker only");
        assert_conserved(&node);
        // Idempotent, and lend/reclaim from the dead rank are ignored.
        node.mark_crashed(0);
        node.lend(0);
        node.reclaim(0);
        assert_eq!(node.active_of(1), Some(8));
        assert_eq!(node.stats().crashes, 1);
        assert_conserved(&node);
    }

    #[test]
    fn crash_of_a_blocked_rank_donates_only_the_kept_core() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.lend(0); // 3 lent, 1 kept
        node.mark_crashed(0); // the kept core follows
        assert_eq!(node.active_of(1), Some(8));
        assert_conserved(&node);
        let crashed_cores: usize = node
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                DlbEventKind::Crashed { cores } => Some(cores),
                _ => None,
            })
            .sum();
        assert_eq!(crashed_cores, 1);
    }

    #[test]
    fn pre_lend_sheds_cores_without_blocking() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        assert_eq!(node.pre_lend(0, 2), 2);
        // Rank 0 keeps computing on 2 cores; rank 1 borrows the surplus.
        assert_eq!(node.active_of(0), Some(2));
        assert_eq!(node.active_of(1), Some(6));
        assert_conserved(&node);
        // The prediction was wrong (the rank never blocked): reclaim
        // still recovers everything.
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(4));
        assert_eq!(node.active_of(1), Some(4));
        assert_conserved(&node);
        let stats = node.stats();
        assert_eq!(stats.pre_lends, 1);
        assert_eq!(stats.reclaims, 1);
        assert!(node
            .events()
            .iter()
            .any(|e| matches!(e.kind, DlbEventKind::PreLend { cores: 2 })));
    }

    #[test]
    fn pre_lend_keeps_at_least_one_core() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        // Asking for more than the headroom caps at owned - 1.
        assert_eq!(node.pre_lend(0, 99), 3);
        assert_eq!(node.active_of(0), Some(1));
        assert_conserved(&node);
        // Nothing left to pre-lend.
        assert_eq!(node.pre_lend(0, 1), 0);
        assert_conserved(&node);
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(4));
        assert_conserved(&node);
    }

    #[test]
    fn blocking_after_pre_lend_never_mints_cores() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        assert_eq!(node.pre_lend(0, 2), 2);
        assert_conserved(&node);
        // The predicted blocking call arrives: the reactive lend tops up
        // only the remaining headroom (keep-one over what is pre-lent).
        node.lend(0);
        assert_eq!(node.active_of(0), Some(1));
        assert_eq!(node.active_of(1), Some(7));
        assert_conserved(&node);
        node.reclaim(0);
        assert_eq!(node.active_of(0), Some(4));
        assert_eq!(node.active_of(1), Some(4));
        assert_conserved(&node);
    }

    #[test]
    fn crash_after_pre_lend_stays_conserved() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.pre_lend(0, 2);
        node.mark_crashed(0);
        assert_eq!(node.active_of(1), Some(8));
        assert_conserved(&node);
    }

    #[test]
    fn pre_lending_rank_receives_no_grants() {
        let node = DlbNode::new();
        node.register(0, pool(8), 4);
        node.register(1, pool(8), 4);
        node.register(2, pool(16), 4);
        node.pre_lend(0, 2);
        node.lend(1); // rank 1 blocks, lends 3
        // All free cores land on rank 2; the pre-lender stays shrunk.
        assert_eq!(node.active_of(0), Some(2));
        assert_eq!(node.active_of(2), Some(4 + 2 + 3));
        assert_conserved(&node);
        node.reclaim(1);
        node.reclaim(0);
        assert_conserved(&node);
    }

    #[test]
    fn dlb_policy_parses_by_name() {
        assert_eq!(DlbPolicy::parse("reactive"), Some(DlbPolicy::Reactive));
        assert_eq!(DlbPolicy::parse("lewi"), Some(DlbPolicy::Reactive));
        assert_eq!(DlbPolicy::parse("predictive"), Some(DlbPolicy::Predictive));
        assert_eq!(DlbPolicy::parse("nope"), None);
        assert_eq!(DlbPolicy::default(), DlbPolicy::Reactive);
        assert_eq!(DlbPolicy::Predictive.name(), "predictive");
    }

    #[test]
    fn event_log_records_lend_borrow_reclaim() {
        let node = DlbNode::new();
        node.register(0, pool(4), 2);
        node.register(1, pool(4), 2);
        node.lend(0);
        node.reclaim(0);
        let evs = node.events();
        assert!(matches!(evs[0].kind, DlbEventKind::Lend { cores: 1 }));
        assert!(evs.iter().any(|e| matches!(e.kind, DlbEventKind::Borrow { .. })));
        assert!(evs.iter().any(|e| matches!(e.kind, DlbEventKind::Reclaim { .. })));
    }
}
