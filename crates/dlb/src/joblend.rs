//! Job-level LeWI: slot lending between *jobs on a node*, the same
//! lend/reclaim vocabulary [`crate::lewi::DlbNode`] applies to cores
//! between ranks, lifted one level up the hierarchy for `cfpd serve`.
//!
//! A node runs `slots` concurrent jobs. A running job that gets
//! preempted *lends* its slot (it parks on a checkpoint, exactly like a
//! rank parking in a blocking MPI call); the admitted short job takes
//! the slot via an ordinary acquire; when the preempted job is
//! rescheduled it *reclaims*. The arbiter is pure bookkeeping — the
//! caller (the serve scheduler) holds its own lock and drives the
//! transitions — but it enforces the conservation invariant
//! (`held + free == total`, no job holds two slots) and keeps the
//! event log + stats that make preemption observable and testable.

use std::collections::BTreeSet;

/// What happened to a slot, in LeWI vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobLendEventKind {
    /// A job took a free slot to start (or resume after a lend).
    Acquire,
    /// A preempted job voluntarily returned its slot.
    Lend,
    /// A previously preempted job re-acquired a slot.
    Reclaim,
    /// A terminal job (done/failed/cancelled) released its slot.
    Release,
}

/// One slot transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLendEvent {
    pub kind: JobLendEventKind,
    pub job: u64,
}

/// Aggregate lending statistics (mirrors [`crate::lewi::DlbStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobLendStats {
    pub acquires: u64,
    pub lends: u64,
    pub reclaims: u64,
    pub releases: u64,
    /// High-water mark of simultaneously held slots.
    pub peak_held: usize,
}

/// The slot arbiter. Not internally synchronized: wrap it in the
/// scheduler's state lock.
#[derive(Debug)]
pub struct JobArbiter {
    total: usize,
    held: BTreeSet<u64>,
    stats: JobLendStats,
    events: Vec<JobLendEvent>,
}

impl JobArbiter {
    pub fn new(slots: usize) -> JobArbiter {
        assert!(slots >= 1, "a node needs at least one job slot");
        JobArbiter {
            total: slots,
            held: BTreeSet::new(),
            stats: JobLendStats::default(),
            events: Vec::new(),
        }
    }

    pub fn total(&self) -> usize {
        self.total
    }

    pub fn free(&self) -> usize {
        self.total - self.held.len()
    }

    pub fn holds(&self, job: u64) -> bool {
        self.held.contains(&job)
    }

    /// Take a free slot. `false` when the node is full (the caller
    /// queues the job) or the job already holds one.
    pub fn try_acquire(&mut self, job: u64) -> bool {
        if self.free() == 0 || self.held.contains(&job) {
            return false;
        }
        self.held.insert(job);
        self.stats.acquires += 1;
        self.stats.peak_held = self.stats.peak_held.max(self.held.len());
        self.events.push(JobLendEvent { kind: JobLendEventKind::Acquire, job });
        cfpd_telemetry::count!("dlb.job_acquires");
        true
    }

    /// A preempted job returns its slot so another job can run.
    pub fn lend(&mut self, job: u64) {
        assert!(self.held.remove(&job), "job {job} lent a slot it does not hold");
        self.stats.lends += 1;
        self.events.push(JobLendEvent { kind: JobLendEventKind::Lend, job });
        cfpd_telemetry::count!("dlb.job_lends");
    }

    /// A previously preempted job re-acquires a slot to resume from its
    /// checkpoint. Bookkept separately from [`Self::try_acquire`] so
    /// preemption round trips are visible in the stats.
    pub fn try_reclaim(&mut self, job: u64) -> bool {
        if self.free() == 0 || self.held.contains(&job) {
            return false;
        }
        self.held.insert(job);
        self.stats.reclaims += 1;
        self.stats.peak_held = self.stats.peak_held.max(self.held.len());
        self.events.push(JobLendEvent { kind: JobLendEventKind::Reclaim, job });
        cfpd_telemetry::count!("dlb.job_reclaims");
        true
    }

    /// A terminal job gives its slot back for good.
    pub fn release(&mut self, job: u64) {
        assert!(self.held.remove(&job), "job {job} released a slot it does not hold");
        self.stats.releases += 1;
        self.events.push(JobLendEvent { kind: JobLendEventKind::Release, job });
    }

    /// `(held, total)` — the conservation invariant is
    /// `held + free() == total` with every holder distinct, which the
    /// `BTreeSet` representation makes true by construction; exposed so
    /// tests can assert it after arbitrary transition sequences.
    pub fn conservation(&self) -> (usize, usize) {
        (self.held.len(), self.total)
    }

    pub fn stats(&self) -> JobLendStats {
        self.stats
    }

    pub fn events(&self) -> &[JobLendEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_lend_reclaim_release_cycle() {
        let mut a = JobArbiter::new(1);
        assert!(a.try_acquire(1));
        assert!(!a.try_acquire(2), "full node must refuse");
        // Preempt job 1, admit job 2.
        a.lend(1);
        assert!(a.try_acquire(2));
        a.release(2);
        // Job 1 resumes.
        assert!(a.try_reclaim(1));
        a.release(1);
        let s = a.stats();
        assert_eq!((s.acquires, s.lends, s.reclaims, s.releases), (2, 1, 1, 2));
        assert_eq!(s.peak_held, 1);
        assert_eq!(a.conservation(), (0, 1));
        assert_eq!(a.events().len(), 6);
    }

    #[test]
    fn double_acquire_is_refused_and_conservation_holds() {
        let mut a = JobArbiter::new(3);
        assert!(a.try_acquire(7));
        assert!(!a.try_acquire(7), "a job cannot hold two slots");
        assert!(!a.try_reclaim(7));
        assert!(a.try_acquire(8));
        let (held, total) = a.conservation();
        assert_eq!(held + a.free(), total);
        assert_eq!(held, 2);
        assert_eq!(a.stats().peak_held, 2);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_a_slot_never_held_panics() {
        JobArbiter::new(2).release(9);
    }
}
