//! Cluster-level DLB wiring: maps universe ranks to nodes and adapts the
//! simmpi PMPI hooks onto the per-node LeWI arbiters.
//!
//! DLB only moves cores *within* a node (cores cannot cross the network);
//! the paper runs on two nodes of each cluster, so the rank→node mapping
//! matters for how much imbalance DLB can absorb.

use crate::lewi::{DlbEvent, DlbNode, DlbStats, GrantPolicy, LendPolicy};
use cfpd_runtime::ThreadPool;
use cfpd_simmpi::{BlockKind, MpiHooks};
use std::sync::Arc;
use std::time::Duration;

/// DLB for a whole virtual cluster: one [`DlbNode`] per node plus the
/// rank→node map. Implements [`MpiHooks`] so it can be passed directly
/// to `Universe::run_with_hooks` — making DLB *transparent to the
/// application*, as in the paper.
pub struct DlbCluster {
    nodes: Vec<Arc<DlbNode>>,
    node_of_rank: Vec<usize>,
    enabled: bool,
}

impl DlbCluster {
    /// Create a cluster with `num_nodes` nodes and a block distribution
    /// of `num_ranks` ranks over them (ranks 0..r/n on node 0, etc. —
    /// the usual scheduler placement).
    pub fn new_block(num_ranks: usize, num_nodes: usize) -> DlbCluster {
        Self::new_block_with(
            num_ranks,
            num_nodes,
            LendPolicy::default(),
            GrantPolicy::default(),
            None,
        )
    }

    /// Block distribution with explicit LeWI policies and an optional
    /// lending lease (see [`DlbNode::sweep_leases`]) — the resilient
    /// configuration used by chaos runs.
    pub fn new_block_with(
        num_ranks: usize,
        num_nodes: usize,
        lend: LendPolicy,
        grant: GrantPolicy,
        lease: Option<Duration>,
    ) -> DlbCluster {
        Self::new_block_with_epoch(
            num_ranks,
            num_nodes,
            lend,
            grant,
            lease,
            std::time::Instant::now(),
        )
    }

    /// Like [`DlbCluster::new_block_with`] but timestamping DLB events
    /// against an explicit epoch, so traced runs put lend/reclaim marks
    /// on the same clock as phase and message records.
    pub fn new_block_with_epoch(
        num_ranks: usize,
        num_nodes: usize,
        lend: LendPolicy,
        grant: GrantPolicy,
        lease: Option<Duration>,
        epoch: std::time::Instant,
    ) -> DlbCluster {
        assert!(num_nodes >= 1);
        let per = num_ranks.div_ceil(num_nodes);
        let node_of_rank = (0..num_ranks).map(|r| r / per).collect();
        DlbCluster {
            nodes: (0..num_nodes)
                .map(|_| DlbNode::with_lease_at(lend, grant, lease, epoch))
                .collect(),
            node_of_rank,
            enabled: true,
        }
    }

    /// Explicit rank→node mapping.
    pub fn new_with_map(node_of_rank: Vec<usize>) -> DlbCluster {
        let num_nodes = node_of_rank.iter().copied().max().map_or(1, |m| m + 1);
        DlbCluster {
            nodes: (0..num_nodes).map(|_| DlbNode::new()).collect(),
            node_of_rank,
            enabled: true,
        }
    }

    /// A disabled cluster: hooks become no-ops (the "original" runs in
    /// the paper's figures). Keeping the same object shape lets callers
    /// toggle DLB without restructuring.
    pub fn disabled(num_ranks: usize, num_nodes: usize) -> DlbCluster {
        let mut c = Self::new_block(num_ranks, num_nodes);
        c.enabled = false;
        c
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank[rank]
    }

    /// Register a rank's pool and core allotment with its node arbiter.
    pub fn register(&self, rank: usize, pool: Arc<ThreadPool>, owned_cores: usize) {
        self.nodes[self.node_of_rank[rank]].register(rank, pool, owned_cores);
    }

    /// Node arbiter of `rank` (for inspection in tests / tracing).
    pub fn node(&self, node: usize) -> &Arc<DlbNode> {
        &self.nodes[node]
    }

    /// All events across nodes, tagged with node id.
    pub fn all_events(&self) -> Vec<(usize, DlbEvent)> {
        let mut out = Vec::new();
        for (n, node) in self.nodes.iter().enumerate() {
            for e in node.events() {
                out.push((n, e));
            }
        }
        out.sort_by(|a, b| a.1.t.partial_cmp(&b.1.t).unwrap());
        out
    }

    /// Summed statistics across nodes.
    pub fn total_stats(&self) -> DlbStats {
        let mut total = DlbStats::default();
        for n in &self.nodes {
            let s = n.stats();
            total.lends += s.lends;
            total.pre_lends += s.pre_lends;
            total.reclaims += s.reclaims;
            total.grants += s.grants;
            total.revokes += s.revokes;
            total.cores_lent_total += s.cores_lent_total;
            total.lease_expiries += s.lease_expiries;
            total.crashes += s.crashes;
        }
        total
    }

    /// Predictively lend up to `want` of `rank`'s cores on its node
    /// ahead of an anticipated blocking call (see
    /// [`DlbNode::pre_lend`]). Returns the cores actually lent.
    pub fn pre_lend(&self, rank: usize, want: usize) -> usize {
        if self.enabled && rank < self.node_of_rank.len() {
            self.nodes[self.node_of_rank[rank]].pre_lend(rank, want)
        } else {
            0
        }
    }

    /// Declare a rank crashed on its node (fail-silent degradation).
    pub fn mark_crashed(&self, rank: usize) {
        if self.enabled && rank < self.node_of_rank.len() {
            self.nodes[self.node_of_rank[rank]].mark_crashed(rank);
        }
    }

    /// Sweep lending leases on every node; returns total ranks swept.
    pub fn sweep_leases(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        self.nodes.iter().map(|n| n.sweep_leases()).sum()
    }
}

impl MpiHooks for DlbCluster {
    fn on_block(&self, rank: usize, _kind: BlockKind) {
        if self.enabled && rank < self.node_of_rank.len() {
            self.nodes[self.node_of_rank[rank]].lend(rank);
        }
    }

    fn on_unblock(&self, rank: usize, _kind: BlockKind) {
        if self.enabled && rank < self.node_of_rank.len() {
            self.nodes[self.node_of_rank[rank]].reclaim(rank);
        }
    }

    /// A timeout-carrying wait expired somewhere: a natural moment to
    /// check whether any blocked peer has overstayed its lease.
    fn on_timeout(&self, _rank: usize, _kind: BlockKind) {
        self.sweep_leases();
    }

    /// The fabric declared a rank dead: degrade gracefully by donating
    /// its cores to the survivors on its node.
    fn on_rank_dead(&self, rank: usize) {
        self.mark_crashed(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_runtime::parallel_for;
    use cfpd_simmpi::Universe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn block_distribution() {
        let c = DlbCluster::new_block(8, 2);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(3), 0);
        assert_eq!(c.node_of(4), 1);
        assert_eq!(c.node_of(7), 1);
    }

    #[test]
    fn hooks_route_to_the_right_node() {
        let c = DlbCluster::new_block(4, 2);
        c.register(0, Arc::new(ThreadPool::new(4)), 2);
        c.register(1, Arc::new(ThreadPool::new(4)), 2);
        c.register(2, Arc::new(ThreadPool::new(4)), 2);
        c.register(3, Arc::new(ThreadPool::new(4)), 2);
        c.on_block(0, BlockKind::Recv);
        // Node 0's rank 1 grew; node 1 untouched.
        assert_eq!(c.node(0).active_of(1), Some(3));
        assert_eq!(c.node(1).active_of(2), Some(2));
        assert_eq!(c.node(1).active_of(3), Some(2));
        c.on_unblock(0, BlockKind::Recv);
        assert_eq!(c.node(0).active_of(1), Some(2));
    }

    #[test]
    fn disabled_cluster_is_inert() {
        let c = DlbCluster::disabled(2, 1);
        c.register(0, Arc::new(ThreadPool::new(4)), 2);
        c.register(1, Arc::new(ThreadPool::new(4)), 2);
        c.on_block(0, BlockKind::Recv);
        assert_eq!(c.node(0).active_of(1), Some(2), "disabled DLB must not lend");
    }

    /// End-to-end: an imbalanced 2-rank hybrid run where DLB visibly
    /// grows the busy rank's pool while the other blocks in recv —
    /// the Fig. 5 scenario.
    #[test]
    fn end_to_end_lending_during_mpi_block() {
        let cluster = Arc::new(DlbCluster::new_block(2, 1));
        let pools: Vec<Arc<ThreadPool>> =
            (0..2).map(|_| Arc::new(ThreadPool::new(4))).collect();
        cluster.register(0, Arc::clone(&pools[0]), 2);
        cluster.register(1, Arc::clone(&pools[1]), 2);
        let observed_active = Arc::new(AtomicUsize::new(0));

        let pools2 = pools.clone();
        let obs = Arc::clone(&observed_active);
        let hooks: Arc<dyn cfpd_simmpi::MpiHooks> = Arc::clone(&cluster) as _;
        Universe::run_with_hooks(2, hooks, move |comm| {
            let pool = &pools2[comm.rank()];
            if comm.rank() == 0 {
                // Lightly loaded: blocks waiting for rank 1.
                let _: u8 = comm.recv(1, 0);
            } else {
                // Heavily loaded: work in parallel regions while rank 0
                // blocks; record the largest pool we saw.
                std::thread::sleep(std::time::Duration::from_millis(20));
                for _ in 0..20 {
                    let best = Arc::clone(&obs);
                    parallel_for(pool, 0..1000, 100, |_r| {});
                    best.fetch_max(pool.active(), Ordering::SeqCst);
                }
                comm.send(0, 0, 1u8);
            }
        });
        assert!(
            observed_active.load(Ordering::SeqCst) >= 3,
            "rank 1 should have borrowed rank 0's core while it blocked"
        );
        let stats = cluster.total_stats();
        assert!(stats.lends >= 1);
        assert!(stats.reclaims >= 1);
    }
}
