//! # cfpd-dlb — Dynamic Load Balancing (LeWI) from scratch
//!
//! Reproduction of BSC's DLB library as used in the paper (§3.2): a
//! runtime agent, *transparent to the application*, that reacts to load
//! imbalance by moving cores between MPI processes co-located on a
//! node. A rank entering a blocking MPI call lends its cores
//! ([`lewi::DlbNode::lend`]); busy ranks' worker pools grow; on return
//! the cores are reclaimed. Attachment is via the PMPI-style hooks of
//! `cfpd-simmpi` ([`cluster::DlbCluster`] implements
//! [`cfpd_simmpi::MpiHooks`]), so the simulation code never mentions
//! DLB — the same "no source changes" property the paper highlights.

pub mod cluster;
pub mod joblend;
pub mod lewi;

pub use cluster::DlbCluster;
pub use joblend::{JobArbiter, JobLendEvent, JobLendEventKind, JobLendStats};
pub use lewi::{DlbEvent, DlbEventKind, DlbNode, DlbPolicy, DlbStats, GrantPolicy, LendPolicy};
