//! Meshing of a single airway tube (one branch of the bronchial tree).
//!
//! Structure of a tube cross-section, from the wall inward:
//!
//! * `n_bl` **prism boundary layers**: the wall surface is triangulated
//!   structurally in (θ, z) and extruded radially inward, producing the
//!   boundary-layer prisms the paper's mesh uses to resolve near-wall
//!   gradients (§2.1, Fig. 1);
//! * a **tetrahedral core**: each z-slab of the core disc triangulation
//!   forms logical prisms that are split into 3 tets with the
//!   *lowest-global-index diagonal rule* ([`split_prism_into_tets`]),
//!   which keeps shared quad faces conforming — including the faces
//!   shared with the prism layers.
//!
//! Tube end cross-sections are exported as [`CapFaces`] (quads from the
//! prism layers + triangles from the core disc) so that junction filling
//! can cap them with **pyramids** and tets — the third element family of
//! the hybrid mesh.

use crate::builder::{split_prism_into_tets, MeshBuilder};
use crate::geom::{Frame, Vec3};

/// Resolution and boundary-layer parameters shared by every tube of an
/// airway tree.
#[derive(Debug, Clone, Copy)]
pub struct TubeParams {
    /// Nodes around the circumference (≥ 3).
    pub n_theta: usize,
    /// Number of prism boundary layers (≥ 1).
    pub n_bl_layers: usize,
    /// Number of core ring bands between the innermost boundary-layer
    /// ring and the centerline (≥ 1; 1 means a plain fan to the center).
    pub n_core_rings: usize,
    /// Fraction of the tube radius occupied by the boundary layer.
    pub bl_thickness_frac: f64,
    /// Geometric growth of boundary-layer thickness away from the wall.
    pub bl_growth: f64,
}

impl Default for TubeParams {
    fn default() -> Self {
        TubeParams {
            n_theta: 12,
            n_bl_layers: 2,
            n_core_rings: 2,
            bl_thickness_frac: 0.3,
            bl_growth: 1.6,
        }
    }
}

impl TubeParams {
    /// Total number of concentric rings (wall ring, BL rings, core rings,
    /// excluding the center node).
    pub fn num_rings(&self) -> usize {
        self.n_bl_layers + self.n_core_rings
    }

    /// Radii of all rings for a cross-section of wall radius `r`,
    /// outermost (wall) first. The last entry is the innermost ring;
    /// the center node sits at radius 0.
    pub fn ring_radii(&self, r: f64) -> Vec<f64> {
        let mut radii = Vec::with_capacity(self.num_rings());
        // Boundary layer: thinnest layer at the wall, geometric growth
        // inward — standard BL grading.
        let total_bl = self.bl_thickness_frac * r;
        let mut weights = Vec::with_capacity(self.n_bl_layers);
        let mut w = 1.0;
        for _ in 0..self.n_bl_layers {
            weights.push(w);
            w *= self.bl_growth;
        }
        let wsum: f64 = weights.iter().sum();
        let mut cur = r;
        radii.push(cur);
        for l in 0..self.n_bl_layers {
            cur -= total_bl * weights[l] / wsum;
            radii.push(cur);
        }
        // radii now holds wall + n_bl inner BL rings; the innermost BL
        // ring doubles as the outermost core ring. Add the interior core
        // rings (evenly spaced towards the center, excluding radius 0).
        let r_core = cur;
        for j in 1..self.n_core_rings {
            radii.push(r_core * (self.n_core_rings - j) as f64 / self.n_core_rings as f64);
        }
        // Ring count: wall + n_bl BL rings + (n_core_rings - 1) interior
        // core rings = num_rings() (the innermost BL ring doubles as the
        // outermost core ring).
        debug_assert_eq!(radii.len(), self.num_rings());
        radii
    }
}

/// Exposed faces of one tube end cross-section, used by junction/cap
/// filling. Quads come from the prism boundary layers (they are capped
/// with pyramids), triangles from the tetrahedral core (capped with tets).
#[derive(Debug, Clone, Default)]
pub struct CapFaces {
    pub quads: Vec<[u32; 4]>,
    pub tris: Vec<[u32; 3]>,
    /// Wall-ring node loop of this cross section (ring 0), used to tag
    /// the junction rim as wall boundary.
    pub rim: Vec<u32>,
    /// All node ids of the cross-section (for boundary classification).
    pub all_nodes: Vec<u32>,
    /// Geometric center of the cross-section.
    pub center: Vec3,
    /// Outward axis direction (pointing away from the tube interior).
    pub outward: Vec3,
    /// Wall radius of the cross-section.
    pub radius: f64,
}

/// The volume mesh of a tube plus its two end cross-sections.
#[derive(Debug)]
pub struct TubeMesh {
    pub start_cap: CapFaces,
    pub end_cap: CapFaces,
    /// Range of element indices generated for this tube.
    pub elem_range: std::ops::Range<u32>,
}

/// Station node grid of one cross section: `rings[ring][i]` + `center`.
struct Station {
    rings: Vec<Vec<u32>>,
    center: u32,
}

/// Mesh a straight tube from `start` along `frame.t` with length `len`,
/// wall radius tapering linearly from `r_start` to `r_end`, using `nz`
/// axial segments.
pub fn mesh_tube(
    b: &mut MeshBuilder,
    params: &TubeParams,
    start: Vec3,
    frame: Frame,
    len: f64,
    r_start: f64,
    r_end: f64,
    nz: usize,
) -> TubeMesh {
    assert!(params.n_theta >= 3, "n_theta must be >= 3");
    assert!(params.n_bl_layers >= 1, "need at least one boundary layer");
    assert!(params.n_core_rings >= 1, "need at least one core ring band");
    assert!(nz >= 1, "need at least one axial segment");
    let elem_start = b.num_elements() as u32;
    let nt = params.n_theta;
    let n_rings = params.num_rings();

    // ---- nodes -------------------------------------------------------
    let mut stations = Vec::with_capacity(nz + 1);
    for s in 0..=nz {
        let f = s as f64 / nz as f64;
        let center = start + frame.t * (len * f);
        let r = r_start + (r_end - r_start) * f;
        let radii = params.ring_radii(r);
        let mut rings = Vec::with_capacity(n_rings + 1);
        for &rr in &radii {
            let mut ring = Vec::with_capacity(nt);
            for i in 0..nt {
                let a = 2.0 * std::f64::consts::PI * i as f64 / nt as f64;
                ring.push(b.add_node(frame.circle_point(center, rr, a)));
            }
            rings.push(ring);
        }
        let center_node = b.add_node(center);
        stations.push(Station { rings, center: center_node });
    }

    // ---- 2D core disc triangulation (station-local pattern) ----------
    // Triangles are expressed as (ring, theta) index pairs so the same
    // pattern instantiates at any station. Ring indices here are global
    // ring indices (n_bl .. n_rings), center = None marker via usize::MAX.
    let first_core_ring = params.n_bl_layers;
    let mut disc_tris: Vec<[(usize, usize); 3]> = Vec::new();
    const CENTER: usize = usize::MAX;
    for j in first_core_ring..n_rings - 1 {
        // Ring band between ring j (outer) and j+1 (inner): 2 triangles
        // per theta cell with a fixed-pattern diagonal.
        for i in 0..nt {
            let i1 = (i + 1) % nt;
            disc_tris.push([(j, i), (j, i1), (j + 1, i1)]);
            disc_tris.push([(j, i), (j + 1, i1), (j + 1, i)]);
        }
    }
    // Innermost ring to center: fan.
    for i in 0..nt {
        let i1 = (i + 1) % nt;
        disc_tris.push([(n_rings - 1, i), (n_rings - 1, i1), (CENTER, 0)]);
    }
    let node_at = |st: &Station, (j, i): (usize, usize)| -> u32 {
        if j == CENTER {
            st.center
        } else {
            st.rings[j][i]
        }
    };

    // ---- volume elements ---------------------------------------------
    for s in 0..nz {
        let (lo, hi) = (&stations[s], &stations[s + 1]);

        // Boundary-layer prisms. The (θ, z) surface quad of each column
        // is split into two triangles; the diagonal is chosen by the
        // lowest-global-index rule *evaluated on the innermost BL ring*,
        // which is exactly the rule `split_prism_into_tets` applies to
        // the core's outer lateral faces — so the BL/core interface
        // conforms.
        for i in 0..nt {
            let i1 = (i + 1) % nt;
            let ib = first_core_ring; // innermost BL ring index
            let q = [lo.rings[ib][i], lo.rings[ib][i1], hi.rings[ib][i1], hi.rings[ib][i]];
            let m = *q.iter().min().unwrap();
            // true: diagonal (i,s)-(i1,s+1); false: diagonal (i1,s)-(i,s+1).
            let diag_a = m == q[0] || m == q[2];
            for l in 0..params.n_bl_layers {
                // Triangle pattern at ring l (outer) extruded to ring l+1.
                let tri_pair: [[(usize, usize, bool); 3]; 2] = if diag_a {
                    // (A, B, C'), (A, C', D') with A=(i,lo) B=(i1,lo)
                    // C'=(i1,hi) D'=(i,hi)
                    [
                        [(l, i, false), (l, i1, false), (l, i1, true)],
                        [(l, i, false), (l, i1, true), (l, i, true)],
                    ]
                } else {
                    [
                        [(l, i, false), (l, i1, false), (l, i, true)],
                        [(l, i1, false), (l, i1, true), (l, i, true)],
                    ]
                };
                for tri in &tri_pair {
                    let pick = |(ring, ti, top): (usize, usize, bool), inner: bool| -> u32 {
                        let rj = if inner { ring + 1 } else { ring };
                        let st = if top { hi } else { lo };
                        st.rings[rj][ti]
                    };
                    let outer: Vec<u32> = tri.iter().map(|&t| pick(t, false)).collect();
                    let inner: Vec<u32> = tri.iter().map(|&t| pick(t, true)).collect();
                    b.add_prism([outer[0], outer[1], outer[2], inner[0], inner[1], inner[2]]);
                }
            }
        }

        // Core tets: extrude each disc triangle into a logical prism and
        // split with the conforming lowest-index rule.
        for tri in &disc_tris {
            let a = [node_at(lo, tri[0]), node_at(lo, tri[1]), node_at(lo, tri[2])];
            let t = [node_at(hi, tri[0]), node_at(hi, tri[1]), node_at(hi, tri[2])];
            for tet in split_prism_into_tets(a, t) {
                b.add_tet(tet);
            }
        }
    }

    // ---- cap faces -----------------------------------------------------
    let cap = |st: &Station, outward: Vec3, radius: f64, center: Vec3| -> CapFaces {
        let mut quads = Vec::new();
        for l in 0..params.n_bl_layers {
            for i in 0..nt {
                let i1 = (i + 1) % nt;
                quads.push([st.rings[l][i], st.rings[l][i1], st.rings[l + 1][i1], st.rings[l + 1][i]]);
            }
        }
        let tris = disc_tris
            .iter()
            .map(|tri| [node_at(st, tri[0]), node_at(st, tri[1]), node_at(st, tri[2])])
            .collect();
        let mut all_nodes: Vec<u32> = st.rings.iter().flatten().copied().collect();
        all_nodes.push(st.center);
        CapFaces {
            quads,
            tris,
            rim: st.rings[0].clone(),
            all_nodes,
            center,
            outward,
            radius,
        }
    };
    let start_cap = cap(&stations[0], -frame.t, r_start, start);
    let end_cap = cap(
        &stations[nz],
        frame.t,
        r_end,
        start + frame.t * len,
    );

    TubeMesh {
        start_cap,
        end_cap,
        elem_range: elem_start..b.num_elements() as u32,
    }
}

/// Star-fill a set of cap faces to a hub node: each triangle becomes a
/// tetrahedron, each quadrilateral becomes a **pyramid** — this is where
/// the hybrid mesh's pyramids come from (prism quad faces transitioning
/// to the tetrahedral junction fill, exactly the role pyramids play in
/// the paper's mesh).
pub fn fill_cap_to_hub(b: &mut MeshBuilder, cap: &CapFaces, hub: u32) -> std::ops::Range<u32> {
    let start = b.num_elements() as u32;
    for &[u, v, w] in &cap.tris {
        b.add_tet([u, v, w, hub]);
    }
    for &[p, q, r, s] in &cap.quads {
        b.add_pyramid([p, q, r, s, hub]);
    }
    start..b.num_elements() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tube(nz: usize) -> (crate::mesh::Mesh, TubeMesh) {
        let mut b = MeshBuilder::new();
        let params = TubeParams::default();
        let frame = Frame::from_tangent(Vec3::new(0.0, 0.0, 1.0));
        let tm = mesh_tube(&mut b, &params, Vec3::ZERO, frame, 4.0, 1.0, 0.8, nz);
        (b.finish(), tm)
    }

    #[test]
    fn tube_all_volumes_positive() {
        let (m, _) = demo_tube(4);
        assert!(m.negative_volume_elements().is_empty());
    }

    #[test]
    fn tube_is_conforming() {
        // Every face is shared by at most 2 elements; the face_neighbors
        // construction itself asserts pairing consistency. Additionally,
        // interior faces must dominate for a solid tube.
        let (m, _) = demo_tube(3);
        let fns = m.face_neighbors();
        let mut interior = 0usize;
        let mut exterior = 0usize;
        for e in 0..m.num_elements() {
            for f in fns.faces(e) {
                match f {
                    Some(_) => interior += 1,
                    None => exterior += 1,
                }
            }
        }
        assert!(interior > exterior, "solid tube should be mostly interior faces");
    }

    #[test]
    fn tube_volume_close_to_cylinder() {
        // A tapered tube of r 1.0 -> 0.8, length 4: frustum volume
        // = pi*L/3*(r0^2 + r0 r1 + r1^2). The polygonal cross-section
        // underestimates by the polygon/circle area ratio
        // sin(2pi/n)/(2pi/n).
        let (m, _) = demo_tube(8);
        let s = m.stats();
        let frustum = std::f64::consts::PI * 4.0 / 3.0 * (1.0 + 0.8 + 0.64);
        let n = TubeParams::default().n_theta as f64;
        let poly_factor = (2.0 * std::f64::consts::PI / n).sin() / (2.0 * std::f64::consts::PI / n);
        let expected = frustum * poly_factor;
        let rel = (s.total_volume - expected).abs() / expected;
        assert!(rel < 0.02, "volume {} vs expected {expected}", s.total_volume);
    }

    #[test]
    fn tube_element_mix_prisms_and_tets() {
        let (m, _) = demo_tube(4);
        let s = m.stats();
        assert!(s.num_prisms > 0, "boundary layer must produce prisms");
        assert!(s.num_tets > 0, "core must produce tets");
        assert_eq!(s.num_pyramids, 0, "an open tube has no pyramids");
        // BL prisms per slab: 2 triangles * n_theta columns * n_bl layers.
        let p = TubeParams::default();
        assert_eq!(s.num_prisms, 2 * p.n_theta * p.n_bl_layers * 4);
    }

    #[test]
    fn cap_fill_produces_pyramids_and_conforms() {
        let mut b = MeshBuilder::new();
        let params = TubeParams::default();
        let frame = Frame::from_tangent(Vec3::new(0.0, 0.0, 1.0));
        let tm = mesh_tube(&mut b, &params, Vec3::ZERO, frame, 2.0, 1.0, 1.0, 2);
        let hub = b.add_node(Vec3::new(0.0, 0.0, 2.6));
        fill_cap_to_hub(&mut b, &tm.end_cap, hub);
        let m = b.finish();
        let s = m.stats();
        assert_eq!(s.num_pyramids, params.n_theta * params.n_bl_layers);
        assert!(m.negative_volume_elements().is_empty());
        // Conformity: the cap faces must now be interior (paired).
        let fns = m.face_neighbors();
        let mut exterior_quads = 0;
        for e in 0..m.num_elements() {
            for (f, nb) in fns.faces(e).iter().enumerate() {
                if nb.is_none() && m.kinds[e].faces()[f].len() == 4 {
                    exterior_quads += 1;
                }
            }
        }
        // Only the (uncapped) start cross-section still exposes quads.
        assert_eq!(
            exterior_quads,
            params.n_theta * params.n_bl_layers,
            "end-cap prism quad faces must all be capped"
        );
    }

    #[test]
    fn ring_radii_monotone_decreasing() {
        let p = TubeParams { n_bl_layers: 3, n_core_rings: 3, ..Default::default() };
        let radii = p.ring_radii(2.0);
        assert_eq!(radii.len(), p.num_rings());
        assert!((radii[0] - 2.0).abs() < 1e-12);
        for w in radii.windows(2) {
            assert!(w[1] < w[0], "radii must decrease inward: {radii:?}");
        }
        assert!(*radii.last().unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "n_theta")]
    fn degenerate_params_rejected() {
        let mut b = MeshBuilder::new();
        let params = TubeParams { n_theta: 2, ..Default::default() };
        let frame = Frame::from_tangent(Vec3::new(0.0, 0.0, 1.0));
        mesh_tube(&mut b, &params, Vec3::ZERO, frame, 1.0, 1.0, 1.0, 1);
    }
}
