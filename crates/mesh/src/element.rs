//! Element types of the hybrid mesh.
//!
//! The paper's respiratory mesh is hybrid: *prisms* resolving the
//! boundary layer, *tetrahedra* in the core flow, and *pyramids*
//! transitioning from prism quadrilateral faces to tetrahedra (§2.1).
//! All three first-order types are supported here.

/// Kind of a volume element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// 4-node linear tetrahedron.
    Tet4,
    /// 5-node pyramid (quadrilateral base, apex last).
    Pyr5,
    /// 6-node triangular prism (bottom triangle 0-1-2, top triangle 3-4-5,
    /// node `i+3` above node `i`).
    Pri6,
}

impl ElementKind {
    /// Number of nodes of this element type.
    #[inline]
    pub const fn num_nodes(self) -> usize {
        match self {
            ElementKind::Tet4 => 4,
            ElementKind::Pyr5 => 5,
            ElementKind::Pri6 => 6,
        }
    }

    /// Number of faces (triangles + quadrilaterals).
    #[inline]
    pub const fn num_faces(self) -> usize {
        match self {
            ElementKind::Tet4 => 4,
            ElementKind::Pyr5 => 5,
            ElementKind::Pri6 => 5,
        }
    }

    /// Number of quadrature points used by the FEM kernels for this type.
    /// Heterogeneous quadrature cost is one of the organic sources of the
    /// assembly-phase load imbalance studied in the paper (Table 1).
    #[inline]
    pub const fn num_quad_points(self) -> usize {
        match self {
            ElementKind::Tet4 => 4,
            // Collapsed-hex 2x2x2 Gauss rule (the degenerate trilinear
            // map's Jacobian absorbs the collapse factor).
            ElementKind::Pyr5 => 8,
            ElementKind::Pri6 => 6,
        }
    }

    /// Relative computational weight of assembling one element of this
    /// kind (used by cost-aware partitioning and the performance model).
    /// Proportional to `num_quad_points * num_nodes^2` work in the local
    /// matrix computation, normalized so Tet4 == 1.
    #[inline]
    pub fn cost_weight(self) -> f64 {
        let w = (self.num_quad_points() * self.num_nodes() * self.num_nodes()) as f64;
        let tet = (4 * 4 * 4) as f64;
        w / tet
    }

    /// Local faces as node-index lists (triangles have 3 entries, quads 4).
    /// Orientation: outward for a positively oriented element.
    pub fn faces(self) -> &'static [&'static [usize]] {
        match self {
            ElementKind::Tet4 => &[&[0, 2, 1], &[0, 1, 3], &[1, 2, 3], &[2, 0, 3]],
            ElementKind::Pyr5 => &[
                &[0, 3, 2, 1], // base quad
                &[0, 1, 4],
                &[1, 2, 4],
                &[2, 3, 4],
                &[3, 0, 4],
            ],
            ElementKind::Pri6 => &[
                &[0, 2, 1],       // bottom triangle
                &[3, 4, 5],       // top triangle
                &[0, 1, 4, 3],    // lateral quads
                &[1, 2, 5, 4],
                &[2, 0, 3, 5],
            ],
        }
    }

    /// Short display label.
    pub const fn label(self) -> &'static str {
        match self {
            ElementKind::Tet4 => "tet",
            ElementKind::Pyr5 => "pyr",
            ElementKind::Pri6 => "pri",
        }
    }
}

/// Boundary classification of an exterior mesh face, used by particle
/// tracking to decide between deposition (airway wall) and escape
/// (outlet at the deepest branch generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Airway wall: particles reaching it deposit.
    Wall,
    /// Inlet disc (nasal/mouth opening): particles are injected here.
    Inlet,
    /// Distal outlets (7th-generation branch ends): particles escape.
    Outlet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_face_counts() {
        assert_eq!(ElementKind::Tet4.num_nodes(), 4);
        assert_eq!(ElementKind::Pyr5.num_nodes(), 5);
        assert_eq!(ElementKind::Pri6.num_nodes(), 6);
        assert_eq!(ElementKind::Tet4.faces().len(), 4);
        assert_eq!(ElementKind::Pyr5.faces().len(), 5);
        assert_eq!(ElementKind::Pri6.faces().len(), 5);
    }

    #[test]
    fn face_node_indices_in_range() {
        for kind in [ElementKind::Tet4, ElementKind::Pyr5, ElementKind::Pri6] {
            for face in kind.faces() {
                assert!(face.len() == 3 || face.len() == 4);
                for &i in face.iter() {
                    assert!(i < kind.num_nodes());
                }
            }
        }
    }

    #[test]
    fn every_edge_shared_by_exactly_two_faces() {
        // Closed polyhedron invariant: each edge appears once in each
        // direction across the face set.
        for kind in [ElementKind::Tet4, ElementKind::Pyr5, ElementKind::Pri6] {
            let mut edges = std::collections::HashMap::new();
            for face in kind.faces() {
                for k in 0..face.len() {
                    let a = face[k];
                    let b = face[(k + 1) % face.len()];
                    *edges.entry((a, b)).or_insert(0) += 1;
                }
            }
            for ((a, b), n) in &edges {
                assert_eq!(*n, 1, "{kind:?}: directed edge ({a},{b}) seen {n} times");
                assert_eq!(
                    edges.get(&(*b, *a)),
                    Some(&1),
                    "{kind:?}: edge ({a},{b}) missing reverse"
                );
            }
        }
    }

    #[test]
    fn cost_weights_ordered_by_richness() {
        assert!((ElementKind::Tet4.cost_weight() - 1.0).abs() < 1e-12);
        assert!(ElementKind::Pyr5.cost_weight() > ElementKind::Tet4.cost_weight());
        assert!(ElementKind::Pri6.cost_weight() > ElementKind::Pyr5.cost_weight());
    }
}
