//! Legacy VTK (ASCII, `.vtk`) export of the hybrid mesh with optional
//! nodal fields — lets users inspect the generated airway geometry and
//! computed flow/deposition in ParaView, the standard companion of a
//! CFPD workflow.

use crate::element::ElementKind;
use crate::geom::Vec3;
use crate::mesh::Mesh;
use std::fmt::Write as _;

/// VTK cell type ids for the supported elements.
fn vtk_cell_type(kind: ElementKind) -> u8 {
    match kind {
        ElementKind::Tet4 => 10,  // VTK_TETRA
        ElementKind::Pyr5 => 14,  // VTK_PYRAMID
        ElementKind::Pri6 => 13,  // VTK_WEDGE
    }
}

/// VTK node-order permutation from our local ordering. Tets and
/// pyramids match VTK directly; VTK wedges list the two triangles in
/// opposite orientation relative to ours, handled here.
fn vtk_node_order(kind: ElementKind) -> &'static [usize] {
    match kind {
        ElementKind::Tet4 => &[0, 1, 2, 3],
        ElementKind::Pyr5 => &[0, 1, 2, 3, 4],
        // VTK_WEDGE expects bottom triangle then top triangle with both
        // triangles wound consistently when viewed from outside; our
        // prism convention maps directly but with the bottom reversed.
        ElementKind::Pri6 => &[0, 2, 1, 3, 5, 4],
    }
}

/// Serialize the mesh (and optional named nodal fields) as a legacy
/// VTK unstructured grid.
pub fn to_vtk(mesh: &Mesh, fields: &[(&str, &[Vec3])], scalars: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    out.push_str("cfpd-rs hybrid airway mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n");
    let _ = writeln!(out, "POINTS {} double", mesh.num_nodes());
    for p in &mesh.coords {
        let _ = writeln!(out, "{} {} {}", p.x, p.y, p.z);
    }
    let total_ints: usize = (0..mesh.num_elements())
        .map(|e| mesh.kinds[e].num_nodes() + 1)
        .sum();
    let _ = writeln!(out, "CELLS {} {}", mesh.num_elements(), total_ints);
    for e in 0..mesh.num_elements() {
        let nodes = mesh.elem_nodes(e);
        let order = vtk_node_order(mesh.kinds[e]);
        let _ = write!(out, "{}", nodes.len());
        for &li in order {
            let _ = write!(out, " {}", nodes[li]);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "CELL_TYPES {}", mesh.num_elements());
    for e in 0..mesh.num_elements() {
        let _ = writeln!(out, "{}", vtk_cell_type(mesh.kinds[e]));
    }
    if !fields.is_empty() || !scalars.is_empty() {
        let _ = writeln!(out, "POINT_DATA {}", mesh.num_nodes());
        for (name, data) in fields {
            assert_eq!(data.len(), mesh.num_nodes(), "field {name} wrong length");
            let _ = writeln!(out, "VECTORS {name} double");
            for v in *data {
                let _ = writeln!(out, "{} {} {}", v.x, v.y, v.z);
            }
        }
        for (name, data) in scalars {
            assert_eq!(data.len(), mesh.num_nodes(), "scalar {name} wrong length");
            let _ = writeln!(out, "SCALARS {name} double 1\nLOOKUP_TABLE default");
            for v in *data {
                let _ = writeln!(out, "{v}");
            }
        }
    }
    out
}

/// Write the VTK serialization to a file.
pub fn write_vtk(
    mesh: &Mesh,
    path: &std::path::Path,
    fields: &[(&str, &[Vec3])],
    scalars: &[(&str, &[f64])],
) -> std::io::Result<()> {
    std::fs::write(path, to_vtk(mesh, fields, scalars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airway::{generate_airway, AirwaySpec};

    #[test]
    fn vtk_structure_is_complete() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let vel = vec![Vec3::new(1.0, 0.0, 0.0); am.mesh.num_nodes()];
        let press = vec![0.5f64; am.mesh.num_nodes()];
        let vtk = to_vtk(&am.mesh, &[("velocity", &vel)], &[("pressure", &press)]);
        assert!(vtk.starts_with("# vtk DataFile"));
        assert!(vtk.contains(&format!("POINTS {} double", am.mesh.num_nodes())));
        assert!(vtk.contains(&format!("CELL_TYPES {}", am.mesh.num_elements())));
        assert!(vtk.contains("VECTORS velocity double"));
        assert!(vtk.contains("SCALARS pressure double 1"));
        // All three VTK cell types appear (hybrid mesh).
        let types_section = vtk.split("CELL_TYPES").nth(1).unwrap();
        for ty in ["10", "13", "14"] {
            assert!(
                types_section.lines().any(|l| l.trim() == ty),
                "missing VTK cell type {ty}"
            );
        }
    }

    #[test]
    fn cell_lines_have_correct_arity() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let vtk = to_vtk(&am.mesh, &[], &[]);
        let cells = vtk
            .split("CELLS")
            .nth(1)
            .unwrap()
            .lines()
            .skip(1)
            .take(am.mesh.num_elements());
        for (e, line) in cells.enumerate() {
            let mut it = line.split_whitespace();
            let n: usize = it.next().unwrap().parse().unwrap();
            assert_eq!(n, am.mesh.kinds[e].num_nodes(), "element {e}");
            assert_eq!(it.count(), n);
        }
    }

    #[test]
    fn write_to_disk() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let dir = std::env::temp_dir().join("cfpd_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesh.vtk");
        write_vtk(&am.mesh, &path, &[], &[]).unwrap();
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(size > 1000);
        std::fs::remove_file(path).ok();
    }
}
