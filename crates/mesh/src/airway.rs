//! Parametric generator of a human-airway-like bronchial tree mesh.
//!
//! The paper's mesh is a subject-specific geometry "extended from the
//! face to the 7th branch generation of the bronchopulmonary tree" with
//! 17.7 M hybrid elements. We cannot ship patient CT data, so this
//! module generates a *parametric* bronchial tree with the same
//! topological character: a trachea bifurcating recursively with
//! physiological radius/length ratios (Weibel-like), hybrid elements
//! (prism boundary layers, tet cores, pyramid junction transitions), a
//! single inlet where all particles enter (the cause of the particle
//! phase's extreme load imbalance, §2.2), and distal outlets.
//!
//! Element count scales from O(10³) (tests) to O(10⁶) with the
//! resolution parameters.

use crate::builder::MeshBuilder;
use crate::element::BoundaryKind;
use crate::geom::{Frame, Vec3};
use crate::mesh::Mesh;
use crate::tube::{fill_cap_to_hub, mesh_tube, CapFaces, TubeParams};
use std::collections::HashSet;

/// Errors from airway generation parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// A parameter is out of its valid range; the message names it.
    InvalidParameter(String),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::InvalidParameter(m) => write!(f, "invalid mesh parameter: {m}"),
        }
    }
}

impl std::error::Error for MeshError {}

/// Full specification of the airway tree mesh.
#[derive(Debug, Clone)]
pub struct AirwaySpec {
    /// Bifurcation generations below the trachea (the paper uses 7).
    pub generations: usize,
    /// Cross-section / boundary-layer resolution.
    pub tube: TubeParams,
    /// Axial segments per unit of local radius (controls element count).
    pub axial_segments_per_radius: f64,
    /// Trachea wall radius (m). Human trachea ≈ 9 mm.
    pub trachea_radius: f64,
    /// Trachea length (m). Human ≈ 0.12 m.
    pub trachea_length: f64,
    /// Child/parent radius ratio (Weibel model ≈ 2^(-1/3) ≈ 0.79).
    pub radius_ratio: f64,
    /// Child/parent length ratio.
    pub length_ratio: f64,
    /// Half-angle between the two children at a bifurcation (degrees).
    pub branch_angle_deg: f64,
    /// Taper of each tube (end radius / start radius).
    pub taper: f64,
}

impl Default for AirwaySpec {
    fn default() -> Self {
        AirwaySpec {
            generations: 4,
            tube: TubeParams::default(),
            axial_segments_per_radius: 2.0,
            trachea_radius: 0.009,
            trachea_length: 0.12,
            radius_ratio: 0.79,
            length_ratio: 0.8,
            branch_angle_deg: 35.0,
            taper: 0.95,
        }
    }
}

impl AirwaySpec {
    /// Tiny mesh for unit tests (O(10³) elements).
    pub fn small() -> Self {
        AirwaySpec {
            generations: 2,
            tube: TubeParams {
                n_theta: 8,
                n_bl_layers: 1,
                n_core_rings: 1,
                ..TubeParams::default()
            },
            axial_segments_per_radius: 1.0,
            ..Default::default()
        }
    }

    /// Paper-shaped mesh: 7 branch generations, finer cross-sections.
    /// Still far below 17.7 M elements (see DESIGN.md on scale
    /// substitution) but topologically equivalent.
    pub fn paper_like() -> Self {
        AirwaySpec {
            generations: 7,
            tube: TubeParams {
                n_theta: 12,
                n_bl_layers: 2,
                n_core_rings: 2,
                ..TubeParams::default()
            },
            axial_segments_per_radius: 2.0,
            ..Default::default()
        }
    }

    /// Validate all parameters, returning a descriptive error for the
    /// first violation found.
    pub fn validate(&self) -> Result<(), MeshError> {
        let err = |m: &str| Err(MeshError::InvalidParameter(m.to_string()));
        if self.tube.n_theta < 3 {
            return err("n_theta must be >= 3");
        }
        if self.tube.n_bl_layers < 1 {
            return err("n_bl_layers must be >= 1");
        }
        if self.tube.n_core_rings < 1 {
            return err("n_core_rings must be >= 1");
        }
        if !(self.tube.bl_thickness_frac > 0.0 && self.tube.bl_thickness_frac < 0.9) {
            return err("bl_thickness_frac must be in (0, 0.9)");
        }
        if self.tube.bl_growth <= 0.0 {
            return err("bl_growth must be positive");
        }
        if self.generations > 10 {
            return err("generations must be <= 10 (2^10 tubes already huge)");
        }
        if self.trachea_radius <= 0.0 || self.trachea_length <= 0.0 {
            return err("trachea dimensions must be positive");
        }
        if !(self.radius_ratio > 0.3 && self.radius_ratio < 1.0) {
            return err("radius_ratio must be in (0.3, 1.0)");
        }
        if !(self.length_ratio > 0.3 && self.length_ratio <= 1.0) {
            return err("length_ratio must be in (0.3, 1.0]");
        }
        if !(self.branch_angle_deg > 5.0 && self.branch_angle_deg < 80.0) {
            return err("branch_angle_deg must be in (5, 80)");
        }
        if !(self.taper > 0.5 && self.taper <= 1.0) {
            return err("taper must be in (0.5, 1.0]");
        }
        if self.axial_segments_per_radius <= 0.0 {
            return err("axial_segments_per_radius must be positive");
        }
        Ok(())
    }
}

/// Generated airway mesh plus the metadata needed by the particle
/// injector and the simulation boundary conditions.
#[derive(Debug)]
pub struct AirwayMesh {
    pub mesh: Mesh,
    /// Center of the inlet disc (trachea/mouth opening).
    pub inlet_center: Vec3,
    /// Inlet disc radius.
    pub inlet_radius: f64,
    /// Unit inflow direction (points into the airway).
    pub inlet_direction: Vec3,
    /// Number of tubes (branches) in the tree.
    pub num_tubes: usize,
    /// Number of bifurcation junctions filled.
    pub num_junctions: usize,
    /// Branch generation of each element (0 = trachea; junction fills
    /// carry their parent tube's generation). Enables per-generation
    /// deposition maps.
    pub elem_generation: Vec<u16>,
}

/// Generate the airway tree mesh from `spec`.
pub fn generate_airway(spec: &AirwaySpec) -> Result<AirwayMesh, MeshError> {
    spec.validate()?;
    let mut b = MeshBuilder::new();
    let mut inlet_nodes: HashSet<u32> = HashSet::new();
    let mut outlet_nodes: HashSet<u32> = HashSet::new();
    let mut num_tubes = 0usize;
    let mut num_junctions = 0usize;
    let mut gen_ranges: Vec<(std::ops::Range<u32>, u16)> = Vec::new();

    // Trachea: points "down" (-z), inlet at the origin.
    let root_frame = Frame::from_tangent(Vec3::new(0.0, 0.0, -1.0));
    let nz = ((spec.trachea_length / spec.trachea_radius) * spec.axial_segments_per_radius)
        .round()
        .max(1.0) as usize;
    let root = mesh_tube(
        &mut b,
        &spec.tube,
        Vec3::ZERO,
        root_frame,
        spec.trachea_length,
        spec.trachea_radius,
        spec.trachea_radius * spec.taper,
        nz,
    );
    num_tubes += 1;
    gen_ranges.push((root.elem_range.clone(), 0));
    let inlet_cap: CapFaces = root.start_cap.clone();
    inlet_nodes.extend(inlet_cap.all_nodes.iter().copied());

    if spec.generations == 0 {
        outlet_nodes.extend(root.end_cap.all_nodes.iter().copied());
    } else {
        branch_children(
            &mut b,
            spec,
            &root.end_cap,
            root_frame,
            spec.trachea_radius * spec.taper,
            spec.trachea_length,
            0,
            &mut outlet_nodes,
            &mut num_tubes,
            &mut num_junctions,
            &mut gen_ranges,
        );
    }

    let mut mesh = b.finish();
    classify_boundary(&mut mesh, &inlet_nodes, &outlet_nodes);
    let mut elem_generation = vec![0u16; mesh.num_elements()];
    for (range, g) in gen_ranges {
        for e in range {
            elem_generation[e as usize] = g;
        }
    }

    Ok(AirwayMesh {
        inlet_center: inlet_cap.center,
        inlet_radius: inlet_cap.radius,
        inlet_direction: -inlet_cap.outward,
        num_tubes,
        num_junctions,
        elem_generation,
        mesh,
    })
}

/// Recursively attach two children to the end cap of an already-meshed
/// parent tube.
#[allow(clippy::too_many_arguments)]
fn branch_children(
    b: &mut MeshBuilder,
    spec: &AirwaySpec,
    parent_end: &CapFaces,
    parent_frame: Frame,
    parent_end_radius: f64,
    parent_length: f64,
    parent_generation: usize,
    outlet_nodes: &mut HashSet<u32>,
    num_tubes: &mut usize,
    num_junctions: &mut usize,
    gen_ranges: &mut Vec<(std::ops::Range<u32>, u16)>,
) {
    let angle = spec.branch_angle_deg.to_radians();
    let hub_pos = parent_end.center + parent_frame.t * (parent_end_radius * 0.9);
    let hub = b.add_node(hub_pos);
    let fill = fill_cap_to_hub(b, parent_end, hub);
    gen_ranges.push((fill, parent_generation as u16));
    *num_junctions += 1;

    let child_radius = parent_end_radius * spec.radius_ratio;
    let child_length = parent_length * spec.length_ratio;
    let plane_frame = {
        let rot = std::f64::consts::FRAC_PI_2 * parent_generation as f64;
        let u = parent_frame.u.rotate_about(parent_frame.t, rot);
        let v = parent_frame.t.cross(u);
        Frame { t: parent_frame.t, u, v }
    };
    for sign in [-1.0, 1.0] {
        let dir =
            (plane_frame.t * angle.cos() + plane_frame.u * (sign * angle.sin())).normalized();
        let child_frame = plane_frame.transport_to(dir);
        let child_start = hub_pos + dir * (child_radius * 0.9);
        let nz = ((child_length / child_radius) * spec.axial_segments_per_radius)
            .round()
            .max(1.0) as usize;
        let ctm = mesh_tube(
            b,
            &spec.tube,
            child_start,
            child_frame,
            child_length,
            child_radius,
            child_radius * spec.taper,
            nz,
        );
        *num_tubes += 1;
        let child_generation = parent_generation + 1;
        gen_ranges.push((ctm.elem_range.clone(), child_generation as u16));
        let fill = fill_cap_to_hub(b, &ctm.start_cap, hub);
        gen_ranges.push((fill, child_generation as u16));
        if child_generation == spec.generations {
            outlet_nodes.extend(ctm.end_cap.all_nodes.iter().copied());
        } else {
            branch_children(
                b,
                spec,
                &ctm.end_cap,
                child_frame,
                child_radius * spec.taper,
                child_length,
                child_generation,
                outlet_nodes,
                num_tubes,
                num_junctions,
                gen_ranges,
            );
        }
    }
}

/// Classify every exterior face as Inlet, Outlet or Wall based on the
/// node sets recorded during generation, and store them on the mesh.
fn classify_boundary(mesh: &mut Mesh, inlet: &HashSet<u32>, outlet: &HashSet<u32>) {
    let fns = mesh.face_neighbors();
    let mut boundary = Vec::new();
    for e in 0..mesh.num_elements() {
        let nodes = mesh.elem_nodes(e).to_vec();
        for (f, nb) in fns.faces(e).iter().enumerate() {
            if nb.is_some() {
                continue;
            }
            let face = mesh.kinds[e].faces()[f];
            let kind = if face.iter().all(|&li| inlet.contains(&nodes[li])) {
                BoundaryKind::Inlet
            } else if face.iter().all(|&li| outlet.contains(&nodes[li])) {
                BoundaryKind::Outlet
            } else {
                BoundaryKind::Wall
            };
            boundary.push((e as u32, f as u8, kind));
        }
    }
    mesh.boundary = boundary;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_airway_generates() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let s = am.mesh.stats();
        // 2 generations: 1 + 2 + 4 = 7 tubes, 3 junctions.
        assert_eq!(am.num_tubes, 7);
        assert_eq!(am.num_junctions, 3);
        assert!(s.num_tets > 0 && s.num_prisms > 0 && s.num_pyramids > 0);
        assert!(am.mesh.negative_volume_elements().is_empty());
    }

    #[test]
    fn boundary_has_all_three_kinds() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let kinds: HashSet<_> = am.mesh.boundary.iter().map(|&(_, _, k)| k).collect();
        assert!(kinds.contains(&BoundaryKind::Inlet));
        assert!(kinds.contains(&BoundaryKind::Outlet));
        assert!(kinds.contains(&BoundaryKind::Wall));
        // Walls dominate.
        let walls = am
            .mesh
            .boundary
            .iter()
            .filter(|&&(_, _, k)| k == BoundaryKind::Wall)
            .count();
        assert!(walls * 2 > am.mesh.boundary.len());
    }

    #[test]
    fn inlet_metadata_sane() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        assert!((am.inlet_radius - 0.009).abs() < 1e-12);
        // Inflow direction points along the trachea axis (downward).
        assert!(am.inlet_direction.z < -0.99);
        assert_eq!(am.inlet_center, Vec3::ZERO);
    }

    #[test]
    fn generations_scale_element_count() {
        let m1 = generate_airway(&AirwaySpec { generations: 1, ..AirwaySpec::small() }).unwrap();
        let m2 = generate_airway(&AirwaySpec { generations: 3, ..AirwaySpec::small() }).unwrap();
        assert!(m2.mesh.num_elements() > 2 * m1.mesh.num_elements());
    }

    #[test]
    fn element_generations_tagged() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        assert_eq!(am.elem_generation.len(), am.mesh.num_elements());
        let max_gen = *am.elem_generation.iter().max().unwrap();
        assert_eq!(max_gen as usize, 2, "deepest generation tag");
        // Trachea elements exist and sit near the top (z > -L).
        let gen0 = am.elem_generation.iter().filter(|&&g| g == 0).count();
        assert!(gen0 > 0);
        // Every element of generation g is (weakly) deeper than the
        // inlet; spot check: gen-2 centroids are below gen-0 mean.
        let mean_z = |g: u16| {
            let (mut s, mut n) = (0.0, 0);
            for e in 0..am.mesh.num_elements() {
                if am.elem_generation[e] == g {
                    s += am.mesh.centroid(e).z;
                    n += 1;
                }
            }
            s / n as f64
        };
        assert!(mean_z(2) < mean_z(0), "deeper generations sit lower");
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = AirwaySpec::small();
        s.tube.n_theta = 2;
        assert!(generate_airway(&s).is_err());
        let mut s = AirwaySpec::small();
        s.radius_ratio = 1.5;
        assert!(generate_airway(&s).is_err());
        let mut s = AirwaySpec::small();
        s.branch_angle_deg = 89.0;
        assert!(generate_airway(&s).is_err());
        let mut s = AirwaySpec::small();
        s.generations = 11;
        assert!(generate_airway(&s).is_err());
    }

    #[test]
    fn mesh_is_conforming_no_orphan_interior_faces() {
        // Every exterior face is classified; interior faces pair up. If
        // the junction fills were non-conforming, pyramids' quad faces
        // would appear as spurious exterior faces tagged Wall deep inside
        // the mesh. Check the count of exterior quad faces equals
        // inlet + outlet BL quads only.
        let spec = AirwaySpec::small();
        let am = generate_airway(&spec).unwrap();
        let quad_ext = am
            .mesh
            .boundary
            .iter()
            .filter(|&&(e, f, _)| am.mesh.kinds[e as usize].faces()[f as usize].len() == 4)
            .count();
        let per_cap = spec.tube.n_theta * spec.tube.n_bl_layers;
        let num_outlets = 4; // 2^2 terminal tubes
        assert_eq!(quad_ext, per_cap * (1 + num_outlets));
    }
}
