//! Incremental mesh construction with orientation fixing.

use crate::element::{BoundaryKind, ElementKind};
use crate::geom::Vec3;
use crate::mesh::Mesh;

/// Accumulates nodes and elements, fixing element orientation (positive
/// signed volume) on insertion so downstream FEM kernels never see
/// inverted Jacobians.
#[derive(Debug, Default)]
pub struct MeshBuilder {
    coords: Vec<Vec3>,
    kinds: Vec<ElementKind>,
    offsets: Vec<u32>,
    conn: Vec<u32>,
    boundary: Vec<(u32, u8, BoundaryKind)>,
}

impl MeshBuilder {
    pub fn new() -> Self {
        MeshBuilder { offsets: vec![0], ..Default::default() }
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self, p: Vec3) -> u32 {
        self.coords.push(p);
        (self.coords.len() - 1) as u32
    }

    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    pub fn num_elements(&self) -> usize {
        self.kinds.len()
    }

    fn tet_volume(&self, n: &[u32; 4]) -> f64 {
        let p = |i: usize| self.coords[n[i] as usize];
        (p(1) - p(0)).cross(p(2) - p(0)).dot(p(3) - p(0)) / 6.0
    }

    /// Add a tetrahedron; swaps two vertices if negatively oriented.
    /// Returns the element index.
    pub fn add_tet(&mut self, mut n: [u32; 4]) -> u32 {
        if self.tet_volume(&n) < 0.0 {
            n.swap(1, 2);
        }
        self.push(ElementKind::Tet4, &n)
    }

    /// Add a pyramid (base 0-1-2-3 counter-clockwise seen from apex 4).
    /// Reverses the base loop if negatively oriented.
    pub fn add_pyramid(&mut self, mut n: [u32; 5]) -> u32 {
        let v = self.tet_volume(&[n[0], n[1], n[2], n[4]])
            + self.tet_volume(&[n[0], n[2], n[3], n[4]]);
        if v < 0.0 {
            n.swap(1, 3);
        }
        self.push(ElementKind::Pyr5, &n)
    }

    /// Add a prism (bottom 0-1-2, top 3-4-5, `i+3` above `i`). Swaps the
    /// two triangles if negatively oriented.
    pub fn add_prism(&mut self, mut n: [u32; 6]) -> u32 {
        let v = self.tet_volume(&[n[0], n[1], n[2], n[3]])
            + self.tet_volume(&[n[1], n[2], n[3], n[4]])
            + self.tet_volume(&[n[2], n[3], n[4], n[5]]);
        if v < 0.0 {
            n.swap(0, 3);
            n.swap(1, 4);
            n.swap(2, 5);
        }
        self.push(ElementKind::Pri6, &n)
    }

    fn push(&mut self, kind: ElementKind, nodes: &[u32]) -> u32 {
        debug_assert_eq!(nodes.len(), kind.num_nodes());
        debug_assert!(nodes.iter().all(|&v| (v as usize) < self.coords.len()));
        self.kinds.push(kind);
        self.conn.extend_from_slice(nodes);
        self.offsets.push(self.conn.len() as u32);
        (self.kinds.len() - 1) as u32
    }

    /// Tag an exterior face of element `e` with a boundary kind.
    pub fn tag_boundary(&mut self, e: u32, local_face: u8, kind: BoundaryKind) {
        self.boundary.push((e, local_face, kind));
    }

    /// Finalize into an immutable [`Mesh`].
    pub fn finish(self) -> Mesh {
        Mesh {
            coords: self.coords,
            kinds: self.kinds,
            offsets: self.offsets,
            conn: self.conn,
            boundary: self.boundary,
        }
    }
}

/// Split a (possibly warped) prism `bottom=(a0,a1,a2)`, `top=(b0,b1,b2)`
/// into 3 tetrahedra using the *lowest-global-index diagonal rule*: each
/// quad face takes the diagonal through its smallest node id. Because the
/// rule is face-local, adjacent prisms split their shared quad face the
/// same way, guaranteeing a conforming tetrahedralization.
///
/// Returns the three tets as vertex quadruples (orientation is fixed by
/// [`MeshBuilder::add_tet`] on insertion).
pub fn split_prism_into_tets(a: [u32; 3], b: [u32; 3]) -> [[u32; 4]; 3] {
    // Rotate/flip so the smallest vertex id of the whole prism sits at a0.
    let ids = [a[0], a[1], a[2], b[0], b[1], b[2]];
    let min_pos = (0..6).min_by_key(|&i| ids[i]).unwrap();
    let (a, b) = if min_pos < 3 {
        (rotate3(a, min_pos), rotate3(b, min_pos))
    } else {
        // Minimum in the top triangle: mirror the prism (swap top/bottom).
        (rotate3(b, min_pos - 3), rotate3(a, min_pos - 3))
    };
    // Now a[0] is the global min; the two quad faces containing a[0]
    // take diagonals a0-b1 and a0-b2 (through a0, the face minimum).
    // The third quad face (a1,a2,b2,b1) uses its own face minimum.
    let third = [a[1], a[2], b[1], b[2]];
    let fmin = *third.iter().min().unwrap();
    if fmin == a[1] || fmin == b[2] {
        // Diagonal a1-b2.
        [
            [a[0], b[0], b[1], b[2]],
            [a[0], a[1], a[2], b[2]],
            [a[0], a[1], b[2], b[1]],
        ]
    } else {
        // Diagonal a2-b1.
        [
            [a[0], b[0], b[1], b[2]],
            [a[0], a[1], a[2], b[1]],
            [a[0], a[2], b[2], b[1]],
        ]
    }
}

fn rotate3(v: [u32; 3], by: usize) -> [u32; 3] {
    [v[by % 3], v[(by + 1) % 3], v[(by + 2) % 3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn orientation_fixed_on_insert() {
        let mut b = MeshBuilder::new();
        let n0 = b.add_node(Vec3::new(0.0, 0.0, 0.0));
        let n1 = b.add_node(Vec3::new(1.0, 0.0, 0.0));
        let n2 = b.add_node(Vec3::new(0.0, 1.0, 0.0));
        let n3 = b.add_node(Vec3::new(0.0, 0.0, 1.0));
        // Deliberately inverted ordering.
        b.add_tet([n0, n2, n1, n3]);
        let m = b.finish();
        assert!(m.volume(0) > 0.0);
    }

    /// The diagonal rule must produce the same diagonal on a quad face
    /// regardless of which adjacent prism asks.
    #[test]
    fn prism_split_is_face_consistent() {
        // Two prisms sharing the quad face (1,2,4,5)-(7,8): construct a
        // pair of prisms sharing quad (a1,a2,b2,b1) of the first.
        // Prism P: bottom (0,1,2) top (3,4,5). Shared quad (1,2,5,4).
        // Prism Q: bottom (1,6,2) top (4,7,5) shares the same quad.
        let p = split_prism_into_tets([0, 1, 2], [3, 4, 5]);
        let q = split_prism_into_tets([1, 6, 2], [4, 7, 5]);
        let diag_of = |tets: &[[u32; 4]; 3], quad: [u32; 4]| -> BTreeSet<(u32, u32)> {
            // Diagonals are node pairs within the quad that appear as an
            // edge of some tet but are not a quad side.
            let sides: BTreeSet<(u32, u32)> = [
                (quad[0], quad[1]),
                (quad[1], quad[2]),
                (quad[2], quad[3]),
                (quad[3], quad[0]),
            ]
            .iter()
            .map(|&(x, y)| (x.min(y), x.max(y)))
            .collect();
            let qset: BTreeSet<u32> = quad.iter().copied().collect();
            let mut found = BTreeSet::new();
            for tet in tets {
                for i in 0..4 {
                    for j in i + 1..4 {
                        let (x, y) = (tet[i].min(tet[j]), tet[i].max(tet[j]));
                        if qset.contains(&x) && qset.contains(&y) && !sides.contains(&(x, y)) {
                            found.insert((x, y));
                        }
                    }
                }
            }
            found
        };
        let quad = [1, 2, 5, 4];
        let dp = diag_of(&p, quad);
        let dq = diag_of(&q, quad);
        assert_eq!(dp.len(), 1, "exactly one diagonal per quad face: {dp:?}");
        assert_eq!(dp, dq, "adjacent prisms must agree on the diagonal");
    }

    #[test]
    fn prism_split_covers_volume() {
        // Geometric check: the 3 tets tile the prism (volumes sum).
        // Top = bottom translated, so all quad faces are planar and any
        // valid split yields the exact prism volume. (Warped prisms give
        // split-dependent volumes — that is inherent, not a bug.)
        let off = Vec3::new(0.1, 0.2, 1.0);
        let base = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)];
        let pts = [base[0], base[1], base[2], base[0] + off, base[1] + off, base[2] + off];
        let tets = split_prism_into_tets([0, 1, 2], [3, 4, 5]);
        let vol = |t: &[u32; 4]| {
            let p = |i: u32| pts[i as usize];
            ((p(t[1]) - p(t[0])).cross(p(t[2]) - p(t[0])).dot(p(t[3]) - p(t[0])) / 6.0).abs()
        };
        let sum: f64 = tets.iter().map(vol).sum();
        // Prism volume via its own 3-tet split with the same diagonals is
        // `sum` by construction; sanity check against an independent
        // split (0,1,2,3)+(1,2,3,4)+(2,3,4,5).
        let alt = {
            let p = |i: usize| pts[i];
            let tv = |a: Vec3, b: Vec3, c: Vec3, d: Vec3| (b - a).cross(c - a).dot(d - a) / 6.0;
            (tv(p(0), p(1), p(2), p(3)) + tv(p(1), p(2), p(3), p(4)) + tv(p(2), p(3), p(4), p(5)))
                .abs()
        };
        assert!((sum - alt).abs() < 1e-9, "{sum} vs {alt}");
    }

    #[test]
    fn prism_split_all_rotations_consistent() {
        // The same physical prism presented with rotated node lists must
        // produce the same set of tets (as vertex sets).
        let canonical: BTreeSet<BTreeSet<u32>> = split_prism_into_tets([10, 11, 12], [13, 14, 15])
            .iter()
            .map(|t| t.iter().copied().collect())
            .collect();
        for r in 0..3 {
            let a = rotate3([10, 11, 12], r);
            let b = rotate3([13, 14, 15], r);
            let got: BTreeSet<BTreeSet<u32>> = split_prism_into_tets(a, b)
                .iter()
                .map(|t| t.iter().copied().collect())
                .collect();
            assert_eq!(got, canonical);
        }
    }
}
