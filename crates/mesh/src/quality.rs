//! Mesh quality metrics: aspect ratio, edge-length ratios and a
//! quality histogram — what a meshing engineer inspects before trusting
//! a CFPD run (the paper's §2.1 emphasizes boundary-layer resolution,
//! which necessarily produces anisotropic prisms; these metrics
//! quantify that).

use crate::mesh::Mesh;

/// Quality measures of one element.
#[derive(Debug, Clone, Copy)]
pub struct ElementQuality {
    /// Longest edge / shortest edge.
    pub edge_ratio: f64,
    /// Normalized shape quality in (0, 1]: `c · V / l_max³` scaled so a
    /// regular element ≈ 1 (larger is better, degenerate → 0).
    pub shape: f64,
}

/// Aggregate quality statistics.
#[derive(Debug, Clone)]
pub struct QualityReport {
    pub min_shape: f64,
    pub mean_shape: f64,
    pub max_edge_ratio: f64,
    /// Histogram of shape quality in 10 equal bins over [0, 1].
    pub shape_histogram: [usize; 10],
}

/// Quality of element `e`.
pub fn element_quality(mesh: &Mesh, e: usize) -> ElementQuality {
    let nodes = mesh.elem_nodes(e);
    let mut lmin = f64::INFINITY;
    let mut lmax = 0.0f64;
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            let d = mesh.coords[nodes[i] as usize].dist(mesh.coords[nodes[j] as usize]);
            lmin = lmin.min(d);
            lmax = lmax.max(d);
        }
    }
    let v = mesh.volume(e).abs();
    // Normalization constants chosen so the regular element of each
    // family scores exactly 1.0:
    //   regular tet:   V = l³/(6√2)         → c = 6√2
    //   prism (equilateral tri × same h):    V = (√3/4)l³, lmax = l√2 ... use c = 8/(3^0.5)·...
    // For simplicity use the tet constant for all families and clamp;
    // relative comparisons (histograms, minima) are what matter.
    let c = 6.0 * std::f64::consts::SQRT_2;
    let shape = (c * v / lmax.powi(3)).min(1.0);
    ElementQuality { edge_ratio: lmax / lmin.max(1e-300), shape }
}

/// Whole-mesh quality report.
pub fn quality_report(mesh: &Mesh) -> QualityReport {
    let ne = mesh.num_elements().max(1);
    let mut min_shape = f64::INFINITY;
    let mut sum_shape = 0.0;
    let mut max_edge_ratio = 0.0f64;
    let mut hist = [0usize; 10];
    for e in 0..mesh.num_elements() {
        let q = element_quality(mesh, e);
        min_shape = min_shape.min(q.shape);
        sum_shape += q.shape;
        max_edge_ratio = max_edge_ratio.max(q.edge_ratio);
        let bin = ((q.shape * 10.0) as usize).min(9);
        hist[bin] += 1;
    }
    if mesh.num_elements() == 0 {
        min_shape = 0.0;
    }
    QualityReport {
        min_shape,
        mean_shape: sum_shape / ne as f64,
        max_edge_ratio,
        shape_histogram: hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MeshBuilder;
    use crate::geom::Vec3;

    #[test]
    fn regular_tet_scores_one() {
        let mut b = MeshBuilder::new();
        // Regular tetrahedron with unit edge.
        let n0 = b.add_node(Vec3::new(0.0, 0.0, 0.0));
        let n1 = b.add_node(Vec3::new(1.0, 0.0, 0.0));
        let n2 = b.add_node(Vec3::new(0.5, 3f64.sqrt() / 2.0, 0.0));
        let n3 = b.add_node(Vec3::new(0.5, 3f64.sqrt() / 6.0, (2f64 / 3.0).sqrt()));
        b.add_tet([n0, n1, n2, n3]);
        let m = b.finish();
        let q = element_quality(&m, 0);
        assert!((q.shape - 1.0).abs() < 1e-9, "shape {}", q.shape);
        assert!((q.edge_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sliver_scores_poorly() {
        let mut b = MeshBuilder::new();
        let n0 = b.add_node(Vec3::new(0.0, 0.0, 0.0));
        let n1 = b.add_node(Vec3::new(1.0, 0.0, 0.0));
        let n2 = b.add_node(Vec3::new(0.0, 1.0, 0.0));
        let n3 = b.add_node(Vec3::new(0.5, 0.5, 0.001)); // nearly coplanar
        b.add_tet([n0, n1, n2, n3]);
        let m = b.finish();
        let q = element_quality(&m, 0);
        assert!(q.shape < 0.05, "sliver shape {}", q.shape);
    }

    #[test]
    fn airway_mesh_report_is_sane() {
        let am = crate::airway::generate_airway(&crate::airway::AirwaySpec::small()).unwrap();
        let r = quality_report(&am.mesh);
        assert!(r.min_shape > 0.0, "no degenerate elements");
        assert!(r.mean_shape > 0.05);
        // Boundary-layer prisms are anisotropic: large edge ratios exist.
        assert!(r.max_edge_ratio > 3.0);
        let total: usize = r.shape_histogram.iter().sum();
        assert_eq!(total, am.mesh.num_elements());
    }
}
