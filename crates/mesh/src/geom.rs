//! Minimal 3D vector math used throughout the workspace.
//!
//! We deliberately avoid pulling in a linear-algebra crate: the mesh,
//! solver and particle crates only need a handful of `Vec3` operations,
//! and keeping them local makes the kernels easy to inline and audit.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector (position, velocity, force...).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the sqrt when only comparing).
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Panics in debug builds on the
    /// zero vector; in release returns a NaN vector (callers must ensure
    /// non-degeneracy, which the mesh generator does by construction).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }

    /// Component-wise linear interpolation: `self + t * (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Any unit vector orthogonal to `self` (which must be non-zero).
    pub fn any_orthogonal(self) -> Vec3 {
        // Pick the axis least aligned with self to avoid degeneracy.
        let a = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::new(1.0, 0.0, 0.0)
        } else if self.y.abs() <= self.z.abs() {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        self.cross(a).normalized()
    }

    /// Rotate `self` around unit axis `axis` by `angle` radians
    /// (Rodrigues' rotation formula).
    pub fn rotate_about(self, axis: Vec3, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        self * c + axis.cross(self) * s + axis * (axis.dot(self) * (1.0 - c))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

/// A right-handed orthonormal frame used to sweep tube cross-sections
/// along a centerline: `t` is the tangent (extrusion direction), `u` and
/// `v` span the cross-section plane.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    pub t: Vec3,
    pub u: Vec3,
    pub v: Vec3,
}

impl Frame {
    /// Build a frame with tangent `t` (normalized internally) and an
    /// arbitrary but deterministic pair of cross-section axes.
    pub fn from_tangent(t: Vec3) -> Frame {
        let t = t.normalized();
        let u = t.any_orthogonal();
        let v = t.cross(u);
        Frame { t, u, v }
    }

    /// Transport this frame to a new tangent direction, rotating the
    /// cross-section axes as little as possible (avoids the twisting
    /// artifacts of re-deriving `u` from scratch at every branch).
    pub fn transport_to(&self, new_t: Vec3) -> Frame {
        let new_t = new_t.normalized();
        let axis = self.t.cross(new_t);
        let s = axis.norm();
        if s < 1e-12 {
            // Parallel (or anti-parallel; the generator never folds back).
            return Frame { t: new_t, u: self.u, v: self.v };
        }
        let axis = axis / s;
        let angle = self.t.dot(new_t).clamp(-1.0, 1.0).acos();
        let u = self.u.rotate_about(axis, angle);
        let v = new_t.cross(u);
        Frame { t: new_t, u, v }
    }

    /// Point on the cross-section circle at `center`, radius `r`, angle `a`.
    #[inline]
    pub fn circle_point(&self, center: Vec3, r: f64, a: f64) -> Vec3 {
        let (s, c) = a.sin_cos();
        center + self.u * (r * c) + self.v * (r * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        approx(a.dot(b), -4.0 + 10.0 + 1.5);
        let c = a.cross(b);
        // Cross product is orthogonal to both operands.
        approx(c.dot(a), 0.0);
        approx(c.dot(b), 0.0);
        approx(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_is_unit() {
        let v = Vec3::new(0.3, -2.0, 7.0).normalized();
        approx(v.norm(), 1.0);
    }

    #[test]
    fn any_orthogonal_is_orthogonal_unit() {
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, -2.0, 0.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.1, 3.0, 0.2),
        ] {
            let o = v.any_orthogonal();
            approx(o.dot(v), 0.0);
            approx(o.norm(), 1.0);
        }
    }

    #[test]
    fn rotation_preserves_norm_and_rotates() {
        let v = Vec3::new(1.0, 0.0, 0.0);
        let r = v.rotate_about(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
        approx(r.x, 0.0);
        approx(r.y, 1.0);
        approx(r.norm(), 1.0);
    }

    #[test]
    fn frame_is_orthonormal_after_transport() {
        let f = Frame::from_tangent(Vec3::new(0.0, 0.0, 1.0));
        let g = f.transport_to(Vec3::new(1.0, 0.0, 1.0));
        approx(g.t.norm(), 1.0);
        approx(g.u.norm(), 1.0);
        approx(g.v.norm(), 1.0);
        approx(g.t.dot(g.u), 0.0);
        approx(g.t.dot(g.v), 0.0);
        approx(g.u.dot(g.v), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }
}
