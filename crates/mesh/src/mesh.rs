//! The hybrid unstructured mesh container and its derived topology.
//!
//! Connectivity is stored in CSR form (mixed element arities), the same
//! layout a production FEM code like Alya uses. Derived maps — node→
//! element, element↔element adjacency through shared nodes (the source
//! of the assembly race condition, §3.1), and face neighbors (used by
//! the particle element-walk) — are computed on demand.

use crate::element::{BoundaryKind, ElementKind};
use crate::geom::Vec3;
use std::collections::HashMap;

/// An unstructured hybrid mesh (tetrahedra, pyramids, prisms).
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    /// Node coordinates.
    pub coords: Vec<Vec3>,
    /// Element kinds, one per element.
    pub kinds: Vec<ElementKind>,
    /// CSR offsets into `conn`; element `e` owns `conn[offsets[e]..offsets[e+1]]`.
    pub offsets: Vec<u32>,
    /// Flattened element→node connectivity.
    pub conn: Vec<u32>,
    /// Exterior boundary faces: (element, local face index, kind).
    pub boundary: Vec<(u32, u8, BoundaryKind)>,
}

/// CSR adjacency structure (used for node→element and element↔element maps).
#[derive(Debug, Clone, Default)]
pub struct Csr {
    pub offsets: Vec<u32>,
    pub targets: Vec<u32>,
}

impl Csr {
    /// Neighbors of entry `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-element face neighbor table: `neighbors[e][f]` is `Some(e')` if
/// local face `f` of element `e` is shared with element `e'`, `None` if
/// it is an exterior face. Faces are indexed per [`ElementKind::faces`].
#[derive(Debug, Clone)]
pub struct FaceNeighbors {
    offsets: Vec<u32>,
    entries: Vec<Option<u32>>,
}

impl FaceNeighbors {
    /// Neighbor across local face `f` of element `e`.
    #[inline]
    pub fn neighbor(&self, e: usize, f: usize) -> Option<u32> {
        self.entries[self.offsets[e] as usize + f]
    }

    /// All face-neighbor slots of element `e`.
    #[inline]
    pub fn faces(&self, e: usize) -> &[Option<u32>] {
        &self.entries[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }
}

/// Aggregate mesh statistics (element mix, sizes) for reporting.
#[derive(Debug, Clone, Default)]
pub struct MeshStats {
    pub num_nodes: usize,
    pub num_elements: usize,
    pub num_tets: usize,
    pub num_pyramids: usize,
    pub num_prisms: usize,
    pub total_volume: f64,
    pub min_volume: f64,
    pub max_volume: f64,
}

impl Mesh {
    /// Number of elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.kinds.len()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Nodes of element `e`.
    #[inline]
    pub fn elem_nodes(&self, e: usize) -> &[u32] {
        &self.conn[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }

    /// Centroid of element `e`.
    pub fn centroid(&self, e: usize) -> Vec3 {
        let nodes = self.elem_nodes(e);
        let mut c = Vec3::ZERO;
        for &n in nodes {
            c += self.coords[n as usize];
        }
        c / nodes.len() as f64
    }

    /// Signed volume of element `e`, computed by decomposing the element
    /// into tetrahedra fanned from its first node (exact for planar-faced
    /// convex elements; a very good approximation for the mildly warped
    /// quad faces the generator produces).
    pub fn volume(&self, e: usize) -> f64 {
        let nodes = self.elem_nodes(e);
        let kind = self.kinds[e];
        let p = |i: usize| self.coords[nodes[i] as usize];
        let tet_vol = |a: Vec3, b: Vec3, c: Vec3, d: Vec3| (b - a).cross(c - a).dot(d - a) / 6.0;
        match kind {
            ElementKind::Tet4 => tet_vol(p(0), p(1), p(2), p(3)),
            ElementKind::Pyr5 => {
                // Split base quad 0-1-2-3 along diagonal 0-2.
                tet_vol(p(0), p(1), p(2), p(4)) + tet_vol(p(0), p(2), p(3), p(4))
            }
            ElementKind::Pri6 => {
                // Standard 3-tet split (any valid split gives the volume).
                tet_vol(p(0), p(1), p(2), p(3))
                    + tet_vol(p(1), p(2), p(3), p(4))
                    + tet_vol(p(2), p(3), p(4), p(5))
            }
        }
    }

    /// Element mix and volume statistics.
    pub fn stats(&self) -> MeshStats {
        let mut s = MeshStats {
            num_nodes: self.num_nodes(),
            num_elements: self.num_elements(),
            min_volume: f64::INFINITY,
            max_volume: f64::NEG_INFINITY,
            ..Default::default()
        };
        for e in 0..self.num_elements() {
            match self.kinds[e] {
                ElementKind::Tet4 => s.num_tets += 1,
                ElementKind::Pyr5 => s.num_pyramids += 1,
                ElementKind::Pri6 => s.num_prisms += 1,
            }
            let v = self.volume(e);
            s.total_volume += v;
            s.min_volume = s.min_volume.min(v);
            s.max_volume = s.max_volume.max(v);
        }
        if self.num_elements() == 0 {
            s.min_volume = 0.0;
            s.max_volume = 0.0;
        }
        s
    }

    /// Node → incident elements map.
    pub fn node_to_elements(&self) -> Csr {
        let n = self.num_nodes();
        let mut counts = vec![0u32; n + 1];
        for &v in &self.conn {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; self.conn.len()];
        let mut cursor = offsets.clone();
        for e in 0..self.num_elements() {
            for &v in self.elem_nodes(e) {
                let c = &mut cursor[v as usize];
                targets[*c as usize] = e as u32;
                *c += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Element ↔ element adjacency through **shared nodes** (deduplicated,
    /// no self-loops). Two elements sharing at least one node may race
    /// when scatter-adding into the global matrix — this graph drives
    /// mesh coloring and the multidependences task incompatibilities.
    pub fn element_adjacency(&self, node_to_elem: &Csr) -> Csr {
        let ne = self.num_elements();
        let mut offsets = Vec::with_capacity(ne + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        // `mark[e2] == e as u32 + 1` means e2 already recorded for e.
        let mut mark = vec![0u32; ne];
        for e in 0..ne {
            let stamp = e as u32 + 1;
            for &v in self.elem_nodes(e) {
                for &e2 in node_to_elem.row(v as usize) {
                    if e2 as usize != e && mark[e2 as usize] != stamp {
                        mark[e2 as usize] = stamp;
                        targets.push(e2);
                    }
                }
            }
            // Sort each row for deterministic downstream iteration.
            let start = *offsets.last().unwrap() as usize;
            targets[start..].sort_unstable();
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Face-neighbor table used by the particle element-walk locator.
    /// Also validates mesh conformity: every interior face must be shared
    /// by exactly two elements.
    pub fn face_neighbors(&self) -> FaceNeighbors {
        // Key: face nodes sorted ascending, padded with u32::MAX for
        // triangles so quads and triangles never collide.
        let mut map: HashMap<[u32; 4], (u32, u8)> =
            HashMap::with_capacity(self.num_elements() * 4);
        let mut offsets = Vec::with_capacity(self.num_elements() + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for e in 0..self.num_elements() {
            total += self.kinds[e].num_faces() as u32;
            offsets.push(total);
        }
        let mut entries: Vec<Option<u32>> = vec![None; total as usize];
        for e in 0..self.num_elements() {
            let nodes = self.elem_nodes(e);
            for (f, face) in self.kinds[e].faces().iter().enumerate() {
                let mut key = [u32::MAX; 4];
                for (k, &li) in face.iter().enumerate() {
                    key[k] = nodes[li];
                }
                key[..face.len()].sort_unstable();
                match map.remove(&key) {
                    Some((e2, f2)) => {
                        entries[offsets[e] as usize + f] = Some(e2);
                        entries[offsets[e2 as usize] as usize + f2 as usize] = Some(e as u32);
                    }
                    None => {
                        map.insert(key, (e as u32, f as u8));
                    }
                }
            }
        }
        // Whatever is left in `map` are exterior faces; they stay None.
        FaceNeighbors { offsets, entries }
    }

    /// Node ↔ node adjacency through shared elements (deduplicated,
    /// sorted, no self-loops) — exactly the off-diagonal sparsity
    /// pattern of the assembled FEM matrices, so its bandwidth is the
    /// CSR bandwidth the RCM reordering minimizes.
    pub fn node_adjacency(&self) -> Csr {
        let n2e = self.node_to_elements();
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        // `mark[w] == v + 1` means w already recorded as a neighbor of v.
        let mut mark = vec![0u32; n];
        for v in 0..n {
            let stamp = v as u32 + 1;
            for &e in n2e.row(v) {
                for &w in self.elem_nodes(e as usize) {
                    if w as usize != v && mark[w as usize] != stamp {
                        mark[w as usize] = stamp;
                        targets.push(w);
                    }
                }
            }
            let start = *offsets.last().unwrap() as usize;
            targets[start..].sort_unstable();
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Renumber the nodes in place with `perm[old] = new`: coordinates
    /// move to their new slots and every connectivity entry is mapped.
    /// Element order, kinds, offsets and (element-indexed) boundary tags
    /// are untouched, so partitions, colorings and particle state built
    /// on element ids stay valid. Applying `perm` then its inverse
    /// restores the mesh exactly.
    pub fn renumber_nodes(&mut self, perm: &[u32]) {
        let n = self.num_nodes();
        assert_eq!(perm.len(), n, "permutation length must match node count");
        debug_assert!(
            {
                let mut seen = vec![false; n];
                perm.iter().all(|&p| {
                    let fresh = !seen[p as usize];
                    seen[p as usize] = true;
                    fresh
                })
            },
            "perm must be a bijection on 0..num_nodes"
        );
        let mut coords = vec![Vec3::ZERO; n];
        for (old, &new) in perm.iter().enumerate() {
            coords[new as usize] = self.coords[old];
        }
        self.coords = coords;
        for v in &mut self.conn {
            *v = perm[*v as usize];
        }
    }

    /// Boundary lookup: map from (element, local face) to boundary kind.
    pub fn boundary_map(&self) -> HashMap<(u32, u8), BoundaryKind> {
        self.boundary.iter().map(|&(e, f, k)| ((e, f), k)).collect()
    }

    /// Check all element volumes are strictly positive; returns offending
    /// element indices (empty means valid).
    pub fn negative_volume_elements(&self) -> Vec<usize> {
        (0..self.num_elements())
            .filter(|&e| self.volume(e) <= 0.0)
            .collect()
    }

    /// Per-element assembly cost weights (quadrature-richness based).
    pub fn cost_weights(&self) -> Vec<f64> {
        self.kinds.iter().map(|k| k.cost_weight()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MeshBuilder;

    /// Two tets sharing a face: a minimal conforming mesh.
    fn two_tets() -> Mesh {
        let mut b = MeshBuilder::new();
        let n0 = b.add_node(Vec3::new(0.0, 0.0, 0.0));
        let n1 = b.add_node(Vec3::new(1.0, 0.0, 0.0));
        let n2 = b.add_node(Vec3::new(0.0, 1.0, 0.0));
        let n3 = b.add_node(Vec3::new(0.0, 0.0, 1.0));
        let n4 = b.add_node(Vec3::new(1.0, 1.0, 1.0));
        b.add_tet([n0, n1, n2, n3]);
        b.add_tet([n1, n2, n3, n4]);
        b.finish()
    }

    #[test]
    fn volumes_positive_and_correct() {
        let m = two_tets();
        assert!((m.volume(0) - 1.0 / 6.0).abs() < 1e-12);
        assert!(m.volume(1) > 0.0);
        assert!(m.negative_volume_elements().is_empty());
    }

    #[test]
    fn node_to_elements_inverts_connectivity() {
        let m = two_tets();
        let n2e = m.node_to_elements();
        assert_eq!(n2e.row(0), &[0]); // node 0 only in tet 0
        assert_eq!(n2e.row(4), &[1]); // node 4 only in tet 1
        assert_eq!(n2e.row(1), &[0, 1]); // shared
    }

    #[test]
    fn element_adjacency_by_shared_node() {
        let m = two_tets();
        let n2e = m.node_to_elements();
        let adj = m.element_adjacency(&n2e);
        assert_eq!(adj.row(0), &[1]);
        assert_eq!(adj.row(1), &[0]);
    }

    #[test]
    fn face_neighbors_finds_shared_face() {
        let m = two_tets();
        let fns = m.face_neighbors();
        let shared0: Vec<_> = fns.faces(0).iter().filter(|n| n.is_some()).collect();
        assert_eq!(shared0.len(), 1);
        assert_eq!(fns.faces(0).iter().flatten().next(), Some(&1));
        assert_eq!(fns.faces(1).iter().flatten().next(), Some(&0));
    }

    #[test]
    fn pyramid_volume() {
        // Unit-square base, apex at height 1: V = 1/3.
        let mut b = MeshBuilder::new();
        let n: Vec<u32> = [
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.5, 0.5, 1.0),
        ]
        .iter()
        .map(|&(x, y, z)| b.add_node(Vec3::new(x, y, z)))
        .collect();
        b.add_pyramid([n[0], n[1], n[2], n[3], n[4]]);
        let m = b.finish();
        assert!((m.volume(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prism_volume() {
        // Right triangular prism: base area 1/2, height 2 => V = 1.
        let mut b = MeshBuilder::new();
        let pts = [
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 2.0),
            (1.0, 0.0, 2.0),
            (0.0, 1.0, 2.0),
        ];
        let n: Vec<u32> = pts.iter().map(|&(x, y, z)| b.add_node(Vec3::new(x, y, z))).collect();
        b.add_prism([n[0], n[1], n[2], n[3], n[4], n[5]]);
        let m = b.finish();
        assert!((m.volume(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_adjacency_matches_shared_elements() {
        let m = two_tets();
        let adj = m.node_adjacency();
        // Node 0 is only in tet 0: neighbors are that tet's other nodes.
        assert_eq!(adj.row(0), &[1, 2, 3]);
        // Node 1 is in both tets: all other nodes are neighbors.
        assert_eq!(adj.row(1), &[0, 2, 3, 4]);
        // No self-loops anywhere.
        for v in 0..m.num_nodes() {
            assert!(!adj.row(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn renumber_nodes_round_trips_exactly() {
        let m0 = two_tets();
        let mut m = m0.clone();
        let perm: Vec<u32> = vec![4, 2, 0, 1, 3]; // arbitrary bijection
        let mut inv = vec![0u32; perm.len()];
        for (a, &b) in perm.iter().enumerate() {
            inv[b as usize] = a as u32;
        }
        m.renumber_nodes(&perm);
        // Volumes (element-indexed geometry) are invariant bit-for-bit.
        assert_eq!(m.volume(0).to_bits(), m0.volume(0).to_bits());
        m.renumber_nodes(&inv);
        assert_eq!(m.conn, m0.conn);
        for (a, b) in m.coords.iter().zip(&m0.coords) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn stats_counts_mix() {
        let m = two_tets();
        let s = m.stats();
        assert_eq!(s.num_elements, 2);
        assert_eq!(s.num_tets, 2);
        assert_eq!(s.num_pyramids, 0);
        assert_eq!(s.num_prisms, 0);
        assert!(s.total_volume > 0.0);
    }
}
