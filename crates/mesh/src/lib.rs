//! # cfpd-mesh — hybrid unstructured meshes for respiratory CFPD
//!
//! This crate provides the geometric substrate of the reproduction of
//! *"Computational Fluid and Particle Dynamics Simulations for
//! Respiratory System: Runtime Optimization on an Arm Cluster"*
//! (Garcia-Gasulla et al., ICPP 2018):
//!
//! * [`geom`] — minimal 3D vector/frame math,
//! * [`element`] — the hybrid element family (tetrahedra, pyramids,
//!   prisms) used by the paper's 17.7 M-element airway mesh,
//! * [`mesh`] — CSR mesh container with derived topology (node→element,
//!   element adjacency through shared nodes, face neighbors),
//! * [`builder`] — incremental construction with orientation fixing and
//!   the conforming prism→tet split,
//! * [`tube`] / [`airway`] — the parametric bronchial-tree generator
//!   substituting for the paper's subject-specific CT geometry (see
//!   DESIGN.md §2 for why the substitution preserves the studied
//!   behaviour).
//!
//! ```
//! use cfpd_mesh::{AirwaySpec, generate_airway};
//! let airway = generate_airway(&AirwaySpec::small()).unwrap();
//! let stats = airway.mesh.stats();
//! assert!(stats.num_prisms > 0 && stats.num_tets > 0 && stats.num_pyramids > 0);
//! ```

pub mod airway;
pub mod builder;
pub mod element;
pub mod geom;
pub mod mesh;
pub mod quality;
pub mod tube;
pub mod vtk;

pub use airway::{generate_airway, AirwayMesh, AirwaySpec, MeshError};
pub use builder::MeshBuilder;
pub use element::{BoundaryKind, ElementKind};
pub use geom::{Frame, Vec3};
pub use mesh::{Csr, FaceNeighbors, Mesh, MeshStats};
pub use quality::{element_quality, quality_report, ElementQuality, QualityReport};
pub use tube::TubeParams;
pub use vtk::{to_vtk, write_vtk};
