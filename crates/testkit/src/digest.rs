//! FNV-1a digests over raw bit patterns — the primitive of the
//! golden-trace regression suite. Floating-point values are hashed via
//! `f64::to_bits`, so a digest match means *bit-identical* physics, not
//! merely close-enough physics: exactly the gate future scheduling /
//! load-balancing PRs must pass.

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    pub fn new() -> Digest {
        Digest { state: FNV_OFFSET }
    }

    pub fn update(&mut self, bytes: &[u8]) -> &mut Digest {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn update_u64(&mut self, v: u64) -> &mut Digest {
        self.update(&v.to_le_bytes())
    }

    /// Hash the exact bit pattern of `v` (distinguishes `0.0`/`-0.0`
    /// and every NaN payload — intentionally: any bit drift is drift).
    pub fn update_f64(&mut self, v: f64) -> &mut Digest {
        self.update_u64(v.to_bits())
    }

    pub fn update_f64s(&mut self, vs: &[f64]) -> &mut Digest {
        for &v in vs {
            self.update_f64(v);
        }
        self
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

/// One-shot digest of an `f64` slice's bit patterns.
pub fn digest_f64s(vs: &[f64]) -> u64 {
    let mut d = Digest::new();
    d.update_f64s(vs);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(digest_bytes(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(digest_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(digest_bytes(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn f64_digest_is_bit_exact() {
        assert_eq!(digest_f64s(&[1.0, 2.0]), digest_f64s(&[1.0, 2.0]));
        assert_ne!(digest_f64s(&[1.0]), digest_f64s(&[1.0 + f64::EPSILON]));
        assert_ne!(digest_f64s(&[0.0]), digest_f64s(&[-0.0]));
        assert_ne!(digest_f64s(&[1.0, 2.0]), digest_f64s(&[2.0, 1.0]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut d = Digest::new();
        d.update(b"foo").update(b"bar");
        assert_eq!(d.finish(), digest_bytes(b"foobar"));
    }
}
