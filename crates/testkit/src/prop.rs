//! A shrinking property-test runner — the in-repo replacement for the
//! `proptest` patterns the top-level suites use.
//!
//! A [`Gen`] produces random values and, given a failing value, a list
//! of *simpler* candidate values (shrinking). [`check`] generates
//! `cases` values from a deterministic seed, runs the property on each
//! (catching panics, so properties use plain `assert!`), and on failure
//! greedily shrinks the counterexample before reporting it.
//!
//! ```
//! use cfpd_testkit::prop::{check, f64_range, vec_of, PropConfig};
//! check("sum is finite", PropConfig::cases(32), &vec_of(f64_range(0.0, 1e6), 8), |v| {
//!     assert!(v.iter().sum::<f64>().is_finite());
//! });
//! ```

use crate::rng::Rng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A generator of test values with optional shrinking.
pub trait Gen {
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    /// Every candidate must satisfy the generator's own constraints
    /// (e.g. stay inside the range). The default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PropConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` uses stream `seed + i`, so a reported case
    /// is reproducible in isolation.
    pub seed: u64,
    /// Budget of property executions spent shrinking a failure.
    pub max_shrinks: u32,
}

impl PropConfig {
    /// The default configuration with `cases` generated inputs.
    pub fn cases(cases: u32) -> PropConfig {
        PropConfig { cases, seed: 0x5EED_CF9D, max_shrinks: 400 }
    }

    pub fn with_seed(mut self, seed: u64) -> PropConfig {
        self.seed = seed;
        self
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Check `property` against `cases` generated values. Panics with the
/// (shrunk) counterexample on failure; prints a one-line report on
/// success so suites can count executed properties.
pub fn check<G, F>(name: &str, cfg: PropConfig, gen: &G, property: F)
where
    G: Gen,
    F: Fn(&G::Value),
{
    for case in 0..cfg.cases {
        let mut rng = Rng::new(cfg.seed.wrapping_add(case as u64));
        let value = gen.generate(&mut rng);
        let result = catch_unwind(AssertUnwindSafe(|| property(&value)));
        let Err(payload) = result else { continue };
        let mut failing = value;
        let mut cause = panic_message(payload);

        // Greedy shrink: adopt the first failing candidate, restart.
        let mut budget = cfg.max_shrinks;
        let mut shrunk_steps = 0u32;
        'outer: loop {
            for cand in gen.shrink(&failing) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| property(&cand))) {
                    failing = cand;
                    cause = panic_message(p);
                    shrunk_steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        panic!(
            "property '{name}' falsified at case {case}/{} (seed {})\n\
             counterexample ({shrunk_steps} shrink steps): {failing:?}\n\
             cause: {cause}",
            cfg.cases, cfg.seed,
        );
    }
    println!("property '{name}': {} cases passed", cfg.cases);
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "empty range {lo}..{hi}");
    F64Range { lo, hi }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let d = *value - self.lo;
        if !(d > 0.0) {
            return Vec::new();
        }
        // Ladder toward the floor: the floor itself, then candidates
        // approaching `value` by halving the remaining distance — a
        // greedy pass over these bisects to the boundary of failure.
        let mut out = vec![self.lo];
        let mut step = d / 2.0;
        let floor = d * 1e-12;
        while step > floor && out.len() < 48 {
            let cand = *value - step;
            if cand > self.lo && cand < *value {
                out.push(cand);
            }
            step /= 2.0;
        }
        out
    }
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)` (half-open, like `lo..hi`).
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "empty range {lo}..{hi}");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut Rng) -> usize {
        rng.range_usize(self.lo, self.hi)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let d = *value - self.lo;
        if d == 0 {
            return Vec::new();
        }
        let mut out = vec![self.lo];
        let mut step = d / 2;
        while step > 0 {
            out.push(*value - step);
            step /= 2;
        }
        // `value - 1` closes the gap when the halving ladder skips it.
        if d > 1 && out.last() != Some(&(*value - 1)) {
            out.push(*value - 1);
        }
        out
    }
}

/// Fixed-length vector of draws from an element generator. Shrinks
/// element-wise (the length is part of the property's contract, as in
/// `proptest::collection::vec(gen, n)` with a fixed `n`).
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    len: usize,
}

/// `len` independent draws from `elem`.
pub fn vec_of<G: Gen>(elem: G, len: usize) -> VecOf<G> {
    VecOf { elem, len }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        (0..self.len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        for (i, v) in value.iter().enumerate() {
            for cand in self.elem.shrink(v).into_iter().take(8) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Transformed generator (`prop_map` analogue). Cannot shrink through
/// an arbitrary function — prefer generating the raw tuple and mapping
/// inside the property when shrinking matters.
pub struct Map<G, F> {
    inner: G,
    f: F,
}

/// Apply `f` to every draw of `gen`.
pub fn map<G, F, U>(gen: G, f: F) -> Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
    U: Clone + Debug,
{
    Map { inner: gen, f }
}

impl<G, F, U> Gen for Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
    U: Clone + Debug,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Per-component shrink candidates taken when shrinking a tuple.
const TUPLE_SHRINKS_PER_COMPONENT: usize = 3;

macro_rules! tuple_gen {
    ($($g:ident / $v:ident / $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx)
                        .into_iter()
                        .take(TUPLE_SHRINKS_PER_COMPONENT)
                    {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(G0 / v0 / 0, G1 / v1 / 1);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2, G3 / v3 / 3);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2, G3 / v3 / 3, G4 / v4 / 4);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2, G3 / v3 / 3, G4 / v4 / 4, G5 / v5 / 5);
tuple_gen!(
    G0 / v0 / 0,
    G1 / v1 / 1,
    G2 / v2 / 2,
    G3 / v3 / 3,
    G4 / v4 / 4,
    G5 / v5 / 5,
    G6 / v6 / 6
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        check("tautology", PropConfig::cases(50), &f64_range(0.0, 1.0), |x| {
            assert!(*x >= 0.0 && *x < 1.0);
        });
    }

    #[test]
    fn failing_property_reports_shrunk_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "x below 500",
                PropConfig::cases(100),
                &usize_range(0, 1000),
                |&x| assert!(x < 500, "got {x}"),
            );
        }));
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("falsified"), "{msg}");
        // Greedy bisection toward the range floor must land exactly on
        // the smallest failing value.
        assert!(msg.contains("counterexample"), "{msg}");
        let shrunk: usize = msg
            .lines()
            .find(|l| l.contains("counterexample"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("parse counterexample");
        assert_eq!(shrunk, 500, "{msg}");
    }

    #[test]
    fn vec_shrinking_isolates_the_offending_element() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "all elements small",
                PropConfig::cases(50),
                &vec_of(f64_range(0.0, 10.0), 4),
                |v| assert!(v.iter().all(|&x| x < 9.0)),
            );
        }));
        let msg = panic_message(result.unwrap_err());
        // After shrinking, non-offending elements sit at the range floor.
        assert!(msg.contains("0.0"), "shrink left noise: {msg}");
    }

    #[test]
    fn tuple_generation_and_shrinking() {
        let gen = (usize_range(1, 10), f64_range(0.0, 1.0));
        let mut rng = Rng::new(1);
        let v = gen.generate(&mut rng);
        assert!((1..10).contains(&v.0));
        let shrinks = gen.shrink(&v);
        assert!(!shrinks.is_empty() || v.0 == 1);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let gen = vec_of(f64_range(0.0, 1.0), 3);
            let mut all = Vec::new();
            for case in 0..5u64 {
                let mut rng = Rng::new(PropConfig::cases(1).seed + case);
                all.push(gen.generate(&mut rng));
            }
            all
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn map_applies_function() {
        let gen = map(usize_range(0, 5), |x| x * 2);
        let mut rng = Rng::new(4);
        for _ in 0..20 {
            let v = gen.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 10);
        }
    }
}
