//! `Mutex`/`Condvar` with the `parking_lot` call shapes, built on
//! `std::sync` — `lock()` returns the guard directly (poisoning is
//! ignored: a panicking region already fails its test, and the runtime
//! primitives must keep working during unwind-driven teardown), and
//! `Condvar::wait` takes `&mut MutexGuard`.
//!
//! This is what lets `cfpd-runtime`, `cfpd-simmpi` and `cfpd-dlb` drop
//! the external `parking_lot`/`crossbeam` dependencies without touching
//! their logic. The former crossbeam niches map to std directly:
//! `std::sync::mpsc` for channels, `std::thread::scope` for scoped
//! spawns.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion with panic-tolerant locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }
}

/// Guard returned by [`Mutex::lock`]. Holds the inner std guard in an
/// `Option` so [`Condvar::wait`] can take it out and put the re-armed
/// one back (std's wait consumes the guard by value).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard's lock while waiting.
    /// Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|p| p.into_inner());
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the next lock just works.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // Guard still usable after the timed-out wait.
        drop(g);
        let _ = m.lock();
    }
}
