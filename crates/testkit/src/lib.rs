//! # cfpd-testkit — the zero-dependency verification stack
//!
//! Every crate in this workspace must build and test **fully offline**:
//! the paper's claim structure rests on measured, reproducible runtime
//! behavior, and a harness that cannot resolve its dependencies cannot
//! produce numbers at all. This crate therefore replaces the handful of
//! external crates the seed depended on with small, deterministic,
//! in-repo implementations:
//!
//! * [`rng`] — a seedable SplitMix64 / xoshiro256++ PRNG with the
//!   distributions the simulation uses (uniform, normal via Box–Muller,
//!   Fisher–Yates shuffle). Replaces `rand`.
//! * [`prop`] — a shrinking property-test runner covering the
//!   `proptest` patterns used by the top-level test suites.
//! * [`bench`] — a warmup + median bench timer with text report
//!   emission compatible with the `results/*.txt` layout. Replaces
//!   `criterion`.
//! * [`sync`] — `Mutex`/`Condvar` with the `parking_lot` call shapes
//!   (no `Result`-wrapped guards, `Condvar::wait(&mut guard)`), built
//!   on `std::sync`. Replaces `parking_lot`; the former `crossbeam`
//!   channel/scope niches are covered by `std::sync::mpsc` and
//!   `std::thread::scope` directly.
//! * [`digest`] — FNV-1a digests over raw `f64` bit patterns, the
//!   primitive of the golden-trace regression suite (bit-identical
//!   physics gate).
//! * [`json`] — a strict RFC 8259 parser, the read-side counterpart of
//!   `cfpd-telemetry`'s `JsonWriter`, so tests and `verify.sh` validate
//!   emitted Chrome-trace / report JSON structurally.
//!
//! External registry dependencies are banned workspace-wide; CI
//! (`scripts/verify.sh`) builds with `--offline` and fails on any
//! warning from this crate.

pub mod bench;
pub mod digest;
pub mod json;
pub mod prop;
pub mod rng;
pub mod sync;

pub use bench::{Bench, BenchConfig, BenchStats};
pub use digest::{digest_bytes, digest_f64s, Digest};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use prop::{check, f64_range, map, usize_range, vec_of, Gen, PropConfig};
pub use rng::{Rng, SplitMix64};
