//! Warmup + median bench timer — the in-repo `criterion` replacement.
//!
//! Each benchmark routine is run `warmup` times untimed, then `samples`
//! times timed; the report carries min / median / mean per routine.
//! Reports render as plain text compatible with the `results/*.txt`
//! layout the figure harnesses emit (header line, aligned columns), and
//! can be written to `results/<name>.txt` at the workspace root.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed runs before sampling (cache/branch-predictor warmup).
    pub warmup: u32,
    /// Timed runs per routine.
    pub samples: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 3, samples: 10 }
    }
}

/// Robust summary of one routine's timed samples (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    pub min: f64,
    pub median: f64,
    pub mean: f64,
    pub samples: u32,
}

impl BenchStats {
    fn from_samples(mut times: Vec<f64>) -> BenchStats {
        assert!(!times.is_empty());
        times.sort_by(|a, b| a.total_cmp(b));
        let n = times.len();
        let median = if n % 2 == 1 {
            times[n / 2]
        } else {
            0.5 * (times[n / 2 - 1] + times[n / 2])
        };
        BenchStats {
            min: times[0],
            median,
            mean: times.iter().sum::<f64>() / n as f64,
            samples: n as u32,
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of benchmark routines sharing one config and report.
pub struct Bench {
    name: String,
    config: BenchConfig,
    rows: Vec<(String, BenchStats)>,
}

impl Bench {
    pub fn new(name: &str) -> Bench {
        Bench::with_config(name, BenchConfig::default())
    }

    pub fn with_config(name: &str, config: BenchConfig) -> Bench {
        Bench { name: name.to_string(), config, rows: Vec::new() }
    }

    /// Time `routine` as-is (setup cost, if any, is included).
    pub fn bench<F: FnMut()>(&mut self, label: &str, mut routine: F) -> BenchStats {
        for _ in 0..self.config.warmup {
            routine();
        }
        let times: Vec<f64> = (0..self.config.samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                routine();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        self.push(label, times)
    }

    /// Time `routine` on a fresh `setup()` product per sample, timing
    /// only the routine (criterion's `iter_batched`).
    pub fn bench_batched<I, S, F>(&mut self, label: &str, mut setup: S, mut routine: F) -> BenchStats
    where
        S: FnMut() -> I,
        F: FnMut(I),
    {
        for _ in 0..self.config.warmup {
            routine(setup());
        }
        let times: Vec<f64> = (0..self.config.samples.max(1))
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                routine(input);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        self.push(label, times)
    }

    fn push(&mut self, label: &str, times: Vec<f64>) -> BenchStats {
        let stats = BenchStats::from_samples(times);
        self.rows.push((label.to_string(), stats));
        stats
    }

    /// All recorded rows, in execution order.
    pub fn rows(&self) -> &[(String, BenchStats)] {
        &self.rows
    }

    /// Plain-text report in the `results/*.txt` house style.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{} — warmup {} / {} samples per routine (median-reported)\n\n",
            self.name, self.config.warmup, self.config.samples
        );
        let width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).max(8);
        out.push_str(&format!(
            "{:<width$}  {:>12}  {:>12}  {:>12}\n",
            "routine", "median", "min", "mean"
        ));
        out.push_str(&format!("{}\n", "-".repeat(width + 44)));
        for (label, s) in &self.rows {
            out.push_str(&format!(
                "{label:<width$}  {:>12}  {:>12}  {:>12}\n",
                format_time(s.median),
                format_time(s.min),
                format_time(s.mean),
            ));
        }
        out
    }

    /// Print the report and write it to `<results_dir>/<name>.txt`.
    pub fn emit(&self, results_dir: &Path) -> std::io::Result<PathBuf> {
        let text = self.report();
        print!("{text}");
        std::fs::create_dir_all(results_dir)?;
        let path = results_dir.join(format!("{}.txt", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_and_min() {
        let s = BenchStats::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
        let even = BenchStats::from_samples(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(even.median, 2.5);
    }

    #[test]
    fn bench_counts_warmup_and_samples() {
        let mut calls = 0u32;
        let mut b = Bench::with_config("smoke", BenchConfig { warmup: 2, samples: 5 });
        b.bench("count", || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(b.rows().len(), 1);
        assert_eq!(b.rows()[0].1.samples, 5);
    }

    #[test]
    fn bench_batched_times_only_the_routine() {
        let mut setups = 0u32;
        let mut runs = 0u32;
        let mut b = Bench::with_config("smoke", BenchConfig { warmup: 1, samples: 3 });
        b.bench_batched("batched", || setups += 1, |_| runs += 1);
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }

    #[test]
    fn report_lists_every_routine() {
        let mut b = Bench::with_config("layout", BenchConfig { warmup: 0, samples: 1 });
        b.bench("alpha", || {});
        b.bench("beta_longer_name", || {});
        let r = b.report();
        assert!(r.contains("alpha"));
        assert!(r.contains("beta_longer_name"));
        assert!(r.contains("median"));
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 us");
        assert_eq!(format_time(2.5e-8), "25.0 ns");
    }
}
