//! Deterministic pseudo-random numbers: SplitMix64 for seeding,
//! xoshiro256++ as the workhorse generator, and the distributions the
//! simulation and test suites draw from (uniform reals/integers,
//! standard normal via Box–Muller, Fisher–Yates shuffle).
//!
//! The streams are fully specified by the seed: the same seed yields
//! the same sequence on every platform, which is what makes seeded
//! particle injection and the golden-trace suite reproducible.

/// SplitMix64 — a tiny, high-quality 64-bit generator used to expand a
/// single `u64` seed into the xoshiro state (the initialization
/// recommended by the xoshiro authors).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the main generator. 256 bits of state, period
/// 2²⁵⁶ − 1, passes BigCrush; plenty for particle dispersion and
/// property-test case generation.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Seed the full 256-bit state from one `u64` via SplitMix64.
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            spare_normal: None,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty f64 range {lo}..{hi}");
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, bound)`, unbiased (rejection sampling on
    /// the widening multiply, Lemire's method).
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 with bound 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty usize range {lo}..{hi}");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Standard normal deviate via Box–Muller (the pair's second output
    /// is cached, so consecutive calls consume uniforms two at a time).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let (a, b) = self.normal_pair();
        self.spare_normal = Some(b);
        a
    }

    /// One Box–Muller transform: two independent standard normals.
    pub fn normal_pair(&mut self) -> (f64, f64) {
        let u1 = self.f64().max(1e-12);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            buckets[(x * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.02, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn bounded_u64_is_unbiased_over_small_bound() {
        let mut rng = Rng::new(11);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.bounded_u64(7) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 7.0).abs() < 0.01, "value {v}: {frac}");
        }
    }

    #[test]
    fn range_usize_covers_bounds() {
        let mut rng = Rng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range_usize(4, 8);
            assert!((4..8).contains(&v));
            seen_lo |= v == 4;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn normal_has_unit_moments() {
        let mut rng = Rng::new(5);
        let n = 40_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        Rng::new(9).shuffle(&mut a);
        Rng::new(9).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<u32>>(), "shuffle moved nothing");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 description (seed 0 first
        // outputs), guarding against accidental constant edits.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
