//! A minimal RFC 8259 JSON *parser* — the read-side counterpart of
//! `cfpd-telemetry`'s `JsonWriter`.
//!
//! Tests and `scripts/verify.sh` use it to validate emitted Chrome
//! trace / report documents *structurally* (keys present, types right,
//! arrays well-formed) instead of grepping for substrings. It is not a
//! performance parser: documents here are kilobytes to low megabytes,
//! produced by our own writers, and correctness of the validation is
//! what matters.
//!
//! Conformance notes (RFC 8259):
//! * numbers are parsed into `f64` (integers up to 2^53 round-trip);
//! * all escapes including `\uXXXX` and UTF-16 surrogate pairs;
//! * objects preserve insertion order (`Vec<(String, JsonValue)>`), and
//!   duplicate keys are rejected — our writers never produce them, so a
//!   duplicate means a bug;
//! * trailing garbage after the top-level value is an error.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Object(_))
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; the whole input must be consumed.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(v)
}

/// Containers deeper than this are rejected (stack-overflow guard; our
/// own documents nest a handful of levels).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // UTF-16 surrogate pair: \uD8xx must be
                                // followed by \uDCxx.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("unescaped control character")),
                _ => {
                    // Re-borrow the full UTF-8 character starting at b.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))
                        .map(|s| s.chars().next().unwrap())?;
                    out.push(s);
                    self.pos = start + s.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            self.pos += 1;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse(r#""hi""#).unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_document_and_accessors() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null}"#).unwrap();
        assert!(v.is_object());
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""line1\nline2\t\"q\" \\ \u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line1\nline2\t\"q\" \\ Aé😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "[1 2]", "01", "1.", "1e",
            "\"\\x\"", "\"\\ud800\"", "nul", "{\"a\":1}x", "{\"a\":1,\"a\":2}",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn round_trips_the_telemetry_writer_output() {
        // The exact f64 shortest-form strings JsonWriter emits must come
        // back as the same values.
        let doc = r#"{"w":[0.1,1e-9,123456789.25,-0.0],"n":null}"#;
        let v = parse(doc).unwrap();
        let w = v.get("w").unwrap().as_array().unwrap();
        assert_eq!(w[0].as_f64(), Some(0.1));
        assert_eq!(w[1].as_f64(), Some(1e-9));
        assert_eq!(w[2].as_f64(), Some(123456789.25));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
