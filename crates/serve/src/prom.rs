//! Strict lint for the Prometheus text exposition format, in the same
//! spirit as `cfpd_testkit`'s RFC 8259 JSON parser: `/metrics` output
//! is only trusted after passing a real parser, not a smoke `grep`.
//!
//! Checks, beyond line-shape:
//! * every sample's base name (with `_bucket`/`_sum`/`_count` stripped
//!   for histograms) has a preceding `# TYPE`, declared exactly once;
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names
//!   `[a-zA-Z_][a-zA-Z0-9_]*`, label values are quoted with no raw
//!   control characters and only the legal escapes (`\\`, `\"`, `\n`);
//! * sample values parse as *finite* f64 — `+Inf`/`-Inf`/`NaN` sample
//!   values are rejected (our renderers never emit them; a NaN gauge is
//!   always an upstream bug). `le="+Inf"` is a label *value* and stays
//!   legal;
//! * histogram `_bucket` series are cumulative (non-decreasing), end
//!   with `le="+Inf"`, and agree with `_count`;
//! * the document ends with a newline.

use std::collections::BTreeMap;

/// Validate a Prometheus text document. `Ok(samples)` returns the
/// number of sample lines; `Err` pinpoints the first offending line.
pub fn lint_prometheus(text: &str) -> Result<usize, String> {
    if text.is_empty() {
        return Err("empty document".to_string());
    }
    if !text.ends_with('\n') {
        return Err("document does not end with a newline".to_string());
    }

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Per-histogram bucket bookkeeping: (last cumulative, saw +Inf, inf value).
    let mut buckets: BTreeMap<String, (f64, bool, f64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut samples = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let fail = |msg: String| Err(format!("line {lineno}: {msg} in {line:?}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut toks = rest.splitn(3, ' ');
            match toks.next() {
                Some("TYPE") => {
                    let (Some(name), Some(kind)) = (toks.next(), toks.next()) else {
                        return fail("malformed TYPE line".to_string());
                    };
                    if !valid_metric_name(name) {
                        return fail(format!("bad metric name {name:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return fail(format!("unknown metric type {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return fail(format!("duplicate TYPE for {name:?}"));
                    }
                }
                Some("HELP") => {}
                _ => return fail("unknown comment directive".to_string()),
            }
            continue;
        }

        // Sample line: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return fail("sample line has no value".to_string()),
        };
        // Rust's f64 parser accepts "inf"/"NaN" spellings, so non-finite
        // results must be caught after the parse, not before.
        let value: f64 = match value.parse() {
            Ok(x) if f64::is_finite(x) => x,
            Ok(_) => return fail(format!("non-finite sample value {value:?}")),
            Err(_) => return fail(format!("unparseable value {value:?}")),
        };
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(inner) => (n, Some(inner)),
                None => return fail("unbalanced label braces".to_string()),
            },
            None => (name_labels, None),
        };
        if !valid_metric_name(name) {
            return fail(format!("bad metric name {name:?}"));
        }
        let mut le: Option<&str> = None;
        if let Some(inner) = labels {
            for pair in split_labels(inner) {
                let Some((lname, lvalue)) = pair.split_once('=') else {
                    return fail(format!("label {pair:?} is not key=\"value\""));
                };
                if !valid_label_name(lname) {
                    return fail(format!("bad label name {lname:?}"));
                }
                let Some(unquoted) =
                    lvalue.strip_prefix('"').and_then(|v| v.strip_suffix('"'))
                else {
                    return fail(format!("label value {lvalue:?} is not quoted"));
                };
                if unquoted.chars().any(|c| c.is_control()) {
                    return fail("raw control character in label value".to_string());
                }
                let mut chars = unquoted.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\\' | '"' | 'n') => {}
                            other => {
                                return fail(format!(
                                    "illegal escape \\{} in label value",
                                    other.map(String::from).unwrap_or_default()
                                ))
                            }
                        },
                        '"' => {
                            return fail("unescaped quote in label value".to_string())
                        }
                        _ => {}
                    }
                }
                if lname == "le" {
                    le = Some(unquoted);
                }
            }
        }

        // Type resolution: histogram series use suffixed sample names.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|b| types.get(*b).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        let Some(kind) = types.get(base) else {
            return fail(format!("sample {name:?} has no preceding TYPE"));
        };
        if kind == "histogram" && name.ends_with("_bucket") {
            let Some(le) = le else {
                return fail("histogram bucket without an le label".to_string());
            };
            let entry = buckets.entry(base.to_string()).or_insert((f64::NEG_INFINITY, false, 0.0));
            if entry.1 {
                return fail("bucket after le=\"+Inf\"".to_string());
            }
            if value < entry.0 {
                return fail(format!(
                    "bucket counts must be cumulative ({value} < {})",
                    entry.0
                ));
            }
            entry.0 = value;
            if le == "+Inf" {
                entry.1 = true;
                entry.2 = value;
            }
        }
        if kind == "histogram" && name.ends_with("_count") {
            counts.insert(base.to_string(), value);
        }
        samples += 1;
    }

    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let Some((_, saw_inf, inf)) = buckets.get(name) else {
            return Err(format!("histogram {name:?} has no bucket samples"));
        };
        if !saw_inf {
            return Err(format!("histogram {name:?} is missing the le=\"+Inf\" bucket"));
        }
        match counts.get(name) {
            Some(c) if *c == *inf => {}
            Some(c) => {
                return Err(format!(
                    "histogram {name:?}: _count {c} != +Inf bucket {inf}"
                ))
            }
            None => return Err(format!("histogram {name:?} has no _count sample")),
        }
    }
    Ok(samples)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split `a="x",b="y"` on commas outside quotes, honouring backslash
/// escapes inside quoted values: `a="x\",\"y"` is ONE label whose value
/// contains a quote and a comma, not two.
fn split_labels(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut in_quote = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            ',' if !in_quote => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < inner.len() {
        out.push(&inner[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_document() {
        let doc = "\
# TYPE cfpd_jobs counter
cfpd_jobs 3
# TYPE cfpd_depth gauge
cfpd_depth -1
# TYPE cfpd_wait histogram
cfpd_wait_bucket{le=\"1\"} 2
cfpd_wait_bucket{le=\"7\"} 3
cfpd_wait_bucket{le=\"+Inf\"} 3
cfpd_wait_sum 9
cfpd_wait_count 3
# TYPE cfpd_phase gauge
cfpd_phase{phase=\"mpi\",rank=\"0\"} 0.25
";
        assert_eq!(lint_prometheus(doc), Ok(8));
    }

    #[test]
    fn rejects_structural_violations() {
        for (doc, needle) in [
            ("cfpd_x 1\n", "no preceding TYPE"),
            ("# TYPE cfpd_x counter\ncfpd_x nope\n", "unparseable value"),
            ("# TYPE cfpd_x counter\ncfpd_x 1", "end with a newline"),
            ("# TYPE cfpd_x counter\n# TYPE cfpd_x counter\ncfpd_x 1\n", "duplicate TYPE"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
            (
                "# TYPE cfpd_h histogram\ncfpd_h_bucket{le=\"1\"} 5\n\
                 cfpd_h_bucket{le=\"+Inf\"} 3\ncfpd_h_sum 1\ncfpd_h_count 3\n",
                "cumulative",
            ),
            (
                "# TYPE cfpd_h histogram\ncfpd_h_bucket{le=\"1\"} 1\n\
                 cfpd_h_sum 1\ncfpd_h_count 1\n",
                "+Inf",
            ),
            (
                "# TYPE cfpd_h histogram\ncfpd_h_bucket{le=\"+Inf\"} 3\n\
                 cfpd_h_sum 1\ncfpd_h_count 2\n",
                "_count 2 != +Inf bucket 3",
            ),
            ("# TYPE cfpd_x gauge\ncfpd_x{l=unquoted} 1\n", "not quoted"),
        ] {
            let err = lint_prometheus(doc).expect_err(doc);
            assert!(err.contains(needle), "{doc:?} -> {err}");
        }
    }

    #[test]
    fn non_finite_sample_values_are_rejected() {
        for value in ["NaN", "+Inf", "-Inf", "inf", "-inf", "nan"] {
            let doc = format!("# TYPE cfpd_x gauge\ncfpd_x {value}\n");
            let err = lint_prometheus(&doc).expect_err(&doc);
            assert!(err.contains("non-finite"), "{value:?} -> {err}");
        }
        // `le="+Inf"` is a label value, not a sample value: still legal
        // (exercised by every histogram in accepts_a_well_formed_document).
    }

    #[test]
    fn label_value_escaping_round_trips_through_the_renderer() {
        use cfpd_telemetry::{PopReport, TelemetrySnapshot};
        // A hostile phase name: quote, backslash and newline. The
        // renderer must escape it such that the lint's escape-aware
        // label splitter accepts the document.
        let snap = TelemetrySnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            pop: Some(PopReport {
                ranks: 1,
                wall_time: 1.0,
                useful_time: 1.0,
                mpi_time: 0.0,
                parallel_efficiency: 1.0,
                load_balance: 1.0,
                comm_efficiency: 1.0,
                per_rank_useful: vec![1.0],
                per_phase: vec![("we\"ird\\ph\nase", 1.0), ("com,ma", 2.0)],
                dropped: 0,
            }),
        };
        let doc = snap.render_prometheus();
        assert!(doc.contains(r#"phase="we\"ird\\ph\nase""#), "escaped form present:\n{doc}");
        let n = lint_prometheus(&doc).expect("escaped hostile labels must lint clean");
        assert!(n >= 9);
    }

    #[test]
    fn illegal_escapes_and_bare_quotes_in_label_values_are_rejected() {
        let doc = "# TYPE cfpd_x gauge\ncfpd_x{l=\"a\\tb\"} 1\n";
        let err = lint_prometheus(doc).unwrap_err();
        assert!(err.contains("illegal escape"), "{err}");
        // A quoted value containing an escaped comma+quote is ONE label.
        let doc = "# TYPE cfpd_x gauge\ncfpd_x{l=\"x\\\",\\\"y\"} 1\n";
        assert_eq!(lint_prometheus(doc), Ok(1));
    }

    #[test]
    fn the_real_renderer_passes_the_lint() {
        // Record through the live registry, snapshot, render, lint.
        cfpd_telemetry::set_enabled(true);
        cfpd_telemetry::count!("prom.lint.smoke", 5);
        cfpd_telemetry::gauge_add!("prom.lint.depth", 2);
        cfpd_telemetry::observe!("prom.lint.wait", 3);
        cfpd_telemetry::observe!("prom.lint.wait", 900);
        cfpd_telemetry::set_enabled(false);
        let doc = cfpd_telemetry::snapshot().render_prometheus();
        let n = lint_prometheus(&doc).expect("renderer output must lint clean");
        assert!(n >= 3, "expected at least our three metrics, got {n} samples");
        assert!(doc.contains("cfpd_prom_lint_smoke 5\n"));
    }
}
