//! `cfpd` — command-line front end of the reproduction.
//!
//! ```text
//! cfpd mesh     [--generations N] [--vtk FILE]      mesh stats / export
//! cfpd run      [--ranks N] [--threads N] [--dlb] [--coupled F P]
//!               [--particles N] [--steps N] [--strategy S]
//!               [--hetero PROFILE] [--dlb-policy reactive|predictive]
//! cfpd profile  [--ranks N] [--particles N]         Table-1-style profile
//! cfpd golden   [--ranks N] [--layout opt]          deterministic trace
//! cfpd chaos    [--seed S] [--ranks N] [--dlb] [--storm] [--json]
//!                                                   seeded fault-injection run
//! cfpd report   [--ranks N] [--json]                telemetry + POP rollup
//! cfpd campaign expand|run|report FILE              scenario matrix engine
//! cfpd serve    run|submit|status|result|cancel|metrics|drain
//!                                                   crash-safe job daemon
//! ```
//!
//! Argument parsing is deliberately dependency-free (tiny flag set).
//!
//! With `CFPD_TELEMETRY=1`, `golden` and `chaos` print an end-of-run
//! telemetry summary to **stderr** — stdout stays byte-identical to the
//! checked-in goldens.

use cfpd_campaign::{expand, full_matrix_size, run_campaign_with, CampaignSpec};
use cfpd_serve::{http_call, lint_prometheus, Daemon, ServeConfig, ServeFaultPlan};
use cfpd_core::{
    golden_config, golden_trace_traced, measure_workload, resolve_layout, run_scenario,
    run_simulation, run_simulation_fallible, run_simulation_opts, ExecutionMode, RunOptions,
    Scenario, SimulationConfig, PhaseCostModel,
};
use cfpd_mesh::{generate_airway, AirwaySpec};
use cfpd_simmpi::FaultConfig;
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::{
    critical_path, diff_summaries, export_chrome, export_pcf, export_prv, export_row,
    export_summary, lost_cycles, render_timeline, Trace,
};
use std::path::{Path, PathBuf};

fn main() {
    cfpd_telemetry::init_from_env();
    cfpd_flight::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = Flags::parse(&args[1.min(args.len())..]);
    match cmd {
        "mesh" => cmd_mesh(&flags),
        "run" => cmd_run(&flags),
        "profile" => cmd_profile(&flags),
        "golden" => cmd_golden(&flags),
        "chaos" => cmd_chaos(&flags),
        "report" => cmd_report(&flags),
        "trace" => cmd_trace(&args),
        "campaign" => cmd_campaign(&args),
        "serve" => cmd_serve(&args),
        "flight" => cmd_flight(&args),
        "watch" => cmd_watch(&args),
        _ => {
            eprintln!(
                "usage: cfpd <mesh|run|profile|golden|chaos|report|trace|campaign|serve|flight|watch> [flags]\n\
                 \n\
                 mesh     --generations N  --vtk FILE\n\
                 run      --ranks N  --threads N  --dlb  --coupled F P\n\
                 \x20        --particles N  --steps N  --strategy atomics|coloring|multidep|serial\n\
                 \x20        --hetero uniform|mn4_thunder|thunder_tail  --dlb-policy reactive|predictive\n\
                 profile  --ranks N  --particles N\n\
                 golden   --ranks N  --layout opt|default  --trace DIR\n\
                 chaos    --seed S  --ranks N  --dlb  --storm  --json  --trace DIR\n\
                 report   --ranks N  --json  --trace DIR  --baseline JSON [--tolerance X]\n\
                 trace    export --ranks N --dlb --out DIR | analyze [--threads N] [--strategy S] [--dlb] | diff A B\n\
                 campaign expand FILE | run FILE [--jobs N] [--json] [--report PATH] [--timing]\n\
                 \x20        [--cell-timeout SECS] | report FILE --baseline PATH [--jobs N]\n\
                 serve    run [--addr A] [--data DIR] [--workers N] ... | submit FILE | status JOB\n\
                 \x20        | result JOB | cancel JOB | metrics [--lint] | drain   (see cfpd serve)\n\
                 flight   dump [--ranks N] [--out FILE] | analyze FILE [--last N]\n\
                 watch    JOB --addr HOST:PORT [--interval-ms MS]"
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

/// Load and validate a campaign file; exit 2 with a `file:line: message`
/// diagnostic on any parse or validation error.
fn load_campaign(path: &str) -> CampaignSpec {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    CampaignSpec::from_text(&text).unwrap_or_else(|e| {
        if e.line > 0 {
            eprintln!("{path}:{}: {}", e.line, e.message);
        } else {
            eprintln!("{path}: {}", e.message);
        }
        std::process::exit(2);
    })
}

/// `cfpd campaign <expand|run|report>` — the scenario matrix engine.
///
/// * `expand FILE` lists the expanded cells without running anything.
/// * `run FILE` fans the matrix out over the worker pool and prints the
///   deterministic aggregate report (exit 3 if any cell failed).
/// * `report FILE --baseline PATH` runs the matrix and diffs the
///   canonical JSON report against the baseline under the campaign's
///   `[budget]`; exit 1 when any delta exceeds its budget.
fn cmd_campaign(args: &[String]) {
    let verb = args.get(1).map(String::as_str).unwrap_or("help");
    let file = args.get(2).map(String::as_str);
    let flags = Flags::parse(&args[3.min(args.len())..]);
    let usage = || {
        eprintln!(
            "usage: cfpd campaign expand FILE\n\
             \x20      cfpd campaign run FILE [--jobs N] [--json] [--report PATH] [--timing]\n\
             \x20          [--cell-timeout SECS]\n\
             \x20      cfpd campaign report FILE --baseline PATH [--jobs N] [--cell-timeout SECS]"
        );
        std::process::exit(if verb == "help" { 0 } else { 2 });
    };
    let Some(file) = file else { return usage() };
    let spec = load_campaign(file);
    let jobs = flags.get("--jobs").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--jobs: invalid count {v:?}");
            std::process::exit(2);
        })
    });
    let cell_timeout = parse_secs_flag(&flags, "--cell-timeout");
    match verb {
        "expand" => {
            let cells = expand(&spec).expect("validated spec expands");
            println!(
                "campaign {}: {} cells ({} before excludes)",
                spec.name,
                cells.len(),
                full_matrix_size(&spec),
            );
            for c in &cells {
                println!("  {}", c.id);
            }
        }
        "run" => {
            let report = run_campaign_with(&spec, jobs, cell_timeout);
            if let Some(path) = flags.get("--report") {
                std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                });
                eprintln!("report: wrote {path}");
            }
            if flags.has("--json") {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_table());
            }
            if flags.has("--timing") {
                eprint!("{}", report.render_timing());
            }
            if report.failures() > 0 {
                std::process::exit(3);
            }
        }
        "report" => {
            let Some(baseline_path) = flags.get("--baseline") else {
                eprintln!("campaign report: --baseline PATH is required");
                std::process::exit(2);
            };
            let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
                eprintln!("{baseline_path}: {e}");
                std::process::exit(2);
            });
            let report = run_campaign_with(&spec, jobs, cell_timeout);
            match cfpd_campaign::compare(&report.render_json(), &baseline, &spec.budget) {
                Ok(delta) => {
                    print!("{}", delta.render());
                    std::process::exit(i32::from(delta.regressions() > 0));
                }
                Err(e) => {
                    eprintln!("campaign report: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => usage(),
    }
}

/// Parse a `--flag SECS` duration (fractional seconds allowed).
fn parse_secs_flag(flags: &Flags, name: &str) -> Option<std::time::Duration> {
    flags.get(name).map(|v| {
        let secs: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("{name}: invalid seconds {v:?}");
            std::process::exit(2);
        });
        if !(secs > 0.0) {
            eprintln!("{name}: seconds must be > 0");
            std::process::exit(2);
        }
        std::time::Duration::from_secs_f64(secs)
    })
}

/// `cfpd serve <run|submit|status|result|cancel|metrics|drain>` — the
/// crash-safe job daemon and its client verbs.
///
/// * `run` starts the daemon in the foreground (prints the bound
///   address, serves until drained or killed);
/// * everything else is a thin HTTP client against `--addr`.
fn cmd_serve(args: &[String]) {
    let verb = args.get(1).map(String::as_str).unwrap_or("help");
    let usage = || {
        eprintln!(
            "usage: cfpd serve run [--addr HOST:PORT] [--data DIR] [--workers N]\n\
             \x20         [--queue-cap N] [--ckpt-interval STEPS] [--cell-timeout SECS]\n\
             \x20         [--retry-max N] [--deadline SECS] [--http-threads N] [--drift-factor X]\n\
             \x20         [--fault-seed S] [--fault-crash-first N] [--fault-crash-per-mille X]\n\
             \x20         [--fault-stall-first N] [--fault-stall-ms MS] [--fault-freeze-wal-after N]\n\
             \x20      cfpd serve submit FILE --addr HOST:PORT\n\
             \x20      cfpd serve status JOB --addr HOST:PORT\n\
             \x20      cfpd serve result JOB --addr HOST:PORT\n\
             \x20      cfpd serve cancel JOB --addr HOST:PORT\n\
             \x20      cfpd serve metrics [--lint] --addr HOST:PORT\n\
             \x20      cfpd serve drain --addr HOST:PORT"
        );
        std::process::exit(if verb == "help" { 0 } else { 2 });
    };

    if verb == "run" {
        let flags = Flags::parse(&args[2.min(args.len())..]);
        // Seeded fault injection (off unless asked for): the same plan
        // the resilience suite drives in-process, exposed so a daemon
        // under external test can replay a chaos scenario from its seed.
        let fault = ServeFaultPlan {
            seed: flags.usize_or("--fault-seed", 0) as u64,
            crash_first_attempts: flags.usize_or("--fault-crash-first", 0) as u32,
            crash_per_mille: flags.usize_or("--fault-crash-per-mille", 0) as u16,
            stall_first_attempts: flags.usize_or("--fault-stall-first", 0) as u32,
            stall_ms: flags.usize_or("--fault-stall-ms", 0) as u64,
            freeze_wal_after: flags.get("--fault-freeze-wal-after").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--fault-freeze-wal-after: invalid count {v:?}");
                    std::process::exit(2);
                })
            }),
        };
        let cfg = ServeConfig {
            addr: flags.get("--addr").unwrap_or("127.0.0.1:0").to_string(),
            data_dir: PathBuf::from(flags.get("--data").unwrap_or("serve-data")),
            workers: flags.usize_or("--workers", 2),
            queue_cap: flags.usize_or("--queue-cap", 8),
            ckpt_interval: flags.usize_or("--ckpt-interval", 1),
            cell_timeout: parse_secs_flag(&flags, "--cell-timeout"),
            retry_max: flags.usize_or("--retry-max", 2) as u32,
            backoff_base_ms: flags.usize_or("--backoff-ms", 25) as u64,
            job_deadline: parse_secs_flag(&flags, "--deadline"),
            http_threads: flags.usize_or("--http-threads", 2),
            drift_factor: flags.f64_or("--drift-factor", 3.0),
            fault,
        };
        let daemon = Daemon::start(cfg).unwrap_or_else(|e| {
            eprintln!("serve run: {e}");
            std::process::exit(2);
        });
        println!("cfpd-serve listening on {}", daemon.addr());
        daemon.join();
        println!("cfpd-serve drained");
        return;
    }

    // Client verbs. Positional operand first, flags after.
    let operand = args.get(2).filter(|a| !a.starts_with("--")).map(String::as_str);
    let flag_start = if operand.is_some() { 3 } else { 2 };
    let flags = Flags::parse(&args[flag_start.min(args.len())..]);
    let Some(addr) = flags.get("--addr") else {
        eprintln!("serve {verb}: --addr HOST:PORT is required");
        return usage();
    };
    let call = |method: &str, path: &str, body: &str| -> (u16, String) {
        http_call(addr, method, path, body).unwrap_or_else(|e| {
            eprintln!("serve {verb}: {addr}: {e}");
            std::process::exit(2);
        })
    };
    let need_operand = |what: &str| {
        operand.map(str::to_string).unwrap_or_else(|| {
            eprintln!("serve {verb}: {what} operand is required");
            std::process::exit(2);
        })
    };

    let (status, body) = match verb {
        "submit" => {
            let file = need_operand("FILE");
            let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            });
            call("POST", "/jobs", &text)
        }
        "status" => call("GET", &format!("/jobs/{}", need_operand("JOB")), ""),
        "result" => call("GET", &format!("/jobs/{}/result", need_operand("JOB")), ""),
        "cancel" => call("DELETE", &format!("/jobs/{}", need_operand("JOB")), ""),
        "metrics" => {
            let (status, body) = call("GET", "/metrics", "");
            if flags.has("--lint") {
                match lint_prometheus(&body) {
                    Ok(n) => eprintln!("metrics: {n} samples, lint clean"),
                    Err(e) => {
                        eprintln!("metrics: lint FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            }
            (status, body)
        }
        "drain" => call("POST", "/drain", ""),
        _ => return usage(),
    };
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    if status >= 400 {
        std::process::exit(1);
    }
}

/// `cfpd flight <dump|analyze>` — the post-mortem black box.
///
/// * `dump` runs the canonical golden-config case with the flight
///   recorder on and writes the ring as a digest-guarded dump (stdout
///   unless `--out FILE`);
/// * `analyze FILE` digest-verifies a dump, renders the last-N-events
///   timeline, and hands the phase events to the `cfpd_trace`
///   critical-path analysis. Exit 1 on a corrupt dump.
fn cmd_flight(args: &[String]) {
    let verb = args.get(1).map(String::as_str).unwrap_or("help");
    match verb {
        "dump" => {
            let flags = Flags::parse(&args[2.min(args.len())..]);
            let ranks = flags.usize_or("--ranks", 2);
            cfpd_telemetry::set_enabled(true);
            cfpd_flight::set_enabled(true);
            cfpd_flight::reset();
            let _ = run_scenario(&Scenario::deterministic(golden_config(), ranks));
            let text = cfpd_flight::dump_text();
            match flags.get("--out") {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("{path}: {e}");
                        std::process::exit(2);
                    });
                    eprintln!("flight: wrote {path}");
                }
                None => print!("{text}"),
            }
        }
        "analyze" => {
            let Some(file) = args.get(2).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: cfpd flight analyze FILE [--last N]");
                std::process::exit(2);
            };
            let flags = Flags::parse(&args[3.min(args.len())..]);
            let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            });
            let dump = cfpd_flight::parse_dump(&text).unwrap_or_else(|e| {
                eprintln!("{file}: corrupt flight dump: {e}");
                std::process::exit(1);
            });
            println!(
                "flight dump: {} events ({} dropped by ring wrap, capacity {})",
                dump.events.len(),
                dump.dropped,
                dump.capacity,
            );
            print!("{}", cfpd_flight::render_timeline(&dump.events, flags.usize_or("--last", 40)));
            analyze_flight_phases(&dump.events);
        }
        _ => {
            eprintln!("usage: cfpd flight dump [--ranks N] [--out FILE]\n\
                       \x20      cfpd flight analyze FILE [--last N]");
            std::process::exit(if verb == "help" { 0 } else { 2 });
        }
    }
}

/// Rebuild a [`cfpd_trace::Trace`] from a dump's phase events and run
/// the critical-path analysis over it.
fn analyze_flight_phases(events: &[cfpd_flight::FlightEvent]) {
    const PHASES: [cfpd_trace::Phase; 6] = [
        cfpd_trace::Phase::MpiComm,
        cfpd_trace::Phase::Assembly,
        cfpd_trace::Phase::Solver1,
        cfpd_trace::Phase::Solver2,
        cfpd_trace::Phase::Sgs,
        cfpd_trace::Phase::Particles,
    ];
    let phase_events: Vec<_> = events
        .iter()
        .filter(|e| e.kind == cfpd_flight::EventKind::Phase && (e.code as usize) < PHASES.len())
        .collect();
    if phase_events.is_empty() {
        println!("critical path: no phase events in the dump");
        return;
    }
    let ranks = phase_events.iter().map(|e| e.rank as usize).max().unwrap_or(0) + 1;
    let mut trace = Trace::new(ranks);
    for e in &phase_events {
        let (t0, t1) = (f64::from_bits(e.a), f64::from_bits(e.b));
        if t1 >= t0 && t0.is_finite() && t1.is_finite() {
            trace.record(e.rank as usize, PHASES[e.code as usize], t0, t1);
        }
    }
    let cp = critical_path(&trace);
    println!(
        "critical path: {:.6}s useful over {:.6}s wall ({} segments, ends on rank {})",
        cp.length,
        cp.wall,
        cp.segments.len(),
        cp.end_rank,
    );
    print!("{}", lost_cycles(&trace).render());
}

/// `cfpd watch JOB --addr HOST:PORT` — polling terminal view of one
/// job: a progress line per interval plus any new supervisor feed
/// events. Exits 0 when the job completes, 1 when it fails or is
/// cancelled.
fn cmd_watch(args: &[String]) {
    let Some(job) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: cfpd watch JOB --addr HOST:PORT [--interval-ms MS]");
        std::process::exit(2);
    };
    let flags = Flags::parse(&args[2.min(args.len())..]);
    let Some(addr) = flags.get("--addr") else {
        eprintln!("watch: --addr HOST:PORT is required");
        std::process::exit(2);
    };
    let interval = std::time::Duration::from_millis(flags.usize_or("--interval-ms", 500) as u64);
    let mut since = 0u64;
    loop {
        // Drain the supervisor feed first (no long-poll: the progress
        // line is the clock here).
        let (code, body) =
            http_call(addr, "GET", &format!("/events?since={since}&wait_ms=0"), "")
                .unwrap_or_else(|e| {
                    eprintln!("watch: {addr}: {e}");
                    std::process::exit(2);
                });
        if code == 200 {
            if let Ok(doc) = cfpd_testkit::parse_json(&body) {
                if let Some(last) = doc.get("last").and_then(|v| v.as_u64()) {
                    since = last;
                }
                for e in doc.get("events").and_then(|v| v.as_array()).unwrap_or(&[]) {
                    println!(
                        "event  seq {:>4}  {:<12} job {}  {}",
                        e.get("seq").and_then(|v| v.as_u64()).unwrap_or(0),
                        e.get("kind").and_then(|v| v.as_str()).unwrap_or("?"),
                        e.get("job").and_then(|v| v.as_u64()).unwrap_or(0),
                        e.get("detail").and_then(|v| v.as_str()).unwrap_or(""),
                    );
                }
            }
        }

        let (code, body) = http_call(addr, "GET", &format!("/jobs/{job}/progress"), "")
            .unwrap_or_else(|e| {
                eprintln!("watch: {addr}: {e}");
                std::process::exit(2);
            });
        if code != 200 {
            eprintln!("watch: job {job}: {body}");
            std::process::exit(2);
        }
        let doc = cfpd_testkit::parse_json(&body).unwrap_or_else(|e| {
            eprintln!("watch: bad progress document: {e}");
            std::process::exit(2);
        });
        let state = doc.get("state").and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let f = |k: &str| doc.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let u = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        let pop = doc.get("pop");
        let pf = |k: &str| pop.and_then(|p| p.get(k)).and_then(|v| v.as_f64());
        let mut line = format!(
            "job {job}  {state:<12}  cell {}/{}  steps {}/{}  elapsed {:.1}s  eta {:.1}s",
            u("cell"),
            u("cells"),
            u("steps_done"),
            u("steps_total"),
            f("elapsed_s"),
            f("eta_s"),
        );
        if let (Some(pe), Some(lb), Some(ce)) =
            (pf("parallel_efficiency"), pf("load_balance"), pf("comm_efficiency"))
        {
            line.push_str(&format!("  PE {pe:.3}  LB {lb:.3}  CommE {ce:.3}"));
        }
        println!("{line}");
        match state.as_str() {
            "done" => return,
            "failed" | "cancelled" => std::process::exit(1),
            _ => std::thread::sleep(interval),
        }
    }
}

/// Write the full exporter set for a trace into `dir`: Paraver triplet
/// (`trace.prv`/`.pcf`/`.row`), Chrome `chrome.json` and the canonical
/// diffable `summary.json`.
fn write_trace_dir(trace: &Trace, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace.prv"), export_prv(trace))?;
    std::fs::write(dir.join("trace.pcf"), export_pcf())?;
    std::fs::write(dir.join("trace.row"), export_row(trace))?;
    std::fs::write(dir.join("chrome.json"), export_chrome(trace))?;
    std::fs::write(dir.join("summary.json"), export_summary(trace))?;
    Ok(())
}

/// `cfpd trace <export|analyze|diff>` — the Paraver-class trace
/// pipeline on the canonical golden-config case.
fn cmd_trace(args: &[String]) {
    let verb = args.get(1).map(String::as_str).unwrap_or("help");
    let flags = Flags::parse(&args[2.min(args.len())..]);
    match verb {
        "export" => trace_export(&flags),
        "analyze" => trace_analyze(&flags),
        "diff" => match (args.get(2), args.get(3)) {
            (Some(a), Some(b)) => trace_diff(a, b),
            _ => {
                eprintln!("usage: cfpd trace diff A B  (trace dirs or summary.json files)");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!(
                "usage: cfpd trace export  [--ranks N] [--dlb] [--out DIR]\n\
                 \x20      cfpd trace analyze [--ranks N] [--threads N] [--strategy S] [--dlb]\n\
                 \x20      cfpd trace diff A B   (trace dirs or summary.json files)"
            );
            std::process::exit(if verb == "help" { 0 } else { 2 });
        }
    }
}

/// Run the canonical case with full tracing and write every export
/// format, then re-parse the JSON artifacts with the in-repo RFC 8259
/// parser as a self-check.
fn trace_export(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 2);
    let dlb = flags.has("--dlb");
    let out = PathBuf::from(flags.get("--out").unwrap_or("trace_out"));
    let config = golden_config();
    let opts = RunOptions { trace: true, dlb, ..Default::default() };
    let r = run_simulation_opts(&config, ranks, 1, &opts);
    write_trace_dir(&r.trace, &out).expect("write trace dir");
    for name in ["chrome.json", "summary.json"] {
        let text = std::fs::read_to_string(out.join(name)).expect(name);
        if let Err(e) = cfpd_testkit::parse_json(&text) {
            eprintln!("{name}: invalid JSON: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "wrote {} (ranks={ranks} dlb={}): trace.prv trace.pcf trace.row chrome.json summary.json",
        out.display(),
        if dlb { "on" } else { "off" },
    );
    println!(
        "events: {} phase, {} worker, {} messages, {} dlb marks",
        r.trace.events.len(),
        r.trace.workers.len(),
        r.trace.messages.len(),
        r.trace.dlb.len(),
    );
    println!("json artifacts validate against the in-repo RFC 8259 parser");
}

/// Critical-path and lost-cycles analysis of a freshly traced canonical
/// run, cross-checked against the online POP rollup of the *same* run.
/// Exits 1 if the post-hoc efficiencies drift more than 1e-9 from the
/// online ones.
fn trace_analyze(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 2);
    let threads = flags.usize_or("--threads", 1);
    let dlb = flags.has("--dlb");
    let mut config = golden_config();
    config.strategy = strategy_of(flags);
    cfpd_telemetry::set_enabled(true);
    cfpd_telemetry::reset();
    let r = run_simulation_opts(
        &config,
        ranks,
        threads,
        &RunOptions { trace: true, dlb, ..Default::default() },
    );
    cfpd_telemetry::set_enabled(false);
    let snap = cfpd_telemetry::snapshot();

    let cp = critical_path(&r.trace);
    println!(
        "critical path: {:.6}s useful over {:.6}s wall ({} segments, ends on rank {})",
        cp.length,
        cp.wall,
        cp.segments.len(),
        cp.end_rank,
    );
    for s in &cp.segments {
        println!(
            "  rank {} [{:.6}, {:.6}]  useful {:.6}s",
            s.rank, s.t_start, s.t_end, s.useful
        );
    }
    let sane = cp.length >= cp.max_rank_useful - 1e-9 && cp.length <= cp.wall + 1e-9;
    println!(
        "bounds: max-rank-useful {:.6} <= path <= wall {:.6}  [{}]",
        cp.max_rank_useful,
        cp.wall,
        if sane { "ok" } else { "VIOLATED" },
    );

    let lc = lost_cycles(&r.trace);
    print!("{}", lc.render());

    let verdict = match &snap.pop {
        Some(pop) => {
            let delta = (pop.parallel_efficiency - lc.parallel_efficiency)
                .abs()
                .max((pop.load_balance - lc.load_balance).abs())
                .max((pop.comm_efficiency - lc.comm_efficiency).abs());
            println!("pop crosscheck: max |delta| = {delta:.3e} (gate 1e-9)");
            delta <= 1e-9
        }
        None => {
            println!("pop crosscheck: no online rollup captured");
            false
        }
    };
    if !(verdict && sane) {
        println!("VERDICT: DIVERGED");
        std::process::exit(1);
    }
    println!("VERDICT: post-hoc analysis agrees with the online POP rollup");
}

/// Diff two trace summaries (dirs or `summary.json` paths); exit 0 on
/// zero structural delta, 1 on mismatch, 2 on unreadable input.
fn trace_diff(a: &str, b: &str) {
    let load = |p: &str| -> String {
        let path = Path::new(p);
        let path =
            if path.is_dir() { path.join("summary.json") } else { path.to_path_buf() };
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let (sa, sb) = (load(a), load(b));
    match diff_summaries(&sa, &sb) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(i32::from(!report.is_zero()));
        }
        Err(e) => {
            eprintln!("trace diff: {e}");
            std::process::exit(2);
        }
    }
}

/// End-of-run telemetry summary on stderr (never stdout: the golden
/// files diff stdout byte-for-byte). No-op unless `CFPD_TELEMETRY=1`.
fn telemetry_summary_to_stderr() {
    if cfpd_telemetry::enabled() {
        eprint!("{}", cfpd_telemetry::snapshot().render_table());
    }
}

/// Minimal flag parser: `--name value` and boolean `--name`.
struct Flags(Vec<String>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        Flags(args.to_vec())
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get2(&self, name: &str) -> Option<(&str, &str)> {
        self.0.iter().position(|a| a == name).and_then(|i| {
            match (self.0.get(i + 1), self.0.get(i + 2)) {
                (Some(a), Some(b)) => Some((a.as_str(), b.as_str())),
                _ => None,
            }
        })
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name).map(|v| v.parse().expect(name)).unwrap_or(default)
    }

    fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.get(name).map(|v| v.parse().expect(name)).unwrap_or(default)
    }
}

fn strategy_of(flags: &Flags) -> AssemblyStrategy {
    match flags.get("--strategy").unwrap_or("multidep") {
        "atomics" => AssemblyStrategy::Atomics,
        "coloring" => AssemblyStrategy::Coloring,
        "multidep" => AssemblyStrategy::Multidep,
        "serial" => AssemblyStrategy::Serial,
        other => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    }
}

fn cmd_mesh(flags: &Flags) {
    let spec = AirwaySpec {
        generations: flags.usize_or("--generations", 3),
        ..AirwaySpec::default()
    };
    let t0 = std::time::Instant::now();
    let airway = generate_airway(&spec).expect("valid spec");
    let s = airway.mesh.stats();
    println!(
        "generated in {:.2}s: {} branches, {} junctions",
        t0.elapsed().as_secs_f64(),
        airway.num_tubes,
        airway.num_junctions
    );
    println!(
        "elements: {} total = {} tets + {} pyramids + {} prisms",
        s.num_elements, s.num_tets, s.num_pyramids, s.num_prisms
    );
    println!("nodes: {}, volume: {:.3e} m^3", s.num_nodes, s.total_volume);
    println!(
        "inlet: center {:?}, radius {:.4} m",
        airway.inlet_center, airway.inlet_radius
    );
    if let Some(path) = flags.get("--vtk") {
        cfpd_mesh::write_vtk(&airway.mesh, std::path::Path::new(path), &[], &[])
            .expect("write VTK");
        println!("wrote {path}");
    }
}

fn cmd_run(flags: &Flags) {
    let mode = match flags.get2("--coupled") {
        Some((f, p)) => ExecutionMode::Coupled {
            fluid: f.parse().expect("--coupled F"),
            particles: p.parse().expect("--coupled P"),
        },
        None => ExecutionMode::Synchronous,
    };
    let config = SimulationConfig {
        airway: AirwaySpec { generations: flags.usize_or("--generations", 1), ..AirwaySpec::small() },
        num_particles: flags.usize_or("--particles", 500),
        steps: flags.usize_or("--steps", 5),
        strategy: strategy_of(flags),
        mode,
        ..Default::default()
    };
    let ranks = flags.usize_or("--ranks", 2);
    let threads = flags.usize_or("--threads", 1);
    let dlb = flags.has("--dlb");
    let policy = match flags.get("--dlb-policy") {
        Some(name) => cfpd_dlb::DlbPolicy::parse(name).unwrap_or_else(|| {
            eprintln!("--dlb-policy: unknown policy {name:?} (expected: reactive, predictive)");
            std::process::exit(2);
        }),
        None => cfpd_dlb::DlbPolicy::default(),
    };
    let hetero = flags.get("--hetero").map(|name| {
        cfpd_hetero::profile_by_name(name, config.seed).unwrap_or_else(|e| {
            eprintln!("--hetero: {e}");
            std::process::exit(2);
        })
    });
    println!(
        "running {:?} on {} ranks x {} threads, strategy {:?}, DLB {}",
        config.mode,
        config.total_ranks(ranks),
        threads,
        config.strategy,
        if dlb { format!("on ({})", policy.name()) } else { "off".into() }
    );
    if let Some(p) = &hetero {
        println!("hetero profile: {} (seed {})", p.name, p.seed);
    }
    let r = run_simulation_opts(
        &config,
        ranks,
        threads,
        &RunOptions { dlb, policy, hetero, ..Default::default() },
    );
    println!("{}", render_timeline(&r.trace, 120, 16));
    println!("phase breakdown:");
    for row in &r.breakdown {
        println!(
            "  {:<16} L = {:.2}  {:>5.1}%",
            row.phase.name(),
            row.load_balance,
            row.pct_time
        );
    }
    println!("particles: {:?}", r.census);
    if let Some(stats) = r.dlb {
        println!(
            "dlb: {} lends / {} grants / {} reclaims / {} pre-lends",
            stats.lends, stats.grants, stats.reclaims, stats.pre_lends
        );
    }
    println!("total: {:.3}s", r.total_time);
}

/// Print the deterministic golden trace of the canonical small run:
/// byte-identical output on every invocation with the same flags.
/// `--layout opt` (or `CFPD_LAYOUT=opt`) runs the locality-optimized
/// path, which is pinned by its own golden file.
fn cmd_golden(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 2);
    let mut config = golden_config();
    // One resolution point for flag vs CFPD_LAYOUT (flag beats env) —
    // shared with the campaign DSL's `layout =` key.
    config.layout = resolve_layout(flags.get("--layout")).unwrap_or_else(|e| {
        eprintln!("--layout: {e}");
        std::process::exit(2);
    });
    match flags.get("--trace") {
        // Traced run: stdout stays byte-identical to the untraced golden
        // (tracing never touches the logical log); the structured trace
        // goes to `DIR` and the note to stderr.
        Some(dir) => {
            let dir = PathBuf::from(dir);
            let (doc, r) = golden_trace_traced(&config, ranks);
            print!("{doc}");
            write_trace_dir(&r.trace, &dir).expect("write trace dir");
            eprintln!("trace: wrote {}", dir.display());
        }
        None => print!("{}", run_scenario(&Scenario::deterministic(config, ranks)).doc),
    }
    telemetry_summary_to_stderr();
}

/// Run the canonical golden-config case under a seeded fault plan.
///
/// Benign mode (default): a fault-free reference run, then the same run
/// under `FaultConfig::benign(seed)` — delays, reorderings, bounded
/// drops-with-redelivery, stalls. Every fault is recoverable, so the
/// logical event log (field digests included) must be *bit-identical*;
/// exit 0 on match, 1 on divergence.
///
/// Storm mode (`--storm`): drops beyond the redelivery bound. The run
/// must terminate with a structured per-rank deadlock report, never
/// hang; exit 3 when the report is produced, 4 if the run unexpectedly
/// completes or fails without diagnostics.
fn cmd_chaos(flags: &Flags) {
    let seed: u64 = flags.get("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(7);
    let ranks = flags.usize_or("--ranks", 2);
    let dlb = flags.has("--dlb");
    let json = flags.has("--json");
    let trace_dir = flags.get("--trace").map(PathBuf::from);
    let lease = dlb.then(|| std::time::Duration::from_millis(50));
    let config = golden_config();

    if flags.has("--storm") {
        if trace_dir.is_some() {
            eprintln!("trace: --trace is ignored in storm mode (the run terminates abnormally)");
        }
        if !json {
            println!("chaos storm: seed {seed}, {ranks} ranks — message loss beyond the redelivery bound");
        }
        let opts = RunOptions { dlb, lease, fault: Some(FaultConfig::storm(seed)), ..Default::default() };
        match run_simulation_fallible(&config, ranks, 1, &opts) {
            Err(fails) => {
                let saw_report =
                    fails.iter().any(|(_, m)| m.to_lowercase().contains("deadlock"));
                if json {
                    println!("{}", storm_json(seed, ranks, saw_report, &fails));
                } else {
                    println!(
                        "run terminated with structured diagnostics on {} rank(s):",
                        fails.len()
                    );
                    for (rank, msg) in &fails {
                        println!("--- rank {rank} ---\n{msg}");
                    }
                }
                telemetry_summary_to_stderr();
                std::process::exit(if saw_report { 3 } else { 4 });
            }
            Ok(_) => {
                if json {
                    println!("{}", storm_json(seed, ranks, false, &[]));
                } else {
                    println!("unexpected: storm run completed without a deadlock report");
                }
                telemetry_summary_to_stderr();
                std::process::exit(4);
            }
        }
    }

    if !json {
        println!(
            "chaos: seed {seed}, {ranks} ranks, benign fault plan \
             (delays, reorders, drops+redelivery, stalls), DLB {}",
            if dlb { "on" } else { "off" }
        );
    }
    let clean = run_simulation(&config, ranks, 1, false);
    let opts = RunOptions {
        dlb,
        lease,
        fault: Some(FaultConfig::benign(seed)),
        trace: trace_dir.is_some(),
        ..Default::default()
    };
    let faulted = run_simulation_opts(&config, ranks, 1, &opts);
    if let Some(dir) = &trace_dir {
        write_trace_dir(&faulted.trace, dir).expect("write trace dir");
        eprintln!("trace: wrote {}", dir.display());
    }

    use cfpd_simmpi::FaultEventKind as K;
    let count = |pred: fn(&K) -> bool| faulted.faults.iter().filter(|e| pred(&e.kind)).count();
    let injected = [
        ("delays", count(|k| matches!(k, K::Delay { .. }))),
        ("reorders", count(|k| matches!(k, K::Reorder))),
        ("drops_redelivered", count(|k| matches!(k, K::DropRedeliver))),
        ("stalls", count(|k| matches!(k, K::Stall { .. }))),
        ("timeouts_observed", count(|k| matches!(k, K::Timeout))),
    ];

    let events_match = clean.logical == faulted.logical;
    let census_match = clean.census == faulted.census;
    let identical = events_match && census_match;

    if json {
        let mut w = cfpd_telemetry::JsonWriter::new();
        w.begin_object();
        w.key("mode").string("benign");
        w.key("seed").u64(seed);
        w.key("ranks").u64(ranks as u64);
        w.key("dlb").bool(dlb);
        w.key("injected").begin_object();
        for (name, n) in injected {
            w.key(name).u64(n as u64);
        }
        w.end_object();
        w.key("logical_events").u64(clean.logical.len() as u64);
        w.key("verdict").string(if identical { "bit-identical" } else { "diverged" });
        w.end_object();
        println!("{}", w.finish());
        telemetry_summary_to_stderr();
        std::process::exit(if identical { 0 } else { 1 });
    }

    println!(
        "injected: {} delays, {} reorders, {} drops (all redelivered), {} stalls, {} timeouts observed",
        injected[0].1, injected[1].1, injected[2].1, injected[3].1, injected[4].1,
    );
    println!("{}", render_timeline(&faulted.trace, 120, 16));

    if identical {
        println!(
            "VERDICT: bit-identical — {} logical events (field digests included) and the \
             final census match the fault-free run",
            clean.logical.len()
        );
        telemetry_summary_to_stderr();
        std::process::exit(0);
    }
    if let Some((i, (a, b))) = clean
        .logical
        .iter()
        .zip(faulted.logical.iter())
        .enumerate()
        .find(|(_, (a, b))| a != b)
    {
        println!("first divergence at event {i}:\n  clean:   {a:?}\n  faulted: {b:?}");
    } else {
        println!(
            "event counts differ: clean {} vs faulted {}; censuses: {:?} vs {:?}",
            clean.logical.len(),
            faulted.logical.len(),
            clean.census,
            faulted.census
        );
    }
    println!("VERDICT: DIVERGED — benign faults must never change the physics");
    telemetry_summary_to_stderr();
    std::process::exit(1);
}

/// Structured storm-mode report (the deadlock diagnostics as JSON).
fn storm_json(seed: u64, ranks: usize, deadlock: bool, fails: &[(usize, String)]) -> String {
    let mut w = cfpd_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("mode").string("storm");
    w.key("seed").u64(seed);
    w.key("ranks").u64(ranks as u64);
    w.key("deadlock").bool(deadlock);
    w.key("failures").begin_array();
    for (rank, msg) in fails {
        w.begin_object();
        w.key("rank").u64(*rank as u64);
        w.key("message").string(msg);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Run the canonical golden-config simulation with telemetry enabled
/// and print the merged snapshot — counters, gauges, histograms and the
/// online POP rollup — as a text table or (`--json`) one JSON document.
///
/// The output also carries a `trace_crosscheck` section computing the
/// same POP metrics post hoc from the wall-clock `cfpd_trace` events of
/// the very same run; the two agree to ~1e-16 (the regression suite
/// pins 1e-9), which is the evidence the cheap online rollup can stand
/// in for full tracing in production.
fn cmd_report(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 2);
    let config = golden_config();
    let trace_dir = flags.get("--trace").map(PathBuf::from);
    cfpd_telemetry::set_enabled(true);
    cfpd_telemetry::reset();
    let r = run_simulation_opts(
        &config,
        ranks,
        1,
        &RunOptions { trace: trace_dir.is_some(), ..Default::default() },
    );
    cfpd_telemetry::set_enabled(false);
    let snap = cfpd_telemetry::snapshot();
    if let Some(dir) = &trace_dir {
        write_trace_dir(&r.trace, dir).expect("write trace dir");
        eprintln!("trace: wrote {}", dir.display());
    }

    // Post-hoc analysis of the same run, straight from cfpd-trace.
    let ts = cfpd_trace::trace_stats(&r.trace);
    let n = r.trace.num_ranks.max(1);
    let mut useful = vec![0.0f64; n];
    for e in &r.trace.events {
        if e.phase != cfpd_trace::Phase::MpiComm {
            useful[e.rank] += e.duration();
        }
    }
    let lb = cfpd_trace::load_balance(&useful);
    let max_useful = useful.iter().cloned().fold(0.0f64, f64::max);
    let comm_e = if ts.wall_time > 0.0 && max_useful > 0.0 {
        max_useful / ts.wall_time
    } else {
        1.0
    };

    let mut w = cfpd_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("ranks").u64(n as u64);
    w.key("wall_time_s").f64(ts.wall_time);
    w.key("parallel_efficiency").f64(ts.parallel_efficiency);
    w.key("load_balance").f64(lb);
    w.key("comm_efficiency").f64(comm_e);
    w.end_object();
    // The snapshot renders itself; splice the two documents into one.
    let doc =
        format!(r#"{{"telemetry":{},"trace_crosscheck":{}}}"#, snap.render_json(), w.finish());

    if let Some(baseline_path) = flags.get("--baseline") {
        let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("{baseline_path}: {e}");
            std::process::exit(2);
        });
        let tol = flags.f64_or("--tolerance", 0.25);
        match diff_report_docs(&doc, &baseline, tol) {
            Ok((rendered, regressions)) => {
                print!("{rendered}");
                std::process::exit(i32::from(regressions > 0));
            }
            Err(e) => {
                eprintln!("report --baseline: {e}");
                std::process::exit(2);
            }
        }
    }

    if flags.has("--json") {
        println!("{doc}");
    } else {
        print!("{}", snap.render_table());
        println!("[trace crosscheck]");
        println!("  wall_time_s         {:>12.6}", ts.wall_time);
        println!("  parallel_efficiency {:>12.6}", ts.parallel_efficiency);
        println!("  load_balance        {:>12.6}", lb);
        println!("  comm_efficiency     {:>12.6}", comm_e);
        if let Some(pop) = &snap.pop {
            println!(
                "  max |delta|         {:>12.3e}",
                (pop.parallel_efficiency - ts.parallel_efficiency)
                    .abs()
                    .max((pop.load_balance - lb).abs())
                    .max((pop.comm_efficiency - comm_e).abs())
            );
        }
    }
}

/// Diff a fresh `cfpd report --json` document against a prior capture,
/// with per-metric policies (the campaign `DeltaReport` idiom applied
/// to the telemetry snapshot):
///
/// * POP / crosscheck **efficiencies** regress only when they *drop*
///   more than `tol` relative to the baseline — higher is always fine;
/// * **counters** regress when they move more than `tol` relative in
///   either direction (they are deterministic for the canonical case,
///   but tolerant comparison keeps the tool usable across refactors);
/// * wall times, gauges and histograms are timing — never compared;
/// * metrics present on only one side are reported as drift, not
///   regression (new code adds counters routinely).
fn diff_report_docs(current: &str, baseline: &str, tol: f64) -> Result<(String, usize), String> {
    use std::fmt::Write as _;
    let cur = cfpd_testkit::parse_json(current).map_err(|e| format!("current report: {e}"))?;
    let base = cfpd_testkit::parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let tol = if tol.is_finite() && tol >= 0.0 { tol } else { 0.25 };

    let path_f64 = |doc: &cfpd_testkit::JsonValue, path: &[&str]| -> Option<f64> {
        let mut v = doc.clone();
        for key in path {
            v = v.get(key)?.clone();
        }
        v.as_f64()
    };

    let mut out = String::new();
    let mut regressions = 0usize;
    let mut row = |name: &str, cur: Option<f64>, base: Option<f64>, lower_is_worse: bool| {
        let (tag, detail) = match (cur, base) {
            (Some(c), Some(b)) => {
                let scale = b.abs().max(if lower_is_worse { b.abs() } else { 1.0 }).max(1e-12);
                let rel = (c - b) / scale;
                let regressed =
                    if lower_is_worse { rel < -tol } else { rel.abs() > tol };
                if regressed {
                    regressions += 1;
                    ("REGRESS", format!("{b:.6} -> {c:.6} ({:+.1}%)", rel * 100.0))
                } else if c != b {
                    ("drift  ", format!("{b:.6} -> {c:.6} ({:+.1}%)", rel * 100.0))
                } else {
                    ("ok     ", format!("{c:.6}"))
                }
            }
            (Some(c), None) => ("drift  ", format!("(new) {c:.6}")),
            (None, Some(b)) => ("drift  ", format!("{b:.6} -> (gone)")),
            (None, None) => return,
        };
        let _ = writeln!(out, "{tag}  {name:<44}  {detail}");
    };

    for (section, lower_is_worse) in [("telemetry", true), ("trace_crosscheck", true)] {
        for metric in ["parallel_efficiency", "load_balance", "comm_efficiency"] {
            let path: Vec<&str> = if section == "telemetry" {
                vec!["telemetry", "pop", metric]
            } else {
                vec![section, metric]
            };
            row(
                &format!("{section}.{metric}"),
                path_f64(&cur, &path),
                path_f64(&base, &path),
                lower_is_worse,
            );
        }
    }

    // Counters: union of both sides, in current-then-baseline order.
    let counters = |doc: &cfpd_testkit::JsonValue| -> Vec<(String, f64)> {
        match doc.get("telemetry").and_then(|t| t.get("counters")) {
            Some(cfpd_testkit::JsonValue::Object(members)) => members
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect(),
            _ => Vec::new(),
        }
    };
    let cur_counters = counters(&cur);
    let base_counters = counters(&base);
    for (name, c) in &cur_counters {
        let b = base_counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        row(&format!("counter.{name}"), Some(*c), b, false);
    }
    for (name, b) in &base_counters {
        if !cur_counters.iter().any(|(k, _)| k == name) {
            row(&format!("counter.{name}"), None, Some(*b), false);
        }
    }

    let _ = writeln!(
        out,
        "verdict: {} (tolerance {:.0}%)",
        if regressions == 0 {
            "zero regressions".to_string()
        } else {
            format!("{regressions} regression(s)")
        },
        tol * 100.0
    );
    Ok((out, regressions))
}

fn cmd_profile(flags: &Flags) {
    let ranks = flags.usize_or("--ranks", 16);
    let particles = flags.usize_or("--particles", 4000);
    let spec = AirwaySpec { generations: flags.usize_or("--generations", 3), ..AirwaySpec::default() };
    let airway = generate_airway(&spec).expect("valid spec");
    let w = measure_workload(&airway, ranks, particles, 10, PhaseCostModel::default(), 42);
    println!(
        "workload profile over {} ranks ({} elements, {} particles):",
        ranks,
        airway.mesh.num_elements(),
        particles
    );
    println!("  assembly  L{} = {:.3}", ranks, w.assembly_balance());
    println!("  solvers   L{} = {:.3}", ranks, cfpd_trace::load_balance(&w.solver1));
    println!("  sgs       L{} = {:.3}", ranks, cfpd_trace::load_balance(&w.sgs));
    for (s, _) in w.particles_per_step.iter().enumerate().take(3) {
        println!("  particles L{} = {:.4} (step {s})", ranks, w.particle_balance(s));
    }
}
