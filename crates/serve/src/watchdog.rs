//! The regression watchdog: rolling per-phase medians across completed
//! cells, exported as `serve.phase_drift_<phase>` gauges (drift in
//! per-mille of the rolling median) plus a warning feed entry when a
//! phase exceeds its rolling baseline by a configurable factor — the
//! serving-side analogue of the `BENCH_hotpath.json` trajectory gate.
//!
//! Attribution caveat: the POP table is daemon-global, so with several
//! cells running concurrently a completion observes the *mixed* phase
//! time accumulated since the previous completion. Rolling medians
//! absorb that noise; the watchdog detects sustained drift, it does not
//! bill individual cells.

use cfpd_telemetry::pop::{self, PopPhase};
use std::collections::VecDeque;

/// Rolling window length per phase (completed cells).
const WINDOW: usize = 32;
/// Completions required before drift warnings can fire.
const MIN_SAMPLES: usize = 3;

/// A drift observation the daemon turns into a feed warning.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftWarning {
    pub phase: &'static str,
    /// Current per-step phase seconds ÷ rolling median.
    pub drift: f64,
    pub per_step_s: f64,
    pub median_s: f64,
}

pub struct Watchdog {
    /// Warn when a phase exceeds `factor ×` its rolling median.
    factor: f64,
    /// Cumulative per-phase seconds at the previous completion.
    prev_phase: [f64; PopPhase::ALL.len()],
    /// Rolling per-step phase seconds, newest at the back.
    windows: [VecDeque<f64>; PopPhase::ALL.len()],
    /// Last exported per-mille drift (gauges are additive, so exporting
    /// a new absolute value means adding the difference).
    exported: [i64; PopPhase::ALL.len()],
    /// Rolling observed wall seconds per simulation step (ETA input).
    step_wall: VecDeque<f64>,
}

impl Watchdog {
    pub fn new(factor: f64) -> Watchdog {
        Watchdog {
            factor: if factor.is_finite() && factor > 1.0 { factor } else { 3.0 },
            prev_phase: [0.0; PopPhase::ALL.len()],
            windows: std::array::from_fn(|_| VecDeque::new()),
            exported: [0; PopPhase::ALL.len()],
            step_wall: VecDeque::new(),
        }
    }

    /// Record a completed cell of `steps` steps that took `wall_s`
    /// seconds, reading the live POP table for phase attribution.
    /// Returns the phases that drifted past the factor.
    pub fn observe_cell(&mut self, steps: u64, wall_s: f64) -> Vec<DriftWarning> {
        if steps > 0 && wall_s.is_finite() && wall_s > 0.0 {
            self.step_wall.push_back(wall_s / steps as f64);
            while self.step_wall.len() > 2 * WINDOW {
                self.step_wall.pop_front();
            }
        }
        let Some(report) = pop::report() else { return Vec::new() };
        let mut warnings = Vec::new();
        for (i, (name, cum)) in report.per_phase.iter().enumerate() {
            let delta = (cum - self.prev_phase[i]).max(0.0);
            self.prev_phase[i] = *cum;
            if steps == 0 {
                continue;
            }
            let per_step = delta / steps as f64;
            let window = &mut self.windows[i];
            let median = median_of(window);
            window.push_back(per_step);
            while window.len() > WINDOW {
                window.pop_front();
            }
            let Some(median) = median else { continue };
            if median <= 0.0 || window.len() <= MIN_SAMPLES {
                continue;
            }
            let drift = per_step / median;
            self.export_drift(i, drift);
            if drift > self.factor {
                warnings.push(DriftWarning {
                    phase: name,
                    drift,
                    per_step_s: per_step,
                    median_s: median,
                });
            }
        }
        warnings
    }

    /// Set the `serve.phase_drift_<phase>` gauge to `drift` per-mille.
    fn export_drift(&mut self, phase: usize, drift: f64) {
        let mille = (drift * 1000.0).round() as i64;
        let delta = mille - self.exported[phase];
        self.exported[phase] = mille;
        if cfpd_telemetry::enabled() && delta != 0 {
            cfpd_telemetry::gauge(drift_gauge(phase)).add_unchecked(delta);
        }
    }

    /// Median observed wall seconds per simulation step, if any cell
    /// has completed (the ETA's measured rate).
    pub fn step_seconds(&self) -> Option<f64> {
        median_of(&self.step_wall)
    }
}

/// The closed phase set maps to static gauge names (the registry
/// interns `&'static str` keys; never format dynamic names).
fn drift_gauge(phase: usize) -> &'static str {
    match phase {
        0 => "serve.phase_drift_mpi",
        1 => "serve.phase_drift_assembly",
        2 => "serve.phase_drift_solver1",
        3 => "serve.phase_drift_solver2",
        4 => "serve.phase_drift_sgs",
        _ => "serve.phase_drift_particles",
    }
}

fn median_of(window: &VecDeque<f64>) -> Option<f64> {
    if window.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = window.iter().copied().collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 { v[mid] } else { 0.5 * (v[mid - 1] + v[mid]) })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests flip the process-global telemetry flag and POP
    /// table; serialize them against each other.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn steady_phases_never_warn_and_drift_warns_once_over_factor() {
        let _g = guard();
        cfpd_telemetry::set_enabled(true);
        cfpd_telemetry::pop::reset();
        let mut wd = Watchdog::new(2.0);

        // Five steady cells: 10 ms of solver1 per step.
        let mut cum = 0.0;
        for _ in 0..5 {
            cum += 0.02;
            cfpd_telemetry::pop::phase(0, PopPhase::Solver1, cum - 0.02, cum);
            assert!(wd.observe_cell(2, 0.05).is_empty());
        }
        // A 5× regression on the same phase.
        cfpd_telemetry::pop::phase(0, PopPhase::Solver1, cum, cum + 0.1);
        let warnings = wd.observe_cell(2, 0.3);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].phase, "solver1");
        assert!(warnings[0].drift > 2.0, "drift {}", warnings[0].drift);
        cfpd_telemetry::pop::reset();
        cfpd_telemetry::set_enabled(false);
    }

    #[test]
    fn step_seconds_is_the_median_of_observed_rates() {
        let _g = guard();
        let mut wd = Watchdog::new(3.0);
        assert_eq!(wd.step_seconds(), None);
        for (steps, wall) in [(2u64, 0.2), (2, 0.4), (2, 0.6)] {
            wd.observe_cell(steps, wall);
        }
        assert!((wd.step_seconds().unwrap() - 0.2).abs() < 1e-12);
    }
}
