//! Per-cell progress snapshots — what turns the daemon's segment loop
//! into *bit-identical* resume.
//!
//! A checkpointable cell runs as a chain of `stop_after` segments (see
//! `cfpd_core::RunOptions`). At every boundary the worker persists a
//! snapshot holding (a) the golden event text produced so far, (b) the
//! metrics accumulator over those events, and (c) the full
//! `cfpd_core::checkpoint` hex-text for the physics state. A restarted
//! daemon reloads the snapshot, restores the checkpoint, runs the
//! remaining steps, and stitches `header + events + summary` into a
//! document byte-equal to the uninterrupted run's — same digest, same
//! canonical report.
//!
//! The file format follows the checkpoint codec: versioned magic, a
//! whole-body digest line, then line-counted sections whose declared
//! counts are bounded by the input size (hostile length prefixes are
//! rejected before allocation, mirroring `Checkpoint::from_text`).

use crate::wal::PersistGate;
use cfpd_core::LogicalEvent;
use cfpd_testkit::digest_bytes;
use std::fmt::Write as _;
use std::path::Path;

pub const SNAP_MAGIC: &str = "cfpd serve snapshot v1";

/// Running deterministic-metrics accumulator over a cell's logical
/// events — the same quantities `cfpd_campaign::cell_metrics` derives
/// from a complete run, accumulated segment by segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellAcc {
    pub events: u64,
    pub iters_total: u64,
    pub iters_poisson: u64,
    /// Per-rank step-0 assembly element counts (only the first segment
    /// contributes; kept in arrival order like the aggregator).
    pub elems: Vec<(usize, u64)>,
}

impl CellAcc {
    /// Fold one segment's events in.
    pub fn absorb(&mut self, logical: &[LogicalEvent]) {
        self.events += logical.len() as u64;
        for e in logical {
            match e {
                LogicalEvent::Solve { system, iterations, .. } => {
                    self.iters_total += *iterations as u64;
                    if *system == 3 {
                        self.iters_poisson += *iterations as u64;
                    }
                }
                LogicalEvent::Assembly { step: 0, rank, elements } => {
                    self.elems.push((*rank, *elements as u64));
                }
                _ => {}
            }
        }
    }

    /// Assembly load balance L = mean/max — `cell_metrics`' formula.
    pub fn lb_assembly(&self) -> f64 {
        if self.elems.is_empty() {
            1.0
        } else {
            let sum: u64 = self.elems.iter().map(|(_, e)| e).sum();
            let max = self.elems.iter().map(|(_, e)| *e).max().unwrap_or(1).max(1);
            sum as f64 / (self.elems.len() as f64 * max as f64)
        }
    }

    fn render_elems(&self) -> String {
        if self.elems.is_empty() {
            return "-".to_string();
        }
        self.elems
            .iter()
            .map(|(r, e)| format!("{r}:{e}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn parse_elems(s: &str) -> Result<Vec<(usize, u64)>, String> {
        if s == "-" {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|tok| {
                let (r, e) = tok.split_once(':').ok_or_else(|| format!("bad elem {tok:?}"))?;
                Ok((
                    r.parse().map_err(|_| format!("bad rank in {tok:?}"))?,
                    e.parse().map_err(|_| format!("bad count in {tok:?}"))?,
                ))
            })
            .collect()
    }
}

/// A cell parked mid-flight: accumulator + partial event text + the
/// physics checkpoint, all digest-guarded in one file.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    pub job: u64,
    pub cell: usize,
    pub attempt: u32,
    /// First step the resumed segment executes.
    pub next_step: usize,
    pub acc: CellAcc,
    /// Golden event lines produced so far (newline-terminated).
    pub events_text: String,
    /// `Checkpoint::to_text` of the parked physics state.
    pub checkpoint_text: String,
}

impl CellSnapshot {
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        writeln!(
            body,
            "meta job={} cell={} attempt={} next_step={}",
            self.job, self.cell, self.attempt, self.next_step
        )
        .unwrap();
        writeln!(
            body,
            "acc events={} iters={} itersp={} elems={}",
            self.acc.events,
            self.acc.iters_total,
            self.acc.iters_poisson,
            self.acc.render_elems(),
        )
        .unwrap();
        writeln!(body, "events {}", self.events_text.lines().count()).unwrap();
        body.push_str(&self.events_text);
        writeln!(body, "checkpoint {}", self.checkpoint_text.lines().count()).unwrap();
        body.push_str(&self.checkpoint_text);
        format!("{SNAP_MAGIC}\ndigest {:016x}\n{body}", digest_bytes(body.as_bytes()))
    }

    /// Digest of the serialized snapshot — what the WAL `ckpt` record
    /// pins, so replay can detect a snapshot file the crash tore.
    pub fn digest(&self) -> u64 {
        digest_bytes(self.to_text().as_bytes())
    }

    pub fn from_text(text: &str) -> Result<CellSnapshot, String> {
        let total_lines = text.lines().count();
        let bounded = |n: usize, what: &str| -> Result<usize, String> {
            if n > total_lines {
                Err(format!(
                    "declared {what} count {n} exceeds the {total_lines} lines of input \
                     (corrupt or hostile length prefix)"
                ))
            } else {
                Ok(n)
            }
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(SNAP_MAGIC) => {}
            other => return Err(format!("bad snapshot magic: {other:?}")),
        }
        let digest_line = lines.next().ok_or("missing digest line")?;
        let stated = digest_line
            .strip_prefix("digest ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad digest line {digest_line:?}"))?;
        let body_at = text
            .find("\ndigest ")
            .and_then(|i| text[i + 1..].find('\n').map(|j| i + 1 + j + 1))
            .ok_or("cannot locate snapshot body")?;
        let body = &text[body_at..];
        let actual = digest_bytes(body.as_bytes());
        if stated != actual {
            return Err(format!("snapshot digest mismatch: stated {stated:016x}, actual {actual:016x}"));
        }

        let meta = lines.next().ok_or("missing meta line")?;
        let mut kv = std::collections::BTreeMap::new();
        for tok in meta.strip_prefix("meta ").ok_or("bad meta line")?.split(' ') {
            let (k, v) = tok.split_once('=').ok_or_else(|| format!("bad meta token {tok:?}"))?;
            kv.insert(k, v);
        }
        let meta_int = |k: &str| -> Result<u64, String> {
            kv.get(k)
                .ok_or_else(|| format!("meta missing {k}="))?
                .parse()
                .map_err(|e| format!("bad meta {k}: {e}"))
        };
        let (job, cell, attempt, next_step) = (
            meta_int("job")?,
            meta_int("cell")? as usize,
            meta_int("attempt")? as u32,
            meta_int("next_step")? as usize,
        );

        let acc_line = lines.next().ok_or("missing acc line")?;
        let mut akv = std::collections::BTreeMap::new();
        for tok in acc_line.strip_prefix("acc ").ok_or("bad acc line")?.split(' ') {
            let (k, v) = tok.split_once('=').ok_or_else(|| format!("bad acc token {tok:?}"))?;
            akv.insert(k, v);
        }
        let acc_int = |k: &str| -> Result<u64, String> {
            akv.get(k)
                .ok_or_else(|| format!("acc missing {k}="))?
                .parse()
                .map_err(|e| format!("bad acc {k}: {e}"))
        };
        let acc = CellAcc {
            events: acc_int("events")?,
            iters_total: acc_int("iters")?,
            iters_poisson: acc_int("itersp")?,
            elems: CellAcc::parse_elems(akv.get("elems").ok_or("acc missing elems=")?)?,
        };

        let mut read_section = |name: &str| -> Result<String, String> {
            let header = lines.next().ok_or_else(|| format!("missing {name} section"))?;
            let n: usize = header
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .and_then(|r| r.parse().ok())
                .ok_or_else(|| format!("bad {name} section header {header:?}"))?;
            let n = bounded(n, name)?;
            let mut out = String::new();
            for i in 0..n {
                let line =
                    lines.next().ok_or_else(|| format!("{name} section truncated at line {i}"))?;
                out.push_str(line);
                out.push('\n');
            }
            Ok(out)
        };
        let events_text = read_section("events")?;
        let checkpoint_text = read_section("checkpoint")?;
        Ok(CellSnapshot { job, cell, attempt, next_step, acc, events_text, checkpoint_text })
    }

    /// Atomic, gated write (tmp+rename). `false` means the persistence
    /// gate froze — the simulated crash ate this snapshot.
    pub fn write(&self, path: &Path, gate: &PersistGate) -> bool {
        if !gate.admit() {
            return false;
        }
        let tmp = path.with_extension("snap.tmp");
        let ok = std::fs::write(&tmp, self.to_text())
            .and_then(|_| std::fs::rename(&tmp, path))
            .is_ok();
        if ok {
            cfpd_telemetry::count!("serve.checkpoints");
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellSnapshot {
        let mut acc = CellAcc::default();
        acc.absorb(&[
            LogicalEvent::Assembly { step: 0, rank: 0, elements: 120 },
            LogicalEvent::Assembly { step: 0, rank: 1, elements: 100 },
            LogicalEvent::Solve {
                step: 0,
                rank: 0,
                system: 3,
                iterations: 17,
                residual_bits: 42,
                converged: true,
            },
        ]);
        CellSnapshot {
            job: 3,
            cell: 1,
            attempt: 2,
            next_step: 4,
            acc,
            events_text: "step 0 rank 0 assembly elements=120\nstep 0 rank 1 x\n".into(),
            checkpoint_text: "cfpd checkpoint v1\nfake body line\n".into(),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let s = sample();
        let text = s.to_text();
        let back = CellSnapshot::from_text(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text);
        assert_eq!(back.acc.iters_total, 17);
        assert_eq!(back.acc.iters_poisson, 17);
        assert_eq!(back.acc.elems, vec![(0, 120), (1, 100)]);
        assert!((back.acc.lb_assembly() - (220.0 / 240.0)).abs() < 1e-12);
    }

    #[test]
    fn corruption_and_hostile_prefixes_are_rejected() {
        let s = sample();
        let text = s.to_text();
        // Flip one byte of the events payload: digest guard trips.
        let bad = text.replace("elements=120", "elements=121");
        assert!(CellSnapshot::from_text(&bad).unwrap_err().contains("digest mismatch"));
        // Hostile section count: rejected by the bound, not an OOM.
        // (Recompute the digest so only the length prefix is at fault.)
        let hostile_body = text
            .splitn(3, '\n')
            .nth(2)
            .unwrap()
            .replace("events 2", "events 99999999999999");
        let hostile = format!(
            "{SNAP_MAGIC}\ndigest {:016x}\n{hostile_body}",
            digest_bytes(hostile_body.as_bytes())
        );
        assert!(CellSnapshot::from_text(&hostile).unwrap_err().contains("exceeds"));
        assert!(CellSnapshot::from_text("junk\n").unwrap_err().contains("magic"));
    }

    #[test]
    fn gated_write_simulates_a_torn_disk() {
        let dir = std::env::temp_dir().join(format!("cfpd-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.snap");
        let s = sample();
        let gate = PersistGate::kill_after(1);
        assert!(s.write(&path, &gate));
        assert!(!s.write(&path, &gate), "second write must hit the frozen gate");
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(CellSnapshot::from_text(&on_disk).unwrap(), s);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
