//! Supervisor state: jobs, their state machine, and the shared store
//! the worker pool and HTTP handlers operate on.
//!
//! The in-memory store is a *cache* of the WAL — every transition is
//! logged before (or atomically with) the in-memory update, and daemon
//! restart reconstructs the store purely from the WAL's valid prefix
//! plus the snapshot files it pins. Nothing here is authoritative.

use crate::snap::CellAcc;
use cfpd_campaign::{CampaignReport, CampaignSpec, Cell, CellFailure, CellMetrics};
use cfpd_core::Checkpoint;
use cfpd_dlb::JobArbiter;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// The job state machine:
///
/// ```text
/// queued ──▶ running ──▶ done
///    ▲          │  ▲└───▶ failed(reason)
///    │          ▼  │
///    └──── checkpointed      (preempt / drain / crash recovery)
///    any non-terminal ──▶ cancelled
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    /// Parked on a persisted snapshot; resumable bit-identically.
    Checkpointed,
    Done,
    Failed(String),
    Cancelled,
}

impl JobState {
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Checkpointed => "checkpointed",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed(_) | JobState::Cancelled)
    }
}

/// Where a parked cell resumes: the physics checkpoint plus the partial
/// golden text and metrics accumulator it was parked with.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    pub next_step: usize,
    pub checkpoint: Arc<Checkpoint>,
    pub acc: CellAcc,
    pub events_text: String,
}

/// One admitted job.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub name: String,
    pub spec: CampaignSpec,
    /// Expanded matrix, in expansion order.
    pub cells: Vec<Cell>,
    pub state: JobState,
    /// Finished cells by expansion index (`None` = not finished yet).
    pub cells_done: Vec<Option<Result<CellMetrics, CellFailure>>>,
    /// Index of the first unfinished cell.
    pub cur_cell: usize,
    /// Attempt counter of the current cell (0-based).
    pub attempt: u32,
    /// Total retries across all cells (for /metrics and status).
    pub retries: u64,
    /// In-memory resume point of the current cell, if parked.
    pub resume: Option<ResumePoint>,
    /// Step a crash-recovered job resumed from (status visibility: the
    /// resilience suite asserts no step-0 recomputation happened).
    pub recovered_resume_step: Option<usize>,
    pub preempt_requested: bool,
    pub cancel_requested: bool,
    /// When the job was admitted (this daemon incarnation) — deadlines
    /// are wall-clock budgets from here.
    pub admitted: Instant,
    /// Completion order stamp (the preemption test asserts a short job
    /// admitted *after* a long one finishes *before* it).
    pub finish_seq: Option<u64>,
}

impl Job {
    pub fn new(id: u64, spec: CampaignSpec, cells: Vec<Cell>) -> Job {
        let n = cells.len();
        Job {
            id,
            name: spec.name.clone(),
            spec,
            cells,
            state: JobState::Queued,
            cells_done: (0..n).map(|_| None).collect(),
            cur_cell: 0,
            attempt: 0,
            retries: 0,
            resume: None,
            recovered_resume_step: None,
            preempt_requested: false,
            cancel_requested: false,
            admitted: Instant::now(),
            finish_seq: None,
        }
    }

    /// Remaining work estimate in simulation steps — the preemption
    /// policy's cost proxy (steps, not cells: a 1-cell 100-step job is
    /// "longer" than a 4-cell 4-step one).
    pub fn remaining_steps(&self) -> u64 {
        let mut total = 0u64;
        for (i, cell) in self.cells.iter().enumerate() {
            if self.cells_done.get(i).map(|s| s.is_some()).unwrap_or(false) {
                continue;
            }
            let steps = cell.scenario.config.steps as u64;
            if i == self.cur_cell {
                let done = self.resume.as_ref().map(|r| r.next_step as u64).unwrap_or(0);
                total += steps.saturating_sub(done);
            } else {
                total += steps;
            }
        }
        total
    }

    pub fn cells_finished(&self) -> usize {
        self.cells_done.iter().filter(|s| s.is_some()).count()
    }

    pub fn cells_failed(&self) -> usize {
        self.cells_done
            .iter()
            .filter(|s| matches!(s, Some(Err(_))))
            .count()
    }

    /// The canonical campaign report of a finished job — same renderer,
    /// same bytes as `cfpd campaign run --json`.
    pub fn report(&self) -> CampaignReport {
        CampaignReport {
            name: self.name.clone(),
            cells: self
                .cells_done
                .iter()
                .cloned()
                .map(|s| s.expect("report of an unfinished job"))
                .collect(),
        }
    }
}

/// Everything the daemon's mutex guards.
pub struct Store {
    pub jobs: BTreeMap<u64, Job>,
    /// Dispatch order: job ids waiting for a worker slot (queued and
    /// checkpointed jobs both wait here).
    pub queue: VecDeque<u64>,
    pub next_id: u64,
    /// LeWI, lifted from ranks to jobs: a preempted job *lends* its
    /// worker slot; dispatch *reclaims* it when the job resumes.
    pub arbiter: JobArbiter,
    finish_counter: u64,
}

impl Store {
    pub fn new(worker_slots: usize) -> Store {
        Store {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: 1,
            arbiter: JobArbiter::new(worker_slots),
            finish_counter: 0,
        }
    }

    /// Count of jobs occupying admission capacity (all non-terminal).
    pub fn live_jobs(&self) -> usize {
        self.jobs.values().filter(|j| !j.state.is_terminal()).count()
    }

    /// Transition a job's state, keeping the per-state gauges exact.
    pub fn set_state(&mut self, id: u64, state: JobState) {
        let Some(job) = self.jobs.get_mut(&id) else { return };
        if cfpd_telemetry::enabled() {
            cfpd_telemetry::gauge(state_gauge(job.state.label())).add_unchecked(-1);
            cfpd_telemetry::gauge(state_gauge(state.label())).add_unchecked(1);
        }
        if state.is_terminal() && job.finish_seq.is_none() {
            self.finish_counter += 1;
            job.finish_seq = Some(self.finish_counter);
        }
        job.state = state;
    }

    /// Register a freshly created job's gauge (+1 its initial state).
    pub fn register_job(&mut self, job: Job) -> u64 {
        let id = job.id;
        if cfpd_telemetry::enabled() {
            cfpd_telemetry::gauge(state_gauge(job.state.label())).add_unchecked(1);
        }
        self.jobs.insert(id, job);
        id
    }
}

/// Leak-free dynamic gauge names: the state set is closed, so map to
/// static strings (the registry interns `&'static str` keys).
fn state_gauge(label: &str) -> &'static str {
    match label {
        "queued" => "serve.state_queued",
        "running" => "serve.state_running",
        "checkpointed" => "serve.state_checkpointed",
        "done" => "serve.state_done",
        "failed" => "serve.state_failed",
        _ => "serve.state_cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_campaign::expand;

    fn job(id: u64, steps: usize) -> Job {
        let text = format!(
            "[campaign]\nname = j{id}\n[scenario]\nranks = 2\ngenerations = 1\n\
             particles = 40\nsteps = {steps}\n"
        );
        let spec = CampaignSpec::from_text(&text).unwrap();
        let cells = expand(&spec).unwrap();
        Job::new(id, spec, cells)
    }

    #[test]
    fn remaining_steps_accounts_for_resume_progress() {
        let mut j = job(1, 10);
        assert_eq!(j.remaining_steps(), 10);
        j.resume = Some(ResumePoint {
            next_step: 7,
            checkpoint: Arc::new(Checkpoint {
                next_step: 7,
                n_ranks: 2,
                seed: 0,
                config_digest: 0,
                ranks: Vec::new(),
            }),
            acc: CellAcc::default(),
            events_text: String::new(),
        });
        assert_eq!(j.remaining_steps(), 3);
        j.cells_done[0] = Some(Err(CellFailure { id: "base".into(), message: "x".into() }));
        assert_eq!(j.remaining_steps(), 0);
    }

    #[test]
    fn terminal_transitions_stamp_a_finish_order() {
        let mut store = Store::new(1);
        let a = store.register_job(job(1, 2));
        let b = store.register_job(job(2, 2));
        store.set_state(b, JobState::Done);
        store.set_state(a, JobState::Cancelled);
        assert_eq!(store.jobs[&b].finish_seq, Some(1));
        assert_eq!(store.jobs[&a].finish_seq, Some(2));
        assert_eq!(store.live_jobs(), 0);
        // Re-entering a terminal state must not re-stamp.
        store.set_state(b, JobState::Done);
        assert_eq!(store.jobs[&b].finish_seq, Some(1));
    }
}
