//! Dependency-free HTTP/1.1 substrate: a hardened request reader for
//! the daemon side and a tiny blocking client for the CLI verbs and
//! tests. One request per connection (`Connection: close`) — the
//! concurrency bound is the accept pool, not a connection pool.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard caps on attacker-controlled sizes, in the same spirit as the
/// hardened checkpoint parser: reject before allocating.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
pub const MAX_HEADERS: usize = 64;
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    /// Extra headers beyond Content-Length/Type/Connection.
    pub headers: Vec<(String, String)>,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response { status, headers: Vec::new(), content_type: "application/json", body }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let mut w = cfpd_telemetry::JsonWriter::new();
        w.begin_object();
        w.key("error").string(message);
        w.end_object();
        Response::json(status, w.finish())
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Read one request off the stream, enforcing the size caps. Errors are
/// protocol violations the caller answers with 400 (or drops).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_limited_line(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing path")?.to_string();

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        line.clear();
        read_limited_line(&mut reader, &mut line)?;
        let header = line.trim_end();
        if header.is_empty() {
            let body = read_body(&mut reader, content_length)?;
            return Ok(Request { method, path, body });
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
                if content_length > MAX_BODY {
                    return Err(format!(
                        "body of {content_length} bytes exceeds the {MAX_BODY} byte cap"
                    ));
                }
            }
        }
    }
    Err(format!("more than {MAX_HEADERS} headers"))
}

fn read_limited_line(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
) -> Result<(), String> {
    // An unbounded read_line would let a hostile peer grow the buffer
    // without limit; Take bounds it.
    let mut limited = reader.by_ref().take(MAX_REQUEST_LINE as u64 + 1);
    limited
        .read_line(line)
        .map_err(|e| format!("read: {e}"))?;
    if line.len() > MAX_REQUEST_LINE {
        return Err(format!("line exceeds the {MAX_REQUEST_LINE} byte cap"));
    }
    if line.is_empty() {
        return Err("connection closed mid-request".to_string());
    }
    Ok(())
}

fn read_body(
    reader: &mut BufReader<&mut TcpStream>,
    len: usize,
) -> Result<String, String> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| format!("body read: {e}"))?;
    String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())
}

/// Serialize and send a response; ignores write errors (the client may
/// have gone away — the daemon must not care).
pub fn write_response(stream: &mut TcpStream, resp: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(resp.body.as_bytes());
    let _ = stream.flush();
}

/// Minimal blocking HTTP client: one request, one response, connection
/// closed. Returns `(status, body)`.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Extract a response header's value from a raw client exchange; the
/// overload tests use it to read `Retry-After`.
pub fn http_call_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    Ok(raw)
}
