//! The supervisor event feed: a bounded, monotonic sequence of
//! structured lifecycle events (job admitted / started / cell done /
//! retried / shed / …) that `GET /events?since=seq` long-polls.
//!
//! The feed is a leaf lock: posting never takes any other daemon lock,
//! so it is safe to post while holding the store mutex. Readers wait on
//! a condvar with a bounded timeout well under the HTTP client's read
//! timeout, so a long-poll always answers.

use cfpd_telemetry::JsonWriter;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One feed entry. `seq` is monotonic from 1 across the daemon's
/// lifetime; a client resumes with `?since=<last seen seq>`.
#[derive(Debug, Clone)]
pub struct FeedEvent {
    pub seq: u64,
    /// Event class (static: "admitted", "started", "cell_done",
    /// "retried", "shed", "done", "failed", "cancelled", "preempted",
    /// "phase_drift").
    pub kind: &'static str,
    /// Subject job id (0 for daemon-wide events such as drift warnings).
    pub job: u64,
    pub detail: String,
}

struct Inner {
    events: VecDeque<FeedEvent>,
    next_seq: u64,
}

/// Bounded in-memory feed (old events are dropped once `cap` is
/// exceeded; `first_retained` in the response tells a slow client it
/// missed some).
pub struct EventFeed {
    inner: Mutex<Inner>,
    cv: Condvar,
    cap: usize,
}

impl EventFeed {
    pub fn new(cap: usize) -> EventFeed {
        EventFeed {
            inner: Mutex::new(Inner { events: VecDeque::new(), next_seq: 1 }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Append an event and wake every long-poller.
    pub fn post(&self, kind: &'static str, job: u64, detail: impl Into<String>) {
        let mut g = self.inner.lock().unwrap();
        let seq = g.next_seq;
        g.next_seq += 1;
        g.events.push_back(FeedEvent { seq, kind, job, detail: detail.into() });
        while g.events.len() > self.cap {
            g.events.pop_front();
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Events with `seq > since`, waiting up to `wait` for the first
    /// one. Returns `(events, last_seq_assigned, first_retained_seq)`.
    pub fn since(&self, since: u64, wait: Duration) -> (Vec<FeedEvent>, u64, u64) {
        let deadline = Instant::now() + wait;
        let mut g = self.inner.lock().unwrap();
        loop {
            let fresh: Vec<FeedEvent> =
                g.events.iter().filter(|e| e.seq > since).cloned().collect();
            let last = g.next_seq - 1;
            let first_retained = g.events.front().map(|e| e.seq).unwrap_or(g.next_seq);
            if !fresh.is_empty() {
                return (fresh, last, first_retained);
            }
            let now = Instant::now();
            if now >= deadline {
                return (fresh, last, first_retained);
            }
            let (guard, _) = self.cv.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
    }

    /// Render a `since` response as the `/events` JSON document.
    pub fn render_json(events: &[FeedEvent], last: u64, first_retained: u64) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("events").begin_array();
        for e in events {
            w.begin_object();
            w.key("seq").u64(e.seq);
            w.key("kind").string(e.kind);
            w.key("job").u64(e.job);
            w.key("detail").string(&e.detail);
            w.end_object();
        }
        w.end_array();
        w.key("last").u64(last);
        w.key("first_retained").u64(first_retained);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn posts_are_monotonic_and_bounded() {
        let feed = EventFeed::new(3);
        for i in 0..5u64 {
            feed.post("admitted", i, format!("job {i}"));
        }
        let (evs, last, first) = feed.since(0, Duration::from_millis(0));
        assert_eq!(last, 5);
        assert_eq!(first, 3, "two oldest dropped by the cap");
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn since_filters_and_long_poll_wakes() {
        let feed = Arc::new(EventFeed::new(16));
        feed.post("admitted", 1, "a");
        let (evs, last, _) = feed.since(1, Duration::from_millis(0));
        assert!(evs.is_empty());
        assert_eq!(last, 1);

        let waiter = Arc::clone(&feed);
        let t = std::thread::spawn(move || waiter.since(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        feed.post("cell_done", 1, "cell 0");
        let (evs, last, _) = t.join().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "cell_done");
        assert_eq!(last, 2);
    }

    #[test]
    fn renders_structured_json() {
        let feed = EventFeed::new(4);
        feed.post("shed", 0, "queue full (\"busy\")");
        let (evs, last, first) = feed.since(0, Duration::from_millis(0));
        let json = EventFeed::render_json(&evs, last, first);
        assert!(json.contains(r#""kind":"shed""#));
        assert!(json.contains(r#""last":1"#));
        // JSON string escaping survives hostile details.
        assert!(json.contains("\\\"busy\\\""));
    }
}
