//! The daemon: HTTP front end, worker pool, and the WAL-backed job
//! supervisor gluing [`crate::state`], [`crate::wal`], [`crate::snap`]
//! and [`crate::runner`] together.
//!
//! ## Crash safety
//!
//! Every state transition is WAL-appended *before* the in-memory store
//! mutates; segment boundaries persist a snapshot file *before* its
//! `ckpt` record. A daemon killed at any instant therefore restarts
//! into a consistent prefix: completed cells keep their recorded
//! metrics, the in-flight cell resumes from its last pinned snapshot
//! (bit-identically — no step is recomputed), and at worst the
//! not-yet-pinned segment since the last boundary is re-run from that
//! boundary, which by the `stop_after` stitching contract produces the
//! same bytes.
//!
//! ## Overload
//!
//! Admission is bounded by `queue_cap` live jobs: beyond it, `POST
//! /jobs` sheds with `503` + `Retry-After` instead of queueing without
//! bound. Everything is observable on `/metrics` (strict Prometheus
//! text, see [`crate::prom`]).

use crate::fault::CellFault;
use crate::feed::EventFeed;
use crate::runner::{checkpointable, finish_cell_metrics, run_segment};
use crate::snap::{CellAcc, CellSnapshot};
use crate::state::{Job, JobState, ResumePoint, Store};
use crate::wal::{self, CellDoneRec, PersistGate, Wal, WalRecord};
use crate::watchdog::Watchdog;
use crate::{http, ServeFaultPlan};
use cfpd_campaign::{
    expand, run_bounded, run_cells_with, CampaignSpec, Cell, CellFailure, CellMetrics,
    WallMetrics,
};
use cfpd_core::Checkpoint;
use cfpd_telemetry::JsonWriter;
use cfpd_testkit::{digest_bytes, SplitMix64};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration. The defaults suit the test suite (ephemeral
/// port, tiny pools); `cfpd serve run` overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub addr: String,
    pub data_dir: PathBuf,
    /// Concurrent job slots (the [`cfpd_dlb::JobArbiter`] total).
    pub workers: usize,
    /// Admission bound: live (non-terminal) jobs beyond this shed 503.
    pub queue_cap: usize,
    /// Steps per segment of a checkpointable cell — the
    /// recovery-granularity vs snapshot-overhead dial.
    pub ckpt_interval: usize,
    /// Wall-clock budget per segment (checkpointable cells) or per cell
    /// (atomic cells); a stuck cell fails with `timeout: ...`.
    pub cell_timeout: Option<Duration>,
    /// Retries per cell after the first attempt.
    pub retry_max: u32,
    /// Exponential backoff base (doubles per retry, jittered, capped).
    pub backoff_base_ms: u64,
    /// Per-job wall-clock budget from admission.
    pub job_deadline: Option<Duration>,
    /// Accept-pool size (threads handling HTTP connections).
    pub http_threads: usize,
    /// Regression watchdog: warn when a phase's per-step time exceeds
    /// this factor × its rolling median across completed cells.
    pub drift_factor: f64,
    pub fault: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("serve-data"),
            workers: 2,
            queue_cap: 8,
            ckpt_interval: 1,
            cell_timeout: None,
            retry_max: 2,
            backoff_base_ms: 25,
            job_deadline: None,
            http_threads: 2,
            drift_factor: 3.0,
            fault: ServeFaultPlan::default(),
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    store: Mutex<Store>,
    cv: Condvar,
    wal: Wal,
    gate: Arc<PersistGate>,
    drain: AtomicBool,
    kill: AtomicBool,
    workers_alive: AtomicUsize,
    /// Supervisor event feed (`GET /events` long-polls it). Leaf lock:
    /// safe to post while holding the store mutex.
    feed: EventFeed,
    /// Rolling per-phase medians across completed cells.
    watchdog: Mutex<Watchdog>,
}

/// A running daemon. [`Daemon::join`] blocks until shutdown (drain or
/// kill); [`Daemon::kill`] is the abrupt path the resilience tests use.
pub struct Daemon {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    pub fn start(cfg: ServeConfig) -> std::io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        cfpd_telemetry::set_enabled(true);
        cfpd_flight::set_enabled(true);
        let gate = match cfg.fault.freeze_wal_after {
            Some(n) => PersistGate::kill_after(n),
            None => PersistGate::unlimited(),
        };

        let wal_path = cfg.data_dir.join("wal.log");
        let replayed = wal::replay(&wal_path);
        let mut store = Store::new(cfg.workers);
        recover(&mut store, &cfg, &replayed.records);
        let wal = Wal::open(&wal_path, &replayed.valid_text, replayed.next_seq, Arc::clone(&gate))?;

        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            workers_alive: AtomicUsize::new(cfg.workers),
            watchdog: Mutex::new(Watchdog::new(cfg.drift_factor)),
            cfg,
            store: Mutex::new(store),
            cv: Condvar::new(),
            wal,
            gate,
            drain: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            feed: EventFeed::new(1024),
        });

        let mut threads = Vec::new();
        for _ in 0..shared.cfg.workers {
            let sh = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&sh)));
        }
        for _ in 0..shared.cfg.http_threads.max(1) {
            let sh = Arc::clone(&shared);
            let l = listener.try_clone()?;
            threads.push(std::thread::spawn(move || accept_loop(l, &sh)));
        }
        shared.cv.notify_all();
        Ok(Daemon { shared, addr, threads })
    }

    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Has the simulated-crash gate frozen persistence?
    pub fn gate_frozen(&self) -> bool {
        self.shared.gate.frozen()
    }

    /// Block until the daemon shuts down (drain completed or killed).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Abrupt shutdown: stop all threads *without* parking or
    /// persisting anything — in-memory state dies, disk keeps whatever
    /// the WAL and snapshots already hold. With a frozen gate this is
    /// indistinguishable from `kill -9` at the freeze point.
    pub fn kill(self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        self.join();
    }
}

// ---------------------------------------------------------------------
// Recovery

/// Rebuild the store from the WAL's valid prefix. Pure function of the
/// records plus the spec/snapshot files they pin.
fn recover(store: &mut Store, cfg: &ServeConfig, records: &[WalRecord]) {
    use std::collections::BTreeMap;
    // job -> pinned (cell, step, snap_digest) of the latest checkpoint.
    let mut pinned: BTreeMap<u64, (usize, usize, u64)> = BTreeMap::new();

    for rec in records {
        match rec {
            WalRecord::Submit { job, name: _, spec_digest } => {
                store.next_id = store.next_id.max(job + 1);
                let path = wal::spec_path(&cfg.data_dir, *job);
                let Ok(text) = std::fs::read_to_string(&path) else { continue };
                if digest_bytes(text.as_bytes()) != *spec_digest {
                    continue; // spec torn by the crash; drop the job
                }
                let Ok(spec) = CampaignSpec::from_text(&text) else { continue };
                let Ok(cells) = expand(&spec) else { continue };
                store.register_job(Job::new(*job, spec, cells));
            }
            WalRecord::Start { job, cell, attempt } => {
                if let Some(j) = store.jobs.get_mut(job) {
                    j.cur_cell = *cell;
                    j.attempt = *attempt;
                }
            }
            WalRecord::Ckpt { job, cell, step, snap_digest } => {
                pinned.insert(*job, (*cell, *step, *snap_digest));
            }
            WalRecord::CellDone { job, cell, rec } => {
                if let Some(j) = store.jobs.get_mut(job) {
                    if let Some(c) = j.cells.get(*cell) {
                        let m = metrics_from_rec(c, rec);
                        if let Some(slot) = j.cells_done.get_mut(*cell) {
                            *slot = Some(Ok(m));
                        }
                        j.cur_cell = cell + 1;
                        j.attempt = 0;
                    }
                    pinned.remove(job);
                }
            }
            WalRecord::CellFail { job, cell, reason } => {
                if let Some(j) = store.jobs.get_mut(job) {
                    let id = j.cells.get(*cell).map(|c| c.id.clone()).unwrap_or_default();
                    if let Some(slot) = j.cells_done.get_mut(*cell) {
                        *slot = Some(Err(CellFailure { id, message: reason.clone() }));
                    }
                    j.cur_cell = cell + 1;
                    j.attempt = 0;
                    pinned.remove(job);
                }
            }
            WalRecord::Retry { job, attempt, .. } => {
                if let Some(j) = store.jobs.get_mut(job) {
                    j.attempt = *attempt;
                    j.retries += 1;
                }
            }
            WalRecord::Preempt { .. } => {}
            WalRecord::Done { job } => store.set_state(*job, JobState::Done),
            WalRecord::Fail { job, reason } => {
                store.set_state(*job, JobState::Failed(reason.clone()))
            }
            WalRecord::Cancel { job } => store.set_state(*job, JobState::Cancelled),
        }
    }

    // Re-queue every surviving non-terminal job, resuming from its
    // pinned snapshot when the file verifies against the WAL.
    let ids: Vec<u64> = store.jobs.keys().copied().collect();
    for id in ids {
        let job = &store.jobs[&id];
        if job.state.is_terminal() {
            continue;
        }
        let resume = pinned.get(&id).and_then(|&(cell, _step, snap_digest)| {
            if cell != job.cur_cell {
                return None;
            }
            let text = std::fs::read_to_string(wal::snap_path(&cfg.data_dir, id, cell)).ok()?;
            if digest_bytes(text.as_bytes()) != snap_digest {
                return None; // snapshot torn by the crash: restart the cell
            }
            let snap = CellSnapshot::from_text(&text).ok()?;
            let cp = Checkpoint::from_text(&snap.checkpoint_text).ok()?;
            Some(ResumePoint {
                next_step: snap.next_step,
                checkpoint: Arc::new(cp),
                acc: snap.acc,
                events_text: snap.events_text,
            })
        });
        let state = match &resume {
            Some(r) => {
                let step = r.next_step;
                let j = store.jobs.get_mut(&id).unwrap();
                j.resume = resume;
                j.recovered_resume_step = Some(step);
                JobState::Checkpointed
            }
            None => JobState::Queued,
        };
        store.set_state(id, state);
        enqueue(store, id);
    }
}

/// Rebuild [`CellMetrics`] from a `celldone` record (wall metrics are
/// zeroed — they are non-canonical and never rendered in the report).
fn metrics_from_rec(cell: &Cell, rec: &CellDoneRec) -> CellMetrics {
    CellMetrics {
        id: cell.id.clone(),
        axes: cell.axes.clone(),
        digest: rec.digest,
        events: rec.events,
        iters_total: rec.iters_total,
        iters_poisson: rec.iters_poisson,
        census: rec.census,
        deposited_frac_bits: rec.deposited_frac_bits,
        lb_assembly_bits: rec.lb_assembly_bits,
        wall: WallMetrics {
            total_time: 0.0,
            parallel_efficiency: 0.0,
            load_balance: 0.0,
            comm_efficiency: 0.0,
        },
    }
}

fn rec_from_metrics(m: &CellMetrics) -> CellDoneRec {
    CellDoneRec {
        digest: m.digest,
        events: m.events,
        iters_total: m.iters_total,
        iters_poisson: m.iters_poisson,
        census: m.census,
        deposited_frac_bits: m.deposited_frac_bits,
        lb_assembly_bits: m.lb_assembly_bits,
    }
}

fn enqueue(store: &mut Store, id: u64) {
    store.queue.push_back(id);
    cfpd_telemetry::gauge_add!("serve.queue_depth", 1);
}

fn dequeue_at(store: &mut Store, idx: usize) {
    store.queue.remove(idx);
    cfpd_telemetry::gauge_add!("serve.queue_depth", -1);
}

// ---------------------------------------------------------------------
// Worker pool

fn worker_loop(sh: &Shared) {
    loop {
        let claimed = {
            let mut store = sh.store.lock().unwrap();
            loop {
                if sh.kill.load(Ordering::SeqCst) || sh.drain.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(id) = try_dispatch(sh, &mut store) {
                    break Some(id);
                }
                let (s, _) = sh
                    .cv
                    .wait_timeout(store, Duration::from_millis(50))
                    .unwrap();
                store = s;
            }
        };
        match claimed {
            Some(id) => run_job(sh, id),
            None => break,
        }
    }
    sh.workers_alive.fetch_sub(1, Ordering::SeqCst);
}

/// Scan the queue for a dispatchable job and take a slot for it.
/// Holds the store lock; `Some(id)` means the job is now Running.
fn try_dispatch(sh: &Shared, store: &mut Store) -> Option<u64> {
    let mut idx = 0;
    while idx < store.queue.len() {
        let id = store.queue[idx];
        let Some(job) = store.jobs.get(&id) else {
            dequeue_at(store, idx);
            continue;
        };
        let took = match job.state {
            JobState::Queued => store.arbiter.try_acquire(id),
            JobState::Checkpointed => store.arbiter.try_reclaim(id),
            _ => {
                dequeue_at(store, idx);
                continue;
            }
        };
        if took {
            dequeue_at(store, idx);
            let job = store.jobs.get(&id).unwrap();
            sh.wal.append(&WalRecord::Start {
                job: id,
                cell: job.cur_cell,
                attempt: job.attempt,
            });
            sh.feed.post(
                "started",
                id,
                format!("cell {} attempt {}", job.cur_cell, job.attempt),
            );
            store.set_state(id, JobState::Running);
            return Some(id);
        }
        idx += 1;
    }
    None
}

/// Why the worker stopped driving a job.
enum StopCause {
    Finished,
    Parked,
    Killed,
}

/// Drive one job until it finishes, parks, or the daemon dies.
/// The worker owns the job's slot for the duration.
fn run_job(sh: &Shared, id: u64) {
    let cause = drive(sh, id);
    let mut store = sh.store.lock().unwrap();
    match cause {
        StopCause::Finished => store.arbiter.release(id),
        StopCause::Parked => {} // slot already lent under the store lock
        StopCause::Killed => {} // abrupt death: bookkeeping is moot
    }
    drop(store);
    sh.cv.notify_all();
}

fn drive(sh: &Shared, id: u64) -> StopCause {
    loop {
        // Claim the next cell (or conclude the job) under the lock.
        if sh.kill.load(Ordering::SeqCst) {
            return StopCause::Killed;
        }
        let (cell, attempt, resume) = {
            let mut store = sh.store.lock().unwrap();
            let job = store.jobs.get_mut(&id).expect("running job exists");

            if job.cancel_requested {
                sh.wal.append(&WalRecord::Cancel { job: id });
                store.set_state(id, JobState::Cancelled);
                cfpd_telemetry::count!("serve.jobs_cancelled");
                sh.feed.post("cancelled", id, "cancel honoured between cells");
                return StopCause::Finished;
            }
            if let Some(deadline) = sh.cfg.job_deadline {
                if store.jobs[&id].admitted.elapsed() > deadline {
                    let reason = format!(
                        "deadline: job exceeded its {:.3}s budget",
                        deadline.as_secs_f64()
                    );
                    sh.wal.append(&WalRecord::Fail { job: id, reason: reason.clone() });
                    store.set_state(id, JobState::Failed(reason.clone()));
                    cfpd_telemetry::count!("serve.jobs_failed");
                    sh.feed.post("failed", id, reason);
                    drop(store);
                    dump_flight(sh, id, "deadline kill");
                    return StopCause::Finished;
                }
            }
            let job = store.jobs.get_mut(&id).unwrap();
            if job.cur_cell >= job.cells.len() {
                sh.wal.append(&WalRecord::Done { job: id });
                store.set_state(id, JobState::Done);
                cfpd_telemetry::count!("serve.jobs_done");
                sh.feed.post("done", id, "all cells complete");
                return StopCause::Finished;
            }
            if job.preempt_requested {
                return park(sh, &mut store, id);
            }
            // Clone (not take): a crash on the attempt's first segment
            // must not lose the parked state the retry resumes from.
            (job.cells[job.cur_cell].clone(), job.attempt, job.resume.clone())
        };

        let cell_t0 = Instant::now();
        let fault = sh.cfg.fault.decide(id, cell.index as u64, attempt);
        let outcome = if checkpointable(&cell.scenario) {
            match drive_segments(sh, id, &cell, attempt, resume, fault) {
                SegmentsOutcome::Cell(result) => result,
                SegmentsOutcome::Stopped(cause) => return cause,
            }
        } else {
            run_atomic_cell(sh, &cell, fault)
        };

        match outcome {
            Ok(metrics) => {
                let steps = cell.scenario.config.steps as u64;
                let wall_s = cell_t0.elapsed().as_secs_f64();
                let mut store = sh.store.lock().unwrap();
                let cur = store.jobs[&id].cur_cell;
                sh.wal.append(&WalRecord::CellDone {
                    job: id,
                    cell: cur,
                    rec: rec_from_metrics(&metrics),
                });
                let job = store.jobs.get_mut(&id).unwrap();
                job.cells_done[cur] = Some(Ok(metrics));
                job.cur_cell += 1;
                job.attempt = 0;
                job.resume = None;
                let total = job.cells.len();
                let _ = std::fs::remove_file(wal::snap_path(&sh.cfg.data_dir, id, cur));
                sh.feed.post("cell_done", id, format!("cell {} of {total}", cur + 1));
                drop(store);
                observe_completion(sh, id, steps, wall_s);
            }
            Err(reason) => {
                if let Some(cause) = handle_attempt_failure(sh, id, reason) {
                    return cause;
                }
            }
        }
    }
}

/// Park a running job on its checkpoint (preemption or drain): lend the
/// slot, requeue, log. Caller holds the store lock.
fn park(sh: &Shared, store: &mut Store, id: u64) -> StopCause {
    let job = store.jobs.get_mut(&id).unwrap();
    let cell = job.cur_cell;
    let was_preempt = job.preempt_requested;
    job.preempt_requested = false;
    sh.wal.append(&WalRecord::Preempt { job: id, cell });
    store.set_state(id, JobState::Checkpointed);
    store.arbiter.lend(id);
    enqueue(store, id);
    if was_preempt {
        cfpd_telemetry::count!("serve.preemptions");
        sh.feed.post("preempted", id, format!("parked at cell {cell}"));
    }
    sh.cv.notify_all();
    StopCause::Parked
}

/// Feed a completed cell's timing to the regression watchdog and turn
/// any drift it reports into feed warnings.
fn observe_completion(sh: &Shared, id: u64, steps: u64, wall_s: f64) {
    let warnings = sh.watchdog.lock().unwrap().observe_cell(steps, wall_s);
    for w in warnings {
        cfpd_telemetry::count!("serve.drift_warnings");
        sh.feed.post(
            "phase_drift",
            id,
            format!(
                "phase {} at {:.2}x its rolling median ({:.3e}s vs {:.3e}s per step)",
                w.phase, w.drift, w.per_step_s, w.median_s
            ),
        );
    }
}

/// Dump the flight-recorder ring next to the job's WAL as the
/// post-mortem black box. Honours the simulated-crash discipline: a
/// frozen gate means "the process is already dead", so nothing may be
/// written. Overwrites any earlier dump — last death wins.
fn dump_flight(sh: &Shared, id: u64, cause: &str) {
    if sh.gate.frozen() || !cfpd_flight::enabled() {
        return;
    }
    let path = wal::flight_path(&sh.cfg.data_dir, id);
    if std::fs::write(&path, cfpd_flight::dump_text()).is_ok() {
        cfpd_telemetry::count!("serve.flight_dumps");
        sh.feed.post("flight_dump", id, format!("{cause}; dump at {}", path.display()));
    }
}

enum SegmentsOutcome {
    /// The cell concluded (successfully or with a failed attempt).
    Cell(Result<CellMetrics, String>),
    /// The job parked or the daemon died mid-cell.
    Stopped(StopCause),
}

/// Run a checkpointable cell as a segment chain, persisting a snapshot
/// at every boundary and honouring preempt/drain/cancel/kill between
/// segments.
fn drive_segments(
    sh: &Shared,
    id: u64,
    cell: &Cell,
    attempt: u32,
    resume: Option<ResumePoint>,
    fault: CellFault,
) -> SegmentsOutcome {
    let steps = cell.scenario.config.steps;
    let interval = sh.cfg.ckpt_interval.max(1);
    let (mut acc, mut events_text, mut restore, mut next_step) = match resume {
        Some(r) => (r.acc, r.events_text, Some(r.checkpoint), r.next_step),
        None => (CellAcc::default(), String::new(), None, 0),
    };
    let mut fault = fault; // consumed by the first segment of the attempt

    loop {
        match std::mem::replace(&mut fault, CellFault::None) {
            CellFault::Crash => {
                return SegmentsOutcome::Cell(Err(
                    "injected: seeded worker crash".to_string()
                ));
            }
            CellFault::Stall => std::thread::sleep(Duration::from_millis(sh.cfg.stall_ms())),
            CellFault::None => {}
        }

        let until = next_step + interval;
        let stop_after = if until >= steps { None } else { Some(until) };
        let scenario = cell.scenario.clone();
        let seg_restore = restore.take();
        let seg = run_bounded(
            move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    run_segment(&scenario, seg_restore, stop_after)
                }))
            },
            sh.cfg.cell_timeout,
        );
        let seg = match seg {
            None => {
                return SegmentsOutcome::Cell(Err(format!(
                    "timeout: segment exceeded its {:.3}s wall-clock budget \
                     (worker abandoned)",
                    sh.cfg.cell_timeout.expect("timeout fired").as_secs_f64()
                )))
            }
            Some(Err(payload)) => {
                return SegmentsOutcome::Cell(Err(panic_message(payload)))
            }
            Some(Ok(seg)) => seg,
        };

        acc.absorb(&seg.logical);
        events_text.push_str(&seg.events_text);

        if seg.done {
            return SegmentsOutcome::Cell(Ok(finish_cell_metrics(
                cell,
                &acc,
                &events_text,
                &seg.census,
            )));
        }

        // Segment boundary: pin the progress, then honour control flags.
        let cp = seg.checkpoint.expect("parked segment yields a checkpoint");
        next_step = cp.next_step;
        let snap = CellSnapshot {
            job: id,
            cell: cell.index,
            attempt,
            next_step,
            acc: acc.clone(),
            events_text: events_text.clone(),
            checkpoint_text: cp.to_text(),
        };
        let snap_digest = snap.digest();
        snap.write(&wal::snap_path(&sh.cfg.data_dir, id, cell.index), &sh.gate);
        sh.wal.append(&WalRecord::Ckpt {
            job: id,
            cell: cell.index,
            step: next_step,
            snap_digest,
        });
        let cp = Arc::new(cp);

        {
            let mut store = sh.store.lock().unwrap();
            let job = store.jobs.get_mut(&id).unwrap();
            job.resume = Some(ResumePoint {
                next_step,
                checkpoint: Arc::clone(&cp),
                acc: acc.clone(),
                events_text: events_text.clone(),
            });
            if sh.kill.load(Ordering::SeqCst) {
                return SegmentsOutcome::Stopped(StopCause::Killed);
            }
            if job.cancel_requested {
                sh.wal.append(&WalRecord::Cancel { job: id });
                store.set_state(id, JobState::Cancelled);
                cfpd_telemetry::count!("serve.jobs_cancelled");
                sh.feed.post("cancelled", id, "cancel honoured at segment boundary");
                return SegmentsOutcome::Stopped(StopCause::Finished);
            }
            let job = store.jobs.get_mut(&id).unwrap();
            if job.preempt_requested || sh.drain.load(Ordering::SeqCst) {
                return SegmentsOutcome::Stopped(park(sh, &mut store, id));
            }
        }
        restore = Some(cp);
    }
}

/// Run a non-checkpointable cell in one shot through the campaign
/// pool's own bounded runner (same timeout semantics, same failure
/// text) — supervised and retried, but not preemptible mid-cell.
fn run_atomic_cell(
    sh: &Shared,
    cell: &Cell,
    fault: CellFault,
) -> Result<CellMetrics, String> {
    match fault {
        CellFault::Crash => return Err("injected: seeded worker crash".to_string()),
        CellFault::Stall => std::thread::sleep(Duration::from_millis(sh.cfg.stall_ms())),
        CellFault::None => {}
    }
    let report = run_cells_with(
        "serve-cell",
        std::slice::from_ref(cell),
        1,
        sh.cfg.cell_timeout,
    );
    match report.cells.into_iter().next().expect("one cell in, one result out") {
        Ok(m) => Ok(m),
        Err(f) => Err(f.message),
    }
}

impl ServeConfig {
    fn stall_ms(&self) -> u64 {
        self.fault.stall_ms
    }
}

/// Book a failed attempt: retry with seeded exponential backoff while
/// budget remains, otherwise record the cell as failed and move on.
/// `Some(cause)` ends the worker's ownership of the job.
fn handle_attempt_failure(sh: &Shared, id: u64, reason: String) -> Option<StopCause> {
    let backoff_ms;
    {
        let mut store = sh.store.lock().unwrap();
        let job = store.jobs.get_mut(&id).unwrap();
        let cur = job.cur_cell;
        job.attempt += 1;
        job.retries += 1;
        let attempt = job.attempt;
        if attempt > sh.cfg.retry_max {
            sh.wal.append(&WalRecord::CellFail { job: id, cell: cur, reason: reason.clone() });
            let job = store.jobs.get_mut(&id).unwrap();
            let cell_id = job.cells[cur].id.clone();
            job.cells_done[cur] = Some(Err(CellFailure { id: cell_id, message: reason.clone() }));
            job.cur_cell += 1;
            job.attempt = 0;
            job.resume = None;
            sh.feed.post("cell_failed", id, reason);
            drop(store);
            dump_flight(sh, id, "cell failed terminally");
            return None;
        }
        // Exponential backoff with seeded jitter, capped — deterministic
        // for a fixed (seed, job, attempt), so sweeps replay exactly.
        let base = sh.cfg.backoff_base_ms << (attempt - 1).min(16);
        let jitter = SplitMix64::new(sh.cfg.fault.seed ^ id ^ attempt as u64).next_u64()
            % sh.cfg.backoff_base_ms.max(1);
        backoff_ms = base.min(250) + jitter;
        sh.wal.append(&WalRecord::Retry {
            job: id,
            cell: cur,
            attempt,
            backoff_ms,
            reason: reason.clone(),
        });
        cfpd_telemetry::count!("serve.retries");
        sh.feed.post(
            "retried",
            id,
            format!("cell {cur} attempt {attempt} after {backoff_ms}ms: {reason}"),
        );
    }
    if sh.kill.load(Ordering::SeqCst) {
        return Some(StopCause::Killed);
    }
    std::thread::sleep(Duration::from_millis(backoff_ms));
    None
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------
// HTTP front end

fn accept_loop(listener: TcpListener, sh: &Shared) {
    loop {
        if sh.kill.load(Ordering::SeqCst) {
            return;
        }
        if sh.drain.load(Ordering::SeqCst) && sh.workers_alive.load(Ordering::SeqCst) == 0 {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                cfpd_telemetry::count!("serve.http_requests");
                let resp = match http::read_request(&mut stream) {
                    Ok(req) => route(sh, &req),
                    Err(e) => http::Response::error(400, &e),
                };
                http::write_response(&mut stream, &resp);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn route(sh: &Shared, req: &http::Request) -> http::Response {
    // `req.path` may carry a query string (`/events?since=3`); segment
    // matching is on the path alone.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let segs: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => http::Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => http::Response {
            status: 200,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: cfpd_telemetry::snapshot().render_prometheus(),
        },
        ("POST", ["drain"]) => {
            sh.drain.store(true, Ordering::SeqCst);
            sh.cv.notify_all();
            http::Response::text(200, "draining\n")
        }
        ("POST", ["jobs"]) => submit(sh, &req.body),
        ("GET", ["jobs", id]) => with_job(sh, id, status_json),
        ("GET", ["jobs", id, "result"]) => with_job(sh, id, result_json),
        ("GET", ["jobs", id, "progress"]) => progress(sh, id),
        ("GET", ["events"]) => events(sh, query),
        ("DELETE", ["jobs", id]) => cancel(sh, id),
        _ => http::Response::error(404, "no such endpoint"),
    }
}

/// `GET /events?since=N&wait_ms=M`: long-poll the supervisor feed.
/// Waits bounded well under the HTTP client's 30 s read timeout.
fn events(sh: &Shared, query: &str) -> http::Response {
    let mut since = 0u64;
    let mut wait_ms = 5_000u64;
    for kv in query.split('&') {
        match kv.split_once('=') {
            Some(("since", v)) => since = v.parse().unwrap_or(0),
            Some(("wait_ms", v)) => wait_ms = v.parse().unwrap_or(wait_ms),
            _ => {}
        }
    }
    let (evs, last, first) = sh.feed.since(since, Duration::from_millis(wait_ms.min(10_000)));
    http::Response::json(200, EventFeed::render_json(&evs, last, first))
}

/// `GET /jobs/:id/progress`: in-flight counters, live POP efficiencies
/// (same formatter as the post-run report, so the numbers agree to the
/// last ULP), and an ETA from observed step rates — seeded by the
/// perfmodel demand curve until the first cell completes.
fn progress(sh: &Shared, id: &str) -> http::Response {
    let Ok(id) = id.parse::<u64>() else {
        return http::Response::error(400, "job id is not a number");
    };
    let store = sh.store.lock().unwrap();
    let Some(job) = store.jobs.get(&id) else {
        return http::Response::error(404, "no such job");
    };

    let steps_total: u64 = job.cells.iter().map(|c| c.scenario.config.steps as u64).sum();
    let remaining = job.remaining_steps() as u64;
    let steps_done = steps_total.saturating_sub(remaining);
    let elapsed_s = job.admitted.elapsed().as_secs_f64();
    let terminal = job.state.is_terminal();
    // Measured rate first (this job's own, then the daemon's rolling
    // median across completed cells), perfmodel prior as cold-start.
    let rate = if steps_done > 0 && elapsed_s > 0.0 {
        elapsed_s / steps_done as f64
    } else {
        sh.watchdog
            .lock()
            .unwrap()
            .step_seconds()
            .unwrap_or_else(|| model_step_seconds(job.cells.first()))
    };
    let eta_s = if terminal { 0.0 } else { remaining as f64 * rate };

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(job.id);
    w.key("name").string(&job.name);
    w.key("state").string(job.state.label());
    w.key("cell").u64(job.cur_cell as u64);
    w.key("cells").u64(job.cells.len() as u64);
    w.key("cells_done").u64(job.cells_finished() as u64);
    w.key("cells_failed").u64(job.cells_failed() as u64);
    w.key("attempt").u64(job.attempt as u64);
    w.key("retries").u64(job.retries);
    w.key("steps_total").u64(steps_total);
    w.key("steps_done").u64(steps_done);
    w.key("elapsed_s").f64(elapsed_s);
    w.key("eta_s").f64(eta_s);
    w.key("pop");
    match cfpd_telemetry::pop::report() {
        None => {
            w.begin_object().end_object();
        }
        Some(pop) => {
            w.begin_object();
            w.key("parallel_efficiency").f64(pop.parallel_efficiency);
            w.key("load_balance").f64(pop.load_balance);
            w.key("comm_efficiency").f64(pop.comm_efficiency);
            w.key("per_phase_s").begin_object();
            for (name, secs) in &pop.per_phase {
                w.key(name).f64(*secs);
            }
            w.end_object();
            w.end_object();
        }
    }
    w.end_object();
    http::Response::json(200, w.finish())
}

/// Cold-start step-rate prior from the perfmodel platform: one step's
/// particle demand retired at MareNostrum4 MPI-only speed across the
/// cell's ranks, plus one collective. Deliberately rough — it only has
/// to be finite and positive until a real cell time replaces it.
fn model_step_seconds(cell: Option<&Cell>) -> f64 {
    let platform = cfpd_perfmodel::Platform::mare_nostrum4();
    let (ranks, particles) = match cell {
        Some(c) => (c.scenario.ranks.max(1), c.scenario.config.num_particles.max(1)),
        None => (1, 1),
    };
    let speed = platform.core_speed() * ranks as f64;
    particles as f64 / speed + platform.comm_latency
}

fn submit(sh: &Shared, body: &str) -> http::Response {
    if sh.drain.load(Ordering::SeqCst) {
        let mut resp = http::Response::error(503, "draining");
        resp.headers.push(("retry-after".to_string(), "5".to_string()));
        return resp;
    }
    let spec = match CampaignSpec::from_text(body) {
        Ok(s) => s,
        Err(e) => return http::Response::error(400, &format!("bad campaign spec: {e}")),
    };
    let cells = match expand(&spec) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => return http::Response::error(400, "campaign expands to zero cells"),
        Err(e) => return http::Response::error(400, &format!("bad campaign spec: {e}")),
    };

    let mut store = sh.store.lock().unwrap();
    if store.live_jobs() >= sh.cfg.queue_cap {
        cfpd_telemetry::count!("serve.jobs_shed");
        sh.feed.post("shed", 0, "admission queue full");
        let mut resp = http::Response::error(503, "admission queue full");
        resp.headers.push(("retry-after".to_string(), "1".to_string()));
        return resp;
    }
    let id = store.next_id;
    store.next_id += 1;
    // Spec file first, then the WAL record pinning its digest: a crash
    // between the two leaves an orphan file, never a dangling record.
    if sh.gate.admit() {
        let _ = std::fs::write(wal::spec_path(&sh.cfg.data_dir, id), body);
    }
    sh.wal.append(&WalRecord::Submit {
        job: id,
        name: spec.name.clone(),
        spec_digest: digest_bytes(body.as_bytes()),
    });
    sh.feed.post("admitted", id, format!("{} ({} cells)", spec.name, cells.len()));
    store.register_job(Job::new(id, spec, cells));
    enqueue(&mut store, id);
    maybe_preempt(&mut store);
    cfpd_telemetry::count!("serve.jobs_submitted");
    drop(store);
    sh.cv.notify_all();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(id);
    w.key("state").string("queued");
    w.end_object();
    http::Response::json(201, w.finish())
}

/// Checkpoint-backed preemption policy: when the node is full and a
/// queued job is at most half the size of the largest running job,
/// flag that job to park at its next segment boundary.
fn maybe_preempt(store: &mut Store) {
    if store.arbiter.free() > 0 {
        return;
    }
    let cand = store
        .queue
        .iter()
        .filter_map(|id| store.jobs.get(id))
        .filter(|j| matches!(j.state, JobState::Queued | JobState::Checkpointed))
        .map(|j| j.remaining_steps())
        .min();
    let victim = store
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running && !j.preempt_requested)
        .max_by_key(|j| j.remaining_steps())
        .map(|j| j.id);
    if let (Some(cand_rem), Some(victim_id)) = (cand, victim) {
        let victim_rem = store.jobs[&victim_id].remaining_steps();
        if cand_rem.saturating_mul(2) <= victim_rem {
            store.jobs.get_mut(&victim_id).unwrap().preempt_requested = true;
        }
    }
}

fn with_job(
    sh: &Shared,
    id: &str,
    f: fn(&Job) -> http::Response,
) -> http::Response {
    let Ok(id) = id.parse::<u64>() else {
        return http::Response::error(400, "job id is not a number");
    };
    let store = sh.store.lock().unwrap();
    match store.jobs.get(&id) {
        Some(job) => f(job),
        None => http::Response::error(404, "no such job"),
    }
}

fn status_json(job: &Job) -> http::Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(job.id);
    w.key("name").string(&job.name);
    w.key("state").string(job.state.label());
    if let JobState::Failed(reason) = &job.state {
        w.key("error").string(reason);
    }
    w.key("cell").u64(job.cur_cell as u64);
    w.key("cells").u64(job.cells.len() as u64);
    w.key("cells_done").u64(job.cells_finished() as u64);
    w.key("cells_failed").u64(job.cells_failed() as u64);
    w.key("attempt").u64(job.attempt as u64);
    w.key("retries").u64(job.retries);
    if let Some(step) = job.recovered_resume_step {
        w.key("resumed_step").u64(step as u64);
    }
    w.end_object();
    http::Response::json(200, w.finish())
}

fn result_json(job: &Job) -> http::Response {
    match &job.state {
        JobState::Done => http::Response::json(200, job.report().render_json()),
        JobState::Failed(reason) => {
            http::Response::error(409, &format!("job failed: {reason}"))
        }
        JobState::Cancelled => http::Response::error(409, "job was cancelled"),
        other => http::Response::error(409, &format!("job is {}, not done", other.label())),
    }
}

fn cancel(sh: &Shared, id: &str) -> http::Response {
    let Ok(id) = id.parse::<u64>() else {
        return http::Response::error(400, "job id is not a number");
    };
    let mut store = sh.store.lock().unwrap();
    let Some(job) = store.jobs.get_mut(&id) else {
        return http::Response::error(404, "no such job");
    };
    let (status, state) = match job.state {
        _ if job.state.is_terminal() => {
            return http::Response::error(409, "job is already terminal")
        }
        JobState::Running => {
            // The worker owns the slot; it observes the flag at the next
            // segment boundary and cancels there.
            job.cancel_requested = true;
            (202, "cancelling")
        }
        _ => {
            sh.wal.append(&WalRecord::Cancel { job: id });
            store.set_state(id, JobState::Cancelled);
            cfpd_telemetry::count!("serve.jobs_cancelled");
            sh.feed.post("cancelled", id, "cancelled before running");
            (200, "cancelled")
        }
    };
    drop(store);
    sh.cv.notify_all();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(id);
    w.key("state").string(state);
    w.end_object();
    http::Response::json(status, w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_call;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("cfpd-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    const TINY: &str = "\
[campaign]
name = unit
[scenario]
ranks = 2
generations = 1
particles = 40
steps = 2
";

    fn poll_done(addr: &str, job: u64) -> String {
        for _ in 0..600 {
            let (code, body) =
                http_call(addr, "GET", &format!("/jobs/{job}"), "").unwrap();
            assert_eq!(code, 200, "{body}");
            if body.contains("\"state\":\"done\"") {
                let (code, body) =
                    http_call(addr, "GET", &format!("/jobs/{job}/result"), "").unwrap();
                assert_eq!(code, 200, "{body}");
                return body;
            }
            assert!(
                !body.contains("\"failed\"") && !body.contains("\"cancelled\""),
                "job went terminal the wrong way: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("job {job} never finished");
    }

    #[test]
    fn submit_run_result_round_trip_matches_direct_execution() {
        let dir = tmp_dir("basic");
        let cfg = ServeConfig { data_dir: dir.clone(), ..Default::default() };
        let daemon = Daemon::start(cfg).unwrap();
        let addr = daemon.addr().to_string();

        let (code, body) = http_call(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = http_call(&addr, "POST", "/jobs", TINY).unwrap();
        assert_eq!(code, 201, "{body}");
        let result = poll_done(&addr, 1);

        let spec = CampaignSpec::from_text(TINY).unwrap();
        let direct = cfpd_campaign::run_campaign(&spec, Some(1)).render_json();
        assert_eq!(result, direct, "served result must be byte-identical");

        let (code, _) = http_call(&addr, "POST", "/drain", "").unwrap();
        assert_eq!(code, 200);
        daemon.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_and_unknown_endpoints_are_4xx() {
        let dir = tmp_dir("errs");
        let daemon =
            Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() })
                .unwrap();
        let addr = daemon.addr().to_string();
        let (code, body) = http_call(&addr, "POST", "/jobs", "[campaign]\n").unwrap();
        assert_eq!(code, 400, "{body}");
        let (code, _) = http_call(&addr, "GET", "/jobs/999", "").unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_call(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_call(&addr, "DELETE", "/jobs/abc", "").unwrap();
        assert_eq!(code, 400);
        daemon.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
