//! The digest-guarded write-ahead log behind the job supervisor.
//!
//! Same hex-text discipline as the checkpoint codec
//! (`cfpd_core::checkpoint`): line-oriented, human-readable, every
//! record carrying an FNV-1a digest so replay can trust exactly the
//! valid prefix and ignore a torn or corrupted tail. Format:
//!
//! ```text
//! cfpd serve wal v1
//! r <seq> <digest16> <kind> key=value ...
//! ```
//!
//! `digest16` is `digest_bytes("{seq} {body}")`; `seq` starts at 1 and
//! increments by one, so replay also detects spliced or reordered
//! records. Free-form strings (names, failure reasons) are
//! percent-encoded to keep the format strictly line- and
//! space-delimited.
//!
//! All persistence — appends here, spec and snapshot files in
//! [`crate::daemon`] — funnels through a [`PersistGate`], which the
//! fault plan can freeze after N appends: from that instant nothing
//! reaches disk, which is byte-for-byte what a `kill -9` at that point
//! leaves behind. The crash-recovery sweep drives restarts through
//! every cut point without ever killing the test process.

use cfpd_testkit::digest_bytes;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub const WAL_MAGIC: &str = "cfpd serve wal v1";

/// Canonical metrics payload of a completed cell — everything the
/// canonical campaign report renders per cell, so a replayed daemon
/// reconstructs byte-identical results without re-running work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellDoneRec {
    pub digest: u64,
    pub events: u64,
    pub iters_total: u64,
    pub iters_poisson: u64,
    /// active / deposited / escaped / lost.
    pub census: [u64; 4],
    pub deposited_frac_bits: u64,
    pub lb_assembly_bits: u64,
}

/// One supervisor state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Job admitted; its spec text lives in `job-<id>.campaign` (written
    /// before this record), pinned by `spec_digest`.
    Submit { job: u64, name: String, spec_digest: u64 },
    /// A worker started (or resumed) cell `cell` of the job.
    Start { job: u64, cell: usize, attempt: u32 },
    /// Segment boundary: snapshot `job-<id>-cell-<cell>.snap` persisted
    /// (digest `snap_digest`), next unexecuted step is `step`.
    Ckpt { job: u64, cell: usize, step: usize, snap_digest: u64 },
    /// Cell finished; canonical metrics inline.
    CellDone { job: u64, cell: usize, rec: CellDoneRec },
    /// Cell failed terminally (retries exhausted / timeout).
    CellFail { job: u64, cell: usize, reason: String },
    /// Attempt failed; retrying after `backoff_ms`.
    Retry { job: u64, cell: usize, attempt: u32, backoff_ms: u64, reason: String },
    /// Job parked on its checkpoint (preemption or drain).
    Preempt { job: u64, cell: usize },
    Done { job: u64 },
    Fail { job: u64, reason: String },
    Cancel { job: u64 },
}

/// Percent-encode everything outside `[A-Za-z0-9._-]`.
pub fn enc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    if out.is_empty() {
        out.push('-'); // keep the token grid intact for empty strings
    }
    out
}

/// Inverse of [`enc`].
pub fn dec(s: &str) -> Result<String, String> {
    if s == "-" {
        return Ok(String::new());
    }
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hexpair = s
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            out.push(
                u8::from_str_radix(hexpair, 16)
                    .map_err(|e| format!("bad escape %{hexpair}: {e}"))?,
            );
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("decoded {s:?} is not UTF-8"))
}

impl WalRecord {
    /// Stable numeric kind for the flight-recorder mirror (the dump's
    /// `wal kind#<code>` events; order matches the enum).
    pub fn kind_code(&self) -> u32 {
        match self {
            WalRecord::Submit { .. } => 1,
            WalRecord::Start { .. } => 2,
            WalRecord::Ckpt { .. } => 3,
            WalRecord::CellDone { .. } => 4,
            WalRecord::CellFail { .. } => 5,
            WalRecord::Retry { .. } => 6,
            WalRecord::Preempt { .. } => 7,
            WalRecord::Done { .. } => 8,
            WalRecord::Fail { .. } => 9,
            WalRecord::Cancel { .. } => 10,
        }
    }

    /// The record's subject job.
    pub fn job_id(&self) -> u64 {
        match self {
            WalRecord::Submit { job, .. }
            | WalRecord::Start { job, .. }
            | WalRecord::Ckpt { job, .. }
            | WalRecord::CellDone { job, .. }
            | WalRecord::CellFail { job, .. }
            | WalRecord::Retry { job, .. }
            | WalRecord::Preempt { job, .. }
            | WalRecord::Done { job }
            | WalRecord::Fail { job, .. }
            | WalRecord::Cancel { job } => *job,
        }
    }

    /// The space-delimited record body (everything after the digest).
    pub fn render_body(&self) -> String {
        match self {
            WalRecord::Submit { job, name, spec_digest } => {
                format!("submit job={job} name={} spec={spec_digest:016x}", enc(name))
            }
            WalRecord::Start { job, cell, attempt } => {
                format!("start job={job} cell={cell} attempt={attempt}")
            }
            WalRecord::Ckpt { job, cell, step, snap_digest } => {
                format!("ckpt job={job} cell={cell} step={step} snap={snap_digest:016x}")
            }
            WalRecord::CellDone { job, cell, rec } => format!(
                "celldone job={job} cell={cell} digest={:016x} events={} iters={} \
                 itersp={} ca={} cd={} ce={} cl={} dfrac={:016x} lb={:016x}",
                rec.digest,
                rec.events,
                rec.iters_total,
                rec.iters_poisson,
                rec.census[0],
                rec.census[1],
                rec.census[2],
                rec.census[3],
                rec.deposited_frac_bits,
                rec.lb_assembly_bits,
            ),
            WalRecord::CellFail { job, cell, reason } => {
                format!("cellfail job={job} cell={cell} reason={}", enc(reason))
            }
            WalRecord::Retry { job, cell, attempt, backoff_ms, reason } => format!(
                "retry job={job} cell={cell} attempt={attempt} backoff_ms={backoff_ms} \
                 reason={}",
                enc(reason),
            ),
            WalRecord::Preempt { job, cell } => format!("preempt job={job} cell={cell}"),
            WalRecord::Done { job } => format!("done job={job}"),
            WalRecord::Fail { job, reason } => {
                format!("fail job={job} reason={}", enc(reason))
            }
            WalRecord::Cancel { job } => format!("cancel job={job}"),
        }
    }

    /// Parse a record body.
    pub fn parse_body(body: &str) -> Result<WalRecord, String> {
        let mut toks = body.split(' ');
        let kind = toks.next().ok_or("empty record body")?;
        let mut kv = std::collections::BTreeMap::new();
        for tok in toks {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("token {tok:?} is not key=value"))?;
            kv.insert(k, v);
        }
        let get = |k: &str| -> Result<&str, String> {
            kv.get(k).copied().ok_or_else(|| format!("{kind}: missing {k}="))
        };
        let int = |k: &str| -> Result<u64, String> {
            get(k)?.parse::<u64>().map_err(|e| format!("{kind}: bad {k}: {e}"))
        };
        let hex = |k: &str| -> Result<u64, String> {
            u64::from_str_radix(get(k)?, 16).map_err(|e| format!("{kind}: bad {k}: {e}"))
        };
        Ok(match kind {
            "submit" => WalRecord::Submit {
                job: int("job")?,
                name: dec(get("name")?)?,
                spec_digest: hex("spec")?,
            },
            "start" => WalRecord::Start {
                job: int("job")?,
                cell: int("cell")? as usize,
                attempt: int("attempt")? as u32,
            },
            "ckpt" => WalRecord::Ckpt {
                job: int("job")?,
                cell: int("cell")? as usize,
                step: int("step")? as usize,
                snap_digest: hex("snap")?,
            },
            "celldone" => WalRecord::CellDone {
                job: int("job")?,
                cell: int("cell")? as usize,
                rec: CellDoneRec {
                    digest: hex("digest")?,
                    events: int("events")?,
                    iters_total: int("iters")?,
                    iters_poisson: int("itersp")?,
                    census: [int("ca")?, int("cd")?, int("ce")?, int("cl")?],
                    deposited_frac_bits: hex("dfrac")?,
                    lb_assembly_bits: hex("lb")?,
                },
            },
            "cellfail" => WalRecord::CellFail {
                job: int("job")?,
                cell: int("cell")? as usize,
                reason: dec(get("reason")?)?,
            },
            "retry" => WalRecord::Retry {
                job: int("job")?,
                cell: int("cell")? as usize,
                attempt: int("attempt")? as u32,
                backoff_ms: int("backoff_ms")?,
                reason: dec(get("reason")?)?,
            },
            "preempt" => {
                WalRecord::Preempt { job: int("job")?, cell: int("cell")? as usize }
            }
            "done" => WalRecord::Done { job: int("job")? },
            "fail" => WalRecord::Fail { job: int("job")?, reason: dec(get("reason")?)? },
            "cancel" => WalRecord::Cancel { job: int("job")? },
            other => return Err(format!("unknown record kind {other:?}")),
        })
    }
}

/// Freezes all persistence after a budgeted number of WAL appends —
/// the crash simulator. `u64::MAX` budget means unlimited.
#[derive(Debug)]
pub struct PersistGate {
    budget: AtomicU64,
    frozen: AtomicBool,
}

impl PersistGate {
    pub fn unlimited() -> Arc<PersistGate> {
        Arc::new(PersistGate { budget: AtomicU64::new(u64::MAX), frozen: AtomicBool::new(false) })
    }

    /// Freeze after `n` more admitted appends (0 freezes immediately).
    pub fn kill_after(n: u64) -> Arc<PersistGate> {
        Arc::new(PersistGate { budget: AtomicU64::new(n), frozen: AtomicBool::new(false) })
    }

    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Consume one persistence slot; `false` once frozen.
    pub fn admit(&self) -> bool {
        if self.frozen() {
            return false;
        }
        let mut cur = self.budget.load(Ordering::Relaxed);
        if cur == u64::MAX {
            return true;
        }
        loop {
            if cur == 0 {
                self.frozen.store(true, Ordering::Release);
                return false;
            }
            match self.budget.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

/// Append handle over the WAL file. Replay happens before opening
/// ([`replay`]), which also truncates any corrupt tail so appends
/// always extend a valid prefix.
pub struct Wal {
    file: Mutex<File>,
    seq: AtomicU64,
    gate: Arc<PersistGate>,
}

impl Wal {
    /// Rewrite `path` to exactly the replayed valid prefix (atomic
    /// tmp+rename) and open it for appending; `next_seq` continues the
    /// record numbering.
    pub fn open(
        path: &Path,
        valid_text: &str,
        next_seq: u64,
        gate: Arc<PersistGate>,
    ) -> std::io::Result<Wal> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{WAL_MAGIC}\n{valid_text}"))?;
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Wal { file: Mutex::new(file), seq: AtomicU64::new(next_seq), gate })
    }

    /// Append one record. `false` means the gate is frozen (simulated
    /// crash): nothing was written and nothing later will be.
    pub fn append(&self, rec: &WalRecord) -> bool {
        // Serialize concurrent appenders first so the gate's budget maps
        // to a deterministic on-disk prefix.
        let mut file = self.file.lock().unwrap();
        if !self.gate.admit() {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let body = rec.render_body();
        let digest = digest_bytes(format!("{seq} {body}").as_bytes());
        let line = format!("r {seq} {digest:016x} {body}\n");
        let ok = file.write_all(line.as_bytes()).and_then(|_| file.flush()).is_ok();
        if ok {
            cfpd_telemetry::count!("serve.wal_appends");
            // Mirror the append into the flight ring so a post-mortem
            // dump's tail lines up with the WAL's final records.
            cfpd_flight::record(
                cfpd_flight::EventKind::Wal,
                rec.job_id() as u32,
                rec.kind_code(),
                seq,
                0,
            );
        }
        ok
    }
}

/// Result of scanning a WAL file.
pub struct Replay {
    /// The valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Raw text of the valid records (header excluded) — [`Wal::open`]
    /// rewrites the file to exactly this.
    pub valid_text: String,
    /// Sequence number the next append should use.
    pub next_seq: u64,
    /// Whether a corrupt/torn tail was discarded.
    pub corrupt_tail: bool,
}

/// Scan a WAL file, stopping at the first record whose digest or
/// sequence number does not verify. A missing file is an empty (fresh)
/// log; a missing or wrong magic line discards everything.
pub fn replay(path: &Path) -> Replay {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut records = Vec::new();
    let mut valid_text = String::new();
    let mut expected_seq = 1u64;
    let mut corrupt_tail = false;
    let mut lines = text.lines();
    match lines.next() {
        None => {}
        Some(WAL_MAGIC) => {
            for line in lines {
                match verify_line(line, expected_seq) {
                    Ok(rec) => {
                        records.push(rec);
                        valid_text.push_str(line);
                        valid_text.push('\n');
                        expected_seq += 1;
                    }
                    Err(_) => {
                        corrupt_tail = true;
                        break;
                    }
                }
            }
        }
        Some(_) => corrupt_tail = true,
    }
    cfpd_telemetry::count!("serve.wal_replayed", records.len() as u64);
    Replay { records, valid_text, next_seq: expected_seq, corrupt_tail }
}

fn verify_line(line: &str, expected_seq: u64) -> Result<WalRecord, String> {
    let rest = line.strip_prefix("r ").ok_or("not a record line")?;
    let (seq_tok, rest) = rest.split_once(' ').ok_or("missing digest")?;
    let (digest_tok, body) = rest.split_once(' ').ok_or("missing body")?;
    let seq: u64 = seq_tok.parse().map_err(|_| "bad seq")?;
    if seq != expected_seq {
        return Err(format!("sequence gap: expected {expected_seq}, found {seq}"));
    }
    let stated = u64::from_str_radix(digest_tok, 16).map_err(|_| "bad digest")?;
    let actual = digest_bytes(format!("{seq} {body}").as_bytes());
    if stated != actual {
        return Err("record digest mismatch".to_string());
    }
    WalRecord::parse_body(body)
}

/// Spec file path for a job id.
pub fn spec_path(dir: &Path, job: u64) -> PathBuf {
    dir.join(format!("job-{job}.campaign"))
}

/// Snapshot file path for a (job, cell).
pub fn snap_path(dir: &Path, job: u64, cell: usize) -> PathBuf {
    dir.join(format!("job-{job}-cell-{cell}.snap"))
}

/// Post-mortem flight-recorder dump path for a job (next to its WAL).
pub fn flight_path(dir: &Path, job: u64) -> PathBuf {
    dir.join(format!("job-{job}.flight"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Submit { job: 1, name: "tiny run #1".into(), spec_digest: 0xabc },
            WalRecord::Start { job: 1, cell: 0, attempt: 0 },
            WalRecord::Ckpt { job: 1, cell: 0, step: 2, snap_digest: 0xdef },
            WalRecord::Retry {
                job: 1,
                cell: 0,
                attempt: 1,
                backoff_ms: 50,
                reason: "injected: seeded crash (50%)".into(),
            },
            WalRecord::CellDone {
                job: 1,
                cell: 0,
                rec: CellDoneRec {
                    digest: 0x1122,
                    events: 30,
                    iters_total: 400,
                    iters_poisson: 100,
                    census: [10, 20, 30, 0],
                    deposited_frac_bits: 0.25f64.to_bits(),
                    lb_assembly_bits: 1.0f64.to_bits(),
                },
            },
            WalRecord::CellFail { job: 1, cell: 1, reason: "timeout: exceeded 1s".into() },
            WalRecord::Preempt { job: 1, cell: 2 },
            WalRecord::Done { job: 1 },
            WalRecord::Fail { job: 2, reason: "deadline exceeded".into() },
            WalRecord::Cancel { job: 3 },
        ]
    }

    #[test]
    fn record_bodies_round_trip() {
        for rec in sample_records() {
            let body = rec.render_body();
            assert_eq!(WalRecord::parse_body(&body).expect(&body), rec, "{body}");
        }
    }

    #[test]
    fn enc_dec_round_trips_hostile_strings() {
        for s in ["", "plain", "with space", "näme\n=x%", "a=b c=d"] {
            assert_eq!(dec(&enc(s)).unwrap(), s);
        }
        assert!(!enc("a b").contains(' '));
        assert!(!enc("k=v").contains('='));
    }

    #[test]
    fn append_replay_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("cfpd-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let wal = Wal::open(&path, "", 1, PersistGate::unlimited()).unwrap();
        let records = sample_records();
        for rec in &records {
            assert!(wal.append(rec));
        }
        drop(wal);
        let rp = replay(&path);
        assert_eq!(rp.records, records);
        assert!(!rp.corrupt_tail);
        assert_eq!(rp.next_seq, records.len() as u64 + 1);

        // Flip one digest nibble in the middle: replay keeps the prefix.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let mid = 1 + records.len() / 2;
        lines[mid] = {
            let mut l = lines[mid].clone();
            let at = 10;
            let orig = l.as_bytes()[at];
            let flip = if orig == b'0' { '1' } else { '0' };
            l.replace_range(at..at + 1, &flip.to_string());
            l
        };
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let rp = replay(&path);
        assert!(rp.corrupt_tail);
        assert!(rp.records.len() < records.len());
        assert_eq!(rp.records[..], records[..rp.records.len()]);

        // Reopening truncates the corrupt tail; appends extend cleanly.
        let wal = Wal::open(&path, &rp.valid_text, rp.next_seq, PersistGate::unlimited())
            .unwrap();
        assert!(wal.append(&WalRecord::Done { job: 9 }));
        drop(wal);
        let rp2 = replay(&path);
        assert!(!rp2.corrupt_tail);
        assert_eq!(rp2.records.len(), rp.records.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_gate_freezes_the_log_mid_flight() {
        let dir = std::env::temp_dir().join(format!("cfpd-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let gate = PersistGate::kill_after(2);
        let wal = Wal::open(&path, "", 1, Arc::clone(&gate)).unwrap();
        assert!(wal.append(&WalRecord::Done { job: 1 }));
        assert!(wal.append(&WalRecord::Done { job: 2 }));
        assert!(!wal.append(&WalRecord::Done { job: 3 }), "third append must freeze");
        assert!(gate.frozen());
        assert!(!wal.append(&WalRecord::Done { job: 4 }));
        drop(wal);
        let rp = replay(&path);
        assert_eq!(rp.records.len(), 2, "disk holds exactly the pre-freeze prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
