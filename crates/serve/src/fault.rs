//! Seeded fault plan for the serving layer — the job-level analogue of
//! `cfpd_simmpi`'s chaos fabric. Everything is a pure function of
//! `(seed, job, cell, attempt)`, so a failing resilience sweep replays
//! exactly from its seed.

use cfpd_testkit::SplitMix64;

/// What the fault plan does to one cell attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    None,
    /// The worker "crashes": the attempt fails immediately (exercises
    /// the retry/backoff path).
    Crash,
    /// The cell goes stuck for `ServeFaultPlan::stall_ms` (exercises the
    /// per-segment wall-clock budget).
    Stall,
}

/// Deterministic fault injection plan for `cfpd serve`.
///
/// The interesting member for crash-recovery testing is
/// `freeze_wal_after`: after that many persisted appends the daemon's
/// persistence gate freezes — WAL, snapshots and spec files all stop
/// reaching disk, which is exactly the on-disk state a `kill -9` at
/// that instant leaves. The resilience suite sweeps the cut point over
/// every prefix and restarts from the leftovers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    pub seed: u64,
    /// Crash the first N attempts of every cell (deterministic retry
    /// exercise; the (N+1)-th attempt runs clean).
    pub crash_first_attempts: u32,
    /// After the forced crashes, crash ~X/1000 of attempts, seeded.
    pub crash_per_mille: u16,
    /// Stall the first N post-crash attempts of every cell...
    pub stall_first_attempts: u32,
    /// ...for this long.
    pub stall_ms: u64,
    /// Freeze all persistence after this many admitted appends.
    pub freeze_wal_after: Option<u64>,
}

impl ServeFaultPlan {
    /// Decide the fate of one `(job, cell, attempt)`.
    pub fn decide(&self, job: u64, cell: u64, attempt: u32) -> CellFault {
        if attempt < self.crash_first_attempts {
            return CellFault::Crash;
        }
        if attempt < self.crash_first_attempts + self.stall_first_attempts {
            return CellFault::Stall;
        }
        if self.crash_per_mille > 0 {
            // Mix the coordinates through SplitMix64 so neighbouring
            // (job, cell, attempt) triples draw independent values.
            let mut rng = SplitMix64::new(
                self.seed ^ job.rotate_left(17) ^ cell.rotate_left(34) ^ (attempt as u64) << 51,
            );
            if rng.next_u64() % 1000 < self.crash_per_mille as u64 {
                return CellFault::Crash;
            }
        }
        CellFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_faults_come_in_declared_order() {
        let plan = ServeFaultPlan {
            crash_first_attempts: 2,
            stall_first_attempts: 1,
            stall_ms: 5,
            ..Default::default()
        };
        assert_eq!(plan.decide(1, 0, 0), CellFault::Crash);
        assert_eq!(plan.decide(1, 0, 1), CellFault::Crash);
        assert_eq!(plan.decide(1, 0, 2), CellFault::Stall);
        assert_eq!(plan.decide(1, 0, 3), CellFault::None);
    }

    #[test]
    fn seeded_crashes_are_deterministic_and_roughly_calibrated() {
        let plan = ServeFaultPlan { seed: 42, crash_per_mille: 250, ..Default::default() };
        let count = |p: &ServeFaultPlan| {
            (0..1000u64)
                .filter(|&j| p.decide(j, j % 7, 0) == CellFault::Crash)
                .count()
        };
        let a = count(&plan);
        assert_eq!(a, count(&plan), "same seed, same fates");
        assert!((150..350).contains(&a), "~25% of 1000 attempts, got {a}");
        let other = ServeFaultPlan { seed: 43, ..plan };
        assert_ne!(
            (0..1000u64).map(|j| plan.decide(j, 0, 0)).collect::<Vec<_>>(),
            (0..1000u64).map(|j| other.decide(j, 0, 0)).collect::<Vec<_>>(),
            "different seeds draw different fates"
        );
    }

    #[test]
    fn zero_plan_is_inert() {
        let plan = ServeFaultPlan::default();
        for j in 0..50 {
            assert_eq!(plan.decide(j, 0, 0), CellFault::None);
        }
    }
}
