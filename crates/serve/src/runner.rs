//! Segment execution for the daemon: run a slice `[start, stop_after)`
//! of a scenario via `RunOptions::stop_after`, and stitch finished
//! segments back into the canonical cell metrics.
//!
//! The byte-identity contract: for any segmentation of `0..steps`, the
//! concatenated golden event text plus the final census render to the
//! same document (and therefore the same digest) as one uninterrupted
//! run. The core guarantees the event stream ([`cfpd_core::golden`]
//! renders events segment-independently); this module is just careful
//! bookkeeping on top.

use crate::snap::CellAcc;
use cfpd_campaign::{CellMetrics, WallMetrics};
use cfpd_campaign::Cell;
use cfpd_core::{
    render_golden_events, render_golden_header, render_golden_summary, run_simulation_opts,
    Checkpoint, RunOptions, Scenario,
};
use cfpd_particles::ParticleCensus;
use cfpd_testkit::digest_bytes;
use std::sync::Arc;

/// Outcome of one segment run.
pub struct SegmentOut {
    /// Golden event lines of this segment only.
    pub events_text: String,
    /// The run's logical events (for the accumulator).
    pub logical: Vec<cfpd_core::LogicalEvent>,
    /// Census after the segment (only meaningful when `done`).
    pub census: ParticleCensus,
    /// The parked physics state (`None` when the cell finished).
    pub checkpoint: Option<Checkpoint>,
    pub done: bool,
}

/// Can this scenario run as a resumable segment chain? Mirrors the
/// core's checkpoint preconditions: synchronous mode, single-threaded
/// ranks, no DLB, no chaos. Anything else runs atomically (still
/// supervised and retried, just not preempted mid-flight).
pub fn checkpointable(s: &Scenario) -> bool {
    s.config.mode == cfpd_core::ExecutionMode::Synchronous
        && s.threads == 1
        && !s.opts.dlb
        && s.opts.fault.is_none()
}

/// Run steps `[restore.next_step, stop_after)` of the scenario (from
/// step 0 when `restore` is `None`; to completion when `stop_after`
/// is `None` or `>= steps`).
pub fn run_segment(
    s: &Scenario,
    restore: Option<Arc<Checkpoint>>,
    stop_after: Option<usize>,
) -> SegmentOut {
    let stop_after = stop_after.filter(|&k| k < s.config.steps);
    let opts = RunOptions { restore, stop_after, ..s.opts.clone() };
    let result = run_simulation_opts(&s.config, s.ranks, s.threads, &opts);
    SegmentOut {
        events_text: render_golden_events(&result.logical),
        logical: result.logical,
        census: result.census,
        done: stop_after.is_none(),
        checkpoint: result.checkpoint,
    }
}

/// Stitch a finished cell back into [`CellMetrics`] — the same numbers
/// `cfpd_campaign::cell_metrics` computes from an uninterrupted run.
/// Wall-clock metrics are zeroed: a resumed cell's wall time spans
/// daemon restarts and means nothing; the canonical report never
/// renders them, so the JSON stays byte-identical.
pub fn finish_cell_metrics(
    cell: &Cell,
    acc: &CellAcc,
    events_text: &str,
    census: &ParticleCensus,
) -> CellMetrics {
    let doc = format!(
        "{}{}{}",
        render_golden_header(&cell.scenario.config, cell.scenario.ranks),
        events_text,
        render_golden_summary(census),
    );
    let c = census;
    let total = c.active + c.deposited + c.escaped + c.lost;
    let deposited_frac = if total == 0 { 0.0 } else { c.deposited as f64 / total as f64 };
    CellMetrics {
        id: cell.id.clone(),
        axes: cell.axes.clone(),
        digest: digest_bytes(doc.as_bytes()),
        events: acc.events,
        iters_total: acc.iters_total,
        iters_poisson: acc.iters_poisson,
        census: [c.active as u64, c.deposited as u64, c.escaped as u64, c.lost as u64],
        deposited_frac_bits: deposited_frac.to_bits(),
        lb_assembly_bits: acc.lb_assembly().to_bits(),
        wall: WallMetrics {
            total_time: 0.0,
            parallel_efficiency: 0.0,
            load_balance: 0.0,
            comm_efficiency: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_campaign::{cell_metrics, expand, CampaignSpec};
    use cfpd_core::run_scenario;

    const TINY: &str = "\
[campaign]
name = seg
[scenario]
ranks = 2
generations = 1
particles = 40
steps = 3
";

    #[test]
    fn segment_chain_matches_the_uninterrupted_run_bit_for_bit() {
        let spec = CampaignSpec::from_text(TINY).unwrap();
        let cells = expand(&spec).unwrap();
        let cell = &cells[0];
        assert!(checkpointable(&cell.scenario));

        // Uninterrupted reference.
        let whole = run_scenario(&cell.scenario);
        let want = cell_metrics(cell, &whole);

        // Segment chain with a boundary after every step, snapshots
        // round-tripped through text like the daemon does.
        let mut acc = CellAcc::default();
        let mut events = String::new();
        let mut restore: Option<Arc<Checkpoint>> = None;
        let mut census = None;
        for stop in [Some(1), Some(2), None] {
            let seg = run_segment(&cell.scenario, restore.take(), stop);
            acc.absorb(&seg.logical);
            events.push_str(&seg.events_text);
            if seg.done {
                census = Some(seg.census);
            } else {
                let cp = seg.checkpoint.expect("parked segment yields a checkpoint");
                let cp = Checkpoint::from_text(&cp.to_text()).expect("codec round-trip");
                restore = Some(Arc::new(cp));
            }
        }
        let got = finish_cell_metrics(cell, &acc, &events, &census.unwrap());
        assert_eq!(got.digest, want.digest, "stitched digest differs");
        assert_eq!(got.events, want.events);
        assert_eq!(got.iters_total, want.iters_total);
        assert_eq!(got.iters_poisson, want.iters_poisson);
        assert_eq!(got.census, want.census);
        assert_eq!(got.deposited_frac_bits, want.deposited_frac_bits);
        assert_eq!(got.lb_assembly_bits, want.lb_assembly_bits);
    }
}
