//! # cfpd-serve — crash-safe multi-tenant job daemon
//!
//! The ROADMAP's serving layer: a long-lived HTTP/1.1 daemon (`cfpd
//! serve`) that accepts `.campaign` specs as jobs, runs them on a
//! bounded worker pool, and — the robustness core — survives being
//! killed at *any* instant without losing or corrupting work:
//!
//! * [`wal`] — every job state transition is appended to a
//!   digest-guarded write-ahead log in the checkpoint codec's hex-text
//!   style; a restarted daemon replays the valid prefix and carries on;
//! * [`snap`] — per-cell progress snapshots: the partial golden event
//!   text, a metrics accumulator and a full `cfpd_core::checkpoint`,
//!   atomically written at every segment boundary, so an interrupted
//!   cell resumes *bit-identically* (the stitched result digest equals
//!   the uninterrupted run's, pinned against
//!   `tests/golden/campaign_small.golden`);
//! * [`state`] + [`daemon`] — the supervisor: job state machine
//!   (submitted → running → checkpointed → done/failed/cancelled),
//!   deadline budgets, bounded seeded exponential-backoff retry,
//!   checkpoint-backed **preemption** (pause a long job to admit a
//!   short one — `cfpd_dlb::JobArbiter` extends LeWI lending from
//!   ranks-within-a-run to jobs-within-a-node), and graceful overload
//!   degradation: a bounded admission queue that sheds with
//!   `503 + Retry-After`, and drain shutdown that checkpoints running
//!   jobs before exit;
//! * [`http`] — the dependency-free HTTP substrate (std `TcpListener`,
//!   thread-per-connection over a bounded accept pool) plus the tiny
//!   blocking client the CLI verbs and tests use;
//! * [`prom`] — a strict Prometheus text-format lint for `/metrics`;
//! * [`fault`] — `ServeFaultPlan`: seeded worker crashes, stuck cells
//!   and simulated mid-job daemon kills (a persistence gate freezes the
//!   WAL and snapshot files mid-flight, leaving the disk exactly as a
//!   real `kill -9` would).
//!
//! The `cfpd` binary lives here (top of the crate DAG) so `cfpd serve`
//! can reach the campaign engine without a dependency cycle.

pub mod daemon;
pub mod fault;
pub mod feed;
pub mod http;
pub mod prom;
pub mod runner;
pub mod snap;
pub mod state;
pub mod wal;
pub mod watchdog;

pub use daemon::{Daemon, ServeConfig};
pub use fault::{CellFault, ServeFaultPlan};
pub use feed::{EventFeed, FeedEvent};
pub use http::{http_call, Request, Response};
pub use prom::lint_prometheus;
pub use snap::{CellAcc, CellSnapshot};
pub use state::{Job, JobState};
pub use wal::{PersistGate, Wal, WalRecord};
