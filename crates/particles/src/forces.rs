//! Particle force models of §2.1: drag with Ganser's drag-coefficient
//! correlation (eq. 8), gravity (eq. 4) and buoyancy (eq. 5).

use cfpd_mesh::Vec3;

/// Properties of one aerosol particle species.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleProps {
    /// Diameter d_p [m]. Therapeutic aerosols: 1–10 µm.
    pub diameter: f64,
    /// Density ρ_p [kg/m³]. Water-like droplets ≈ 1000.
    pub density: f64,
}

impl ParticleProps {
    /// Particle mass m_p = ρ_p π d³/6.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.density * std::f64::consts::PI * self.diameter.powi(3) / 6.0
    }
}

impl Default for ParticleProps {
    fn default() -> Self {
        // 5 µm water droplet — a typical inhaled-drug aerosol size.
        ParticleProps { diameter: 5e-6, density: 1000.0 }
    }
}

/// Particle Reynolds number (eq. 7): `Re_p = ρ_f d_p |u_f − u_p| / µ_f`.
#[inline]
pub fn particle_reynolds(
    fluid_density: f64,
    fluid_viscosity: f64,
    diameter: f64,
    rel_speed: f64,
) -> f64 {
    fluid_density * diameter * rel_speed / fluid_viscosity
}

/// Ganser's drag coefficient for spherical particles (eq. 8):
/// `C_D = 24/Re [1 + 0.1118 Re^0.6567] + 0.4305 / (1 + 3305/Re)`.
///
/// As Re → 0 this recovers Stokes drag (C_D → 24/Re).
#[inline]
pub fn ganser_cd(re: f64) -> f64 {
    let re = re.max(1e-12);
    24.0 / re * (1.0 + 0.1118 * re.powf(0.6567)) + 0.4305 / (1.0 + 3305.0 / re)
}

/// Drag force (eq. 6): `F_D = (π/8) µ_f d_p C_D Re_p (u_f − u_p)`.
#[inline]
pub fn drag_force(
    fluid_density: f64,
    fluid_viscosity: f64,
    props: ParticleProps,
    fluid_vel: Vec3,
    particle_vel: Vec3,
) -> Vec3 {
    let rel = fluid_vel - particle_vel;
    let speed = rel.norm();
    if speed < 1e-300 {
        return Vec3::ZERO;
    }
    let re = particle_reynolds(fluid_density, fluid_viscosity, props.diameter, speed);
    let cd = ganser_cd(re);
    rel * (std::f64::consts::PI / 8.0 * fluid_viscosity * props.diameter * cd * re)
}

/// Gravity (eq. 4): `F_g = m_p g` with g pointing in `gravity_dir`.
#[inline]
pub fn gravity_force(props: ParticleProps, gravity: Vec3) -> Vec3 {
    gravity * props.mass()
}

/// Buoyancy (eq. 5): `F_b = −m_p g ρ_f/ρ_p`.
#[inline]
pub fn buoyancy_force(props: ParticleProps, fluid_density: f64, gravity: Vec3) -> Vec3 {
    -gravity * (props.mass() * fluid_density / props.density)
}

/// Total force (eq. 3 RHS): drag + gravity + buoyancy.
#[inline]
pub fn total_force(
    fluid_density: f64,
    fluid_viscosity: f64,
    props: ParticleProps,
    fluid_vel: Vec3,
    particle_vel: Vec3,
    gravity: Vec3,
) -> Vec3 {
    drag_force(fluid_density, fluid_viscosity, props, fluid_vel, particle_vel)
        + gravity_force(props, gravity)
        + buoyancy_force(props, fluid_density, gravity)
}

/// Analytic terminal (settling) velocity in the Stokes regime:
/// `v_t = (ρ_p − ρ_f) g d² / (18 µ)` — used to validate the force model.
pub fn stokes_terminal_velocity(
    props: ParticleProps,
    fluid_density: f64,
    fluid_viscosity: f64,
    g: f64,
) -> f64 {
    (props.density - fluid_density) * g * props.diameter * props.diameter
        / (18.0 * fluid_viscosity)
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIR_RHO: f64 = 1.14;
    const AIR_MU: f64 = 1.9e-5;

    #[test]
    fn ganser_recovers_stokes_at_low_re() {
        for re in [1e-6, 1e-4, 1e-3] {
            let cd = ganser_cd(re);
            let stokes = 24.0 / re;
            assert!(
                (cd - stokes).abs() / stokes < 1e-2,
                "Re={re}: Cd={cd} vs Stokes={stokes}"
            );
        }
    }

    #[test]
    fn ganser_cd_monotone_decreasing_at_small_re() {
        let mut prev = f64::INFINITY;
        let mut re = 1e-4;
        while re < 1e2 {
            let cd = ganser_cd(re);
            assert!(cd < prev, "Cd must decrease with Re in this range (Re={re})");
            prev = cd;
            re *= 10.0;
        }
    }

    #[test]
    fn ganser_approaches_newton_regime() {
        // At high Re, Cd approaches ~0.43 plus the residual 24/Re term.
        let cd = ganser_cd(1e6);
        assert!(cd > 0.4 && cd < 1.0, "Cd(1e6) = {cd}");
    }

    #[test]
    fn drag_opposes_relative_velocity() {
        let props = ParticleProps::default();
        let f = drag_force(
            AIR_RHO,
            AIR_MU,
            props,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        );
        assert!(f.x < 0.0, "drag must pull the particle toward the fluid velocity");
        assert_eq!(f.y, 0.0);
    }

    #[test]
    fn stokes_drag_magnitude_matches_analytic() {
        // In the Stokes regime F = 3 π µ d (u_f − u_p).
        let props = ParticleProps { diameter: 1e-6, density: 1000.0 };
        let rel = 1e-4; // tiny slip => Re ~ 6e-9, firmly Stokes
        let f = drag_force(AIR_RHO, AIR_MU, props, Vec3::new(rel, 0.0, 0.0), Vec3::ZERO);
        let analytic = 3.0 * std::f64::consts::PI * AIR_MU * props.diameter * rel;
        assert!(
            (f.x - analytic).abs() / analytic < 1e-2,
            "{} vs {}",
            f.x,
            analytic
        );
    }

    #[test]
    fn gravity_and_buoyancy_balance_for_neutral_density() {
        let props = ParticleProps { diameter: 1e-6, density: AIR_RHO };
        let g = Vec3::new(0.0, 0.0, -9.81);
        let sum = gravity_force(props, g) + buoyancy_force(props, AIR_RHO, g);
        assert!(sum.norm() < 1e-25);
    }

    #[test]
    fn mass_of_water_droplet() {
        let props = ParticleProps { diameter: 1e-3, density: 1000.0 };
        // 1 mm water droplet: m = 1000 * pi/6 * 1e-9 kg ≈ 5.236e-7 kg.
        assert!((props.mass() - 5.235_987_755_982_989e-7).abs() < 1e-12);
    }

    #[test]
    fn settling_reaches_stokes_terminal_velocity() {
        // Explicitly integrate a particle falling in still air; its speed
        // must converge to the analytic Stokes terminal velocity (valid
        // because Re stays << 1 for a 5 µm droplet).
        let props = ParticleProps::default();
        let g = Vec3::new(0.0, 0.0, -9.81);
        let mut v = Vec3::ZERO;
        let dt = 1e-5;
        for _ in 0..20_000 {
            let f = total_force(AIR_RHO, AIR_MU, props, Vec3::ZERO, v, g);
            v += f * (dt / props.mass());
        }
        let vt = stokes_terminal_velocity(props, AIR_RHO, AIR_MU, 9.81);
        assert!(
            (v.z.abs() - vt).abs() / vt < 0.02,
            "terminal {} vs analytic {}",
            v.z.abs(),
            vt
        );
    }
}
