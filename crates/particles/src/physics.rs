//! Extended transport physics beyond the paper's baseline force set
//! (drag + gravity + buoyancy): Saffman shear lift, Brownian motion for
//! sub-micron aerosols, and the discrete-random-walk turbulent
//! dispersion model used by the stochastic airway studies the paper
//! cites (Ghahramani et al., ref. [13]). All optional and off by
//! default, so the baseline reproduction stays exactly the paper's
//! model.

use crate::forces::ParticleProps;
use cfpd_mesh::Vec3;
use cfpd_testkit::rng::Rng;

/// Boltzmann constant [J/K].
const K_BOLTZMANN: f64 = 1.380_649e-23;

/// Optional force/transport extensions.
#[derive(Debug, Clone, Copy)]
pub struct TransportModel {
    /// Saffman–Mei shear-induced lift.
    pub saffman_lift: bool,
    /// Brownian force at the given absolute temperature [K]
    /// (significant for d ≲ 0.5 µm).
    pub brownian_temperature: Option<f64>,
    /// Discrete-random-walk turbulent dispersion with the given
    /// turbulence intensity (u'/|u|, typically 0.05–0.2 in airways).
    pub turbulence_intensity: Option<f64>,
}

impl Default for TransportModel {
    fn default() -> Self {
        // The paper's baseline: no extensions.
        TransportModel {
            saffman_lift: false,
            brownian_temperature: None,
            turbulence_intensity: None,
        }
    }
}

impl TransportModel {
    /// The paper's force set (eqs. 3–8) only.
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// Everything on — for sub-micron pollutant studies.
    pub fn extended() -> Self {
        TransportModel {
            saffman_lift: true,
            brownian_temperature: Some(310.0), // body temperature
            turbulence_intensity: Some(0.1),
        }
    }
}

/// Deterministic per-particle random stream for the stochastic terms.
#[derive(Debug)]
pub struct DispersionRng {
    rng: Rng,
}

impl DispersionRng {
    pub fn new(seed: u64) -> Self {
        DispersionRng { rng: Rng::new(seed) }
    }

    /// Standard-normal 3-vector (Box–Muller on uniform draws).
    pub fn gaussian3(&mut self) -> Vec3 {
        let mut pair = || {
            let u1: f64 = self.rng.f64().max(1e-12);
            let u2: f64 = self.rng.f64();
            let r = (-2.0 * u1.ln()).sqrt();
            (r * (std::f64::consts::TAU * u2).cos(), r * (std::f64::consts::TAU * u2).sin())
        };
        let (a, b) = pair();
        let (c, _) = pair();
        Vec3::new(a, b, c)
    }
}

/// Saffman–Mei lift force for a sphere in a linear shear:
/// `F_L = 1.615 µ d |u_rel| sqrt(Re_G) sign-corrected direction`,
/// with the shear Reynolds number `Re_G = ρ d² |ω| / µ` and the
/// direction `(u_rel × ω) / |u_rel × ω|`.
pub fn saffman_lift(
    fluid_density: f64,
    fluid_viscosity: f64,
    props: ParticleProps,
    rel_velocity: Vec3,
    vorticity: Vec3,
) -> Vec3 {
    let omega = vorticity.norm();
    if omega < 1e-14 {
        return Vec3::ZERO;
    }
    let cross = rel_velocity.cross(vorticity);
    let cross_norm = cross.norm();
    if cross_norm < 1e-300 {
        return Vec3::ZERO;
    }
    let re_g = fluid_density * props.diameter * props.diameter * omega / fluid_viscosity;
    let magnitude = 1.615
        * fluid_viscosity
        * props.diameter
        * rel_velocity.norm()
        * re_g.sqrt();
    cross / cross_norm * magnitude
}

/// Brownian force amplitude per √dt (Li & Ahmadi form):
/// `F_B = ξ sqrt(π S₀ / dt)` with spectral intensity
/// `S₀ = 216 µ k_B T / (π² ρ_f d⁵ (ρ_p/ρ_f)² C_c)` (slip factor C_c ≈ 1
/// here — a documented simplification for d ≥ 1 µm).
pub fn brownian_force(
    fluid_density: f64,
    fluid_viscosity: f64,
    props: ParticleProps,
    temperature: f64,
    dt: f64,
    xi: Vec3,
) -> Vec3 {
    let d = props.diameter;
    let density_ratio = props.density / fluid_density;
    let s0 = 216.0 * fluid_viscosity * K_BOLTZMANN * temperature
        / (std::f64::consts::PI.powi(2)
            * fluid_density
            * d.powi(5)
            * density_ratio
            * density_ratio);
    xi * (std::f64::consts::PI * s0 / dt).sqrt() * props.mass()
}

/// Fluctuating fluid velocity seen by the particle under the discrete
/// random walk model: `u' = ξ · I · |u|` per component.
pub fn turbulent_fluctuation(mean_velocity: Vec3, intensity: f64, xi: Vec3) -> Vec3 {
    let speed = mean_velocity.norm();
    Vec3::new(xi.x * intensity * speed, xi.y * intensity * speed, xi.z * intensity * speed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIR_RHO: f64 = 1.14;
    const AIR_MU: f64 = 1.9e-5;

    #[test]
    fn lift_is_orthogonal_to_slip_and_vorticity() {
        let props = ParticleProps::default();
        let rel = Vec3::new(1.0, 0.0, 0.0);
        let omega = Vec3::new(0.0, 0.0, 10.0);
        let f = saffman_lift(AIR_RHO, AIR_MU, props, rel, omega);
        assert!(f.norm() > 0.0);
        assert!(f.dot(rel).abs() < 1e-18 * f.norm().max(1.0));
        assert!(f.dot(omega).abs() < 1e-18);
        // Direction: rel x omega = (0,-10,0) direction => -y.
        assert!(f.y < 0.0);
    }

    #[test]
    fn lift_vanishes_without_shear_or_slip() {
        let props = ParticleProps::default();
        assert_eq!(
            saffman_lift(AIR_RHO, AIR_MU, props, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO),
            Vec3::ZERO
        );
        assert_eq!(
            saffman_lift(AIR_RHO, AIR_MU, props, Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0)),
            Vec3::ZERO
        );
    }

    #[test]
    fn lift_grows_with_shear() {
        let props = ParticleProps::default();
        let rel = Vec3::new(1.0, 0.0, 0.0);
        let f1 = saffman_lift(AIR_RHO, AIR_MU, props, rel, Vec3::new(0.0, 0.0, 10.0)).norm();
        let f2 = saffman_lift(AIR_RHO, AIR_MU, props, rel, Vec3::new(0.0, 0.0, 40.0)).norm();
        // sqrt scaling: x4 shear => x2 lift.
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn brownian_stronger_for_smaller_particles() {
        let xi = Vec3::new(1.0, 0.0, 0.0);
        let small = ParticleProps { diameter: 0.1e-6, density: 1000.0 };
        let large = ParticleProps { diameter: 5e-6, density: 1000.0 };
        let fs = brownian_force(AIR_RHO, AIR_MU, small, 310.0, 1e-4, xi).norm() / small.mass();
        let fl = brownian_force(AIR_RHO, AIR_MU, large, 310.0, 1e-4, xi).norm() / large.mass();
        assert!(
            fs > 100.0 * fl,
            "Brownian acceleration must dominate for sub-micron particles: {fs} vs {fl}"
        );
    }

    #[test]
    fn gaussian_stream_is_deterministic_and_roughly_standard() {
        let mut a = DispersionRng::new(9);
        let mut b = DispersionRng::new(9);
        assert_eq!(a.gaussian3(), b.gaussian3());
        let mut rng = DispersionRng::new(1);
        let n = 4000;
        let mut sum = Vec3::ZERO;
        let mut sq = 0.0;
        for _ in 0..n {
            let g = rng.gaussian3();
            sum += g;
            sq += g.norm2();
        }
        let mean = sum / n as f64;
        assert!(mean.norm() < 0.1, "mean {mean:?}");
        let var = sq / (3.0 * n as f64);
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn turbulence_scales_with_speed_and_intensity() {
        let xi = Vec3::new(1.0, 1.0, 1.0);
        let u = Vec3::new(3.0, 0.0, 0.0);
        let f1 = turbulent_fluctuation(u, 0.1, xi).norm();
        let f2 = turbulent_fluctuation(u * 2.0, 0.1, xi).norm();
        let f3 = turbulent_fluctuation(u, 0.2, xi).norm();
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
        assert!((f3 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_model_is_paper_baseline() {
        let m = TransportModel::default();
        assert!(!m.saffman_lift);
        assert!(m.brownian_temperature.is_none());
        assert!(m.turbulence_intensity.is_none());
    }
}
